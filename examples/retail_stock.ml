(* The introduction's motivating scenario: a retail database where a user
   asks why the pair (P0034, S012) — a bluetooth headset and a San
   Francisco store — is not among the products-in-stock pairs.

   With a product/store ontology, the why-not framework answers at the
   right abstraction level: "no San Francisco store stocks any bluetooth
   headset" (and, most generally, none in California).

   Run with: dune exec examples/retail_stock.exe *)

open Whynot_relational
open Whynot_core
module Retail = Whynot_workload.Retail

let section title = Format.printf "@.== %s ==@." title

let () =
  let instance, query, missing = Retail.whynot_headsets () in
  section "The retail database";
  Format.printf "%a" Instance.pp
    (Instance.restrict [ "Products"; "Stores"; "Stock" ] instance);

  section "The query and the why-not question";
  Format.printf "q(pid, sid) = exists qty. Stock(pid, sid, qty) & qty > 0@.";
  let wn = Whynot.make_exn ~schema:Retail.schema ~instance ~query ~missing () in
  Format.printf "%a@." Whynot.pp wn;

  section "The product/store ontology";
  let ontology =
    Ontology.of_extensions ~name:"retail"
      ~subsumptions:Retail.hand_ontology_subsumptions
      ~extensions:
        (List.map
           (fun (c, ext) -> (c, Value_set.of_strings ext))
           Retail.hand_ontology_extensions)
  in
  List.iter
    (fun (c, ext) ->
       Format.printf "ext(%s) = {%s}@." c (String.concat ", " ext))
    Retail.hand_ontology_extensions;

  section "Most-general explanations";
  let mges = Exhaustive.all_mges_exn ontology wn in
  List.iter
    (fun e -> Format.printf "MGE: %a@." (Explanation.pp ontology) e)
    mges;
  Format.printf
    "@.Reading: the headset is missing from the result not for a@.\
     row-level reason but because no Californian store stocks any@.\
     bluetooth headset at all — the high-level explanation the paper's@.\
     introduction motivates.@.";

  section "Derived-ontology view of the same question (Algorithm 2)";
  let e = Incremental.one_mge ~variant:Incremental.With_selections wn in
  let o_i = Ontology.of_instance instance in
  Format.printf "MGE w.r.t. O_I: %a@." (Explanation.pp o_i) e
