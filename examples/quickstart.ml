(* Quickstart: the paper's running example end to end.

   Loads the schema of Figure 1 and the instance of Figure 2, asks the
   why-not question of Example 3.4 ("why is (Amsterdam, New York) not
   connected in two hops?"), and explains it with the hand ontology of
   Figure 3.

   Run with: dune exec examples/quickstart.exe *)

open Whynot_relational
open Whynot_core
module Cities = Whynot_workload.Cities

let section title = Format.printf "@.== %s ==@." title

let () =
  section "Figure 1: the schema";
  Format.printf "%a" Schema.pp Cities.schema;

  section "Figure 2: the instance (views materialised)";
  Format.printf "%a" Instance.pp Cities.instance;

  section "Example 3.4: the query and its answers";
  Format.printf "q(x,y) = exists z. TC(x,z) & TC(z,y)@.";
  Format.printf "q(I) = @[<v>%a@]@." Relation.pp Cities.answers;

  let wn =
    Whynot.make_exn ~schema:Cities.schema ~instance:Cities.instance
      ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()
  in
  Format.printf "@.%a@." Whynot.pp wn;

  section "Figure 3: the hand ontology";
  let ontology =
    Ontology.of_extensions ~name:"figure3"
      ~subsumptions:Cities.hand_hasse
      ~extensions:
        (List.map
           (fun (c, ext) -> (c, Value_set.of_strings ext))
           Cities.hand_extensions)
  in
  List.iter
    (fun (c, ext) ->
       Format.printf "ext(%s) = {%s}@." c (String.concat ", " ext))
    Cities.hand_extensions;

  section "Explanations E1..E4 of Example 3.4";
  let named =
    [
      ("E1", [ "Dutch-City"; "East-Coast-City" ]);
      ("E2", [ "Dutch-City"; "US-City" ]);
      ("E3", [ "European-City"; "East-Coast-City" ]);
      ("E4", [ "European-City"; "US-City" ]);
    ]
  in
  List.iter
    (fun (name, e) ->
       Format.printf "%s = %a : explanation? %b  most general? %b@." name
         (Explanation.pp ontology) e
         (Explanation.is_explanation ontology wn e)
         (Exhaustive.check_mge_exn ontology wn e))
    named;

  section "All most-general explanations (Algorithm 1)";
  List.iter
    (fun e -> Format.printf "MGE: %a@." (Explanation.pp ontology) e)
    (Exhaustive.all_mges_exn ontology wn);
  Format.printf
    "@.The most general of E1..E4 is E4: Amsterdam is a European city,@.\
     New York is a US city, and no European city reaches a US city in@.\
     two train hops.@."
