(* External ontologies via OBDA (§4.1, Example 4.5).

   The DL-LiteR TBox and GAV mappings of Figure 4 induce an S-ontology
   whose concepts are the basic concept expressions of the TBox and whose
   extensions are certain extensions computed from the mappings — all in
   polynomial time (Theorems 4.1/4.2). We then answer the same why-not
   question as the quickstart, now with TBox-level concepts.

   Run with: dune exec examples/obda_cities.exe *)

open Whynot_relational
open Whynot_dllite
open Whynot_core
module Cities = Whynot_workload.Cities

let section title = Format.printf "@.== %s ==@." title

let () =
  section "Figure 4: the DL-LiteR TBox";
  Format.printf "%a@." Tbox.pp Cities.obda_tbox;

  section "Figure 4: the GAV mapping assertions";
  List.iter
    (fun m -> Format.printf "%a@." Whynot_obda.Mapping.pp m)
    Cities.obda_mappings;

  section "The induced S-ontology (Definition 4.4)";
  let induced = Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance in
  (match Whynot_obda.Induced.consistent induced with
   | Ok () -> Format.printf "retrieved assertions: consistent with the TBox@."
   | Error msg -> Format.printf "INCONSISTENT: %s@." msg);
  let concepts = Whynot_obda.Induced.concepts induced in
  Format.printf "%d basic concepts occur in T@." (List.length concepts);
  List.iter
    (fun c ->
       Format.printf "ext(%a) = %a@." Dl.pp_basic c Value_set.pp
         (Whynot_obda.Induced.extension induced c))
    concepts;

  section "Why-not (Amsterdam, New York) with TBox concepts (Example 4.5)";
  let ontology = Ontology.of_obda induced in
  let wn =
    Whynot.make_exn ~schema:Cities.schema ~instance:Cities.instance
      ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()
  in
  let named =
    [
      ("E1", [ Dl.Atom "EU-City"; Dl.Atom "N.A.-City" ]);
      ("E2", [ Dl.Atom "Dutch-City"; Dl.Atom "N.A.-City" ]);
      ("E3", [ Dl.Atom "EU-City"; Dl.Atom "US-City" ]);
      ("E4", [ Dl.Atom "Dutch-City"; Dl.Atom "US-City" ]);
    ]
  in
  List.iter
    (fun (name, e) ->
       Format.printf "%s = %a : explanation? %b  most general? %b@." name
         (Explanation.pp ontology) e
         (Explanation.is_explanation ontology wn e)
         (Exhaustive.check_mge_exn ontology wn e))
    named;

  section "All most-general explanations (Algorithm 1 over O_B)";
  List.iter
    (fun e -> Format.printf "MGE: %a@." (Explanation.pp ontology) e)
    (Exhaustive.all_mges_exn ontology wn);

  Format.printf
    "@.E1 = <EU-City, N.A.-City> is the most general of E1..E4, as in the@.\
     paper: Amsterdam is certain to be an EU city, New York a North@.\
     American one, and no such pair is two train hops apart.@.";

  section "Queries posed against the ontology (§7, via PerfectRef)";
  (* The same why-not question, but with the query phrased over the TBox
     vocabulary and answered under certain-answer semantics. *)
  let ontology_query =
    Cq.make
      ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:
        [
          { Cq.rel = "connected"; args = [ Cq.Var "x"; Cq.Var "z" ] };
          { Cq.rel = "connected"; args = [ Cq.Var "z"; Cq.Var "y" ] };
        ]
      ()
  in
  let rewriting =
    Whynot_obda.Rewrite.rewrite Cities.obda_tbox ontology_query
  in
  Format.printf "PerfectRef rewriting has %d disjunct(s)@."
    (List.length rewriting.Ucq.disjuncts);
  (match
     Obda_whynot.explain induced ~query:ontology_query
       ~missing:Cities.missing_tuple
   with
   | Ok mges ->
     List.iter
       (fun e -> Format.printf "ontology-level MGE: %a@." (Explanation.pp ontology) e)
       mges
   | Error e -> Format.printf "error: %s@." (Whynot_error.to_string e))
