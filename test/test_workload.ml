(* Tests for the workload generators: every generated artifact must satisfy
   its invariants (schema constraints, well-formed why-not questions), so
   the benchmark harness measures algorithms on legal inputs. *)

open Whynot_relational
module Generate = Whynot_workload.Generate
module Retail = Whynot_workload.Retail
module Cities = Whynot_workload.Cities
module Ontology = Whynot_core.Ontology

let test_retail () =
  let instance, query, missing = Retail.whynot_headsets () in
  (match Schema.satisfies Retail.schema instance with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "retail constraints: %s" msg);
  let answers = Cq.eval query instance in
  Alcotest.(check bool) "missing tuple absent" false
    (Relation.mem (Tuple.of_list missing) answers);
  Alcotest.(check bool) "some answers exist" true
    (Relation.cardinal answers > 0);
  (* The zero-quantity Stock row must not surface in InStock. *)
  let in_stock = Option.get (Instance.relation instance "InStock") in
  Alcotest.(check bool) "qty=0 filtered" false
    (Relation.mem (Tuple.of_list [ Value.str "P0034"; Value.str "S020" ]) in_stock)

let test_retail_constraints_directly () =
  (* Re-check every declared constraint through the Fd/Ind primitives, not
     just the aggregate [Schema.satisfies] verdict. *)
  let rel name = Option.get (Instance.relation Retail.instance name) in
  List.iter
    (fun (fd : Fd.t) ->
       Alcotest.(check bool)
         (Format.asprintf "%a" Fd.pp fd)
         true
         (Fd.satisfied_in fd (rel fd.Fd.rel)))
    (Schema.fds Retail.schema);
  List.iter
    (fun (ind : Ind.t) ->
       Alcotest.(check bool)
         (Format.asprintf "%a" Ind.pp ind)
         true
         (Ind.satisfied_in ind ~lhs:(rel ind.Ind.lhs_rel)
            ~rhs:(rel ind.Ind.rhs_rel)))
    (Schema.inds Retail.schema);
  (* The bluetooth headset is classified as electronics by the view. *)
  let electronics = rel "Electronics" in
  Alcotest.(check bool) "P0034 in Electronics" true
    (Relation.mem (Tuple.of_list [ Value.str "P0034" ]) electronics)

let test_cities_figures () =
  (match Schema.satisfies Cities.schema Cities.instance with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "figure 2 constraints: %s" msg);
  (* Example 3.4: q(I) has exactly four answers, and the why-not tuple is
     not among them. *)
  let answers = Cq.eval Cities.two_hop_query Cities.instance in
  Alcotest.(check bool) "answers are Example 3.4's" true
    (Relation.equal answers Cities.answers);
  Alcotest.(check int) "four answers" 4 (Relation.cardinal answers);
  Alcotest.(check bool) "(Amsterdam, New York) missing" false
    (Relation.mem (Tuple.of_list Cities.missing_tuple) answers);
  (* The published instance is exactly the base data plus materialised
     views — nothing hand-edited. *)
  Alcotest.(check bool) "instance = complete(base)" true
    (Instance.equal
       (Schema.complete Cities.schema Cities.base_instance)
       Cities.instance);
  let fd =
    match Schema.fds Cities.schema with [ fd ] -> fd | _ -> Alcotest.fail "one FD"
  in
  Alcotest.(check bool) "country -> continent holds" true
    (Fd.satisfied_in fd (Option.get (Instance.relation Cities.instance fd.Fd.rel)))

let test_cities_hand_ontology () =
  let o =
    Ontology.of_extensions ~name:"figure-3" ~subsumptions:Cities.hand_hasse
      ~extensions:
        (List.map
           (fun (c, vs) -> (c, Value_set.of_strings vs))
           Cities.hand_extensions)
  in
  let concepts = Option.get o.Ontology.concepts in
  List.iter
    (fun c ->
       Alcotest.(check bool) (c ^ " declared") true (List.mem c concepts))
    Cities.hand_concepts;
  (* Figure 3 is consistent: extensions grow monotonically along the Hasse
     diagram, probed on every constant the figure mentions. *)
  let probes =
    List.concat_map
      (fun (_, vs) -> List.map Value.str vs)
      Cities.hand_extensions
  in
  Alcotest.(check int) "no consistency violations" 0
    (List.length (Ontology.consistency_violations_exn o probes))

let test_cities_obda () =
  let induced = Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance in
  (match Whynot_obda.Induced.consistent induced with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "figure 4 retrieval inconsistent: %s" msg);
  let ext name = Whynot_obda.Induced.extension induced (Whynot_dllite.Dl.Atom name) in
  Alcotest.(check bool) "Amsterdam is a certain Dutch-City" true
    (Value_set.mem Cities.amsterdam (ext "Dutch-City"));
  Alcotest.(check bool) "Dutch-City closure reaches City" true
    (Value_set.mem Cities.amsterdam (ext "City"));
  Alcotest.(check bool) "Amsterdam is no N.A.-City" false
    (Value_set.mem Cities.amsterdam (ext "N.A.-City"));
  Alcotest.(check bool) "New York is a certain N.A.-City" true
    (Value_set.mem Cities.new_york (ext "N.A.-City"));
  (* Differential tie-in: the forward-chained certain extensions agree
     with the proptest chase oracle on the paper's own specification. *)
  List.iter
    (fun b ->
       Alcotest.(check bool)
         (Format.asprintf "chase agrees on %a" Whynot_dllite.Dl.pp_basic b)
         true
         (Value_set.equal
            (Whynot_obda.Induced.extension induced b)
            (Whynot_proptest.Oracle.chase_certain_extension Cities.obda_spec
               Cities.instance b)))
    (Whynot_obda.Induced.concepts induced)

let cities_like_sweep =
  QCheck2.Test.make ~name:"cities_like legal across random seeds" ~count:25
    QCheck2.Gen.(
      triple (int_range 0 10000) (int_range 4 40) (int_range 2 6))
    (fun (seed, n_cities, n_countries) ->
       let schema, inst =
         Generate.cities_like ~seed ~n_cities ~n_countries
           ~n_connections:(2 * n_cities) ()
       in
       (match Schema.satisfies schema inst with
        | Ok () -> ()
        | Error msg -> QCheck2.Test.fail_reportf "seed=%d: %s" seed msg);
       let wn = Generate.cities_whynot (schema, inst) in
       Whynot_core.Whynot.arity wn = 2
       && not
            (Relation.mem wn.Whynot_core.Whynot.missing
               wn.Whynot_core.Whynot.answers))

let test_cities_like_legal () =
  List.iter
    (fun (n, seed) ->
       let schema, inst =
         Generate.cities_like ~seed ~n_cities:n ~n_countries:(max 2 (n / 5))
           ~n_connections:(2 * n) ()
       in
       (match Schema.satisfies schema inst with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "n=%d seed=%d: %s" n seed msg);
       let wn = Generate.cities_whynot (schema, inst) in
       Alcotest.(check bool) "why-not well-formed" true
         (Whynot_core.Whynot.arity wn = 2))
    [ (10, 1); (20, 2); (40, 3); (80, 4); (30, 99) ]

let test_table1_schemas () =
  List.iter
    (fun p ->
       let s = Generate.wide_schema ~positions:p in
       Alcotest.(check bool) "positions >= requested" true
         (List.length (Schema.positions s) >= p))
    [ 4; 9; 16 ];
  let fd_s = Generate.fd_schema ~positions:8 in
  Alcotest.(check int) "fds" 4 (List.length (Schema.fds fd_s));
  let ind_s = Generate.ind_chain_schema ~n_relations:5 in
  Alcotest.(check int) "inds" 4 (List.length (Schema.inds ind_s));
  let v_s = Generate.ucq_view_schema ~n_disjuncts:3 in
  Alcotest.(check bool) "view declared" true (Schema.has_views v_s);
  let n_s = Generate.nested_view_schema ~depth:3 in
  Alcotest.(check bool) "nested not flat" false
    (View.is_flat (Schema.views n_s));
  (* Unfolding V_depth doubles atoms per level. *)
  let q =
    Whynot_concept.To_query.query n_s
      (Whynot_concept.Ls.proj ~rel:"V3" ~attr:1 ())
  in
  (match View.unfold_cq (Schema.views n_s) q with
   | [ unfolded ] ->
     Alcotest.(check int) "2^3 base atoms" 8 (List.length unfolded.Cq.atoms)
   | _ -> Alcotest.fail "single disjunct expected")

let test_random_concepts () =
  let schema = Generate.wide_schema ~positions:8 in
  let c1 = Generate.random_selection_free_concept ~seed:1 schema ~conjuncts:3 () in
  Alcotest.(check bool) "selection-free" true (Whynot_concept.Ls.is_selection_free c1);
  let c2 = Generate.random_selection_concept ~seed:2 schema ~conjuncts:2 () in
  Alcotest.(check bool) "has selections" false
    (Whynot_concept.Ls.is_selection_free c2);
  (* Determinism: the same seed yields the same concept. *)
  Alcotest.(check bool) "deterministic" true
    (Whynot_concept.Ls.equal c1
       (Generate.random_selection_free_concept ~seed:1 schema ~conjuncts:3 ()))

let test_random_hand_ontology () =
  let o = Generate.random_hand_ontology ~seed:5 ~n_concepts:12 ~n_constants:9 () in
  let concepts = Option.get o.Whynot_core.Ontology.concepts in
  Alcotest.(check int) "12 concepts" 12 (List.length concepts);
  (* Monotone extensions: consistency violations are empty on the constant
     pool. *)
  let probes = List.init 9 (fun k -> Value.str (Printf.sprintf "k%d" k)) in
  Alcotest.(check int) "consistent" 0
    (List.length (Whynot_core.Ontology.consistency_violations_exn o probes))

let test_random_tbox () =
  let tb = Generate.random_tbox ~seed:3 ~n_atoms:6 ~n_roles:2 ~n_axioms:12 () in
  Alcotest.(check int) "axiom count" 12 (Whynot_dllite.Tbox.size tb);
  (* Saturating a random TBox never raises and stays sound on its own
     canonical model. *)
  let r = Whynot_dllite.Reasoner.saturate tb in
  Alcotest.(check bool) "canonical model satisfies" true
    (Whynot_dllite.Interp.satisfies (Whynot_dllite.Canonical.build r) tb)

let test_arity_whynot () =
  List.iter
    (fun arity ->
       let wn = Generate.arity_whynot ~arity ~n_answers:5 ~n_constants:5 () in
       Alcotest.(check int) "arity" arity (Whynot_core.Whynot.arity wn);
       Alcotest.(check int) "answers are the diagonal" 5
         (Relation.cardinal wn.Whynot_core.Whynot.answers))
    [ 1; 2; 3; 4 ]

let () =
  Alcotest.run "workload"
    [
      ( "retail",
        [
          Alcotest.test_case "invariants" `Quick test_retail;
          Alcotest.test_case "constraints directly" `Quick
            test_retail_constraints_directly;
        ] );
      ( "cities",
        [
          Alcotest.test_case "figures 1-2 / example 3.4" `Quick
            test_cities_figures;
          Alcotest.test_case "figure 3 hand ontology" `Quick
            test_cities_hand_ontology;
          Alcotest.test_case "figure 4 obda" `Quick test_cities_obda;
        ] );
      ( "generators",
        [
          Alcotest.test_case "cities_like legal" `Quick test_cities_like_legal;
          QCheck_alcotest.to_alcotest ~speed_level:`Quick cities_like_sweep;
          Alcotest.test_case "table-1 schemas" `Quick test_table1_schemas;
          Alcotest.test_case "random concepts" `Quick test_random_concepts;
          Alcotest.test_case "random hand ontology" `Quick test_random_hand_ontology;
          Alcotest.test_case "random tbox" `Quick test_random_tbox;
          Alcotest.test_case "arity why-not" `Quick test_arity_whynot;
        ] );
    ]
