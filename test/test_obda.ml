(* Tests for the OBDA layer: mapping retrieval, induced ontology
   (Definition 4.4), and the concrete extensions of Example 4.5. *)

open Whynot_relational
open Whynot_dllite
open Whynot_obda

let cities = Whynot_workload.Cities.instance
let spec = Whynot_workload.Cities.obda_spec

let induced = Induced.prepare spec cities

let vset_of_strings = Value_set.of_strings

let check_ext msg concept expected =
  let got = Induced.extension induced concept in
  Alcotest.(check bool)
    (msg ^ " = " ^ Format.asprintf "%a" Value_set.pp got)
    true
    (Value_set.equal got (vset_of_strings expected))

let a name = Dl.Atom name
let ex p = Dl.Exists (Dl.Named p)
let ex_inv p = Dl.Exists (Dl.Inv p)

let test_retrieval () =
  let retrieved = Induced.retrieved induced in
  Alcotest.(check int) "EU-City raw" 3
    (Value_set.cardinal (Interp.concept_ext retrieved (a "EU-City")));
  Alcotest.(check int) "connected edges" 6
    (List.length (Interp.role_ext retrieved (Dl.Named "connected")));
  Alcotest.(check int) "hasCountry edges (8 cities)" 8
    (List.length (Interp.role_ext retrieved (Dl.Named "hasCountry")))

(* Example 4.5's listed extensions. *)
let test_example_4_5_extensions () =
  check_ext "City" (a "City")
    [ "Amsterdam"; "Berlin"; "Rome"; "New York"; "San Francisco"; "Santa Cruz";
      "Tokyo"; "Kyoto" ];
  check_ext "EU-City" (a "EU-City") [ "Amsterdam"; "Berlin"; "Rome" ];
  check_ext "N.A.-City" (a "N.A.-City")
    [ "New York"; "San Francisco"; "Santa Cruz" ];
  check_ext "Dutch-City" (a "Dutch-City") [ "Amsterdam" ];
  check_ext "US-City" (a "US-City")
    [ "New York"; "San Francisco"; "Santa Cruz" ];
  check_ext "exists hasCountry-" (ex_inv "hasCountry")
    [ "Netherlands"; "Germany"; "Italy"; "USA"; "Japan" ];
  (* The paper's Example 4.5 prints ext(∃connected) = {Amsterdam, Berlin,
     New York}, but the mapping of Figure 4 retrieves every Train-Connections
     pair whose endpoints are cities — which also covers San Francisco and
     Tokyo. The semantically correct certain extension is the one below;
     see EXPERIMENTS.md. *)
  check_ext "exists connected" (ex "connected")
    [ "Amsterdam"; "Berlin"; "New York"; "San Francisco"; "Tokyo" ]

let test_certain_extension_uses_tbox () =
  (* No mapping asserts City directly: Tokyo is a City only via
     ∃connected ⊑ City. *)
  let retrieved = Induced.retrieved induced in
  Alcotest.(check bool) "no raw City facts" true
    (Value_set.is_empty (Interp.concept_ext retrieved (a "City")));
  Alcotest.(check bool) "Tokyo certain City" true
    (Value_set.mem (Value.str "Tokyo") (Induced.extension induced (a "City")));
  (* exists hasCountry also covers all cities via City ⊑ ∃hasCountry...
     but certain membership of ∃hasCountry comes from the retrieved
     hasCountry edges themselves. *)
  Alcotest.(check int) "exists hasCountry" 8
    (Value_set.cardinal (Induced.extension induced (ex "hasCountry")))

let test_concepts_and_subsumption () =
  let concepts = Induced.concepts induced in
  Alcotest.(check int) "13 basic concepts occur in T" 13 (List.length concepts);
  Alcotest.(check bool) "EU [= City" true
    (Induced.subsumes induced (a "EU-City") (a "City"));
  Alcotest.(check bool) "Dutch [= City" true
    (Induced.subsumes induced (a "Dutch-City") (a "City"));
  Alcotest.(check bool) "City not [= EU" false
    (Induced.subsumes induced (a "City") (a "EU-City"))

let test_consistency () =
  (match Induced.consistent induced with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("Figure 2+4 should be consistent: " ^ msg));
  (* Force an inconsistency: a city asserted both European and
     North-American. *)
  let broken =
    Instance.add_fact "Cities"
      [ Value.str "Atlantis"; Value.int 1; Value.str "USA"; Value.str "Europe" ]
      Whynot_workload.Cities.base_instance
  in
  let ind = Induced.prepare spec broken in
  match Induced.consistent ind with
  | Ok () -> Alcotest.fail "inconsistency not detected"
  | Error _ -> ()

let test_base_concepts_of () =
  let bases =
    Induced.base_concepts_of induced (Value.str "Amsterdam")
  in
  Alcotest.(check bool) "EU-City base" true (List.mem (a "EU-City") bases);
  Alcotest.(check bool) "Dutch-City base" true (List.mem (a "Dutch-City") bases);
  Alcotest.(check bool) "connected domain" true (List.mem (ex "connected") bases);
  Alcotest.(check bool) "City not base (derived only)" false
    (List.mem (a "City") bases)

let test_unsafe_mapping_rejected () =
  let bad =
    Mapping.make
      ~head:(Mapping.Concept_of ("A", "lost"))
      [ { Cq.rel = "Cities"; args = [ Cq.Var "x"; Cq.Var "y"; Cq.Var "z"; Cq.Var "w" ] } ]
  in
  match
    Spec.make ~tbox:Whynot_workload.Cities.obda_tbox
      ~schema:Whynot_workload.Cities.schema ~mappings:[ bad ]
  with
  | Ok _ -> Alcotest.fail "unsafe mapping accepted"
  | Error _ -> ()

let test_wrong_arity_rejected () =
  let bad =
    Mapping.make
      ~head:(Mapping.Concept_of ("A", "x"))
      [ { Cq.rel = "Cities"; args = [ Cq.Var "x" ] } ]
  in
  match
    Spec.make ~tbox:Whynot_workload.Cities.obda_tbox
      ~schema:Whynot_workload.Cities.schema ~mappings:[ bad ]
  with
  | Ok _ -> Alcotest.fail "wrong arity accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* PerfectRef rewriting and ontology-level queries                      *)
(* ------------------------------------------------------------------ *)

let atomic_query name =
  Cq.make ~head:[ Cq.Var "x" ]
    ~atoms:[ { Cq.rel = name; args = [ Cq.Var "x" ] } ]
    ()

let test_rewrite_atomic_matches_extensions () =
  (* For every atomic concept A, certain answers of A(x) must equal the
     induced ontology's certain extension of A — two independent
     implementations of the same semantics. *)
  let tbox = Whynot_workload.Cities.obda_tbox in
  List.iter
    (fun a ->
       let q = atomic_query a in
       Alcotest.(check bool) ("signature check " ^ a) true
         (Rewrite.is_ontology_query tbox q);
       let via_rewrite =
         Relation.column 1 (Rewrite.certain_answers induced q)
       in
       let via_closure = Induced.extension induced (Dl.Atom a) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: rewrite = closure (%s vs %s)" a
            (Format.asprintf "%a" Value_set.pp via_rewrite)
            (Format.asprintf "%a" Value_set.pp via_closure))
         true
         (Value_set.equal via_rewrite via_closure))
    (Whynot_dllite.Tbox.atomic_concepts tbox)

let test_rewrite_join_through_existential () =
  (* q(x) := hasCountry(x, y), hasContinent(y, z): no retrieved
     hasContinent edge leaves a country, but Country ⊑ ∃hasContinent makes
     the join succeed through an anonymous witness — this requires the
     reduce step of PerfectRef. *)
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:
        [
          { Cq.rel = "hasCountry"; args = [ Cq.Var "x"; Cq.Var "y" ] };
          { Cq.rel = "hasContinent"; args = [ Cq.Var "y"; Cq.Var "z" ] };
        ]
      ()
  in
  let answers = Relation.column 1 (Rewrite.certain_answers induced q) in
  Alcotest.(check bool)
    (Format.asprintf "all 8 cities (%a)" Value_set.pp answers)
    true
    (Value_set.equal answers
       (Induced.extension induced (Dl.Atom "City")))

let test_rewrite_role_query () =
  (* connected(x, y): certain answers are exactly the retrieved edges. *)
  let q =
    Cq.make
      ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:[ { Cq.rel = "connected"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
      ()
  in
  Alcotest.(check int) "6 edges" 6
    (Relation.cardinal (Rewrite.certain_answers induced q))

let test_ontology_level_whynot () =
  (* Why is (Amsterdam, New York) not certain to be connected in two hops
     at the ONTOLOGY level? *)
  let q =
    Cq.make
      ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:
        [
          { Cq.rel = "connected"; args = [ Cq.Var "x"; Cq.Var "z" ] };
          { Cq.rel = "connected"; args = [ Cq.Var "z"; Cq.Var "y" ] };
        ]
      ()
  in
  match
    Whynot_core.Obda_whynot.make induced ~query:q
      ~missing:[ Value.str "Amsterdam"; Value.str "New York" ]
  with
  | Error e -> Alcotest.failf "ontology why-not: %s" (Whynot_error.message e)
  | Ok wn ->
    Alcotest.(check int) "4 certain answers" 4
      (Relation.cardinal wn.Whynot_core.Whynot.answers);
    let o = Whynot_core.Ontology.of_obda induced in
    Alcotest.(check bool) "E1 is an MGE here too" true
      (Whynot_core.Exhaustive.check_mge_exn o wn
         [ Dl.Atom "EU-City"; Dl.Atom "N.A.-City" ]);
    (match
       Whynot_core.Obda_whynot.explain induced ~query:q
         ~missing:[ Value.str "Amsterdam"; Value.str "New York" ]
     with
     | Ok mges -> Alcotest.(check bool) "some MGEs" true (mges <> [])
     | Error e -> Alcotest.failf "explain: %s" (Whynot_error.message e))

let test_ontology_whynot_validation () =
  let bad_query =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "Cities"; args = [ Cq.Var "x"; Cq.Var "a"; Cq.Var "b"; Cq.Var "c" ] } ]
      ()
  in
  match
    Whynot_core.Obda_whynot.make induced ~query:bad_query
      ~missing:[ Value.str "Amsterdam" ]
  with
  | Ok _ -> Alcotest.fail "schema-level query accepted as ontology query"
  | Error _ -> ()

(* Property: certain extensions are monotone under subsumption — if
   T ⊨ B1 ⊑ B2 then ext(B1) ⊆ ext(B2). *)
let prop_extension_monotone =
  QCheck2.Test.make ~name:"ext monotone w.r.t. subsumption" ~count:1
    QCheck2.Gen.unit
    (fun () ->
       let concepts = Induced.concepts induced in
       List.for_all
         (fun b1 ->
            List.for_all
              (fun b2 ->
                 (not (Induced.subsumes induced b1 b2))
                 || Value_set.subset
                      (Induced.extension induced b1)
                      (Induced.extension induced b2))
              concepts)
         concepts)

let () =
  Alcotest.run "obda"
    [
      ( "figure4",
        [
          Alcotest.test_case "retrieval" `Quick test_retrieval;
          Alcotest.test_case "example 4.5 extensions" `Quick test_example_4_5_extensions;
          Alcotest.test_case "certain ext uses TBox" `Quick test_certain_extension_uses_tbox;
          Alcotest.test_case "concepts/subsumption" `Quick test_concepts_and_subsumption;
          Alcotest.test_case "consistency" `Quick test_consistency;
          Alcotest.test_case "base concepts" `Quick test_base_concepts_of;
        ] );
      ( "validation",
        [
          Alcotest.test_case "unsafe mapping" `Quick test_unsafe_mapping_rejected;
          Alcotest.test_case "wrong arity" `Quick test_wrong_arity_rejected;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "atomic = closure" `Quick test_rewrite_atomic_matches_extensions;
          Alcotest.test_case "join through existential" `Quick test_rewrite_join_through_existential;
          Alcotest.test_case "role query" `Quick test_rewrite_role_query;
          Alcotest.test_case "ontology-level why-not" `Quick test_ontology_level_whynot;
          Alcotest.test_case "validation" `Quick test_ontology_whynot_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_extension_monotone ] );
    ]
