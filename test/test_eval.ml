(* Edge cases of the planned/indexed CQ evaluation kernel: unsafe queries,
   constants in heads and atom positions, comparison-only queries, empty
   atom lists, repeated variables inside one atom, zero-arity relations,
   plan/index caching, and the satellite fixes (Tuple.append,
   Relation.product, Instance.restrict, Cq.freeze). Where it sharpens the
   check, the planned route is also pinned against the retained naive
   oracle on the same input. *)

open Whynot_relational
module Oracle = Whynot_proptest.Oracle
module Obs = Whynot_obs.Obs

let vi n = Value.Int n
let vs s = Value.Str s
let var v = Cq.Var v
let const v = Cq.Const v
let atom rel args = { Cq.rel; args }

let rel_t = Alcotest.testable Relation.pp Relation.equal

(* Answers must agree with the naive oracle *and* with the explicitly
   expected tuples. *)
let check_eval name q inst expected =
  let planned = Cq.eval q inst in
  Alcotest.check rel_t (name ^ ": planned vs expected") expected planned;
  Alcotest.check rel_t (name ^ ": planned vs naive")
    (Oracle.naive_eval q inst) planned;
  Alcotest.(check bool)
    (name ^ ": holds agrees") (not (Relation.is_empty planned))
    (Cq.holds q inst);
  Alcotest.(check bool)
    (name ^ ": naive holds agrees")
    (Cq.holds q inst) (Oracle.naive_holds q inst)

let inst_r =
  Instance.of_facts
    [ ("R", [ [ vi 1; vi 1 ]; [ vi 1; vi 2 ]; [ vi 2; vi 3 ] ]) ]

let rel_of ~arity rows = Relation.of_value_lists ~arity rows

(* --- unsafe queries --- *)

let test_unsafe_head () =
  (* y occurs in no atom: every binding projects to nothing. *)
  let q = Cq.make ~head:[ var "x"; var "y" ] ~atoms:[ atom "R" [ var "x"; var "x" ] ] () in
  check_eval "unsafe head" q inst_r (Relation.empty ~arity:2);
  Alcotest.(check (list (list (pair string (testable Value.pp Value.equal)))))
    "unsafe head assignments" [] (Cq.eval_assignments q inst_r)

let test_unsafe_comparison () =
  (* The compared variable never occurs in an atom: no binding survives. *)
  let q =
    Cq.make ~head:[ var "x" ]
      ~atoms:[ atom "R" [ var "x"; var "z" ] ]
      ~comparisons:[ { Cq.subject = "w"; op = Cmp_op.Eq; value = vi 1 } ]
      ()
  in
  check_eval "unsafe comparison" q inst_r (Relation.empty ~arity:1)

(* --- constants in heads and atom positions --- *)

let test_const_in_head () =
  let q =
    Cq.make
      ~head:[ const (vs "tag"); var "x" ]
      ~atoms:[ atom "R" [ var "x"; const (vi 3) ] ]
      ()
  in
  check_eval "constant head+atom" q inst_r
    (rel_of ~arity:2 [ [ vs "tag"; vi 2 ] ])

let test_const_only_head () =
  let q = Cq.make ~head:[ const (vi 7) ] ~atoms:[ atom "R" [ var "x"; var "y" ] ] () in
  check_eval "all-constant head" q inst_r (rel_of ~arity:1 [ [ vi 7 ] ])

let test_const_atom_no_match () =
  let q = Cq.make ~head:[ var "x" ] ~atoms:[ atom "R" [ var "x"; const (vi 99) ] ] () in
  check_eval "constant filters all" q inst_r (Relation.empty ~arity:1)

(* --- comparison-only and empty-atom queries --- *)

let test_comparison_only () =
  (* atoms = [], comparisons <> []: nothing binds the subject. *)
  let q =
    Cq.make ~head:[] ~atoms:[]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Gt; value = vi 0 } ]
      ()
  in
  check_eval "comparison-only" q inst_r (Relation.empty ~arity:0)

let test_empty_query_boolean () =
  (* The trivially true Boolean query. *)
  let q = Cq.make ~head:[] ~atoms:[] () in
  check_eval "empty boolean" q inst_r (rel_of ~arity:0 [ [] ]);
  Alcotest.(check bool) "empty boolean holds" true (Cq.holds q inst_r);
  Alcotest.(check (list (list (pair string (testable Value.pp Value.equal)))))
    "empty boolean assignments" [ [] ] (Cq.eval_assignments q inst_r)

let test_empty_atoms_const_head () =
  let q = Cq.make ~head:[ const (vi 4); const (vs "a") ] ~atoms:[] () in
  check_eval "no atoms, constant head" q inst_r
    (rel_of ~arity:2 [ [ vi 4; vs "a" ] ])

let test_empty_atoms_var_head () =
  let q = Cq.make ~head:[ var "x" ] ~atoms:[] () in
  check_eval "no atoms, variable head" q inst_r (Relation.empty ~arity:1)

(* --- repeated variables inside one atom --- *)

let test_repeated_var_in_atom () =
  let q = Cq.make ~head:[ var "x" ] ~atoms:[ atom "R" [ var "x"; var "x" ] ] () in
  check_eval "diagonal" q inst_r (rel_of ~arity:1 [ [ vi 1 ] ])

let test_repeated_var_joined () =
  (* x repeats within the second atom *and* joins with the first. *)
  let q =
    Cq.make ~head:[ var "y" ]
      ~atoms:
        [ atom "R" [ var "y"; var "x" ]; atom "R" [ var "x"; var "x" ] ]
      ()
  in
  check_eval "diagonal join" q inst_r (rel_of ~arity:1 [ [ vi 1 ] ])

(* --- zero-arity relations --- *)

let test_zero_arity () =
  let nullary = rel_of ~arity:0 [ [] ] in
  let inst = Instance.add_relation "Z" nullary Instance.empty in
  let q = Cq.make ~head:[] ~atoms:[ atom "Z" [] ] () in
  check_eval "nullary present" q inst (rel_of ~arity:0 [ [] ]);
  let empty_inst = Instance.add_relation "Z" (Relation.empty ~arity:0) Instance.empty in
  check_eval "nullary empty" q empty_inst (Relation.empty ~arity:0);
  check_eval "nullary absent" q Instance.empty (Relation.empty ~arity:0)

(* --- comparisons pushed into the join --- *)

let test_comparison_pushdown () =
  let q =
    Cq.make ~head:[ var "x"; var "y" ]
      ~atoms:[ atom "R" [ var "x"; var "y" ] ]
      ~comparisons:
        [
          { Cq.subject = "y"; op = Cmp_op.Ge; value = vi 2 };
          { Cq.subject = "y"; op = Cmp_op.Lt; value = vi 3 };
        ]
      ()
  in
  check_eval "two comparisons, one subject" q inst_r
    (rel_of ~arity:2 [ [ vi 1; vi 2 ] ])

let test_arity_mismatch_raises () =
  (* An atom wider than the stored tuples fails on both routes. *)
  let q = Cq.make ~head:[ var "z" ] ~atoms:[ atom "R" [ var "x"; var "y"; var "z" ] ] () in
  Alcotest.check_raises "planned raises"
    (Invalid_argument "Tuple.get: attribute 3 out of range 1..2") (fun () ->
      ignore (Cq.eval q inst_r));
  Alcotest.check_raises "naive raises"
    (Invalid_argument "Tuple.get: attribute 3 out of range 1..2") (fun () ->
      ignore (Oracle.naive_eval q inst_r))

(* --- plan and index caching --- *)

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap)

let test_plan_cache_and_probes () =
  (* A fresh physical instance guarantees a fresh Eval_index handle. *)
  let inst =
    Instance.of_facts
      [
        ("R", List.init 50 (fun k -> [ vi k; vi (k + 1) ]));
        ("S", List.init 50 (fun k -> [ vi (2 * k) ]));
      ]
  in
  let q =
    Cq.make ~head:[ var "x"; var "y" ]
      ~atoms:[ atom "S" [ var "x" ]; atom "R" [ var "x"; var "y" ] ]
      ()
  in
  let first, d1 = Obs.delta (fun () -> Cq.eval q inst) in
  Alcotest.(check bool) "first run compiles a plan" true
    (counter_value d1 "eval.plans.built" >= 1);
  Alcotest.(check bool) "first run builds an index" true
    (counter_value d1 "eval.index.builds" >= 1);
  let second, d2 = Obs.delta (fun () -> Cq.eval q inst) in
  Alcotest.check rel_t "replay agrees" first second;
  Alcotest.(check int) "replay compiles nothing"
    0 (counter_value d2 "eval.plans.built");
  Alcotest.(check int) "replay builds nothing"
    0 (counter_value d2 "eval.index.builds");
  Alcotest.(check bool) "replay probes the index" true
    (counter_value d2 "eval.index.probes" >= 1)

let test_handle_cap_flush () =
  (* The handle registry is capped at 64 physical instances; interning a
     65th must flush the registry wholesale and carry on, with both the
     pre-flush handles and the accounting staying consistent. *)
  Eval_index.clear ();
  let mk k = Instance.of_facts [ ("R", [ [ vi k; vi (k + 1) ] ]) ] in
  let insts = List.init 65 mk in
  let handles, d =
    Obs.delta (fun () -> List.map Eval_index.of_instance insts)
  in
  Alcotest.(check int) "65 distinct instances intern 65 handles" 65
    (counter_value d "eval.index.handles");
  Alcotest.(check int) "the 65th intern flushes the registry" 1
    (counter_value d "eval.index.flushes");
  let probe_one h key =
    List.length (Eval_index.probe h ~rel:"R" ~cols:[ 1 ] [ vi key ])
  in
  Alcotest.(check int) "the post-flush handle answers probes" 1
    (probe_one (List.nth handles 64) 64);
  Alcotest.(check int) "a pre-flush handle keeps working" 1
    (probe_one (List.hd handles) 0);
  (* The flush dropped the first instance's registry entry: re-interning
     it builds a fresh handle... *)
  let h1', d2 = Obs.delta (fun () -> Eval_index.of_instance (List.hd insts)) in
  Alcotest.(check bool) "re-interning after the flush is a fresh handle" true
    (not (h1' == List.hd handles));
  Alcotest.(check int) "...counted as one new handle" 1
    (counter_value d2 "eval.index.handles");
  (* ...and from then on the registry shares it again. *)
  let h1'', d3 = Obs.delta (fun () -> Eval_index.of_instance (List.hd insts)) in
  Alcotest.(check bool) "the fresh handle is shared on the next intern" true
    (h1'' == h1');
  Alcotest.(check int) "a registry hit interns nothing" 0
    (counter_value d3 "eval.index.handles")

let test_plan_pp () =
  let idx = Eval_index.of_instance inst_r in
  let q =
    Cq.make ~head:[ var "y" ]
      ~atoms:[ atom "R" [ const (vi 1); var "y" ] ]
      ()
  in
  let txt = Format.asprintf "%a" Cq.Plan.pp (Cq.Plan.of_query idx q) in
  let contains needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length txt
      && (String.sub txt i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "pp mentions the probe" true (contains "probe R")

(* --- the Whynot_eval facade --- *)

let test_facade () =
  let idx = Whynot_eval.index inst_r in
  let q = Cq.make ~head:[ var "x" ] ~atoms:[ atom "R" [ var "x"; var "x" ] ] () in
  Alcotest.check rel_t "facade query = Cq.eval" (Cq.eval q inst_r)
    (Whynot_eval.query idx q);
  Alcotest.(check bool) "facade ask = Cq.holds" (Cq.holds q inst_r)
    (Whynot_eval.ask idx q);
  Alcotest.(check bool) "facade assignments agree" true
    (Whynot_eval.assignments idx q = Cq.eval_assignments q inst_r)

(* --- Eval_index selections vs full scans --- *)

let test_select_column_vs_scan () =
  let rows = List.init 40 (fun k -> [ vi (k mod 7); vi k; vs "c" ]) in
  let inst = Instance.of_facts [ ("T", rows) ] in
  let idx = Eval_index.of_instance inst in
  let r = Option.get (Instance.relation inst "T") in
  List.iter
    (fun op ->
       let sels = [ (2, op, vi 20) ] in
       let indexed = Eval_index.select_column idx ~rel:"T" ~attr:1 ~sels in
       let scanned = Relation.column 1 (Relation.select sels r) in
       Alcotest.(check bool)
         (Printf.sprintf "select_column %s" (Cmp_op.to_string op))
         true
         (Value_set.equal indexed scanned))
    Cmp_op.all;
  Alcotest.(check bool) "column_values = scan" true
    (Value_set.equal
       (Eval_index.column_values idx ~rel:"T" ~attr:1)
       (Relation.column 1 r));
  Alcotest.(check bool) "absent relation" true
    (Value_set.is_empty (Eval_index.column_values idx ~rel:"U" ~attr:1))

(* --- satellite fixes --- *)

let test_tuple_append_product () =
  let t1 = Tuple.of_list [ vi 1; vs "a" ] and t2 = Tuple.of_list [ vi 2 ] in
  Alcotest.(check bool) "append" true
    (Tuple.equal (Tuple.append t1 t2) (Tuple.of_list [ vi 1; vs "a"; vi 2 ]));
  let r1 = rel_of ~arity:1 [ [ vi 1 ]; [ vi 2 ] ] in
  let r2 = rel_of ~arity:2 [ [ vs "x"; vs "y" ] ] in
  Alcotest.check rel_t "product"
    (rel_of ~arity:3 [ [ vi 1; vs "x"; vs "y" ]; [ vi 2; vs "x"; vs "y" ] ])
    (Relation.product r1 r2)

let test_instance_restrict () =
  let inst =
    Instance.of_facts
      [ ("A", [ [ vi 1 ] ]); ("B", [ [ vi 2 ] ]); ("C", [ [ vi 3 ] ]) ]
  in
  let restricted = Instance.restrict [ "A"; "C"; "missing" ] inst in
  Alcotest.(check (list string)) "restrict keeps named" [ "A"; "C" ]
    (List.sort compare (Instance.relation_names restricted))

let test_freeze_batches () =
  let fresh v = vs ("?" ^ v) in
  let q =
    Cq.make ~head:[ var "x" ]
      ~atoms:
        [
          atom "R" [ var "x"; var "y" ];
          atom "R" [ var "y"; const (vi 5) ];
          atom "S" [ var "y" ];
        ]
      ()
  in
  let frozen, head = Cq.freeze ~fresh q in
  Alcotest.(check bool) "head" true (Tuple.equal head (Tuple.of_list [ vs "?x" ]));
  Alcotest.check rel_t "R facts"
    (rel_of ~arity:2 [ [ vs "?x"; vs "?y" ]; [ vs "?y"; vi 5 ] ])
    (Instance.relation_or_empty frozen ~arity:2 "R");
  Alcotest.check rel_t "S facts"
    (rel_of ~arity:1 [ [ vs "?y" ] ])
    (Instance.relation_or_empty frozen ~arity:1 "S")

let () =
  Alcotest.run "eval"
    [
      ( "planner-edge-cases",
        [
          Alcotest.test_case "unsafe head" `Quick test_unsafe_head;
          Alcotest.test_case "unsafe comparison" `Quick test_unsafe_comparison;
          Alcotest.test_case "constant in head" `Quick test_const_in_head;
          Alcotest.test_case "all-constant head" `Quick test_const_only_head;
          Alcotest.test_case "constant filters" `Quick test_const_atom_no_match;
          Alcotest.test_case "comparison-only" `Quick test_comparison_only;
          Alcotest.test_case "empty boolean" `Quick test_empty_query_boolean;
          Alcotest.test_case "no atoms, const head" `Quick test_empty_atoms_const_head;
          Alcotest.test_case "no atoms, var head" `Quick test_empty_atoms_var_head;
          Alcotest.test_case "repeated var in atom" `Quick test_repeated_var_in_atom;
          Alcotest.test_case "repeated var joined" `Quick test_repeated_var_joined;
          Alcotest.test_case "zero-arity relations" `Quick test_zero_arity;
          Alcotest.test_case "comparison pushdown" `Quick test_comparison_pushdown;
          Alcotest.test_case "arity mismatch raises" `Quick test_arity_mismatch_raises;
        ] );
      ( "caching",
        [
          Alcotest.test_case "plan cache + probes" `Quick test_plan_cache_and_probes;
          Alcotest.test_case "handle cap flush" `Quick test_handle_cap_flush;
          Alcotest.test_case "plan pp" `Quick test_plan_pp;
        ] );
      ( "index-selections",
        [
          Alcotest.test_case "select_column vs scan" `Quick test_select_column_vs_scan;
          Alcotest.test_case "facade" `Quick test_facade;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "append + product" `Quick test_tuple_append_product;
          Alcotest.test_case "restrict" `Quick test_instance_restrict;
          Alcotest.test_case "freeze batches" `Quick test_freeze_batches;
        ] );
    ]
