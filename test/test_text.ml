(* Tests for the text format: lexer, parser, and the shipped cities
   document round-tripping into the same results as the programmatic
   Figures 1-4. *)

open Whynot_relational
open Whynot_text

(* Parser/lexer boundaries now return [Whynot_error.t]; tests report the
   bare message (which keeps the "line N" prefix intact). *)
let emsg = Whynot_error.message

(* dune runtest runs from the test build directory; dune exec from the
   project root — accept either. *)
let data_path file =
  let candidates = [ "../examples/data/" ^ file; "examples/data/" ^ file ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let cities_path = data_path "cities.whynot"

let parse_ok src =
  match Parser.parse src with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse error: %s" (emsg e)

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let tokens_of src =
  match Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.Lexer.token) toks
  | Error e -> Alcotest.failf "lexer error: %s" (emsg e)

let test_lexer_basics () =
  Alcotest.(check bool) "idents and punctuation" true
    (tokens_of "relation R(a, b)"
     = [ Lexer.Ident "relation"; Lexer.Ident "R"; Lexer.Lparen; Lexer.Ident "a";
         Lexer.Comma; Lexer.Ident "b"; Lexer.Rparen; Lexer.Eof ]);
  Alcotest.(check bool) "numbers" true
    (tokens_of "42 -7 3.5 5_000_000"
     = [ Lexer.Number (Value.Int 42); Lexer.Number (Value.Int (-7));
         Lexer.Number (Value.Real 3.5); Lexer.Number (Value.Int 5000000);
         Lexer.Eof ]);
  Alcotest.(check bool) "strings with escapes" true
    (tokens_of {|"a b" "x\"y"|}
     = [ Lexer.String "a b"; Lexer.String "x\"y"; Lexer.Eof ]);
  Alcotest.(check bool) "operators" true
    (tokens_of "<= >= < > = -> := [= |"
     = [ Lexer.Le; Lexer.Ge; Lexer.Lt; Lexer.Gt; Lexer.Eq; Lexer.Arrow;
         Lexer.Define; Lexer.Subsumed; Lexer.Bar; Lexer.Eof ]);
  Alcotest.(check bool) "comments skipped" true
    (tokens_of "a # comment\nb" = [ Lexer.Ident "a"; Lexer.Ident "b"; Lexer.Eof ])

let test_lexer_errors () =
  (match Lexer.tokenize "\"unterminated" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unterminated string accepted");
  match Lexer.tokenize "a $ b" with
  | Error e ->
    let msg = emsg e in
    Alcotest.(check bool) "line number in message" true
      (String.length msg > 0 && String.sub msg 0 4 = "line")
  | Ok _ -> Alcotest.fail "bad character accepted"

(* ------------------------------------------------------------------ *)
(* Parser pieces                                                      *)
(* ------------------------------------------------------------------ *)

let test_parse_relation_fd_ind () =
  let doc =
    parse_ok
      "relation R(a, b)\nrelation S(c)\nfd R: a -> b\nind R[b] <= S[c]"
  in
  Alcotest.(check int) "relations" 2 (List.length doc.Parser.relations);
  (match doc.Parser.fds with
   | [ fd ] ->
     Alcotest.(check bool) "fd resolved by name" true
       (fd.Fd.lhs = [ 1 ] && fd.Fd.rhs = [ 2 ])
   | _ -> Alcotest.fail "one fd expected");
  match doc.Parser.inds with
  | [ ind ] ->
    Alcotest.(check bool) "ind resolved" true
      (ind.Ind.lhs_attrs = [ 2 ] && ind.Ind.rhs_attrs = [ 1 ])
  | _ -> Alcotest.fail "one ind expected"

let test_parse_view_union_and_query () =
  let doc =
    parse_ok
      "relation R(a, b)\n\
       view V(x, y) := R(x, y) | R(x, z), R(z, y)\n\
       query q(x) := V(x, y), x <= 3\n\
       whynot (7)"
  in
  (match doc.Parser.views with
   | [ v ] ->
     Alcotest.(check int) "two disjuncts" 2
       (List.length v.View.body.Ucq.disjuncts)
   | _ -> Alcotest.fail "one view expected");
  (match doc.Parser.query with
   | Some (name, q) ->
     Alcotest.(check string) "query name" "q" name;
     Alcotest.(check int) "one comparison" 1 (List.length q.Cq.comparisons)
   | None -> Alcotest.fail "query expected");
  Alcotest.(check bool) "whynot tuple" true
    (doc.Parser.whynot_tuple = Some [ Value.Int 7 ])

let test_parse_facts_bare_idents () =
  let doc = parse_ok "fact R(Amsterdam, 7, \"two words\")" in
  match doc.Parser.facts with
  | [ (rel, vs) ] ->
    Alcotest.(check string) "rel" "R" rel;
    Alcotest.(check bool) "values" true
      (vs = [ Value.Str "Amsterdam"; Value.Int 7; Value.Str "two words" ])
  | _ -> Alcotest.fail "one fact expected"

let test_parse_ontology_items () =
  let doc =
    parse_ok
      "concept A [= B\n\
       ext A = {\"x\", 3}\n\
       ext B = {}\n\
       axiom A [= not B\n\
       axiom exists P- [= B\n\
       role-axiom P [= Q\n\
       mapping R(x, y) -> A(x)"
  in
  Alcotest.(check int) "subsumption edges" 1 (List.length doc.Parser.concepts);
  Alcotest.(check int) "extensions" 2 (List.length doc.Parser.extensions);
  Alcotest.(check int) "tbox" 3 (List.length doc.Parser.tbox_axioms);
  Alcotest.(check int) "mappings" 1 (List.length doc.Parser.mappings);
  (match doc.Parser.tbox_axioms with
   | [ _; Whynot_dllite.Tbox.Concept_incl (Whynot_dllite.Dl.Exists (Whynot_dllite.Dl.Inv "P"), _); _ ] -> ()
   | _ -> Alcotest.fail "inverse-role existential expected")

let test_parse_errors () =
  parse_err "relation R(a,";
  parse_err "fd R: x -> y"; (* undeclared relation *)
  parse_err "query q(x) := R(x) | S(x)"; (* unions need a view *)
  parse_err "view V(x) :="

(* ------------------------------------------------------------------ *)
(* The shipped cities document                                        *)
(* ------------------------------------------------------------------ *)

let load_cities () =
  match Parser.parse_file cities_path with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "cannot load %s: %s" cities_path (emsg e)

let test_cities_document () =
  let doc = load_cities () in
  let schema =
    match Parser.schema_of doc with
    | Ok s -> s
    | Error e -> Alcotest.failf "schema: %s" (emsg e)
  in
  let inst = Parser.instance_of doc in
  (match Schema.satisfies schema inst with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "constraints: %s" msg);
  (* Same instance as the programmatic Figure 2. *)
  Alcotest.(check bool) "instance matches Whynot_workload.Cities" true
    (Instance.equal inst Whynot_workload.Cities.instance);
  let wn =
    match Parser.whynot_of doc with
    | Ok wn -> wn
    | Error e -> Alcotest.failf "whynot: %s" (emsg e)
  in
  Alcotest.(check int) "4 answers" 4 (Relation.cardinal wn.Whynot_core.Whynot.answers);
  (* Hand ontology gives the same MGEs as the programmatic Figure 3. *)
  (match Parser.hand_ontology_of doc with
   | None -> Alcotest.fail "hand ontology expected"
   | Some o ->
     let mges = Whynot_core.Exhaustive.all_mges_exn o wn in
     Alcotest.(check bool) "E4 found" true
       (List.exists (fun e -> e = [ "European-City"; "US-City" ]) mges));
  (* OBDA spec parses and E1-equivalent is an MGE. *)
  match Parser.obda_spec_of doc with
  | Error e -> Alcotest.failf "obda: %s" (emsg e)
  | Ok None -> Alcotest.fail "OBDA spec expected"
  | Ok (Some spec) ->
    let induced = Whynot_obda.Induced.prepare spec inst in
    (match Whynot_obda.Induced.consistent induced with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "inconsistent: %s" msg);
    let o = Whynot_core.Ontology.of_obda induced in
    Alcotest.(check bool) "E1 is an MGE" true
      (Whynot_core.Exhaustive.check_mge_exn o wn
         [ Whynot_dllite.Dl.Atom "EU-City"; Whynot_dllite.Dl.Atom "NA-City" ])

(* ------------------------------------------------------------------ *)
(* Concept expressions and value lists                                *)
(* ------------------------------------------------------------------ *)

let test_concept_expressions () =
  let doc = load_cities () in
  let parse src =
    match Parser.concept_of_string doc src with
    | Ok c -> c
    | Error e -> Alcotest.failf "concept parse: %s" (emsg e)
  in
  let c = parse {|Cities.name[continent = "Europe", population >= 5] & {"Rome"}|} in
  Alcotest.(check int) "two conjuncts" 2
    (List.length (Whynot_concept.Ls.conjuncts c));
  Alcotest.(check bool) "top" true
    (Whynot_concept.Ls.is_top (parse "top"));
  (* Positional attributes work without declarations. *)
  let c2 = parse "BigCity.1" in
  Alcotest.(check bool) "positional" true
    (Whynot_concept.Ls.equal c2 (Whynot_concept.Ls.proj ~rel:"BigCity" ~attr:1 ()));
  (* Extension evaluates as expected against the parsed instance. *)
  let inst = Parser.instance_of doc in
  (match Whynot_concept.Semantics.extension (parse {|Cities.name[continent = "Europe"]|}) inst with
   | Whynot_concept.Semantics.Fin s ->
     Alcotest.(check bool) "european cities" true
       (Value_set.equal s (Value_set.of_strings [ "Amsterdam"; "Berlin"; "Rome" ]))
   | Whynot_concept.Semantics.All -> Alcotest.fail "finite expected");
  (* Errors. *)
  (match Parser.concept_of_string doc "Cities.nosuch" with
   | Ok _ -> Alcotest.fail "unknown attribute accepted"
   | Error _ -> ());
  match Parser.concept_of_string doc "Cities.name &" with
  | Ok _ -> Alcotest.fail "dangling & accepted"
  | Error _ -> ()

let test_rules () =
  let doc =
    parse_ok
      "fact E(1, 2)\nfact E(2, 3)\n\
       rule T(x, y) := E(x, y)\n\
       rule T(x, y) := T(x, z), E(z, y)\n\
       rule Top(x) := E(x, y), !T(y, x), x >= 1"
  in
  Alcotest.(check int) "three rules" 3 (List.length doc.Parser.rules);
  (match Parser.program_of doc with
   | Ok (Some prog) ->
     Alcotest.(check bool) "recursive" true
       (Whynot_datalog.Program.is_recursive prog);
     let out = Whynot_datalog.Program.eval prog (Parser.instance_of doc) in
     Alcotest.(check int) "closure size" 3
       (Relation.cardinal (Option.get (Instance.relation out "T")));
     Alcotest.(check int) "Top derived" 2
       (Relation.cardinal (Option.get (Instance.relation out "Top")))
   | Ok None -> Alcotest.fail "program expected"
   | Error e -> Alcotest.failf "program: %s" (emsg e));
  (* Recursion through negation is rejected at program-building time. *)
  let bad = parse_ok "rule P(x) := E(x, x), !P(x)" in
  match Parser.program_of bad with
  | Ok _ -> Alcotest.fail "unstratifiable accepted"
  | Error _ -> ()

let test_values_of_string () =
  (match Parser.values_of_string {|"Amsterdam", 7, x|} with
   | Ok vs ->
     Alcotest.(check bool) "three values" true
       (vs = [ Value.Str "Amsterdam"; Value.Int 7; Value.Str "x" ])
   | Error e -> Alcotest.failf "values: %s" (emsg e));
  match Parser.values_of_string "1 2" with
  | Ok _ -> Alcotest.fail "missing comma accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Printer/parser fixpoints and error positions                       *)
(* ------------------------------------------------------------------ *)

module Surface = Whynot_proptest.Surface
module PGen = Whynot_proptest.Gen

(* A fixed generator state keeps these property runs deterministic inside
   the suite; fresh seeds live in bin/proptest_runner. *)
let fixed_rand () = Random.State.make [| 0xC0FFEE |]

let concept_fixpoint =
  QCheck2.Test.make ~name:"concept parse-print-parse fixpoint" ~count:200
    QCheck2.Gen.(
      PGen.schema PGen.No_constraints >>= fun s ->
      PGen.concept s >>= fun c -> return (s, c))
    (fun (s, c) ->
       let doc = parse_ok (Surface.document s Instance.empty) in
       let printed = Surface.concept s c in
       match Parser.concept_of_string doc printed with
       | Error e -> QCheck2.Test.fail_reportf "%s: %s" printed (emsg e)
       | Ok c' ->
         (* Parsing the normal-form rendering is the identity, so a second
            print-parse cycle is a fixpoint. *)
         Whynot_concept.Ls.equal c c'
         && Surface.concept s c' = printed)

let document_fixpoint =
  QCheck2.Test.make ~name:"document parse-print-parse fixpoint" ~count:100
    QCheck2.Gen.(
      PGen.schema_class >>= fun cls ->
      PGen.schema cls >>= fun s ->
      PGen.legal_instance s >>= fun inst -> return (s, inst))
    (fun (s, inst) ->
       let text = Surface.document s inst in
       let doc = parse_ok text in
       match Parser.schema_of doc with
       | Error e -> QCheck2.Test.fail_reportf "schema_of: %s" (emsg e)
       | Ok s' ->
         Surface.document s' (Parser.instance_of doc) = text)

let check_error_line expected = function
  | Ok _ -> Alcotest.failf "expected an error mentioning %S" expected
  | Error e ->
    let msg = emsg e in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%S in %S" expected msg)
      true (contains msg expected)

let test_error_positions () =
  (* Lexer errors point at the offending line... *)
  check_error_line "line 3" (Lexer.tokenize "a b\nc d\n$");
  check_error_line "line 1" (Lexer.tokenize "\"unterminated");
  (* ...and so do parser errors, even mid-document. *)
  check_error_line "line 2" (Parser.parse "relation R(a)\nrelation S(");
  check_error_line "line 3"
    (Parser.parse "relation R(a)\nfact R(1)\nview V(x) :=");
  check_error_line "line 4"
    (Parser.parse "relation R(a, b)\nfact R(1, 2)\n\nfd R: 1 ->")

let test_retail_document () =
  match Parser.parse_file (data_path "retail.whynot") with
  | Error e -> Alcotest.failf "retail document: %s" (emsg e)
  | Ok doc ->
    let wn =
      match Parser.whynot_of doc with
      | Ok wn -> wn
      | Error e -> Alcotest.failf "whynot: %s" (emsg e)
    in
    (match Parser.hand_ontology_of doc with
     | None -> Alcotest.fail "hand ontology expected"
     | Some o ->
       let mges = Whynot_core.Exhaustive.all_mges_exn o wn in
       Alcotest.(check bool) "<Audio, CaliforniaStore> is an MGE" true
         (List.exists
            (fun e -> e = [ "Audio"; "CaliforniaStore" ])
            mges))

let () =
  Alcotest.run "text"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "relation/fd/ind" `Quick test_parse_relation_fd_ind;
          Alcotest.test_case "views/query/whynot" `Quick test_parse_view_union_and_query;
          Alcotest.test_case "facts" `Quick test_parse_facts_bare_idents;
          Alcotest.test_case "ontology items" `Quick test_parse_ontology_items;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "cities-document",
        [ Alcotest.test_case "round trip" `Quick test_cities_document ] );
      ( "retail-document",
        [ Alcotest.test_case "round trip" `Quick test_retail_document ] );
      ( "expressions",
        [
          Alcotest.test_case "concepts" `Quick test_concept_expressions;
          Alcotest.test_case "value lists" `Quick test_values_of_string;
          Alcotest.test_case "datalog rules" `Quick test_rules;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          QCheck_alcotest.to_alcotest ~speed_level:`Quick ~rand:(fixed_rand ())
            concept_fixpoint;
          QCheck_alcotest.to_alcotest ~speed_level:`Quick ~rand:(fixed_rand ())
            document_fixpoint;
        ] );
    ]
