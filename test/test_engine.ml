(* Unit tests for the Whynot.Engine facade: the error paths return
   [Error _] values instead of raising, parallel searches agree with their
   sequential counterparts for every domain count, observability counters
   aggregate the per-domain stripes, and [close] flushes the memo
   registries and bricks the engine.

   The domain count used by the cross-domain tests honours the DOMAINS
   environment variable (as CI sets it), so `DOMAINS=4 dune runtest`
   exercises genuinely parallel runs. *)

module Engine = Whynot.Engine
module Error = Whynot.Error

open Whynot_relational
open Whynot_core
module Ls = Whynot_concept.Ls
module Obs = Whynot_obs.Obs
module Cities = Whynot_workload.Cities

let env_domains =
  match Sys.getenv_opt "DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 2)
  | None -> 2

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let code = function
  | Ok _ -> "ok"
  | Error e -> Error.code e

let with_engine ?schema ?(domains = env_domains) f =
  let engine =
    get (Engine.create ?schema ~domains ~instance:Cities.instance ())
  in
  Fun.protect ~finally:(fun () -> ignore (Engine.close engine)) @@ fun () ->
  f engine

let cities_question engine =
  get
    (Engine.question engine ~query:Cities.two_hop_query
       ~missing:Cities.missing_tuple ())

(* --- error paths --- *)

let test_create_invalid_domains () =
  Alcotest.(check string)
    "domains = 0 rejected" "invalid-config"
    (code (Engine.create ~domains:0 ~instance:Cities.instance ()));
  Alcotest.(check string)
    "domains = -3 rejected" "invalid-config"
    (code (Engine.create ~domains:(-3) ~instance:Cities.instance ()))

let test_question_arity_mismatch () =
  with_engine @@ fun engine ->
  Alcotest.(check string)
    "1 value against a 2-ary head" "invalid-whynot"
    (code
       (Engine.question engine ~query:Cities.two_hop_query
          ~missing:[ Cities.amsterdam ] ()))

let test_question_tuple_is_answer () =
  with_engine @@ fun engine ->
  Alcotest.(check string)
    "an actual answer is not missing" "invalid-whynot"
    (code
       (Engine.question engine ~query:Cities.two_hop_query
          ~missing:[ Cities.amsterdam; Cities.rome ] ()))

let test_schema_ops_need_schema () =
  with_engine @@ fun engine ->
  let wn = cities_question engine in
  Alcotest.(check string)
    "all_mges_schema without a schema" "missing-input"
    (code (Engine.all_mges_schema engine wn))

let test_infinite_ontology_rejected () =
  with_engine @@ fun engine ->
  let wn = cities_question engine in
  let infinite = Ontology.of_instance Cities.instance in
  Alcotest.(check string)
    "all_mges_finite on O_I" "infinite-ontology"
    (code (Engine.all_mges_finite engine infinite wn))

let test_foreign_question_rejected () =
  with_engine @@ fun engine ->
  (* A structurally identical question over a *different* instance value
     must be refused: the engine's memo handles are keyed to its own
     instance. *)
  let other = Instance.add_fact "Extra" [ Value.int 1 ] Cities.instance in
  let wn =
    get
      (Whynot.make ~instance:other ~query:Cities.two_hop_query
         ~missing:Cities.missing_tuple ())
  in
  Alcotest.(check string)
    "question built over another instance" "invalid-config"
    (code (Engine.one_mge engine wn))

(* --- parallel = sequential, across domain counts --- *)

let test_one_mge_matches_sequential () =
  let seq =
    let wn =
      Whynot.make_exn ~instance:Cities.instance ~query:Cities.two_hop_query
        ~missing:Cities.missing_tuple ()
    in
    Incremental.one_mge wn
  in
  List.iter
    (fun domains ->
       with_engine ~domains @@ fun engine ->
       let wn = cities_question engine in
       let par = get (Engine.one_mge engine wn) in
       Alcotest.(check int)
         (Printf.sprintf "length at domains=%d" domains)
         (List.length seq) (List.length par);
       Alcotest.(check bool)
         (Printf.sprintf "concepts equal at domains=%d" domains)
         true
         (List.for_all2 Ls.equal seq par))
    [ 1; env_domains; env_domains + 1 ]

let test_all_mges_matches_sequential () =
  let o = Ontology.of_instance_finite Cities.instance
      (Whynot.constant_pool
         (Whynot.make_exn ~instance:Cities.instance
            ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()))
  in
  let seq =
    Exhaustive.all_mges_exn o
      (Whynot.make_exn ~instance:Cities.instance ~query:Cities.two_hop_query
         ~missing:Cities.missing_tuple ())
  in
  List.iter
    (fun domains ->
       with_engine ~domains @@ fun engine ->
       let wn = cities_question engine in
       let par = get (Engine.all_mges engine wn) in
       Alcotest.(check int)
         (Printf.sprintf "MGE count at domains=%d" domains)
         (List.length seq) (List.length par);
       List.iter2
         (fun e e' ->
            Alcotest.(check bool)
              (Printf.sprintf "equivalent at domains=%d" domains)
              true
              (Explanation.equivalent o e e'))
         seq par;
       Alcotest.(check bool) "an explanation exists" true
         (get (Engine.exists_explanation engine wn));
       match get (Engine.one_mge_exhaustive engine wn) with
       | None -> Alcotest.fail "one_mge_exhaustive found nothing"
       | Some e ->
         Alcotest.(check bool) "witness is an MGE" true
           (List.exists (Explanation.equivalent o e) seq))
    [ 1; env_domains ]

let test_schema_mges_match_sequential () =
  let wn_seq =
    Whynot.make_exn ~schema:Cities.schema ~instance:Cities.instance
      ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()
  in
  let seq = Schema_mge.all_mges_exn `Minimal Cities.schema wn_seq in
  let o = Schema_mge.ontology `Minimal Cities.schema wn_seq in
  with_engine ~schema:Cities.schema @@ fun engine ->
  let wn = cities_question engine in
  let par = get (Engine.all_mges_schema ~fragment:`Minimal engine wn) in
  Alcotest.(check int) "schema MGE count" (List.length seq) (List.length par);
  List.iter2
    (fun e e' ->
       Alcotest.(check bool) "schema MGEs equivalent" true
         (Explanation.equivalent o e e'))
    seq par

let test_check_mge () =
  with_engine @@ fun engine ->
  let wn = cities_question engine in
  let e = get (Engine.one_mge engine wn) in
  Alcotest.(check bool) "one_mge's answer passes check_mge" true
    (get (Engine.check_mge engine wn e))

(* --- observability --- *)

let test_counters_aggregate_across_domains () =
  let domains = max 2 env_domains in
  with_engine ~domains @@ fun engine ->
  let wn = cities_question engine in
  let before =
    List.assoc_opt "parallel.pool.items" (Engine.counters engine)
    |> Option.value ~default:0
  in
  ignore (get (Engine.all_mges engine wn));
  let after =
    List.assoc_opt "parallel.pool.items" (Engine.counters engine)
    |> Option.value ~default:0
  in
  Alcotest.(check bool)
    (Printf.sprintf "pool items counted after a domains=%d run (%d -> %d)"
       domains before after)
    true (after > before)

(* --- shutdown --- *)

let test_close_flushes_and_bricks () =
  let engine =
    get (Engine.create ~domains:env_domains ~instance:Cities.instance ())
  in
  let wn = cities_question engine in
  ignore (get (Engine.one_mge engine wn));
  let flushes0 = Obs.value (Obs.counter "memo.flushes") in
  Alcotest.(check bool) "close succeeds" true
    (Result.is_ok (Engine.close engine));
  let flushes1 = Obs.value (Obs.counter "memo.flushes") in
  Alcotest.(check bool)
    (Printf.sprintf "close flushed the memo registries (%d -> %d)" flushes0
       flushes1)
    true (flushes1 > flushes0);
  Alcotest.(check bool) "is_closed" true (Engine.is_closed engine);
  Alcotest.(check bool) "close is idempotent" true
    (Result.is_ok (Engine.close engine));
  (* Every operation on a closed engine answers uniformly with `Closed. *)
  Alcotest.(check string) "one_mge after close" "closed"
    (code (Engine.one_mge engine wn));
  Alcotest.(check string) "all_mges after close" "closed"
    (code (Engine.all_mges engine wn));
  Alcotest.(check string) "check_mge after close" "closed"
    (code (Engine.check_mge engine wn [ Whynot_concept.Ls.top ]));
  Alcotest.(check string) "exists_explanation after close" "closed"
    (code (Engine.exists_explanation engine wn));
  Alcotest.(check string) "one_mge_exhaustive after close" "closed"
    (code (Engine.one_mge_exhaustive engine wn));
  Alcotest.(check string) "all_mges_schema after close" "closed"
    (code (Engine.all_mges_schema engine wn));
  Alcotest.(check string) "question after close" "closed"
    (code
       (Engine.question engine ~query:Cities.two_hop_query
          ~missing:Cities.missing_tuple ()))

let test_deadline_times_out_and_clears () =
  with_engine @@ fun engine ->
  let wn = cities_question engine in
  Engine.set_deadline engine (Some (Obs.now_s () -. 1.));
  Alcotest.(check string) "expired deadline trips one_mge" "timeout"
    (code (Engine.one_mge engine wn));
  Alcotest.(check string) "expired deadline trips all_mges" "timeout"
    (code (Engine.all_mges engine wn));
  Engine.set_deadline engine None;
  Alcotest.(check bool) "engine stays usable after a timeout" true
    (Result.is_ok (Engine.one_mge engine wn))

let () =
  Alcotest.run "engine"
    [
      ( "errors",
        [
          Alcotest.test_case "create rejects bad domain counts" `Quick
            test_create_invalid_domains;
          Alcotest.test_case "question rejects arity mismatch" `Quick
            test_question_arity_mismatch;
          Alcotest.test_case "question rejects actual answers" `Quick
            test_question_tuple_is_answer;
          Alcotest.test_case "schema ops need a schema" `Quick
            test_schema_ops_need_schema;
          Alcotest.test_case "infinite ontologies rejected" `Quick
            test_infinite_ontology_rejected;
          Alcotest.test_case "foreign questions rejected" `Quick
            test_foreign_question_rejected;
        ] );
      ( "parallel-vs-sequential",
        [
          Alcotest.test_case "one_mge (Algorithm 2)" `Quick
            test_one_mge_matches_sequential;
          Alcotest.test_case "all_mges (Algorithm 1)" `Quick
            test_all_mges_matches_sequential;
          Alcotest.test_case "all_mges_schema" `Quick
            test_schema_mges_match_sequential;
          Alcotest.test_case "check_mge accepts one_mge" `Quick
            test_check_mge;
        ] );
      ( "observability",
        [
          Alcotest.test_case "counters aggregate across domains" `Quick
            test_counters_aggregate_across_domains;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "close flushes and bricks the engine" `Quick
            test_close_flushes_and_bricks;
          Alcotest.test_case "deadlines time out and clear" `Quick
            test_deadline_times_out_and_clears;
        ] );
    ]
