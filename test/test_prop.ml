(* Differential property harness, wired into the alcotest suite.

   Two test groups:

   - "corpus" replays every committed (prop, seed, count) triple from
     test/corpus/*.repro — once-found failures stay fixed for good;
   - "properties" runs every registered property from a fixed seed
     (override with PROPTEST_SEED=N), so the suite is deterministic and
     any failure is reproducible with
       proptest_runner --prop NAME --seed N --count C. *)

module Props = Whynot_proptest.Props
module Corpus = Whynot_proptest.Corpus

let corpus_dir = "corpus"

let seed =
  match Option.bind (Sys.getenv_opt "PROPTEST_SEED") int_of_string_opt with
  | Some n -> n
  | None -> Props.default_seed

let check_run = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let corpus_entries, corpus_errors = Corpus.load_dir corpus_dir

let corpus_tests =
  Alcotest.test_case "corpus files well-formed" `Quick (fun () ->
      match corpus_errors with
      | [] -> ()
      | errors -> Alcotest.fail (String.concat "\n" errors))
  :: List.map
       (fun (e : Corpus.entry) ->
         Alcotest.test_case
           (Printf.sprintf "replay %s seed=%d count=%d" e.Corpus.prop
              e.Corpus.seed e.Corpus.count)
           `Quick
           (fun () ->
             match Props.find e.Corpus.prop with
             | None ->
               Alcotest.fail
                 (Printf.sprintf "unknown property %S in corpus" e.Corpus.prop)
             | Some p ->
               check_run (Props.run ~count:e.Corpus.count ~seed:e.Corpus.seed p)))
       corpus_entries

let property_tests =
  List.map
    (fun (p : Props.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s seed=%d" p.Props.name seed)
        `Quick
        (fun () -> check_run (Props.run ~seed p)))
    Props.all

let () =
  Alcotest.run "prop"
    [ ("corpus", corpus_tests); ("properties", property_tests) ]
