(* Unit tests for the memoised subsumption layer (Subsume_memo):
   hit/miss accounting on the observability counters, independence of
   per-schema handles (a schema with a different constraint set must never
   see another schema's verdicts), hash-consed concept identity, and a
   replay of the pinned FD-selection corpus seeds through the cached
   decider. *)

open Whynot_relational
module Ls = Whynot_concept.Ls
module Semantics = Whynot_concept.Semantics
module Memo = Whynot_concept.Subsume_memo
module Subsume_schema = Whynot_concept.Subsume_schema
module Obs = Whynot_obs.Obs
module Props = Whynot_proptest.Props
module Corpus = Whynot_proptest.Corpus

let sel attr op value = { Ls.attr; op; value }

let instance =
  List.fold_left
    (fun inst (a, b) ->
       Instance.add_fact "R" [ Value.int a; Value.int b ] inst)
    Instance.empty
    [ (1, 5); (1, 7); (2, 5); (3, 9) ]

let pi1 sels = Ls.proj ~rel:"R" ~attr:1 ~sels ()

let counter name = Obs.value (Obs.counter name)

let test_hit_accounting () =
  Memo.clear ();
  let c1 = pi1 [ sel 2 Cmp_op.Eq (Value.int 5) ] in
  let c2 = pi1 [] in
  let calls0 = counter "subsume.inst.calls" in
  let hits0 = counter "subsume.inst.hits" in
  let h = Memo.inst instance in
  let first = Memo.subsumes h c1 c2 in
  Alcotest.(check bool) "verdict" true first;
  Alcotest.(check int) "one call" (calls0 + 1) (counter "subsume.inst.calls");
  Alcotest.(check int) "no hit yet" hits0 (counter "subsume.inst.hits");
  let again = Memo.subsumes h c1 c2 in
  Alcotest.(check bool) "same verdict from cache" first again;
  Alcotest.(check int) "two calls" (calls0 + 2) (counter "subsume.inst.calls");
  Alcotest.(check int) "one hit" (hits0 + 1) (counter "subsume.inst.hits");
  (* The handle is interned per physical instance, so a fresh [Memo.inst]
     of the same value reuses the same cache. *)
  let _ = Memo.subsumes (Memo.inst instance) c1 c2 in
  Alcotest.(check int) "interned handle hits too" (hits0 + 2)
    (counter "subsume.inst.hits")

let test_extension_agrees () =
  Memo.clear ();
  let h = Memo.inst instance in
  List.iter
    (fun c ->
       Alcotest.(check bool)
         (Printf.sprintf "extension of %s" (Ls.to_string c))
         true
         (Semantics.ext_equal (Memo.extension h c)
            (Semantics.extension c instance)))
    [
      Ls.top;
      pi1 [];
      pi1 [ sel 2 Cmp_op.Gt (Value.int 6) ];
      Ls.meet (pi1 []) (Ls.nominal (Value.int 1));
    ]

(* C1 = pi_1(sigma_{2=5} R) ⊓ pi_1(sigma_{2=7} R) is unsatisfiable under
   the FD R: 1 -> 2 (one key, two values), hence subsumed by anything;
   without constraints the witness x with facts (x,5), (x,7) refutes the
   subsumption. Two physically distinct schemas must therefore produce
   different cached verdicts for the same hash-consed concept pair — a
   shared (or stale) memo table would be caught immediately. *)
let test_schema_handles_independent () =
  Memo.clear ();
  let decls = [ { Schema.name = "R"; attrs = [ "a"; "b" ] } ] in
  let fd_schema =
    Schema.make_exn ~fds:[ Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 2 ] ] decls
  in
  let plain_schema = Schema.make_exn decls in
  let c1 =
    Ls.meet
      (pi1 [ sel 2 Cmp_op.Eq (Value.int 5) ])
      (pi1 [ sel 2 Cmp_op.Eq (Value.int 7) ])
  in
  let c2 = pi1 [ sel 2 Cmp_op.Eq (Value.int 9) ] in
  let h_fd = Memo.schema fd_schema in
  let h_plain = Memo.schema plain_schema in
  Alcotest.(check bool)
    "constraint classes differ" true
    (Memo.constraint_class h_fd <> Memo.constraint_class h_plain);
  (* Ask through the cache twice per schema, interleaved, and compare each
     answer with the uncached oracle. *)
  List.iter
    (fun (label, h, s) ->
       let oracle = Subsume_schema.decide s c1 c2 in
       Alcotest.(check bool)
         (label ^ ": cached = oracle") true
         (Memo.decide h c1 c2 = oracle);
       Alcotest.(check bool)
         (label ^ ": replay = oracle") true
         (Memo.decide h c1 c2 = oracle))
    [
      ("fd", h_fd, fd_schema);
      ("plain", h_plain, plain_schema);
      ("fd again", h_fd, fd_schema);
    ];
  Alcotest.(check bool)
    "FD changes the verdict" true
    (Memo.decide h_fd c1 c2 <> Memo.decide h_plain c1 c2)

let test_hash_consed_ids () =
  let c1 = Ls.meet (pi1 []) (Ls.nominal (Value.int 1)) in
  let c2 = Ls.meet (Ls.nominal (Value.int 1)) (pi1 []) in
  let c3 = Ls.meet (pi1 []) (Ls.nominal (Value.int 2)) in
  Alcotest.(check bool) "normalised equals share an id" true
    (Ls.id c1 = Ls.id c2);
  Alcotest.(check bool) "equal iff same id" true (Ls.equal c1 c2);
  Alcotest.(check bool) "distinct concepts, distinct ids" true
    (Ls.id c1 <> Ls.id c3);
  Alcotest.(check bool) "hash-consed values are shared" true (c1 == c2)

(* The pinned FD-selection seeds once exposed an unsound Fds_only verdict;
   replay them through the cached decider as well, via the differential
   property that compares Subsume_memo.decide against the uncached
   oracle on every generated case. *)
let test_corpus_replay_cached () =
  let entries =
    match Corpus.load_file "corpus/subsume-fd-selections.repro" with
    | Ok entries -> entries
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check bool) "corpus file has entries" true (entries <> []);
  let prop =
    match Props.find "memo/subsume-schema-cached-vs-uncached" with
    | Some p -> p
    | None -> Alcotest.fail "memo property not registered"
  in
  List.iter
    (fun (e : Corpus.entry) ->
       match Props.run ~count:e.Corpus.count ~seed:e.Corpus.seed prop with
       | Ok () -> ()
       | Error msg -> Alcotest.fail msg)
    entries

let () =
  Alcotest.run "memo"
    [
      ( "subsume_memo",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_hit_accounting;
          Alcotest.test_case "cached extensions agree" `Quick
            test_extension_agrees;
          Alcotest.test_case "per-schema handles are independent" `Quick
            test_schema_handles_independent;
          Alcotest.test_case "hash-consed concept ids" `Quick
            test_hash_consed_ids;
          Alcotest.test_case "corpus replay through the cached decider"
            `Quick test_corpus_replay_cached;
        ] );
    ]
