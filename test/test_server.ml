(* Integration tests for the wire server: real loopback TCP connections
   against an in-process [Whynot_server.Server], covering concurrent
   sessions, per-request deadlines, load shedding, malformed input,
   per-connection request caps, idle-TTL eviction, and graceful drain
   (both the API path and the SIGTERM path). *)

module Server = Whynot_server.Server
module Json = Whynot.Json

(* --- a tiny blocking line client --- *)

type client = { fd : Unix.file_descr; rdbuf : Buffer.t }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; rdbuf = Buffer.create 512 }

let disconnect c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let send_raw c line =
  let data = Bytes.of_string line in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write c.fd data !off (len - !off)
  done

let recv_line c =
  let chunk = Bytes.create 4096 in
  let rec next () =
    let s = Buffer.contents c.rdbuf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.rdbuf;
      Buffer.add_substring c.rdbuf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
    | None -> (
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes c.rdbuf chunk 0 n;
        next ()
      | exception Unix.Unix_error (ECONNRESET, _, _) -> None)
  in
  next ()

(* Send one request line, return the decoded reply. *)
let rpc c line =
  send_raw c (line ^ "\n");
  match recv_line c with
  | None -> Alcotest.fail ("connection closed while awaiting a reply to " ^ line)
  | Some reply -> (
    match Json.of_string reply with
    | Ok j -> j
    | Error _ -> Alcotest.failf "unparsable reply %S" reply)

let error_code j =
  match Json.member "error" j with
  | Some e -> Option.bind (Json.member "code" e) Json.to_string_opt
  | None -> None

let result_of j = Json.member "result" j

let check_ok what j =
  match result_of j with
  | Some r -> r
  | None -> Alcotest.failf "%s: expected a result, got %s" what (Json.to_string j)

let check_error what expected j =
  Alcotest.(check (option string)) what (Some expected) (error_code j)

let with_server ?(cfg = Server.default_config) f =
  let cfg = { cfg with port = 0; access_log = false } in
  match Server.start cfg with
  | Error msg -> Alcotest.failf "server failed to start: %s" msg
  | Ok server ->
    Fun.protect
      ~finally:(fun () ->
        Server.initiate_shutdown server;
        Server.wait server)
      (fun () -> f server)

(* --- the tests --- *)

let test_concurrent_sessions () =
  with_server @@ fun server ->
  let port = Server.port server in
  let failure = Atomic.make "" in
  let worker workload session () =
    try
      let c = connect port in
      Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
      let r =
        check_ok "create"
          (rpc c
             (Printf.sprintf
                "{\"op\":\"create\",\"session\":\"%s\",\"workload\":\"%s\"}"
                session workload))
      in
      (match Json.member "has_query" r with
       | Some (Json.Bool true) -> ()
       | _ -> failwith "workload session should carry a query");
      for _ = 1 to 3 do
        let r =
          check_ok "one_mge"
            (rpc c
               (Printf.sprintf "{\"op\":\"one_mge\",\"session\":\"%s\"}" session))
        in
        match Json.member "mge" r with
        | Some (Json.List (_ :: _)) -> ()
        | _ -> failwith "one_mge returned no concepts"
      done;
      ignore
        (check_ok "close"
           (rpc c (Printf.sprintf "{\"op\":\"close\",\"session\":\"%s\"}" session)))
    with e -> Atomic.set failure (session ^ ": " ^ Printexc.to_string e)
  in
  let threads =
    [
      Thread.create (worker "cities" "alpha") ();
      Thread.create (worker "retail" "beta") ();
      Thread.create (worker "cities" "gamma") ();
    ]
  in
  List.iter Thread.join threads;
  Alcotest.(check string) "all concurrent clients succeeded" "" (Atomic.get failure);
  Alcotest.(check int) "all sessions closed" 0 (Server.session_count server)

let test_deadline_timeout_connection_survives () =
  with_server @@ fun server ->
  let c = connect (Server.port server) in
  Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
  ignore
    (check_ok "create"
       (rpc c "{\"op\":\"create\",\"session\":\"s\",\"workload\":\"cities\"}"));
  check_error "expired deadline times out" "timeout"
    (rpc c "{\"op\":\"one_mge\",\"session\":\"s\",\"deadline_ms\":0}");
  (* Same connection, same session: both are still fully usable. *)
  let r =
    check_ok "question after timeout"
      (rpc c "{\"op\":\"question\",\"session\":\"s\"}")
  in
  (match Json.member "answers" r with
   | Some (Json.Int 4) -> ()
   | other ->
     Alcotest.failf "expected 4 answers, got %s"
       (match other with Some j -> Json.to_string j | None -> "nothing"));
  ignore (check_ok "one_mge after timeout" (rpc c "{\"op\":\"one_mge\",\"session\":\"s\"}"))

let test_overload_sheds () =
  with_server
    ~cfg:{ Server.default_config with max_inflight = 1; debug_ops = true }
  @@ fun server ->
  let port = Server.port server in
  let sleeper = connect port in
  let blocked = connect port in
  Fun.protect
    ~finally:(fun () -> disconnect sleeper; disconnect blocked)
  @@ fun () ->
  (* Occupy the single execution slot... *)
  send_raw sleeper "{\"op\":\"debug_sleep\",\"ms\":600}\n";
  Thread.delay 0.15;
  (* ...so a concurrent request is shed rather than queued. *)
  check_error "second request is shed" "overloaded"
    (rpc blocked "{\"op\":\"ping\"}");
  (match recv_line sleeper with
   | Some _ -> ()
   | None -> Alcotest.fail "sleeper lost its connection");
  (* Slot free again: the shed client retries successfully. *)
  ignore (check_ok "retry after shed" (rpc blocked "{\"op\":\"ping\"}"))

let test_malformed_input_keeps_serving () =
  with_server @@ fun server ->
  let c = connect (Server.port server) in
  Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
  check_error "garbage line" "parse" (rpc c "this is not json");
  check_error "non-object" "parse" (rpc c "[1,2,3]");
  check_error "missing op" "parse" (rpc c "{\"session\":\"s\"}");
  check_error "non-string op" "parse" (rpc c "{\"op\":42}");
  check_error "unknown op" "unknown-op" (rpc c "{\"op\":\"frobnicate\"}");
  check_error "unknown session" "unknown-session"
    (rpc c "{\"op\":\"one_mge\",\"session\":\"nope\"}");
  ignore (check_ok "server still serves" (rpc c "{\"op\":\"ping\"}"))

let test_request_cap_closes_connection () =
  with_server
    ~cfg:{ Server.default_config with max_requests_per_conn = 3 }
  @@ fun server ->
  let c = connect (Server.port server) in
  Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
  for i = 1 to 3 do
    ignore (check_ok (Printf.sprintf "ping %d within budget" i) (rpc c "{\"op\":\"ping\"}"))
  done;
  check_error "budget exhausted" "request-cap" (rpc c "{\"op\":\"ping\"}");
  Alcotest.(check bool) "connection closed after the cap" true
    (recv_line c = None);
  (* A fresh connection gets a fresh budget. *)
  let c2 = connect (Server.port server) in
  Fun.protect ~finally:(fun () -> disconnect c2) @@ fun () ->
  ignore (check_ok "fresh connection serves again" (rpc c2 "{\"op\":\"ping\"}"))

let test_idle_ttl_evicts () =
  with_server
    ~cfg:
      { Server.default_config with
        session_ttl_ms = 150; sweep_interval_ms = 50 }
  @@ fun server ->
  let c = connect (Server.port server) in
  Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
  ignore
    (check_ok "create"
       (rpc c "{\"op\":\"create\",\"session\":\"idle\",\"workload\":\"cities\"}"));
  ignore (check_ok "fresh session serves" (rpc c "{\"op\":\"question\",\"session\":\"idle\"}"));
  (* Wait out the TTL plus a couple of sweep intervals. *)
  let rec await_eviction deadline =
    if Server.session_count server = 0 then ()
    else if Whynot_obs.Obs.now_s () > deadline then
      Alcotest.fail "session was not swept within 2s"
    else begin
      Thread.delay 0.05;
      await_eviction deadline
    end
  in
  await_eviction (Whynot_obs.Obs.now_s () +. 2.);
  check_error "evicted session is gone" "unknown-session"
    (rpc c "{\"op\":\"question\",\"session\":\"idle\"}");
  (* The name is free again. *)
  ignore
    (check_ok "recreate after eviction"
       (rpc c "{\"op\":\"create\",\"session\":\"idle\",\"workload\":\"cities\"}"))

let test_graceful_drain () =
  let cfg = { Server.default_config with port = 0; access_log = false } in
  let server =
    match Server.start cfg with
    | Ok s -> s
    | Error msg -> Alcotest.failf "server failed to start: %s" msg
  in
  let port = Server.port server in
  let c = connect port in
  ignore
    (check_ok "create"
       (rpc c "{\"op\":\"create\",\"session\":\"d\",\"workload\":\"cities\"}"));
  Alcotest.(check int) "one live session" 1 (Server.session_count server);
  Server.initiate_shutdown server;
  Server.wait server;
  Alcotest.(check int) "drain closed every session" 0 (Server.session_count server);
  disconnect c;
  (* The listener is gone: new connections are refused. *)
  (match connect port with
   | c2 ->
     (* A race with socket teardown may accept then reset; reads must fail. *)
     let alive = try send_raw c2 "{\"op\":\"ping\"}\n"; recv_line c2 <> None
       with Unix.Unix_error (_, _, _) -> false
     in
     disconnect c2;
     Alcotest.(check bool) "stopped server serves nothing" false alive
   | exception Unix.Unix_error (ECONNREFUSED, _, _) -> ())

let test_sigterm_drains () =
  let cfg = { Server.default_config with port = 0; access_log = false } in
  let server =
    match Server.start cfg with
    | Ok s -> s
    | Error msg -> Alcotest.failf "server failed to start: %s" msg
  in
  Server.install_signal_handlers server;
  let c = connect (Server.port server) in
  ignore (check_ok "ping before SIGTERM" (rpc c "{\"op\":\"ping\"}"));
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  (* The handler only flips the shutdown flag; wait must then drain. *)
  Server.wait server;
  Alcotest.(check int) "SIGTERM drained the server" 0 (Server.session_count server);
  disconnect c

(* --- protocol unit checks (no sockets) --- *)

module Protocol = Whynot_server.Protocol

let test_protocol_envelopes () =
  let req =
    match Protocol.parse_request "{\"op\":\"ping\",\"id\":7,\"session\":\"s\"}" with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "op parsed" "ping" req.Protocol.op;
  Alcotest.(check (option string)) "session parsed" (Some "s") req.Protocol.session;
  let ok = Protocol.ok_line req (Json.Obj [ ("pong", Json.Bool true) ]) in
  (match Json.of_string ok with
   | Ok j ->
     Alcotest.(check (option string)) "version header" None (error_code j);
     (match Json.member "schema_version" j with
      | Some (Json.Int 3) -> ()
      | _ -> Alcotest.fail "ok envelope lacks schema_version 3");
     (match Json.member "id" j with
      | Some (Json.Int 7) -> ()
      | _ -> Alcotest.fail "ok envelope must echo the id")
   | Error _ -> Alcotest.fail "ok envelope must be valid JSON");
  let err = Protocol.error_line ~code:"overloaded" ~message:"m" () in
  match Json.of_string err with
  | Ok j -> Alcotest.(check (option string)) "error code" (Some "overloaded") (error_code j)
  | Error _ -> Alcotest.fail "error envelope must be valid JSON"

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [ Alcotest.test_case "envelopes" `Quick test_protocol_envelopes ] );
      ( "sessions",
        [
          Alcotest.test_case "concurrent clients, independent sessions" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "idle TTL evicts" `Quick test_idle_ttl_evicts;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "deadline times out, connection survives" `Quick
            test_deadline_timeout_connection_survives;
          Alcotest.test_case "overload sheds" `Quick test_overload_sheds;
          Alcotest.test_case "malformed input keeps serving" `Quick
            test_malformed_input_keeps_serving;
          Alcotest.test_case "request cap closes the connection" `Quick
            test_request_cap_closes_connection;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
          Alcotest.test_case "SIGTERM drains" `Quick test_sigterm_drains;
        ] );
    ]
