(* Tests for the why-not core: Examples 3.4 (hand ontology), 4.5 (OBDA),
   4.9 (derived ontologies), Algorithms 1 and 2, CHECK-MGE, and the §6
   variations. *)

open Whynot_relational
open Whynot_core

let v_str = Value.str
let v_int = Value.int

module Cities = Whynot_workload.Cities

let whynot_cities =
  Whynot.make_exn ~schema:Cities.schema ~instance:Cities.instance
    ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()

(* ------------------------------------------------------------------ *)
(* Example 3.4: the hand ontology of Figure 3                          *)
(* ------------------------------------------------------------------ *)

let hand_ontology =
  Ontology.of_extensions ~name:"figure3"
    ~subsumptions:Cities.hand_hasse
    ~extensions:
      (List.map
         (fun (c, ext) -> (c, Value_set.of_strings ext))
         Cities.hand_extensions)

let test_example_3_4_explanations () =
  let o = hand_ontology and wn = whynot_cities in
  let is_expl = Explanation.is_explanation o wn in
  (* E1..E4 of Example 3.4 are all explanations. *)
  Alcotest.(check bool) "E1" true (is_expl [ "Dutch-City"; "East-Coast-City" ]);
  Alcotest.(check bool) "E2" true (is_expl [ "Dutch-City"; "US-City" ]);
  Alcotest.(check bool) "E3" true (is_expl [ "European-City"; "East-Coast-City" ]);
  Alcotest.(check bool) "E4" true (is_expl [ "European-City"; "US-City" ]);
  (* Other combinations are not: they intersect q(I). *)
  Alcotest.(check bool) "City x City not" false (is_expl [ "City"; "City" ]);
  Alcotest.(check bool) "European x City not" false (is_expl [ "European-City"; "City" ]);
  (* Generality order: E4 > E2 > E1 and E4 > E3 > E1. *)
  let lt = Explanation.strictly_less_general o in
  Alcotest.(check bool) "E1 < E2" true
    (lt [ "Dutch-City"; "East-Coast-City" ] [ "Dutch-City"; "US-City" ]);
  Alcotest.(check bool) "E2 < E4" true
    (lt [ "Dutch-City"; "US-City" ] [ "European-City"; "US-City" ]);
  Alcotest.(check bool) "E4 not < E1" false
    (lt [ "European-City"; "US-City" ] [ "Dutch-City"; "East-Coast-City" ])

let test_example_3_4_mge () =
  let o = hand_ontology and wn = whynot_cities in
  (* E4 = <European-City, US-City> is the most general of E1..E4; the full
     exhaustive search additionally finds <City, East-Coast-City>, which the
     paper's example does not list (its product also misses q(I), and City
     cannot be upgraded further) — see EXPERIMENTS.md. *)
  let mges = Exhaustive.all_mges_exn o wn in
  Alcotest.(check int) "exactly two MGEs" 2 (List.length mges);
  Alcotest.(check bool) "E4 among them" true
    (List.exists (fun e -> e = [ "European-City"; "US-City" ]) mges);
  Alcotest.(check bool) "<City, East-Coast-City> among them" true
    (List.exists (fun e -> e = [ "City"; "East-Coast-City" ]) mges);
  Alcotest.(check bool) "check_mge accepts E4" true
    (Exhaustive.check_mge_exn o wn [ "European-City"; "US-City" ]);
  Alcotest.(check bool) "check_mge rejects E1" false
    (Exhaustive.check_mge_exn o wn [ "Dutch-City"; "East-Coast-City" ]);
  Alcotest.(check bool) "exists" true (Exhaustive.exists_explanation_exn o wn);
  (match Exhaustive.one_mge_exn o wn with
   | Some e -> Alcotest.(check bool) "one_mge is most general" true
                 (Exhaustive.check_mge_exn o wn e)
   | None -> Alcotest.fail "one_mge found nothing");
  (* Pruned and unpruned agree. *)
  let unpruned = Exhaustive.all_mges_unpruned_exn o wn in
  Alcotest.(check int) "unpruned agrees" 2 (List.length unpruned)

let test_consistency_fig3 () =
  let probes = Value_set.elements (Whynot.constant_pool whynot_cities) in
  Alcotest.(check int) "instance consistent with figure 3 ontology" 0
    (List.length (Ontology.consistency_violations_exn hand_ontology probes))

(* ------------------------------------------------------------------ *)
(* Example 4.5: the OBDA-induced ontology of Figure 4                  *)
(* ------------------------------------------------------------------ *)

let obda_ontology =
  Ontology.of_obda (Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance)

let a name = Whynot_dllite.Dl.Atom name

let test_example_4_5_mge () =
  let o = obda_ontology and wn = whynot_cities in
  let is_expl = Explanation.is_explanation o wn in
  (* E1..E4 of Example 4.5. *)
  Alcotest.(check bool) "E1" true (is_expl [ a "EU-City"; a "N.A.-City" ]);
  Alcotest.(check bool) "E2" true (is_expl [ a "Dutch-City"; a "N.A.-City" ]);
  Alcotest.(check bool) "E3" true (is_expl [ a "EU-City"; a "US-City" ]);
  Alcotest.(check bool) "E4" true (is_expl [ a "Dutch-City"; a "US-City" ]);
  (* "Among the four explanations above, E1 is the most general." *)
  Alcotest.(check bool) "E1 is most general" true
    (Exhaustive.check_mge_exn o wn [ a "EU-City"; a "N.A.-City" ]);
  Alcotest.(check bool) "E4 is not" false
    (Exhaustive.check_mge_exn o wn [ a "Dutch-City"; a "US-City" ]);
  let mges = Exhaustive.all_mges_exn o wn in
  Alcotest.(check bool) "E1 among all MGEs" true
    (List.exists
       (fun e -> Explanation.equivalent o e [ a "EU-City"; a "N.A.-City" ])
       mges)

(* ------------------------------------------------------------------ *)
(* §5.2: Incremental search w.r.t. O_I (Example 4.9 flavour)           *)
(* ------------------------------------------------------------------ *)

let test_trivial_explanation () =
  let o = Ontology.of_instance Cities.instance in
  let e = Incremental.trivial_explanation whynot_cities in
  Alcotest.(check bool) "nominals explain" true
    (Explanation.is_explanation o whynot_cities e)

let test_incremental_selection_free () =
  let wn = whynot_cities in
  let o = Ontology.of_instance Cities.instance in
  let e = Incremental.one_mge ~variant:Incremental.Selection_free wn in
  Alcotest.(check bool) "is explanation" true
    (Explanation.is_explanation o wn e);
  Alcotest.(check bool) "check_mge agrees" true
    (Incremental.check_mge ~variant:Incremental.Selection_free wn e);
  (* The trivial explanation is strictly less general. *)
  Alcotest.(check bool) "beats nominals" true
    (Explanation.less_general o (Incremental.trivial_explanation wn) e)

let test_incremental_with_selections () =
  let wn = whynot_cities in
  let o = Ontology.of_instance Cities.instance in
  let e = Incremental.one_mge ~variant:Incremental.With_selections wn in
  Alcotest.(check bool) "is explanation" true
    (Explanation.is_explanation o wn e);
  Alcotest.(check bool) "check_mge (sigma) agrees" true
    (Incremental.check_mge ~variant:Incremental.With_selections wn e);
  (* With selections the result is at least as general as some selection-free
     MGE is — both are MGEs in their own concept space; here we just check
     the selection-free result is not strictly more general. *)
  let esf = Incremental.one_mge ~variant:Incremental.Selection_free wn in
  Alcotest.(check bool) "selection-free not strictly above" false
    (Explanation.strictly_less_general o e esf)

let test_example_4_9_e2_is_mge_wrt_oi () =
  (* E2 = <pi_name(sigma_continent=Europe(Cities)),
           pi_name(sigma_continent=N.America(Cities))> is a most-general
     explanation w.r.t. O_I (Example 4.9). *)
  let open Whynot_concept in
  let sel attr op value = { Ls.attr; op; value } in
  let e2 =
    [
      Ls.proj ~rel:"Cities" ~attr:1
        ~sels:[ sel 4 Cmp_op.Eq (v_str "Europe") ] ();
      Ls.proj ~rel:"Cities" ~attr:1
        ~sels:[ sel 4 Cmp_op.Eq (v_str "N.America") ] ();
    ]
  in
  let o = Ontology.of_instance Cities.instance in
  Alcotest.(check bool) "E2 is explanation" true
    (Explanation.is_explanation o whynot_cities e2);
  (* Example 4.9 claims E2 is an MGE w.r.t. O_I. Over the FULL concept
     language L_S this is not the case (see EXPERIMENTS.md): the
     definitions make O_I's concept set all of L_S, and strictly more
     general explanations exist. Two concrete witnesses:

     (a) selection-free: "cities that are train destinations",
         pi_name(Cities) n pi_city_to(TC) n pi_city_to(Reachable), has
         extension {A, B, R, SF, SC, Kyoto} — a strict superset of the
         European cities — and excludes New York, so the pair still
         misses q(I);
     (b) with order selections: continent in [Asia, Europe] has extension
         {A, B, R, Tokyo, Kyoto}, same argument. *)
  Alcotest.(check bool) "E2 is not an MGE even selection-free" false
    (Incremental.check_mge ~variant:Incremental.Selection_free whynot_cities e2);
  Alcotest.(check bool) "E2 is not an MGE under full L_S" false
    (Incremental.check_mge ~variant:Incremental.With_selections whynot_cities e2);
  let destination_cities =
    Ls.meet_all
      [
        Ls.proj ~rel:"Cities" ~attr:1 ();
        Ls.proj ~rel:"Train-Connections" ~attr:2 ();
        Ls.proj ~rel:"Reachable" ~attr:2 ();
      ]
  in
  let e2a = [ destination_cities; List.nth e2 1 ] in
  Alcotest.(check bool) "witness (a) beats E2" true
    (Explanation.is_explanation o whynot_cities e2a
     && Explanation.strictly_less_general o e2 e2a);
  let interval_first =
    Ls.proj ~rel:"Cities" ~attr:1
      ~sels:[ sel 4 Cmp_op.Ge (v_str "Asia"); sel 4 Cmp_op.Le (v_str "Europe") ]
      ()
  in
  let e2b = [ interval_first; List.nth e2 1 ] in
  Alcotest.(check bool) "witness (b) beats E2" true
    (Explanation.is_explanation o whynot_cities e2b
     && Explanation.strictly_less_general o e2 e2b);
  (* E6 = <{Amsterdam}, {New York}> is an explanation but not an MGE. *)
  let e6 = Incremental.trivial_explanation whynot_cities in
  Alcotest.(check bool) "E6 not MGE" false
    (Incremental.check_mge ~variant:Incremental.With_selections whynot_cities e6)

(* ------------------------------------------------------------------ *)
(* §5.3: MGEs w.r.t. O_S                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_mge_minimal () =
  let wn = whynot_cities in
  (match Schema_mge.one_mge `Minimal Cities.schema wn with
   | None -> Alcotest.fail "an explanation always exists (nominals)"
   | Some e ->
     let o = Schema_mge.ontology `Minimal Cities.schema wn in
     Alcotest.(check bool) "is explanation" true
       (Explanation.is_explanation o wn e);
     Alcotest.(check bool) "is most general in O_S[K]-min" true
       (Exhaustive.check_mge_exn o wn e))

(* ------------------------------------------------------------------ *)
(* §6: cardinality, shortest, strong                                  *)
(* ------------------------------------------------------------------ *)

let test_cardinality () =
  let o = hand_ontology and wn = whynot_cities in
  (match Cardinality.maximal_exn o wn with
   | None -> Alcotest.fail "explanation exists"
   | Some e ->
     let d = Option.get (Cardinality.degree o wn e) in
     (* The card-maximal explanation is <City, East-Coast-City> with degree
        8 + 1 = 9, beating E4 = <European-City, US-City> (3 + 3 = 6): the
        two preference orders genuinely diverge (§6). *)
     Alcotest.(check int) "max degree 9" 9 d;
     (* Greedy achieves the optimum on this easy instance. *)
     (match Cardinality.greedy_exn o wn with
      | None -> Alcotest.fail "greedy found nothing"
      | Some g ->
        Alcotest.(check int) "greedy degree" 9
          (Option.get (Cardinality.degree o wn g))));
  let e4_degree =
    Option.get (Cardinality.degree o wn [ "European-City"; "US-City" ])
  in
  Alcotest.(check int) "E4 degree" 6 e4_degree

let test_shortest () =
  let wn = whynot_cities in
  let e = Shortest.irredundant_mge wn in
  List.iter
    (fun c ->
       Alcotest.(check bool) "components irredundant" true
         (Whynot_concept.Irredundant.is_irredundant Cities.instance c))
    e;
  Alcotest.(check bool) "length positive" true (Shortest.length e > 0)

let test_minimise_concept_exact () =
  let open Whynot_concept in
  (* Over the tiny instance R={1,2}, S={1}: pi_1(R) n pi_1(S) has extension
     {1} = pi_1(S): the exact minimiser finds the shorter equivalent. *)
  let inst =
    Instance.of_facts
      [ ("R", [ [ v_int 1 ]; [ v_int 2 ] ]); ("S", [ [ v_int 1 ] ]) ]
  in
  let c =
    Ls.meet (Ls.proj ~rel:"R" ~attr:1 ()) (Ls.proj ~rel:"S" ~attr:1 ())
  in
  let m = Shortest.minimise_concept_exact inst c in
  Alcotest.(check bool) "equivalent" true (Subsume_inst.equivalent inst c m);
  Alcotest.(check bool) "shorter or equal" true (Ls.size m <= Ls.size c);
  Alcotest.(check int) "single conjunct" 1 (List.length (Ls.conjuncts m))

let test_strong () =
  let open Whynot_concept in
  let wn = whynot_cities in
  let sel attr op value = { Ls.attr; op; value } in
  (* An ordinary explanation that is NOT strong: there are legal instances
     where some European city connects to some N.American city in two
     hops. *)
  let e2 =
    [
      Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 4 Cmp_op.Eq (v_str "Europe") ] ();
      Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 4 Cmp_op.Eq (v_str "N.America") ] ();
    ]
  in
  Alcotest.(check bool) "E2 explanation but not strong" true
    (Strong.is_explanation_but_not_strong Cities.schema wn e2);
  (* A strong explanation on a constraint-free schema: q only produces
     R-pairs, so concepts from S cannot be hit at the first position...
     Construct: q(x,y) <- R(x,y); explanation <pi_1(S), top> is strong when
     ext(pi_1(S)) can never meet pi_1(R)?? It can (same constants), so that
     is not strong either. A genuinely strong one uses an unsatisfiable
     combination: <pi_1(S) n {42}, {1}> against answers... Simplest strong
     case: concept with selection contradicting the query's comparison. *)
  let bare =
    Schema.make_exn
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a" ] } ]
  in
  let q =
    Cq.make ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:[ { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Gt; value = v_int 10 } ]
      ()
  in
  let inst =
    Instance.of_facts
      [ ("R", [ [ v_int 20; v_int 1 ]; [ v_int 5; v_int 7 ] ]) ]
  in
  let wn2 =
    Whynot.make_exn ~schema:bare ~instance:inst ~query:q
      ~missing:[ v_int 5; v_int 1 ] ()
  in
  (* Any pair whose first component forces <= 10 can never be an answer. *)
  let e_strong =
    [ Ls.proj ~rel:"R" ~attr:1 ~sels:[ sel 1 Cmp_op.Le (v_int 10) ] (); Ls.top ]
  in
  Alcotest.(check bool) "explanation" true
    (Explanation.is_explanation (Ontology.of_instance inst) wn2 e_strong);
  Alcotest.(check bool) "strong" true
    (Strong.decide_wrt_schema bare wn2 e_strong = Strong.Strong);
  let e_weak = [ Ls.proj ~rel:"R" ~attr:1 (); Ls.nominal (v_int 99) ] in
  Alcotest.(check bool) "weak is not strong" true
    (Strong.decide_wrt_schema bare wn2 e_weak = Strong.Not_strong)

(* ------------------------------------------------------------------ *)
(* Why-not instance validation                                        *)
(* ------------------------------------------------------------------ *)

let test_whynot_validation () =
  (match
     Whynot.make ~instance:Cities.instance ~query:Cities.two_hop_query
       ~missing:[ v_str "Amsterdam"; v_str "Rome" ] ()
   with
   | Ok _ -> Alcotest.fail "tuple in answers accepted"
   | Error _ -> ());
  (match
     Whynot.make ~instance:Cities.instance ~query:Cities.two_hop_query
       ~missing:[ v_str "Amsterdam" ] ()
   with
   | Ok _ -> Alcotest.fail "wrong arity accepted"
   | Error _ -> ());
  (* 8 city names + 8 populations + 5 countries + 3 continents; the missing
     tuple's constants are already in the active domain. *)
  Alcotest.(check int) "constant pool size" 24
    (Value_set.cardinal (Whynot.constant_pool whynot_cities))

(* ------------------------------------------------------------------ *)
(* SET COVER reduction (Theorem 5.1, Prop 6.4)                        *)
(* ------------------------------------------------------------------ *)

let test_reduction_faithful () =
  let open Whynot_setcover in
  let sc =
    Setcover.make ~universe:[ 0; 1; 2; 3 ]
      ~sets:[ ("A", [ 0; 1 ]); ("B", [ 1; 2 ]); ("C", [ 2; 3 ]); ("D", [ 3 ]) ]
  in
  (* Minimum cover is {A, C} of size 2. *)
  (match Setcover.exact_min_cover sc with
   | Some cover -> Alcotest.(check int) "min cover size" 2 (List.length cover)
   | None -> Alcotest.fail "cover exists");
  let g2 = Reduction.build sc ~slots:2 in
  Alcotest.(check bool) "explanation exists with 2 slots" true
    (Exhaustive.exists_explanation_exn g2.Reduction.ontology g2.Reduction.whynot);
  let g1 = Reduction.build sc ~slots:1 in
  Alcotest.(check bool) "no explanation with 1 slot" false
    (Exhaustive.exists_explanation_exn g1.Reduction.ontology g1.Reduction.whynot);
  (* Round-trip: a cover gives an explanation and vice versa. *)
  let e = Reduction.sets_to_explanation ~slots:2 [ "A"; "C" ] in
  Alcotest.(check bool) "cover -> explanation" true
    (Explanation.is_explanation g2.Reduction.ontology g2.Reduction.whynot e);
  (match Exhaustive.one_mge_exn g2.Reduction.ontology g2.Reduction.whynot with
   | None -> Alcotest.fail "mge exists"
   | Some e ->
     Alcotest.(check bool) "explanation -> cover" true
       (Setcover.is_cover sc (Reduction.explanation_to_sets e)))

let prop_reduction_equivalence =
  QCheck2.Test.make ~name:"existence <=> cover of size <= slots" ~count:60
    QCheck2.Gen.(
      triple (int_range 1 5) (int_range 1 5) (int_range 0 1000))
    (fun (n_elements, n_sets, seed) ->
       let open Whynot_setcover in
       let sc =
         Setcover.random ~seed ~n_elements ~n_sets ~density:0.4 ()
       in
       List.for_all
         (fun slots ->
            let g = Reduction.build sc ~slots in
            Exhaustive.exists_explanation_exn g.Reduction.ontology
              g.Reduction.whynot
            = Setcover.exists_cover_of_size sc slots)
         [ 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Properties: incremental output is an MGE; exhaustive output sound   *)
(* ------------------------------------------------------------------ *)

let random_whynot_gen =
  QCheck2.Gen.(
    let row = pair (int_range 0 4) (int_range 0 4) in
    list_size (int_range 2 8) row >>= fun rows ->
    let inst =
      List.fold_left
        (fun inst (x, y) -> Instance.add_fact "R" [ v_int x; v_int y ] inst)
        Instance.empty rows
    in
    let q =
      Cq.make
        ~head:[ Cq.Var "x"; Cq.Var "y" ]
        ~atoms:
          [
            { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "z" ] };
            { Cq.rel = "R"; args = [ Cq.Var "z"; Cq.Var "y" ] };
          ]
        ()
    in
    let answers = Cq.eval q inst in
    let missing_candidates =
      List.concat_map
        (fun a -> List.map (fun b -> [ v_int a; v_int b ]) [ 0; 1; 2; 3; 4; 9 ])
        [ 0; 1; 2; 3; 4; 9 ]
      |> List.filter (fun t -> not (Relation.mem (Tuple.of_list t) answers))
    in
    match missing_candidates with
    | [] -> return None
    | _ :: _ ->
      map
        (fun i ->
           Some
             (Whynot.make_exn ~instance:inst ~query:q
                ~missing:(List.nth missing_candidates
                            (i mod List.length missing_candidates))
                ()))
        (int_range 0 100))

let prop_incremental_is_mge =
  QCheck2.Test.make ~name:"incremental output passes CHECK-MGE" ~count:60
    random_whynot_gen
    (function
      | None -> true
      | Some wn ->
        let e = Incremental.one_mge ~shorten:false wn in
        Incremental.check_mge wn e
        && Explanation.is_explanation
             (Ontology.of_instance wn.Whynot.instance) wn e)

let prop_incremental_shortened_still_mge =
  QCheck2.Test.make ~name:"irredundant shortening preserves MGE-ness"
    ~count:40 random_whynot_gen
    (function
      | None -> true
      | Some wn ->
        let e = Incremental.one_mge ~shorten:true wn in
        Incremental.check_mge wn e)

let prop_exhaustive_mges_incomparable =
  QCheck2.Test.make ~name:"exhaustive MGEs: sound, maximal, incomparable"
    ~count:40 random_whynot_gen
    (function
      | None -> true
      | Some wn ->
        let o =
          Ontology.of_instance_finite wn.Whynot.instance
            (Whynot.constant_pool wn)
        in
        let mges = Exhaustive.all_mges_exn o wn in
        List.for_all (fun e -> Explanation.is_explanation o wn e) mges
        && List.for_all (fun e -> Exhaustive.check_mge_exn o wn e) mges
        && List.for_all
             (fun e ->
                List.for_all
                  (fun e' ->
                     e == e'
                     || not (Explanation.less_general o e e'))
                  mges)
             mges)

let prop_pruned_equals_unpruned =
  QCheck2.Test.make ~name:"pruned Algorithm 1 = literal Algorithm 1"
    ~count:30 random_whynot_gen
    (function
      | None -> true
      | Some wn ->
        let o =
          Ontology.of_instance_finite wn.Whynot.instance
            (Whynot.constant_pool wn)
        in
        let same es es' =
          List.length es = List.length es'
          && List.for_all
               (fun e -> List.exists (Explanation.equivalent o e) es')
               es
        in
        same (Exhaustive.all_mges_exn o wn) (Exhaustive.all_mges_unpruned_exn o wn))

let prop_cardinality_greedy_leq_exact =
  QCheck2.Test.make ~name:"greedy degree <= exact maximal degree" ~count:40
    QCheck2.Gen.(triple (int_range 1 4) (int_range 1 4) (int_range 0 500))
    (fun (n_elements, n_sets, seed) ->
       let open Whynot_setcover in
       let sc = Setcover.random ~seed ~n_elements ~n_sets ~density:0.5 () in
       let g = Reduction.build sc ~slots:2 in
       match
         ( Cardinality.greedy_exn g.Reduction.ontology g.Reduction.whynot,
           Cardinality.maximal_exn g.Reduction.ontology g.Reduction.whynot )
       with
       | None, None -> true
       | Some _, None -> false
       | None, Some _ -> false (* greedy with feasibility check is complete *)
       | Some gr, Some ex ->
         Option.get (Cardinality.degree g.Reduction.ontology g.Reduction.whynot gr)
         <= Option.get (Cardinality.degree g.Reduction.ontology g.Reduction.whynot ex))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reduction_equivalence;
      prop_incremental_is_mge;
      prop_incremental_shortened_still_mge;
      prop_exhaustive_mges_incomparable;
      prop_pruned_equals_unpruned;
      prop_cardinality_greedy_leq_exact;
    ]

(* ------------------------------------------------------------------ *)
(* Edge cases                                                         *)
(* ------------------------------------------------------------------ *)

let test_empty_answer_set () =
  (* With no answers at all, every covering tuple is an explanation and the
     most general one is all-top (w.r.t. O_I). *)
  let inst = Instance.of_facts [ ("R", [ [ v_int 1; v_int 2 ] ]) ] in
  let q =
    Cq.make
      ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:
        [
          { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "y" ] };
          { Cq.rel = "R"; args = [ Cq.Var "y"; Cq.Var "x" ] };
        ]
      ()
  in
  let wn = Whynot.make_exn ~instance:inst ~query:q ~missing:[ v_int 1; v_int 2 ] () in
  Alcotest.(check int) "no answers" 0 (Relation.cardinal wn.Whynot.answers);
  let e = Incremental.one_mge wn in
  Alcotest.(check bool) "all-top MGE" true
    (List.for_all Whynot_concept.Ls.is_top e)

let test_unary_whynot () =
  let inst = Instance.of_facts [ ("R", [ [ v_int 1 ]; [ v_int 2 ] ]) ] in
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "R"; args = [ Cq.Var "x" ] } ]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Le; value = v_int 1 } ]
      ()
  in
  let wn = Whynot.make_exn ~instance:inst ~query:q ~missing:[ v_int 2 ] () in
  let e = Incremental.one_mge ~variant:Incremental.With_selections wn in
  Alcotest.(check int) "unary explanation" 1 (List.length e);
  Alcotest.(check bool) "check" true
    (Incremental.check_mge ~variant:Incremental.With_selections wn e)

let test_missing_constants_outside_adom () =
  (* The why-not tuple may mention constants the database has never seen;
     the nominal explanation still works and the algorithms cope. *)
  let wn =
    Whynot.make_exn ~instance:Cities.instance ~query:Cities.two_hop_query
      ~missing:[ v_str "Paris"; v_str "Osaka" ] ()
  in
  let o = Ontology.of_instance Cities.instance in
  let e = Incremental.one_mge wn in
  Alcotest.(check bool) "explanation" true (Explanation.is_explanation o wn e);
  Alcotest.(check bool) "most general" true (Incremental.check_mge wn e);
  (* Only one position can lift to top: with ⟨top, top⟩ the product covers
     the (non-empty) answer set. The algorithm lifts the first position and
     keeps the second specific. *)
  Alcotest.(check bool) "exactly one top" true
    (List.length (List.filter Whynot_concept.Ls.is_top e) = 1)

let test_schema_mge_selection_free_fragment () =
  (* A small schema where the selection-free O_S[K] fragment is feasible. *)
  let schema =
    Schema.make_exn
      ~inds:[ Ind.make ~lhs_rel:"R" ~lhs_attrs:[ 1 ] ~rhs_rel:"S" ~rhs_attrs:[ 1 ] ]
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a"; "b" ] } ]
  in
  let inst =
    Instance.of_facts
      [ ("R", [ [ v_int 1; v_int 2 ] ]);
        ("S", [ [ v_int 1; v_int 9 ]; [ v_int 3; v_int 4 ] ]) ]
  in
  let q =
    Cq.make
      ~head:[ Cq.Var "x"; Cq.Var "y" ]
      ~atoms:[ { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
      ()
  in
  let wn = Whynot.make_exn ~schema ~instance:inst ~query:q ~missing:[ v_int 3; v_int 4 ] () in
  match Schema_mge.one_mge `Selection_free schema wn with
  | None -> Alcotest.fail "explanation exists"
  | Some e ->
    let o = Schema_mge.ontology `Selection_free schema wn in
    Alcotest.(check bool) "is explanation" true (Explanation.is_explanation o wn e);
    Alcotest.(check bool) "is MGE in the fragment" true (Exhaustive.check_mge_exn o wn e)

let test_strong_views_only_complete () =
  (* On a views-only schema the strong verdict is complete (never Unknown):
     a view selecting small values can never produce large answers. *)
  let views =
    [ { View.name = "V";
        body =
          Ucq.of_cq
            (Cq.make ~head:[ Cq.Var "x" ]
               ~atoms:[ { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
               ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Lt; value = v_int 10 } ]
               ()) } ]
  in
  let schema =
    Schema.make_exn ~views
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "V"; attrs = [ "a" ] } ]
  in
  let inst =
    Schema.complete schema (Instance.of_facts [ ("R", [ [ v_int 1; v_int 2 ]; [ v_int 50; v_int 3 ] ]) ])
  in
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "V"; args = [ Cq.Var "x" ] } ]
      ()
  in
  let wn = Whynot.make_exn ~schema ~instance:inst ~query:q ~missing:[ v_int 50 ] () in
  let sel attr op value = { Whynot_concept.Ls.attr; op; value } in
  let big = Whynot_concept.Ls.proj ~rel:"R" ~attr:1 ~sels:[ sel 1 Cmp_op.Ge (v_int 10) ] () in
  Alcotest.(check bool) "strong (complete class)" true
    (Strong.decide_wrt_schema schema wn [ big ] = Strong.Strong);
  let small = Whynot_concept.Ls.proj ~rel:"R" ~attr:2 () in
  Alcotest.(check bool) "not strong" true
    (Strong.decide_wrt_schema schema wn [ small ] = Strong.Not_strong)

let test_ranked () =
  let ranked = Cardinality.ranked_exn hand_ontology whynot_cities in
  Alcotest.(check int) "two MGEs ranked" 2 (List.length ranked);
  (match ranked with
   | (e, d) :: (_, d') :: _ ->
     Alcotest.(check bool) "descending degrees" true (d >= d');
     Alcotest.(check (list string)) "degree-9 first" [ "City"; "East-Coast-City" ] e;
     Alcotest.(check int) "top degree 9" 9 d
   | _ -> Alcotest.fail "two entries expected")

(* ------------------------------------------------------------------ *)
(* Lazy enumeration                                                   *)
(* ------------------------------------------------------------------ *)

let test_lazy_enumeration () =
  let o = hand_ontology and wn = whynot_cities in
  (* The stream agrees with the batch computation. *)
  let streamed = List.of_seq (Exhaustive.mges_seq_exn o wn) in
  let batch = Exhaustive.all_mges_exn o wn in
  Alcotest.(check int) "same count" (List.length batch) (List.length streamed);
  List.iter
    (fun e ->
       Alcotest.(check bool) "streamed MGE in batch" true
         (List.exists (Explanation.equivalent o e) batch))
    streamed;
  (* Taking just the first element does not force the rest. *)
  (match Seq.uncons (Exhaustive.mges_seq_exn o wn) with
   | Some (e, _) ->
     Alcotest.(check bool) "first is an MGE" true (Exhaustive.check_mge_exn o wn e)
   | None -> Alcotest.fail "an MGE exists");
  (* All explanations stream: count matches a brute-force filter. *)
  let n_expl = Seq.length (Exhaustive.explanations_seq_exn o wn) in
  Alcotest.(check bool) "at least the 4 named + 2 MGEs" true (n_expl >= 5)

let prop_lazy_agrees =
  QCheck2.Test.make ~name:"mges_seq = all_mges on random gadgets" ~count:40
    QCheck2.Gen.(triple (int_range 1 4) (int_range 1 4) (int_range 0 300))
    (fun (n_elements, n_sets, seed) ->
       let open Whynot_setcover in
       let sc = Setcover.random ~seed ~n_elements ~n_sets ~density:0.5 () in
       let g = Reduction.build sc ~slots:2 in
       let o = g.Reduction.ontology and wn = g.Reduction.whynot in
       let streamed = List.of_seq (Exhaustive.mges_seq_exn o wn) in
       let batch = Exhaustive.all_mges_exn o wn in
       List.length streamed = List.length batch
       && List.for_all
            (fun e -> List.exists (Explanation.equivalent o e) batch)
            streamed)

(* ------------------------------------------------------------------ *)
(* Why explanations (the §7 dual, implemented as an extension)        *)
(* ------------------------------------------------------------------ *)

let test_why_explanations () =
  let why =
    Why.make_exn ~instance:Cities.instance ~query:Cities.two_hop_query
      ~witness:[ v_str "Amsterdam"; v_str "Rome" ] ()
  in
  let o = Ontology.of_instance Cities.instance in
  (* The nominal tuple is always a why explanation. *)
  Alcotest.(check bool) "nominals explain why" true
    (Why.is_why_explanation o why
       [ Whynot_concept.Ls.nominal (v_str "Amsterdam");
         Whynot_concept.Ls.nominal (v_str "Rome") ]);
  (* A rectangle leaking outside q(I) is rejected. *)
  Alcotest.(check bool) "city x city is not a why explanation" false
    (Why.is_why_explanation o why
       [ Whynot_concept.Ls.proj ~rel:"Cities" ~attr:1 ();
         Whynot_concept.Ls.proj ~rel:"Cities" ~attr:1 () ]);
  (* The incremental dual returns a most-general why explanation. *)
  let e = Why.one_mge why in
  Alcotest.(check bool) "is why explanation" true
    (Why.is_why_explanation o why e);
  Alcotest.(check bool) "check agrees" true (Why.check_mge why e);
  (* With selections, position 2 generalises to the Berlin destinations:
     {Amsterdam} x {Amsterdam, Rome} is inside q(I). *)
  let es = Why.one_mge ~variant:Incremental.With_selections why in
  Alcotest.(check bool) "sigma variant most general" true
    (Why.check_mge ~variant:Incremental.With_selections why es);
  let snd_ext =
    match Whynot_concept.Semantics.extension (List.nth es 1) Cities.instance with
    | Whynot_concept.Semantics.All -> Value_set.empty
    | Whynot_concept.Semantics.Fin s -> s
  in
  Alcotest.(check bool) "second position covers {Amsterdam, Rome}" true
    (Value_set.subset (Value_set.of_strings [ "Amsterdam"; "Rome" ]) snd_ext)

let test_why_validation () =
  match
    Why.make ~instance:Cities.instance ~query:Cities.two_hop_query
      ~witness:[ v_str "Amsterdam"; v_str "New York" ] ()
  with
  | Ok _ -> Alcotest.fail "non-answer accepted as witness"
  | Error _ -> ()

let () =
  Alcotest.run "core"
    [
      ( "example-3.4",
        [
          Alcotest.test_case "explanations" `Quick test_example_3_4_explanations;
          Alcotest.test_case "MGE = E4" `Quick test_example_3_4_mge;
          Alcotest.test_case "consistency" `Quick test_consistency_fig3;
        ] );
      ( "example-4.5",
        [ Alcotest.test_case "MGE = E1" `Quick test_example_4_5_mge ] );
      ( "incremental",
        [
          Alcotest.test_case "trivial explanation" `Quick test_trivial_explanation;
          Alcotest.test_case "selection-free" `Quick test_incremental_selection_free;
          Alcotest.test_case "with selections" `Quick test_incremental_with_selections;
          Alcotest.test_case "example 4.9 E2" `Quick test_example_4_9_e2_is_mge_wrt_oi;
        ] );
      ( "schema-mge",
        [ Alcotest.test_case "minimal fragment" `Quick test_schema_mge_minimal ] );
      ( "variations",
        [
          Alcotest.test_case "cardinality" `Quick test_cardinality;
          Alcotest.test_case "shortest/irredundant" `Quick test_shortest;
          Alcotest.test_case "exact concept minimisation" `Quick test_minimise_concept_exact;
          Alcotest.test_case "strong" `Quick test_strong;
        ] );
      ( "validation",
        [ Alcotest.test_case "why-not instance" `Quick test_whynot_validation ] );
      ( "reduction",
        [ Alcotest.test_case "faithfulness" `Quick test_reduction_faithful ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty answers" `Quick test_empty_answer_set;
          Alcotest.test_case "unary query" `Quick test_unary_whynot;
          Alcotest.test_case "out-of-adom tuple" `Quick test_missing_constants_outside_adom;
          Alcotest.test_case "O_S[K] selection-free" `Quick test_schema_mge_selection_free_fragment;
          Alcotest.test_case "strong complete on views" `Quick test_strong_views_only_complete;
          Alcotest.test_case "ranked MGEs" `Quick test_ranked;
        ] );
      ( "lazy",
        [
          Alcotest.test_case "enumeration" `Quick test_lazy_enumeration;
          QCheck_alcotest.to_alcotest prop_lazy_agrees;
        ] );
      ( "why (dual)",
        [
          Alcotest.test_case "explanations" `Quick test_why_explanations;
          Alcotest.test_case "validation" `Quick test_why_validation;
        ] );
      ("properties", qcheck_cases);
    ]
