(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md §3 and EXPERIMENTS.md).

   The paper is a theory paper, so its "tables and figures" are worked
   examples (Figures 1-5, Examples 3.4/4.5/4.9) and a complexity table
   (Table 1). For each experiment id this harness prints:
   - the qualitative result the paper reports (who is the MGE, which
     subsumptions hold, ...), recomputed from scratch; and
   - timing rows over a parameter sweep exhibiting the complexity shape
     (polynomial rows stay flat-ish/polynomial, exponential rows blow up).

   Run with: dune exec bench/main.exe *)

(* Bind the facade before [open Whynot_core] shadows the [Whynot] name
   with the core question module. *)
module Engine = Whynot.Engine
module Wire_json = Whynot.Json

open Bechamel
open Whynot_relational
open Whynot_core
module Cities = Whynot_workload.Cities
module Retail = Whynot_workload.Retail
module Generate = Whynot_workload.Generate

(* --- tiny measurement kit on top of bechamel --- *)

module Obs = Whynot_obs.Obs

(* [--quick] runs the CI smoke sweep: the same experiments with a fraction
   of the measurement quota and the heaviest tail of each parameter sweep
   dropped. The JSON report records which mode produced it. *)
let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let sweep xs =
  match xs with
  | (_ :: _ :: _) when quick -> List.filteri (fun i _ -> i < List.length xs - 1) xs
  | xs -> xs

let ols =
  Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]

let cfg =
  if quick then
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:None
      ~stabilize:false ()
  else
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()

(* [None] when bechamel's OLS fit produced no estimate (or a non-finite
   one): the caller logs a warning and the row stays out of the JSON
   report, rather than silently serialising [NaN]. *)
let measure_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  match Test.elements test with
  | [ elt ] ->
    let bm = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
    (match Analyze.OLS.estimates (Analyze.one ols Toolkit.Instance.monotonic_clock bm) with
     | Some (e :: _) when Float.is_finite e -> Some e
     | Some _ | None -> None)
  | _ -> None

let pp_time ppf = function
  | None -> Format.pp_print_string ppf "n/a"
  | Some ns ->
    if ns < 1e3 then Format.fprintf ppf "%.0f ns" ns
    else if ns < 1e6 then Format.fprintf ppf "%.1f us" (ns /. 1e3)
    else if ns < 1e9 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
    else Format.fprintf ppf "%.2f s" (ns /. 1e9)

let header id title =
  Format.printf "@.============================================================@.";
  Format.printf "[%s] %s@." id title;
  Format.printf "============================================================@."

let row fmt = Format.printf fmt

(* --- the machine-readable report (BENCH_whynot.json) --- *)

type bench_row = {
  r_id : string;
  r_label : string;
  r_params : (string * float) list;
  r_ns : float;
  r_counters : (string * int) list;
}

let bench_rows : bench_row list ref = ref []

(* Measure [f], then run it once more under an {!Whynot_obs.Obs} delta so
   the row carries the per-call counter profile (cache hits, chase steps,
   candidates explored, ...). Returns the estimate so experiments can
   derive ratios (e.g. the MEMO speedup rows). *)
let timed_ns ?(params = []) id label f =
  let ns = measure_ns (id ^ "/" ^ label) f in
  row "  %-42s %a@." label pp_time ns;
  (match ns with
   | None ->
     Printf.eprintf
       "bench: warning: no OLS estimate for %s/%s; row excluded from JSON\n%!"
       id label
   | Some r_ns ->
     let (), r_counters =
       Obs.delta (fun () -> ignore (Sys.opaque_identity (f ())))
     in
     bench_rows :=
       { r_id = id; r_label = label; r_params = params; r_ns; r_counters }
       :: !bench_rows);
  ns

let timed ?params id label f = ignore (timed_ns ?params id label f)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_number x =
  (* JSON has no NaN/infinity; the row filter keeps them out of reach,
     this is a belt-and-braces guard. *)
  if not (Float.is_finite x) then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v)
         fields)
  ^ "}"

let write_report path =
  let rows = List.rev !bench_rows in
  let row_json r =
    json_obj
      [
        ("id", Printf.sprintf "\"%s\"" (json_escape r.r_id));
        ("label", Printf.sprintf "\"%s\"" (json_escape r.r_label));
        ( "params",
          json_obj (List.map (fun (k, v) -> (k, json_number v)) r.r_params) );
        ("ns_per_op", json_number r.r_ns);
        ( "counters",
          json_obj (List.map (fun (k, v) -> (k, string_of_int v)) r.r_counters)
        );
      ]
  in
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{\n\
        \"schema_version\": 1,\n\
        \"suite\": \"whynot-bench\",\n\
        \"quick\": %b,\n\
        \"rows\": [\n\
        %s\n\
        ]\n\
        }\n"
       quick
       (String.concat ",\n" (List.map row_json rows)));
  close_out oc;
  Format.printf "@.wrote %s (%d rows)@." path (List.length rows)

(* ================================================================== *)
(* EX3.4 / FIG1-3: hand-ontology explanations                          *)
(* ================================================================== *)

let hand_ontology =
  Ontology.of_extensions ~name:"figure3"
    ~subsumptions:Cities.hand_hasse
    ~extensions:
      (List.map
         (fun (c, ext) -> (c, Value_set.of_strings ext))
         Cities.hand_extensions)

let whynot_cities =
  Whynot.make_exn ~schema:Cities.schema ~instance:Cities.instance
    ~query:Cities.two_hop_query ~missing:Cities.missing_tuple ()

let ex_3_4 () =
  header "EX3.4" "Figures 1-3 + Example 3.4: why-not with a hand ontology";
  row "answers |q(I)| = %d (paper: 4)@."
    (Relation.cardinal whynot_cities.Whynot.answers);
  let mges = Exhaustive.all_mges_exn hand_ontology whynot_cities in
  List.iter
    (fun e ->
       row "MGE: %s@."
         (Format.asprintf "%a" (Explanation.pp hand_ontology) e))
    mges;
  row "paper's E4 = <European-City, US-City> is among them: %b@."
    (List.exists (fun e -> e = [ "European-City"; "US-City" ]) mges);
  timed "EX3.4" "Algorithm 1 (all MGEs, Figure 3 ontology)" (fun () ->
      Exhaustive.all_mges_exn hand_ontology whynot_cities)

(* ================================================================== *)
(* EX4.5 / FIG4: OBDA-induced ontology                                 *)
(* ================================================================== *)

let ex_4_5 () =
  header "EX4.5" "Figure 4 + Example 4.5: why-not with an OBDA ontology";
  let induced = Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance in
  let o = Ontology.of_obda induced in
  row "basic concepts in T: %d (paper: 13)@."
    (List.length (Whynot_obda.Induced.concepts induced));
  let mges = Exhaustive.all_mges_exn o whynot_cities in
  List.iter
    (fun e -> row "MGE: %s@." (Format.asprintf "%a" (Explanation.pp o) e))
    mges;
  row "paper's E1 = <EU-City, N.A.-City> is most general: %b@."
    (Exhaustive.check_mge_exn o whynot_cities
       [ Whynot_dllite.Dl.Atom "EU-City"; Whynot_dllite.Dl.Atom "N.A.-City" ]);
  timed "EX4.5" "induced-ontology preparation (Thm 4.2)" (fun () ->
      Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance);
  timed "EX4.5" "Algorithm 1 over O_B" (fun () ->
      Exhaustive.all_mges_exn o whynot_cities)

(* ================================================================== *)
(* FIG5 / EX4.9: derived ontologies                                    *)
(* ================================================================== *)

let ex_4_9 () =
  header "EX4.9" "Figure 5 + Example 4.9: derived ontologies O_S / O_I";
  let open Whynot_concept in
  let sel attr op value = { Ls.attr; op; value } in
  let big = Ls.proj ~rel:"BigCity" ~attr:1 () in
  let city = Ls.proj ~rel:"Cities" ~attr:1 () in
  let euro =
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 4 Cmp_op.Eq (Value.str "Europe") ] ()
  in
  let pop7m =
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 2 Cmp_op.Gt (Value.int 7000000) ] ()
  in
  let tc_from = Ls.proj ~rel:"Train-Connections" ~attr:1 () in
  List.iter
    (fun (label, c1, c2) ->
       row "%-34s : %s@." label
         (Format.asprintf "%a" Subsume_schema.pp_verdict
            (Subsume_schema.decide Cities.schema c1 c2)))
    [
      ("european <=S city", euro, city);
      ("pop>7M <=S BigCity", pop7m, big);
      ("BigCity <=S city", big, city);
      ("BigCity <=S TC[city_from]", big, tc_from);
      ("BigCity <=S pop>7M (refuted)", big, pop7m);
    ];
  let e_sf = Incremental.one_mge ~variant:Incremental.Selection_free whynot_cities in
  row "Algorithm 2 (selection-free) MGE: %s@."
    (Format.asprintf "%a"
       (Explanation.pp (Ontology.of_instance Cities.instance)) e_sf);
  timed "EX4.9" "subsumption w.r.t. S (mixed schema)" (fun () ->
      Subsume_schema.decide Cities.schema big tc_from);
  timed "EX4.9" "Algorithm 2 selection-free (Figure 2)" (fun () ->
      Incremental.one_mge ~variant:Incremental.Selection_free whynot_cities);
  timed "EX4.9" "Algorithm 2 with selections (Figure 2)" (fun () ->
      Incremental.one_mge ~variant:Incremental.With_selections whynot_cities)

(* ================================================================== *)
(* EX-RETAIL: the introduction's scenario                              *)
(* ================================================================== *)

let ex_retail () =
  header "EX-RETAIL" "Introduction scenario: bluetooth headsets in SF stores";
  let instance, query, missing = Retail.whynot_headsets () in
  let wn = Whynot.make_exn ~schema:Retail.schema ~instance ~query ~missing () in
  let o =
    Ontology.of_extensions ~name:"retail"
      ~subsumptions:Retail.hand_ontology_subsumptions
      ~extensions:
        (List.map
           (fun (c, ext) -> (c, Value_set.of_strings ext))
           Retail.hand_ontology_extensions)
  in
  List.iter
    (fun e -> row "MGE: %s@." (Format.asprintf "%a" (Explanation.pp o) e))
    (Exhaustive.all_mges_exn o wn);
  timed "EX-RETAIL" "Algorithm 1 (retail ontology)" (fun () ->
      Exhaustive.all_mges_exn o wn)

(* ================================================================== *)
(* TAB1: complexity of concept subsumption w.r.t. a schema             *)
(* ================================================================== *)

let tab1 () =
  header "TAB1" "Table 1: concept subsumption per constraint class";

  row "-- no constraints (conjunct-wise containment; tractable here) --@.";
  List.iter
    (fun positions ->
       let schema = Generate.wide_schema ~positions in
       let c1 = Generate.random_selection_free_concept ~seed:1 schema ~conjuncts:3 () in
       let c2 = Generate.random_selection_free_concept ~seed:2 schema ~conjuncts:2 () in
       timed ~params:[ ("positions", float_of_int positions) ] "TAB1"
         (Printf.sprintf "none / positions=%d" positions) (fun () ->
           Whynot_concept.Subsume_schema.decide schema c1 c2))
    (sweep [ 8; 16; 32; 64 ]);

  row "-- FDs (PTIME row; canonical instantiations + FD filter) --@.";
  List.iter
    (fun conjuncts ->
       let schema = Generate.fd_schema ~positions:8 in
       let c1 = Generate.random_selection_concept ~seed:3 schema ~conjuncts () in
       let c2 = Generate.random_selection_concept ~seed:4 schema ~conjuncts:1 () in
       timed ~params:[ ("conjuncts", float_of_int conjuncts) ] "TAB1"
         (Printf.sprintf "FDs / lhs conjuncts=%d" conjuncts) (fun () ->
           Whynot_concept.Subsume_schema.decide schema c1 c2))
    (sweep [ 1; 2; 3 ]);

  row "-- INDs, selection-free (PTIME row; positional reachability) --@.";
  List.iter
    (fun n ->
       let schema = Generate.ind_chain_schema ~n_relations:n in
       let c1 = Whynot_concept.Ls.proj ~rel:"R0" ~attr:1 () in
       let c2 =
         Whynot_concept.Ls.proj ~rel:(Printf.sprintf "R%d" (n - 1)) ~attr:1 ()
       in
       timed ~params:[ ("chain", float_of_int n) ] "TAB1"
         (Printf.sprintf "INDs / chain length=%d" n) (fun () ->
           Whynot_concept.Subsume_schema.decide schema c1 c2))
    (sweep [ 8; 32; 128 ]);

  row "-- UCQ views (NP/Pi2p row; unfolding + containment) --@.";
  List.iter
    (fun d ->
       let schema = Generate.ucq_view_schema ~n_disjuncts:d in
       let v = Whynot_concept.Ls.proj ~rel:"V" ~attr:1 () in
       let base = Whynot_concept.Ls.proj ~rel:"R0" ~attr:1 () in
       timed ~params:[ ("disjuncts", float_of_int d) ] "TAB1"
         (Printf.sprintf "UCQ views / disjuncts=%d" d) (fun () ->
           Whynot_concept.Subsume_schema.decide schema v base))
    (sweep [ 2; 8; 32 ]);

  row "-- nested UCQ views (coNEXPTIME row; unfolding doubles per level) --@.";
  List.iter
    (fun depth ->
       let schema = Generate.nested_view_schema ~depth in
       let v =
         Whynot_concept.Ls.proj ~rel:(Printf.sprintf "V%d" depth) ~attr:1 ()
       in
       let base = Whynot_concept.Ls.proj ~rel:"R0" ~attr:1 () in
       timed ~params:[ ("depth", float_of_int depth) ] "TAB1"
         (Printf.sprintf "nested views / depth=%d" depth) (fun () ->
           Whynot_concept.Subsume_schema.decide schema v base))
    (sweep [ 1; 2; 3; 4 ])

(* ================================================================== *)
(* ALG1 / THM5.1: exhaustive search and existence                      *)
(* ================================================================== *)

let alg1 () =
  header "ALG1" "Theorem 5.2: Exhaustive Search (Algorithm 1) scaling";
  row "-- ontology size sweep (set-cover gadget, arity 2) --@.";
  List.iter
    (fun n_sets ->
       let sc =
         Whynot_setcover.Setcover.random ~seed:5 ~n_elements:8 ~n_sets
           ~density:0.4 ()
       in
       let g = Whynot_setcover.Reduction.build sc ~slots:2 in
       timed ~params:[ ("n_sets", float_of_int n_sets) ] "ALG1"
         (Printf.sprintf "all MGEs / concepts=%d" n_sets) (fun () ->
           Exhaustive.all_mges_exn g.Whynot_setcover.Reduction.ontology
             g.Whynot_setcover.Reduction.whynot))
    (sweep [ 4; 8; 16 ]);
  row "-- query arity sweep (exponent of Theorem 5.2) --@.";
  List.iter
    (fun slots ->
       let sc =
         Whynot_setcover.Setcover.random ~seed:6 ~n_elements:8 ~n_sets:6
           ~density:0.4 ()
       in
       let g = Whynot_setcover.Reduction.build sc ~slots in
       timed ~params:[ ("arity", float_of_int slots) ] "ALG1"
         (Printf.sprintf "all MGEs / arity=%d" slots) (fun () ->
           Exhaustive.all_mges_exn g.Whynot_setcover.Reduction.ontology
             g.Whynot_setcover.Reduction.whynot))
    (sweep [ 1; 2; 3 ]);
  row "-- D3 ablation: candidate pruning --@.";
  let sc =
    Whynot_setcover.Setcover.random ~seed:7 ~n_elements:8 ~n_sets:10
      ~density:0.4 ()
  in
  let g = Whynot_setcover.Reduction.build sc ~slots:2 in
  timed "ALG1" "pruned (all_mges)" (fun () ->
      Exhaustive.all_mges_exn g.Whynot_setcover.Reduction.ontology
        g.Whynot_setcover.Reduction.whynot);
  timed "ALG1" "literal Algorithm 1 (all_mges_unpruned)" (fun () ->
      Exhaustive.all_mges_unpruned_exn g.Whynot_setcover.Reduction.ontology
        g.Whynot_setcover.Reduction.whynot)

let existence () =
  header "THM5.1" "NP-hardness gadget: EXISTENCE-OF-EXPLANATION vs SET COVER";
  List.iter
    (fun n_sets ->
       let sc =
         Whynot_setcover.Setcover.random ~seed:8 ~n_elements:12 ~n_sets
           ~density:0.25 ()
       in
       let g = Whynot_setcover.Reduction.build sc ~slots:3 in
       let exists =
         Exhaustive.exists_explanation_exn g.Whynot_setcover.Reduction.ontology
           g.Whynot_setcover.Reduction.whynot
       in
       let cover = Whynot_setcover.Setcover.exists_cover_of_size sc 3 in
       row "  n_sets=%-3d explanation? %-5b cover<=3? %-5b (must agree)@."
         n_sets exists cover;
       timed ~params:[ ("n_sets", float_of_int n_sets) ] "THM5.1"
         (Printf.sprintf "existence / sets=%d" n_sets) (fun () ->
           Exhaustive.exists_explanation_exn g.Whynot_setcover.Reduction.ontology
             g.Whynot_setcover.Reduction.whynot))
    (sweep [ 8; 16; 32 ])

(* ================================================================== *)
(* ALG2: incremental search                                            *)
(* ================================================================== *)

let alg2 () =
  header "ALG2" "Theorem 5.3: Incremental Search (selection-free) scaling";
  List.iter
    (fun n ->
       let gi = Generate.cities_like ~n_cities:n ~n_countries:(max 2 (n / 5))
           ~n_connections:(2 * n) () in
       let wn = Generate.cities_whynot gi in
       timed ~params:[ ("cities", float_of_int n) ] "ALG2"
         (Printf.sprintf "one MGE / cities=%d" n) (fun () ->
           Incremental.one_mge ~variant:Incremental.Selection_free ~shorten:false wn))
    (sweep [ 20; 40; 80 ]);
  row "-- D4 ablation: constant-offer order --@.";
  let gi = Generate.cities_like ~n_cities:40 ~n_countries:8 ~n_connections:80 () in
  let wn = Generate.cities_whynot gi in
  timed "ALG2" "ascending adom order" (fun () ->
      Incremental.one_mge ~shorten:false ~order:`Ascending wn);
  timed "ALG2" "descending adom order" (fun () ->
      Incremental.one_mge ~shorten:false ~order:`Descending wn)

let alg2_sigma () =
  header "ALG2s" "Theorem 5.4: Incremental Search with selections";
  (* Bounded arity 2: polynomial; the rows sweep shows the polynomial
     growth, the arity effect is visible against ALG2 above. *)
  let make_wn rows =
    let inst =
      List.fold_left
        (fun inst k ->
           Instance.add_fact "R"
             [ Value.int k; Value.int ((k + 1) mod rows) ]
             inst)
        Whynot_relational.Instance.empty
        (List.init rows (fun k -> k))
    in
    let q =
      Cq.make
        ~head:[ Cq.Var "x"; Cq.Var "y" ]
        ~atoms:
          [
            { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "z" ] };
            { Cq.rel = "R"; args = [ Cq.Var "z"; Cq.Var "y" ] };
          ]
        ()
    in
    Whynot.make_exn ~instance:inst ~query:q
      ~missing:[ Value.int 0; Value.int 1 ]
      ()
  in
  List.iter
    (fun rows ->
       let wn = make_wn rows in
       timed ~params:[ ("rows", float_of_int rows) ] "ALG2s"
         (Printf.sprintf "one MGE (sigma) / rows=%d" rows) (fun () ->
           Incremental.one_mge ~variant:Incremental.With_selections
             ~shorten:false wn))
    (sweep [ 6; 10; 14 ]);
  row "-- D2 ablation: lub antichain pruning --@.";
  let wn = make_wn 10 in
  let x =
    Value_set.of_list [ Value.int 0; Value.int 2; Value.int 4 ]
  in
  timed "ALG2s" "lub_sigma pruned" (fun () ->
      Whynot_concept.Lub.lub_sigma ~prune:true wn.Whynot.instance x);
  timed "ALG2s" "lub_sigma unpruned" (fun () ->
      Whynot_concept.Lub.lub_sigma ~prune:false wn.Whynot.instance x)

(* ================================================================== *)
(* P4.2: concept counting                                              *)
(* ================================================================== *)

let p4_2 () =
  header "P4.2" "Proposition 4.2: number of concepts per fragment";
  let open Whynot_concept in
  List.iter
    (fun positions ->
       let schema = Generate.wide_schema ~positions in
       row "  positions=%-3d  L_min=%-6d sel-free=%-12.0f full=10^%.0f@." positions
         (Count.count_minimal schema ~k:5)
         (Count.count_selection_free schema ~k:5)
         (Count.count_full_log10 schema ~k:5))
    [ 4; 8; 12; 16 ];
  List.iter
    (fun positions ->
       let n = (positions + 1) / 2 in
       let inst =
         List.fold_left
           (fun inst k ->
              Whynot_relational.Instance.add_fact (Printf.sprintf "R%d" k)
                [ Value.int 0; Value.int 1 ]
                inst)
           Whynot_relational.Instance.empty
           (List.init n (fun k -> k))
       in
       timed ~params:[ ("positions", float_of_int positions) ] "P4.2"
         (Printf.sprintf "materialise O_I[K] / positions=%d" positions)
         (fun () ->
            Count.enumerate_selection_free inst
              (Value_set.of_list [ Value.int 0; Value.int 1 ])))
    (sweep [ 4; 8; 12 ])

(* ================================================================== *)
(* P6.2 / P6.4: irredundancy and cardinality preference                *)
(* ================================================================== *)

let p6_2 () =
  header "P6.2" "Proposition 6.2: polynomial irredundancy";
  let open Whynot_concept in
  List.iter
    (fun conjuncts ->
       let c =
         Ls.meet_all
           (List.init conjuncts (fun k ->
                Generate.random_selection_free_concept ~seed:k Cities.schema
                  ~conjuncts:1 ()))
       in
       timed ~params:[ ("conjuncts", float_of_int conjuncts) ] "P6.2"
         (Printf.sprintf "minimise / conjuncts<=%d" conjuncts)
         (fun () -> Irredundant.minimise Cities.instance c))
    (sweep [ 4; 8; 16 ])

let p6_4 () =
  header "P6.4" "Proposition 6.4: card-maximal explanations, exact vs greedy";
  (* Crafted instance where the greedy heuristic is strictly suboptimal:
     greedy grabs the singleton {1} first and is then forced into the
     4-element completion, while the optimum partitions the universe. *)
  let crafted =
    Whynot_setcover.Setcover.make ~universe:[ 1; 2; 3; 4 ]
      ~sets:
        [ ("A", [ 1 ]); ("E", [ 1; 2; 3; 4 ]); ("F", [ 1; 2 ]); ("G", [ 3; 4 ]) ]
  in
  let gc = Whynot_setcover.Reduction.build crafted ~slots:2 in
  let oc = gc.Whynot_setcover.Reduction.ontology in
  let wnc = gc.Whynot_setcover.Reduction.whynot in
  let degc = function
    | None -> -1
    | Some e -> Option.value ~default:(-1) (Cardinality.degree oc wnc e)
  in
  row "  crafted: exact degree=%d, greedy degree=%d (greedy suboptimal)@."
    (degc (Cardinality.maximal_exn oc wnc))
    (degc (Cardinality.greedy_exn oc wnc));
  List.iter
    (fun n_sets ->
       let sc =
         Whynot_setcover.Setcover.random ~seed:9 ~n_elements:10 ~n_sets
           ~density:0.45 ()
       in
       let g = Whynot_setcover.Reduction.build sc ~slots:3 in
       let o = g.Whynot_setcover.Reduction.ontology in
       let wn = g.Whynot_setcover.Reduction.whynot in
       let deg = function
         | None -> -1
         | Some e -> Option.value ~default:(-1) (Cardinality.degree o wn e)
       in
       let exact = Cardinality.maximal_exn o wn and greedy = Cardinality.greedy_exn o wn in
       row "  n_sets=%-3d exact degree=%-4d greedy degree=%-4d@."
         n_sets (deg exact) (deg greedy);
       timed ~params:[ ("n_sets", float_of_int n_sets) ] "P6.4"
         (Printf.sprintf "exact / sets=%d" n_sets) (fun () ->
           Cardinality.maximal_exn o wn);
       timed ~params:[ ("n_sets", float_of_int n_sets) ] "P6.4"
         (Printf.sprintf "greedy / sets=%d" n_sets) (fun () ->
           Cardinality.greedy_exn o wn))
    (sweep [ 6; 10; 14 ])

(* ================================================================== *)
(* D1: DL-LiteR reasoning                                              *)
(* ================================================================== *)

let dllite () =
  header "THM4.1" "DL-LiteR: PTIME saturation and subsumption (D1)";
  List.iter
    (fun n_atoms ->
       let tb =
         Generate.random_tbox ~seed:10 ~n_atoms ~n_roles:(n_atoms / 4)
           ~n_axioms:(2 * n_atoms) ()
       in
       timed ~params:[ ("atoms", float_of_int n_atoms) ] "THM4.1"
         (Printf.sprintf "saturate / atoms=%d" n_atoms) (fun () ->
           Whynot_dllite.Reasoner.saturate tb);
       let r = Whynot_dllite.Reasoner.saturate tb in
       let u = Whynot_dllite.Reasoner.universe r in
       match u with
       | b1 :: b2 :: _ ->
         timed "THM4.1" (Printf.sprintf "subsumes query / atoms=%d" n_atoms)
           (fun () -> Whynot_dllite.Reasoner.subsumes r b1 b2);
         (* D1 ablation: the same query without the precomputed closure. *)
         timed "THM4.1" (Printf.sprintf "on-demand query / atoms=%d" n_atoms)
           (fun () -> Whynot_dllite.Ondemand.subsumes tb b1 b2)
       | _ -> ())
    (sweep [ 8; 32; 128 ])

(* ================================================================== *)
(* OBDA: induced ontology scaling                                      *)
(* ================================================================== *)

let obda_scaling () =
  header "THM4.2" "OBDA: computing the induced ontology scales polynomially";
  List.iter
    (fun n ->
       let _, inst =
         Generate.cities_like ~n_cities:n ~n_countries:(max 2 (n / 5))
           ~n_connections:(2 * n) ()
       in
       timed ~params:[ ("cities", float_of_int n) ] "THM4.2"
         (Printf.sprintf "retrieve+prepare / cities=%d" n)
         (fun () ->
            let induced = Whynot_obda.Induced.prepare Cities.obda_spec inst in
            Whynot_obda.Induced.extension induced
              (Whynot_dllite.Dl.Atom "City")))
    (sweep [ 20; 40; 80 ])

(* ================================================================== *)
(* Extensions: PerfectRef rewriting and the Datalog engine             *)
(* ================================================================== *)

let rewrite_bench () =
  header "REWRITE" "PerfectRef: certain answers over the ontology (§7)";
  let induced = Whynot_obda.Induced.prepare Cities.obda_spec Cities.instance in
  let atomic name =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = name; args = [ Cq.Var "x" ] } ]
      ()
  in
  let join =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:
        [
          { Cq.rel = "hasCountry"; args = [ Cq.Var "x"; Cq.Var "y" ] };
          { Cq.rel = "hasContinent"; args = [ Cq.Var "y"; Cq.Var "z" ] };
        ]
      ()
  in
  let tbox = Cities.obda_tbox in
  row "rewriting sizes: City(x) -> %d disjunct(s); join -> %d disjunct(s)@."
    (List.length (Whynot_obda.Rewrite.rewrite tbox (atomic "City")).Ucq.disjuncts)
    (List.length (Whynot_obda.Rewrite.rewrite tbox join).Ucq.disjuncts);
  timed "REWRITE" "rewrite City(x)" (fun () ->
      Whynot_obda.Rewrite.rewrite tbox (atomic "City"));
  timed "REWRITE" "rewrite join (needs reduce)" (fun () ->
      Whynot_obda.Rewrite.rewrite tbox join);
  timed "REWRITE" "certain answers of the join" (fun () ->
      Whynot_obda.Rewrite.certain_answers induced join)

let datalog_bench () =
  header "DATALOG" "Datalog engine: views vs semi-naive, recursion";
  let views = Whynot_relational.Schema.views Cities.schema in
  let prog = Whynot_datalog.Program.of_views views in
  let base = Cities.base_instance in
  timed "DATALOG" "Figure-1 views via View.materialise" (fun () ->
      Whynot_relational.View.materialise views base);
  timed "DATALOG" "Figure-1 views via semi-naive Datalog" (fun () ->
      Whynot_datalog.Program.eval prog base);
  let var v = Cq.Var v in
  let tc =
    Whynot_datalog.Program.make_exn
      [
        Whynot_datalog.Program.rule
          ~head:{ Cq.rel = "T"; args = [ var "x"; var "y" ] }
          [ Whynot_datalog.Program.Pos { Cq.rel = "E"; args = [ var "x"; var "y" ] } ];
        Whynot_datalog.Program.rule
          ~head:{ Cq.rel = "T"; args = [ var "x"; var "y" ] }
          [
            Whynot_datalog.Program.Pos { Cq.rel = "T"; args = [ var "x"; var "z" ] };
            Whynot_datalog.Program.Pos { Cq.rel = "E"; args = [ var "z"; var "y" ] };
          ];
      ]
  in
  List.iter
    (fun n ->
       let chain =
         List.fold_left
           (fun inst k ->
              Whynot_relational.Instance.add_fact "E"
                [ Value.int k; Value.int (k + 1) ]
                inst)
           Whynot_relational.Instance.empty
           (List.init n (fun k -> k))
       in
       timed ~params:[ ("chain", float_of_int n) ] "DATALOG"
         (Printf.sprintf "transitive closure / chain=%d" n)
         (fun () -> Whynot_datalog.Program.eval tc chain))
    (sweep [ 8; 16; 32 ])

(* ================================================================== *)
(* MEMO: the memoised subsumption layer, cold vs warm                  *)
(* ================================================================== *)

let memo_bench () =
  header "MEMO" "Memoised subsumption: cold vs warm Incremental Search";
  (* Cold: every measured call starts from empty memo tables
     ([Subsume_memo.clear] inside the thunk), so extensions, columns and
     lubs are recomputed from scratch — the pre-memoisation behaviour.
     Warm: the handles persist across calls, so the sweep exercises the
     steady state the algorithms actually run in. *)
  List.iter
    (fun n ->
       let gi =
         Generate.cities_like ~n_cities:n ~n_countries:(max 2 (n / 5))
           ~n_connections:(2 * n) ()
       in
       let wn = Generate.cities_whynot gi in
       let run () =
         Incremental.one_mge ~variant:Incremental.Selection_free
           ~shorten:false wn
       in
       let cold =
         timed_ns
           ~params:[ ("cities", float_of_int n); ("cached", 0.) ]
           "MEMO"
           (Printf.sprintf "cold (uncached) / cities=%d" n)
           (fun () ->
              Whynot_concept.Subsume_memo.clear ();
              run ())
       in
       let warm =
         timed_ns
           ~params:[ ("cities", float_of_int n); ("cached", 1.) ]
           "MEMO"
           (Printf.sprintf "warm (memoised) / cities=%d" n)
           run
       in
       match (cold, warm) with
       | Some c, Some w when w > 0. ->
         row "  speedup (cold/warm) / cities=%-18d %.1fx@." n (c /. w)
       | _ -> ())
    (sweep [ 20; 40; 80 ]);
  row "-- schema-level verdict caching --@.";
  let big = Whynot_concept.Ls.proj ~rel:"BigCity" ~attr:1 () in
  let tc_from = Whynot_concept.Ls.proj ~rel:"Train-Connections" ~attr:1 () in
  let cold_schema =
    timed_ns
      ~params:[ ("cached", 0.) ]
      "MEMO" "decide w.r.t. S, cold (uncached)"
      (fun () ->
         Whynot_concept.Subsume_memo.clear ();
         let h = Whynot_concept.Subsume_memo.schema Cities.schema in
         Whynot_concept.Subsume_memo.decide h big tc_from)
  in
  let warm_schema =
    let h = Whynot_concept.Subsume_memo.schema Cities.schema in
    timed_ns
      ~params:[ ("cached", 1.) ]
      "MEMO" "decide w.r.t. S, warm (memoised)"
      (fun () -> Whynot_concept.Subsume_memo.decide h big tc_from)
  in
  match (cold_schema, warm_schema) with
  | Some c, Some w when w > 0. ->
    row "  speedup (cold/warm) schema decide          %.0fx@." (c /. w)
  | _ -> ()

(* ================================================================== *)
(* PAR: domain-parallel MGE search behind the Engine facade            *)
(* ================================================================== *)

let par_bench () =
  header "PAR" "Domain-parallel MGE search (Engine facade)";
  let hw = Domain.recommended_domain_count () in
  row "  host reports %d recommended domain(s); speedup is bounded by the@."
    hw;
  row "  hardware — on a single-core host every sweep point is ~1.0x@.";
  let domain_sweep = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let with_engine ~domains ~instance f =
    match Engine.create ~domains ~instance () with
    | Error e ->
      Printf.eprintf "bench: PAR: engine creation failed: %s\n%!"
        (Whynot_error.to_string e);
      None
    | Ok engine ->
      Fun.protect ~finally:(fun () -> ignore (Engine.close engine)) @@ fun () ->
      f engine
  in
  let speedup label baseline = function
    | Some par when par > 0. ->
      (match baseline with
       | Some seq -> row "  speedup vs sequential %-21s %.2fx@." label (seq /. par)
       | None -> ())
    | _ -> ()
  in
  row "-- Algorithm 2 (Incremental Search, O_I) / cities instance --@.";
  let n_cities = if quick then 30 else 60 in
  let gi =
    Generate.cities_like ~n_cities ~n_countries:(max 2 (n_cities / 5))
      ~n_connections:(2 * n_cities) ()
  in
  let wn = Generate.cities_whynot gi in
  let cities = float_of_int n_cities in
  let seq_inc =
    timed_ns
      ~params:[ ("cities", cities); ("domains", 0.) ]
      "PAR"
      (Printf.sprintf "Algorithm 2 sequential / cities=%d" n_cities)
      (fun () ->
         Incremental.one_mge ~variant:Incremental.Selection_free
           ~shorten:false wn)
  in
  List.iter
    (fun domains ->
       let ns =
         with_engine ~domains ~instance:wn.Whynot.instance @@ fun engine ->
         timed_ns
           ~params:[ ("cities", cities); ("domains", float_of_int domains) ]
           "PAR"
           (Printf.sprintf "Algorithm 2 / domains=%d" domains)
           (fun () -> Result.get_ok (Engine.one_mge ~shorten:false engine wn))
       in
       speedup (Printf.sprintf "/ domains=%d" domains) seq_inc ns)
    domain_sweep;
  row "-- Algorithm 1 (Exhaustive Search) / set-cover gadget --@.";
  let sc =
    Whynot_setcover.Setcover.random ~seed:11 ~n_elements:8 ~n_sets:10
      ~density:0.4 ()
  in
  let g = Whynot_setcover.Reduction.build sc ~slots:(if quick then 2 else 3) in
  let o = g.Whynot_setcover.Reduction.ontology in
  let gwn = g.Whynot_setcover.Reduction.whynot in
  let seq_exh =
    timed_ns
      ~params:[ ("n_sets", 10.); ("domains", 0.) ]
      "PAR" "Algorithm 1 sequential / set-cover"
      (fun () -> Exhaustive.all_mges_exn o gwn)
  in
  List.iter
    (fun domains ->
       let ns =
         with_engine ~domains ~instance:gwn.Whynot.instance @@ fun engine ->
         timed_ns
           ~params:[ ("n_sets", 10.); ("domains", float_of_int domains) ]
           "PAR"
           (Printf.sprintf "Algorithm 1 / domains=%d" domains)
           (fun () -> Result.get_ok (Engine.all_mges_finite engine o gwn))
       in
       speedup (Printf.sprintf "/ domains=%d" domains) seq_exh ns)
    domain_sweep

(* ================================================================== *)
(* EVAL: planned/indexed CQ evaluation vs the naive oracle             *)
(* ================================================================== *)

let eval_bench () =
  header "EVAL" "Planned/indexed CQ evaluation kernel vs naive join";
  row "  planned = Cq.eval (greedy plan over Eval_index, warm caches)@.";
  row "  naive   = the retained pre-planner oracle (scan per atom)@.";
  let speedup label naive planned =
    match (naive, planned) with
    | Some n, Some p when p > 0. ->
      row "  speedup planned vs naive %-22s %.1fx@." label (n /. p)
    | _ -> ()
  in
  row "-- Cities two-hop join, instance size sweep --@.";
  List.iter
    (fun n_cities ->
       let _, inst =
         Generate.cities_like ~n_cities ~n_countries:(max 2 (n_cities / 5))
           ~n_connections:(2 * n_cities) ()
       in
       let q =
         Cq.make
           ~head:[ Cq.Var "x"; Cq.Var "y" ]
           ~atoms:
             [
               { Cq.rel = "Train-Connections"; args = [ Cq.Var "x"; Cq.Var "z" ] };
               { Cq.rel = "Train-Connections"; args = [ Cq.Var "z"; Cq.Var "y" ] };
             ]
           ()
       in
       (* Warm the plan and pattern indexes once so the planned row
          measures the steady state the deciders actually run in. *)
       ignore (Cq.eval q inst);
       let params k = [ ("cities", float_of_int n_cities); ("kernel", k) ] in
       let planned =
         timed_ns ~params:(params 1.) "EVAL"
           (Printf.sprintf "two-hop planned / cities=%d" n_cities)
           (fun () -> Cq.eval q inst)
       in
       let naive =
         timed_ns ~params:(params 0.) "EVAL"
           (Printf.sprintf "two-hop naive / cities=%d" n_cities)
           (fun () -> Whynot_proptest.Oracle.naive_eval q inst)
       in
       speedup (Printf.sprintf "/ cities=%d" n_cities) naive planned)
    (sweep [ 40; 80; 160; 320 ]);
  row "-- Retail three-way join (category constant, qty > 0), stock sweep --@.";
  List.iter
    (fun n_stock ->
       let inst =
         Generate.retail_like ~n_products:(max 10 (n_stock / 10))
           ~n_stores:50 ~n_stock ()
       in
       let q = Generate.retail_join_query ~category:"audio" in
       (* The facade route: create the handle once, query it repeatedly. *)
       let idx = Whynot_eval.index inst in
       ignore (Whynot_eval.query idx q);
       let params k = [ ("stock", float_of_int n_stock); ("kernel", k) ] in
       let planned =
         timed_ns ~params:(params 1.) "EVAL"
           (Printf.sprintf "retail join planned / stock=%d" n_stock)
           (fun () -> Whynot_eval.query idx q)
       in
       let naive =
         timed_ns ~params:(params 0.) "EVAL"
           (Printf.sprintf "retail join naive / stock=%d" n_stock)
           (fun () -> Whynot_proptest.Oracle.naive_eval q inst)
       in
       speedup (Printf.sprintf "/ stock=%d" n_stock) naive planned)
    (sweep [ 500; 1000; 2000; 4000 ]);
  row "-- Boolean short-circuit: holds on the first witness --@.";
  let _, inst =
    Generate.cities_like ~n_cities:160 ~n_countries:32 ~n_connections:320 ()
  in
  let q_bool =
    Cq.make ~head:[]
      ~atoms:
        [
          { Cq.rel = "Train-Connections"; args = [ Cq.Var "x"; Cq.Var "z" ] };
          { Cq.rel = "Train-Connections"; args = [ Cq.Var "z"; Cq.Var "y" ] };
        ]
      ()
  in
  ignore (Cq.holds q_bool inst);
  let holds_t =
    timed_ns ~params:[ ("cities", 160.); ("kernel", 1.) ] "EVAL"
      "boolean holds (short-circuit)"
      (fun () -> Cq.holds q_bool inst)
  in
  let eval_t =
    timed_ns ~params:[ ("cities", 160.); ("kernel", 1.) ] "EVAL"
      "boolean via full eval"
      (fun () -> not (Relation.is_empty (Cq.eval q_bool inst)))
  in
  speedup "holds vs full eval" eval_t holds_t

(* ================================================================== *)
(* SERVE: the wire server under load                                   *)
(* ================================================================== *)

(* Rows measured by the load generator rather than bechamel: the
   quantity of interest is tail latency under concurrency, which an OLS
   fit over repeated single-threaded runs cannot see. [ns_per_op] is the
   mean per-request wall clock; the percentiles travel in [params]. *)
let raw_row id label ~params ~ns ~counters =
  row "  %-42s %a@." label pp_time (Some ns);
  bench_rows :=
    { r_id = id; r_label = label; r_params = params; r_ns = ns;
      r_counters = counters }
    :: !bench_rows

module Server = Whynot_server.Server

let serve_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* One blocking request/response exchange; returns the reply's error
   code ([""] for a result envelope). The reply JSON goes through the
   wire decoder, so the generator measures the full codec path. *)
let serve_rpc fd rdbuf line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (len - !off)
  done;
  let chunk = Bytes.create 8192 in
  let rec next_line () =
    let s = Buffer.contents rdbuf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear rdbuf;
      Buffer.add_substring rdbuf s (i + 1) (String.length s - i - 1);
      String.sub s 0 i
    | None ->
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then failwith "server closed the connection";
      Buffer.add_subbytes rdbuf chunk 0 n;
      next_line ()
  in
  let reply = next_line () in
  match Wire_json.of_string reply with
  | Error _ -> failwith ("unparsable reply: " ^ reply)
  | Ok j ->
    (match Wire_json.member "error" j with
     | Some e ->
       (match Option.bind (Wire_json.member "code" e) Wire_json.to_string_opt
        with
        | Some c -> c
        | None -> "error")
     | None -> "")

let percentile_us sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int n /. 100.)) - 1 in
    sorted.(max 0 (min (n - 1) rank)) /. 1e3
  end

let serve_phase ~label ~port ~clients ~requests ~request_of ~session_of =
  (* [clients] threads, each with its own connection and session, each
     issuing [requests] requests back to back. Returns per-request
     latencies (ns) plus the client-observed shed/timeout counts. *)
  let latencies = Array.make (clients * requests) 0. in
  let shed = Atomic.make 0 and timeouts = Atomic.make 0 in
  let t_start = Obs.now_s () in
  let client i () =
    let fd = serve_connect port in
    let rdbuf = Buffer.create 1024 in
    let session = session_of i in
    (* Session management must succeed even when the measured phase sheds
       aggressively, or the shed totals would double-count management
       requests: retry until admitted, counting each shed reply. *)
    let rec admitted line =
      if serve_rpc fd rdbuf line = "overloaded" then begin
        Atomic.incr shed;
        Thread.delay 0.005;
        admitted line
      end
    in
    admitted
      (Printf.sprintf
         "{\"op\":\"create\",\"session\":\"%s\",\"workload\":\"cities\"}"
         session);
    for k = 0 to requests - 1 do
      let t0 = Obs.now_s () in
      let code = serve_rpc fd rdbuf (request_of session k) in
      latencies.((i * requests) + k) <- (Obs.now_s () -. t0) *. 1e9;
      if code = "overloaded" then Atomic.incr shed
      else if code = "timeout" then Atomic.incr timeouts
    done;
    admitted (Printf.sprintf "{\"op\":\"close\",\"session\":\"%s\"}" session);
    Unix.close fd
  in
  let threads = List.init clients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall_s = Obs.now_s () -. t_start in
  Array.sort compare latencies;
  let total = clients * requests in
  let mean_ns = Array.fold_left ( +. ) 0. latencies /. float_of_int total in
  ( label,
    [
      ("clients", float_of_int clients);
      ("requests", float_of_int total);
      ("p50_us", percentile_us latencies 50.);
      ("p95_us", percentile_us latencies 95.);
      ("p99_us", percentile_us latencies 99.);
      ("rps", float_of_int total /. wall_s);
      ("shed", float_of_int (Atomic.get shed));
      ("timeouts", float_of_int (Atomic.get timeouts));
    ],
    mean_ns )

let serve_bench () =
  header "SERVE" "wire server under load (throughput, tails, shedding)";
  let base =
    { Server.default_config with
      port = 0; access_log = false; default_deadline_ms = 0 }
  in
  let n = if quick then 20 else 100 in
  let counter_subset counters =
    List.filter
      (fun (name, _) ->
         String.length name >= 7 && String.sub name 0 7 = "server.")
      counters
  in
  let run_phase server ~label ~clients ~requests ~request_of ~session_of =
    let port = Server.port server in
    let result = ref None in
    let (), counters =
      Obs.delta (fun () ->
        result :=
          Some
            (serve_phase ~label ~port ~clients ~requests ~request_of
               ~session_of))
    in
    let label, params, mean_ns = Option.get !result in
    let counters = counter_subset counters in
    let ctr name =
      float_of_int (Option.value (List.assoc_opt name counters) ~default:0)
    in
    raw_row "SERVE" label
      ~params:
        (params
         @ [ ("shed_ctr", ctr "server.shed");
             ("timeout_ctr", ctr "server.timeouts") ])
      ~ns:mean_ns ~counters
  in
  (* Phase 1: sustained one_mge traffic, no artificial limits. *)
  (match Server.start base with
   | Error msg -> row "  server failed to start: %s@." msg
   | Ok server ->
     run_phase server
       ~label:(Printf.sprintf "one_mge, 4 clients x %d" n)
       ~clients:4 ~requests:n
       ~request_of:(fun session _ ->
         Printf.sprintf "{\"op\":\"one_mge\",\"session\":\"%s\"}" session)
       ~session_of:(Printf.sprintf "load-%d");
     (* Phase 2: every request carries an already-expired deadline. *)
     run_phase server
       ~label:(Printf.sprintf "one_mge deadline_ms=0, 2 clients x %d" n)
       ~clients:2 ~requests:n
       ~request_of:(fun session _ ->
         Printf.sprintf
           "{\"op\":\"one_mge\",\"session\":\"%s\",\"deadline_ms\":0}"
           session)
       ~session_of:(Printf.sprintf "ttl-%d");
     Server.initiate_shutdown server;
     Server.wait server);
  (* Phase 3: more clients than execution slots — load shedding. *)
  match
    Server.start { base with max_inflight = 1; debug_ops = true }
  with
  | Error msg -> row "  server failed to start: %s@." msg
  | Ok server ->
    run_phase server
      ~label:
        (Printf.sprintf "debug_sleep(5ms) max_inflight=1, 4 clients x %d"
           (n / 2))
      ~clients:4 ~requests:(n / 2)
      ~request_of:(fun session _ ->
        Printf.sprintf
          "{\"op\":\"debug_sleep\",\"session\":\"%s\",\"ms\":5}" session)
      ~session_of:(Printf.sprintf "shed-%d");
    Server.initiate_shutdown server;
    Server.wait server

let () =
  Format.printf "why-not explanations: benchmark harness@.";
  Format.printf "(experiment ids refer to DESIGN.md / EXPERIMENTS.md)@.";
  if quick then Format.printf "(--quick: CI smoke sweep)@.";
  ex_3_4 ();
  ex_4_5 ();
  ex_4_9 ();
  ex_retail ();
  tab1 ();
  alg1 ();
  existence ();
  alg2 ();
  alg2_sigma ();
  memo_bench ();
  par_bench ();
  eval_bench ();
  p4_2 ();
  p6_2 ();
  p6_4 ();
  dllite ();
  obda_scaling ();
  rewrite_bench ();
  datalog_bench ();
  serve_bench ();
  write_report "BENCH_whynot.json";
  Format.printf "@.done.@."
