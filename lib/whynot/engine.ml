open Whynot_relational
module W = Whynot_core.Whynot
module Ontology = Whynot_core.Ontology
module Incremental = Whynot_core.Incremental
module Exhaustive = Whynot_core.Exhaustive
module Schema_mge = Whynot_core.Schema_mge
module Subsume_memo = Whynot_concept.Subsume_memo
module Pool = Whynot_parallel.Pool
module Par_exhaustive = Whynot_parallel.Par_exhaustive
module Par_incremental = Whynot_parallel.Par_incremental
module Obs = Whynot_obs.Obs

type t = {
  schema : Schema.t option;
  instance : Instance.t;
  pool : Pool.t;
  (* Slot 0 is the shared interned handle; slots 1.. are domain-private.
     Workers warm their private caches during a parallel run, and the
     verdicts are merged back into slot 0 when the run retires. *)
  inst_handles : Subsume_memo.inst array;
  schema_handles : Subsume_memo.schema array option;
  mutable closed : bool;
}

let create ?schema ?(domains = 1) ~instance () =
  if domains < 1 then
    Error
      (`Invalid_config
         (Printf.sprintf "Engine.create: domains must be >= 1 (got %d)" domains))
  else
    let inst_handles =
      Array.init domains (fun w ->
          if w = 0 then Subsume_memo.inst instance
          else Subsume_memo.private_inst instance)
    in
    let schema_handles =
      Option.map
        (fun s ->
           Array.init domains (fun w ->
               if w = 0 then Subsume_memo.schema s
               else Subsume_memo.private_schema s))
        schema
    in
    Ok
      {
        schema;
        instance;
        pool = Pool.create ~domains;
        inst_handles;
        schema_handles;
        closed = false;
      }

let domains e = Pool.size e.pool
let schema e = e.schema
let instance e = e.instance
let is_closed e = e.closed

let own_question e wn k =
  if wn.W.instance == e.instance then k ()
  else
    Error
      (`Invalid_config
         "the why-not question was not built over this engine's instance")

(* Merge every domain-private verdict cache back into the shared handle, so
   later operations (sequential or parallel) start warm. *)
let join_caches e =
  let shared = e.inst_handles.(0) in
  Array.iteri
    (fun w h -> if w > 0 then Subsume_memo.absorb_inst ~into:shared h)
    e.inst_handles;
  Option.iter
    (fun hs ->
       Array.iteri
         (fun w h -> if w > 0 then Subsume_memo.absorb_schema ~into:hs.(0) h)
         hs)
    e.schema_handles

let joined e r =
  join_caches e;
  r

(* Every operation funnels through this guard, so a closed engine answers
   [`Closed] uniformly and a tripped cooperative deadline surfaces as
   [`Timeout] instead of an escaping exception. The private worker caches
   are still merged on the timeout path: whatever verdicts were computed
   before the trip are valid and keep later operations warm. *)
let guard e k =
  if e.closed then Error (`Closed "the engine has been closed")
  else
    match k () with
    | r -> r
    | exception Subsume_memo.Deadline_exceeded ->
      join_caches e;
      Error (`Timeout "the operation exceeded its deadline")

(* [Some t]: every operation issued (or already running) on this engine
   unwinds with [`Timeout] once [Whynot_obs.Obs.now_s () > t]. The
   deadline is installed on the shared and every per-worker memo handle,
   so parallel searches observe it on all domains. *)
let set_deadline e d =
  Array.iter (fun h -> Subsume_memo.set_inst_deadline h d) e.inst_handles;
  Option.iter
    (Array.iter (fun h -> Subsume_memo.set_schema_deadline h d))
    e.schema_handles

let question ?answers e ~query ~missing () =
  guard e (fun () ->
      W.make ?schema:e.schema ?answers ~instance:e.instance ~query ~missing ())

let pool_of ?values wn =
  match values with Some v -> v | None -> W.constant_pool wn

(* Per-worker O_I[K]: the concept list is enumerated once (on the calling
   domain) and shared; only the memoised [mem]/[subsumes] closures differ
   per slot. *)
let instance_ontology e values =
  let proto =
    Ontology.of_instance_finite ~handle:e.inst_handles.(0) e.instance values
  in
  fun ~worker ->
    if worker = 0 then proto
    else
      {
        (Ontology.of_instance ~handle:e.inst_handles.(worker) e.instance) with
        Ontology.name = proto.Ontology.name;
        concepts = proto.Ontology.concepts;
      }

let schema_ontology e sch shs fragment values =
  let minimal_only = match fragment with `Minimal -> true | _ -> false in
  let proto =
    Ontology.of_schema_finite ~minimal_only ~schema_handle:shs.(0)
      ~handle:e.inst_handles.(0) sch e.instance values
  in
  fun ~worker ->
    if worker = 0 then proto
    else
      {
        (Ontology.of_schema ~schema_handle:shs.(worker)
           ~handle:e.inst_handles.(worker) sch e.instance)
        with
        Ontology.name = proto.Ontology.name;
        concepts = proto.Ontology.concepts;
      }

(* --- Algorithm 2 (incremental, w.r.t. O_I) --- *)

let one_mge ?(variant = Incremental.Selection_free) ?order ?shorten e wn =
  guard e (fun () ->
      own_question e wn (fun () ->
          let ctx ~worker =
            Incremental.Step.make_ctx ~handle:e.inst_handles.(worker) ~variant
              wn
          in
          joined e
            (Ok (Par_incremental.one_mge e.pool ~ctx ?order ?shorten wn))))

let check_mge ?(variant = Incremental.Selection_free) e wn ex =
  guard e (fun () ->
      own_question e wn (fun () ->
          Ok (Incremental.check_mge ~handle:e.inst_handles.(0) ~variant wn ex)))

(* --- Algorithm 1 (exhaustive, w.r.t. finite ontologies) --- *)

let all_mges ?values e wn =
  guard e (fun () ->
      own_question e wn (fun () ->
          let ontology = instance_ontology e (pool_of ?values wn) in
          joined e (Par_exhaustive.all_mges e.pool ~ontology wn)))

let exists_explanation ?values e wn =
  guard e (fun () ->
      own_question e wn (fun () ->
          let ontology = instance_ontology e (pool_of ?values wn) in
          joined e (Par_exhaustive.exists_explanation e.pool ~ontology wn)))

let one_mge_exhaustive ?values e wn =
  guard e (fun () ->
      own_question e wn (fun () ->
          let ontology = instance_ontology e (pool_of ?values wn) in
          joined e (Par_exhaustive.one_mge e.pool ~ontology wn)))

let all_mges_schema ?(fragment = `Minimal) ?values e wn =
  guard e (fun () ->
      own_question e wn (fun () ->
          match (e.schema, e.schema_handles) with
          | Some sch, Some shs ->
            let ontology = schema_ontology e sch shs fragment (pool_of ?values wn) in
            joined e (Par_exhaustive.all_mges e.pool ~ontology wn)
          | _ ->
            Error
              (`Missing_input
                 "schema-level explanation requires an engine created with a \
                  schema")))

let all_mges_finite e o wn =
  guard e (fun () ->
      Par_exhaustive.all_mges e.pool ~ontology:(fun ~worker:_ -> o) wn)

(* --- observability and shutdown --- *)

let counters (_ : t) = Obs.snapshot ()

let close e =
  if not e.closed then begin
    e.closed <- true;
    (* The shared slot-0 handle is interned and may outlive this engine
       (a later engine over the same physical instance re-interns it), so
       never leave a stale deadline behind. *)
    set_deadline e None;
    join_caches e;
    Subsume_memo.clear ();
    Pool.close e.pool
  end;
  Ok ()
