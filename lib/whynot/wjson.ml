(* Hand-rolled JSON values for the CLI envelope and reports; the repo
   deliberately avoids a JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" x)
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         write buf (String k);
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- the decoder ---

   A hand-rolled recursive-descent parser, the inverse of [to_string]: the
   wire server feeds it every request line, so it must fail with a
   position-carrying [`Parse] on any malformed input rather than raise,
   and it bounds nesting depth so adversarial input cannot blow the
   OCaml stack. Floats are told apart from ints purely by the presence of
   '.', 'e' or 'E', which makes [of_string (to_string j) = j] exact for
   every finite value [to_string] can produce. *)

let max_depth = 512

exception Fail of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let utf8_add buf cp =
    (* UTF-8 encode one code point (the decoder accepts the full range;
       the encoder only ever emits \u00XX for control characters). *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           let cp = hex4 () in
           let cp =
             (* Combine a surrogate pair when one follows. *)
             if cp >= 0xD800 && cp <= 0xDBFF
                && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else fail "invalid low surrogate in \\u escape"
             end
             else cp
           in
           utf8_add buf cp
         | c -> fail (Printf.sprintf "invalid escape '\\%c'" c));
        loop ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
      do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* Integer literal beyond native int range: degrade to float. *)
        (match float_of_string_opt text with
         | Some x -> Float x
         | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing input after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) ->
    Error (`Parse (Printf.sprintf "JSON: %s at offset %d" msg p))

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None

(* --- the versioned CLI envelope --- *)

let schema_version = 2

let envelope ~command result =
  Obj
    [
      ("schema_version", Int schema_version);
      ("command", String command);
      ("result", result);
    ]

let error_envelope ~command err =
  Obj
    [
      ("schema_version", Int schema_version);
      ("command", String command);
      ( "error",
        Obj
          [
            ("code", String (Whynot_error.code err));
            ("message", String (Whynot_error.message err));
          ] );
    ]
