(* Hand-rolled JSON values for the CLI envelope and reports; the repo
   deliberately avoids a JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" x)
    else Buffer.add_string buf (Printf.sprintf "%.17g" x)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         write buf (String k);
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- the versioned CLI envelope --- *)

let schema_version = 2

let envelope ~command result =
  Obj
    [
      ("schema_version", Int schema_version);
      ("command", String command);
      ("result", result);
    ]

let error_envelope ~command err =
  Obj
    [
      ("schema_version", Int schema_version);
      ("command", String command);
      ( "error",
        Obj
          [
            ("code", String (Whynot_error.code err));
            ("message", String (Whynot_error.message err));
          ] );
    ]
