(** Minimal JSON values (the repo carries no JSON dependency) and the
    versioned envelope every CLI subcommand prints:

    {v {"schema_version": 2, "command": "...", "result": ...}
       {"schema_version": 2, "command": "...", "error": {"code", "message"}} v} *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation with escaped strings. *)

val of_string : string -> (t, Whynot_error.t) result
(** Parse one JSON value (the whole string must be consumed). [`Parse]
    carries the byte offset of the failure. Numbers without ['.'], ['e']
    or ['E'] become [Int] (degrading to [Float] past native-int range),
    everything else [Float] — so [of_string (to_string j) = Ok j] for
    every finite value. Nesting is bounded (512 levels), making the
    decoder safe on adversarial wire input. *)

val member : string -> t -> t option
(** First field of that name of an [Obj]; [None] otherwise. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_list_opt : t -> t list option

val schema_version : int
(** The current envelope version: [2]. *)

val envelope : command:string -> t -> t
(** Success envelope wrapping a [result]. *)

val error_envelope : command:string -> Whynot_error.t -> t
(** Error envelope with the error's kebab-case [code] and message. *)
