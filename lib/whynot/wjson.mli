(** Minimal JSON values (the repo carries no JSON dependency) and the
    versioned envelope every CLI subcommand prints:

    {v {"schema_version": 2, "command": "...", "result": ...}
       {"schema_version": 2, "command": "...", "error": {"code", "message"}} v} *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation with escaped strings. *)

val schema_version : int
(** The current envelope version: [2]. *)

val envelope : command:string -> t -> t
(** Success envelope wrapping a [result]. *)

val error_envelope : command:string -> Whynot_error.t -> t
(** Error envelope with the error's kebab-case [code] and message. *)
