(** The unified explanation engine.

    An engine bundles everything one explanation session needs — the
    instance, the optional schema, the memo handles, and a pool of worker
    domains — behind a facade whose every operation returns
    [(_, Whynot_error.t) result]. Create one per (schema, instance) pair,
    ask it why-not questions, and {!close} it when done:

    {[
      let* engine = Engine.create ~domains:4 ~instance () in
      let* wn = Engine.question engine ~query ~missing () in
      let* mge = Engine.one_mge engine wn in
      ...
      let* () = Engine.close engine
    ]}

    With [domains = n] the engine runs the MGE searches of Algorithms 1
    and 2 over [n] domains (the calling domain participates, so [n = 1]
    is exactly the sequential code path); every search returns the
    {e same} result as its sequential counterpart regardless of [n] —
    parallelism changes only the wall-clock, never the answer. Each
    worker domain owns a private subsumption-memo handle; the private
    verdict caches are merged into the shared handle when each parallel
    run joins, so sequential and parallel operations share warmth.

    Engines are not themselves thread-safe: issue operations from one
    domain at a time. *)

open Whynot_relational

type t

val create :
  ?schema:Schema.t ->
  ?domains:int ->
  instance:Instance.t ->
  unit ->
  (t, Whynot_error.t) result
(** [domains] defaults to [1]; [`Invalid_config] when [domains < 1].
    Supplying a schema enables {!all_mges_schema} and makes {!question}
    check the instance against it. *)

val domains : t -> int
val schema : t -> Schema.t option
val instance : t -> Instance.t
val is_closed : t -> bool

val set_deadline : t -> float option -> unit
(** [set_deadline e (Some t)]: operations on [e] are cancelled
    cooperatively once the wall clock ({!Whynot_obs.Obs.now_s}) passes the
    absolute time [t], returning [`Timeout] instead of a result — the
    cancellation points are the memoised subsumption/extension/lub entry
    points every search funnels through, on the shared and every
    per-worker handle, so parallel runs unwind on all domains within one
    candidate evaluation. Verdicts computed before the trip stay cached
    (the engine is left warm and fully usable). [None] clears the
    deadline. The serving layer installs a deadline per request; engines
    sharing one {e physical} instance value share the slot-0 handle and
    therefore its deadline — such engines must not run concurrently
    anyway (see the thread-safety note above). *)

val question :
  ?answers:Relation.t ->
  t ->
  query:Cq.t ->
  missing:Value.t list ->
  unit ->
  (Whynot_core.Whynot.t, Whynot_error.t) result
(** Build a why-not question over the engine's instance (and schema):
    [`Invalid_whynot] on an unsafe query, an arity mismatch, or a missing
    tuple that is in fact an answer; [`Schema_violation] when the engine
    has a schema the instance violates. *)

(** {1 Algorithm 2 — incremental search w.r.t. [O_I]} *)

val one_mge :
  ?variant:Whynot_core.Incremental.variant ->
  ?order:[ `Ascending | `Descending ] ->
  ?shorten:bool ->
  t ->
  Whynot_core.Whynot.t ->
  (Whynot_concept.Ls.t Whynot_core.Explanation.t, Whynot_error.t) result
(** A most-general explanation w.r.t. the instance-derived ontology, by
    speculative parallel absorption — identical to
    [Incremental.one_mge] for every domain count. *)

val check_mge :
  ?variant:Whynot_core.Incremental.variant ->
  t ->
  Whynot_core.Whynot.t ->
  Whynot_concept.Ls.t Whynot_core.Explanation.t ->
  (bool, Whynot_error.t) result
(** CHECK-MGE w.r.t. [O_I] (sequential; the check is a single sweep of
    single-position upgrades). *)

(** {1 Algorithm 1 — exhaustive search w.r.t. finite ontologies}

    [values] is the constant pool [K] of the finite restriction and
    defaults to [Whynot.constant_pool] of the question. *)

val all_mges :
  ?values:Value_set.t ->
  t ->
  Whynot_core.Whynot.t ->
  (Whynot_concept.Ls.t Whynot_core.Explanation.t list, Whynot_error.t) result
(** All MGEs w.r.t. [O_I[K]], the finite selection-free restriction of the
    instance-derived ontology — the parallel [Exhaustive.all_mges]. *)

val exists_explanation :
  ?values:Value_set.t ->
  t ->
  Whynot_core.Whynot.t ->
  (bool, Whynot_error.t) result

val one_mge_exhaustive :
  ?values:Value_set.t ->
  t ->
  Whynot_core.Whynot.t ->
  ( Whynot_concept.Ls.t Whynot_core.Explanation.t option,
    Whynot_error.t )
  result

val all_mges_schema :
  ?fragment:Whynot_core.Schema_mge.fragment ->
  ?values:Value_set.t ->
  t ->
  Whynot_core.Whynot.t ->
  (Whynot_concept.Ls.t Whynot_core.Explanation.t list, Whynot_error.t) result
(** All MGEs w.r.t. [O_S[K]] restricted to [fragment] (default
    [`Minimal]); [`Missing_input] when the engine was created without a
    schema. *)

val all_mges_finite :
  t ->
  'c Whynot_core.Ontology.t ->
  Whynot_core.Whynot.t ->
  ('c Whynot_core.Explanation.t list, Whynot_error.t) result
(** All MGEs w.r.t. a caller-supplied finite ontology (hand-written or
    OBDA-induced); [`Infinite_ontology] when it does not enumerate its
    concepts. The ontology's closures are shared across worker domains
    and must tolerate concurrent calls — the ontologies built by
    [Ontology.of_extensions] and [Ontology.of_obda] do. *)

(** {1 Observability and shutdown} *)

val counters : t -> (string * int) list
(** The process-global observability snapshot ({!Whynot_obs.Obs.snapshot}):
    counter values aggregate the per-domain stripes, so after an operation
    returns they account for every worker's increments. *)

val close : t -> (unit, Whynot_error.t) result
(** Merge the per-domain verdict caches into the shared handle, clear any
    pending deadline, flush the process-wide memo registries
    ({!Whynot_concept.Subsume_memo.clear}), and shut the worker domains
    down. Idempotent; any further operation on the engine fails with
    [`Closed]. *)
