(** The top-level facade: [Whynot.Engine] for computing explanations,
    [Whynot.Error] for the shared error type, [Whynot.Json] for the CLI's
    versioned output envelope. The sub-libraries ([Whynot_core],
    [Whynot_concept], ...) remain available for callers that need the
    individual algorithms. *)

module Error = Whynot_error
module Engine = Engine
module Json = Wjson
