(** The single error type of the public API.

    Every operation of the {!Whynot.Engine} facade — and every
    result-returning entry point in [lib/core] and [lib/text] — fails with
    a value of this polymorphic variant instead of raising. The payloads
    are human-readable messages (parser errors keep their [line N]
    prefixes); {!code} gives a stable machine-readable tag used by the
    CLI's JSON envelope, and the CLI maps any [Error _] to exit code 2. *)

type t =
  [ `Parse of string  (** lexer/parser failure, message carries [line N] *)
  | `Invalid_whynot of string
    (** malformed why-not or why question: unsafe query, arity mismatch,
        tuple on the wrong side of the answer set *)
  | `Schema_violation of string
    (** the instance does not satisfy the declared schema *)
  | `Infinite_ontology of string
    (** a finite-ontology algorithm was given an ontology with
        [concepts = None] *)
  | `Not_an_explanation of string
    (** an operation requiring an explanation was given a non-explanation *)
  | `Missing_input of string
    (** a required ingredient is absent (no schema on the engine, no
        query in the document, ...) *)
  | `Inconsistent of string
    (** the data is inconsistent with the ontology (OBDA retrieved
        assertions) *)
  | `Invalid_config of string
    (** bad engine configuration: non-positive domain count *)
  | `Closed of string
    (** operation on an engine (or server session) after [close] *)
  | `Timeout of string
    (** the operation was cancelled cooperatively because it exceeded its
        deadline — see [Whynot.Engine.set_deadline] *)
  | `Internal of string  (** invariant violation; please report *)
  ]

val code : t -> string
(** A stable kebab-case tag for the constructor, e.g. ["parse"],
    ["invalid-whynot"], ["infinite-ontology"] — the [error.code] field of
    the CLI's JSON envelope. *)

val message : t -> string
(** The payload message alone. *)

val to_string : t -> string
(** ["<code>: <message>"]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

val of_invalid_argument : (unit -> 'a) -> ('a, [> `Internal of string ]) result
(** Run a thunk, catching [Invalid_argument] into [`Internal] — the
    adapter used by the thin shims in [lib/core] around their [*_exn]
    internals when no more precise constructor applies. *)
