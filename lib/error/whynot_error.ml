type t =
  [ `Parse of string
  | `Invalid_whynot of string
  | `Schema_violation of string
  | `Infinite_ontology of string
  | `Not_an_explanation of string
  | `Missing_input of string
  | `Inconsistent of string
  | `Invalid_config of string
  | `Closed of string
  | `Timeout of string
  | `Internal of string
  ]

let code : t -> string = function
  | `Parse _ -> "parse"
  | `Invalid_whynot _ -> "invalid-whynot"
  | `Schema_violation _ -> "schema-violation"
  | `Infinite_ontology _ -> "infinite-ontology"
  | `Not_an_explanation _ -> "not-an-explanation"
  | `Missing_input _ -> "missing-input"
  | `Inconsistent _ -> "inconsistent"
  | `Invalid_config _ -> "invalid-config"
  | `Closed _ -> "closed"
  | `Timeout _ -> "timeout"
  | `Internal _ -> "internal"

let message : t -> string = function
  | `Parse m
  | `Invalid_whynot m
  | `Schema_violation m
  | `Infinite_ontology m
  | `Not_an_explanation m
  | `Missing_input m
  | `Inconsistent m
  | `Invalid_config m
  | `Closed m
  | `Timeout m
  | `Internal m -> m

let to_string e = code e ^ ": " ^ message e
let pp ppf e = Format.pp_print_string ppf (to_string e)

let of_invalid_argument f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument m -> Error (`Internal m)
