type counter = {
  name : string;
  mutable doc : string;
  mutable count : int;
}

type timer = {
  tname : string;
  mutable tdoc : string;
  mutable ns : int;
  mutable calls : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let counter ?(doc = "") name =
  match Hashtbl.find_opt counters name with
  | Some c ->
    if c.doc = "" && doc <> "" then c.doc <- doc;
    c
  | None ->
    let c = { name; doc; count = 0 } in
    Hashtbl.add counters name c;
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count
let name c = c.name

let timer ?(doc = "") name =
  match Hashtbl.find_opt timers name with
  | Some t ->
    if t.tdoc = "" && doc <> "" then t.tdoc <- doc;
    t
  | None ->
    let t = { tname = name; tdoc = doc; ns = 0; calls = 0 } in
    Hashtbl.add timers name t;
    t

let record_ns t ns =
  t.ns <- t.ns + ns;
  t.calls <- t.calls + 1

let time t f =
  let t0 = Unix.gettimeofday () in
  let finish () =
    record_ns t (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  match f () with
  | v ->
    finish ();
    v
  | exception exn ->
    finish ();
    raise exn

let timer_ns t = t.ns

let snapshot () =
  let counter_entries =
    Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) counters []
  in
  let timer_entries =
    Hashtbl.fold
      (fun name t acc ->
         (name ^ ".ns", t.ns) :: (name ^ ".calls", t.calls) :: acc)
      timers []
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (counter_entries @ timer_entries)

let delta f =
  let before = snapshot () in
  let v = f () in
  let after = snapshot () in
  let diff =
    List.filter_map
      (fun (name, n) ->
         let n0 = Option.value ~default:0 (List.assoc_opt name before) in
         if n - n0 <> 0 then Some (name, n - n0) else None)
      after
  in
  (v, diff)

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ t ->
       t.ns <- 0;
       t.calls <- 0)
    timers

let pp ppf () =
  let docs =
    Hashtbl.fold (fun name c acc -> (name, c.doc) :: acc) counters []
    @ Hashtbl.fold (fun name t acc -> (name, t.tdoc) :: acc) timers []
  in
  let entries = List.filter (fun (_, n) -> n <> 0) (snapshot ()) in
  if entries = [] then Format.fprintf ppf "(no events recorded)@."
  else
    List.iter
      (fun (name, n) ->
         let doc =
           (* Exact name first (counters may themselves end in [.calls]);
              timer entries then fall back to their base name. *)
           match List.assoc_opt name docs with
           | Some d when d <> "" -> d
           | _ ->
             let base =
               match Filename.extension name with
               | ".ns" | ".calls" -> Filename.remove_extension name
               | _ -> name
             in
             Option.value ~default:"" (List.assoc_opt base docs)
         in
         if doc = "" then Format.fprintf ppf "%-44s %d@." name n
         else Format.fprintf ppf "%-44s %-12d %s@." name n doc)
      entries
