(* Counters are striped: each counter owns a small array of atomic cells
   and a bump lands in the cell indexed by the current domain id, so
   concurrent domains never contend on one location and no update is ever
   lost. Reading a counter sums the stripes — the "per-domain aggregation"
   contract of the parallel engine. *)

let stripes = 16
let stripe_mask = stripes - 1

type counter = {
  name : string;
  mutable doc : string;
  cells : int Atomic.t array;
}

type timer = {
  tname : string;
  mutable tdoc : string;
  ns : int Atomic.t;
  calls : int Atomic.t;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

(* Registration can race when worker domains instantiate modules lazily;
   lookups after registration are safe because the tables are only grown
   under this lock and never resized concurrently with a bump (bumps go
   through the counter value, not the table). *)
let registry_lock = Mutex.create ()

let counter ?(doc = "") name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c ->
        if c.doc = "" && doc <> "" then c.doc <- doc;
        c
      | None ->
        let c = { name; doc; cells = Array.init stripes (fun _ -> Atomic.make 0) } in
        Hashtbl.add counters name c;
        c)

let stripe () = (Domain.self () :> int) land stripe_mask
let incr c = Atomic.incr c.cells.(stripe ())
let add c n = ignore (Atomic.fetch_and_add c.cells.(stripe ()) n)

let value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let name c = c.name

let timer ?(doc = "") name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t ->
        if t.tdoc = "" && doc <> "" then t.tdoc <- doc;
        t
      | None ->
        let t = { tname = name; tdoc = doc; ns = Atomic.make 0; calls = Atomic.make 0 } in
        Hashtbl.add timers name t;
        t)

let now_s () = Unix.gettimeofday ()

let record_ns t ns =
  ignore (Atomic.fetch_and_add t.ns ns);
  Atomic.incr t.calls

let time t f =
  let t0 = Unix.gettimeofday () in
  let finish () =
    record_ns t (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
  in
  match f () with
  | v ->
    finish ();
    v
  | exception exn ->
    finish ();
    raise exn

let timer_ns t = Atomic.get t.ns

let snapshot () =
  let counter_entries =
    Hashtbl.fold (fun name c acc -> (name, value c) :: acc) counters []
  in
  let timer_entries =
    Hashtbl.fold
      (fun name t acc ->
         (name ^ ".ns", Atomic.get t.ns)
         :: (name ^ ".calls", Atomic.get t.calls)
         :: acc)
      timers []
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (counter_entries @ timer_entries)

let delta f =
  let before = snapshot () in
  let v = f () in
  let after = snapshot () in
  let diff =
    List.filter_map
      (fun (name, n) ->
         let n0 = Option.value ~default:0 (List.assoc_opt name before) in
         if n - n0 <> 0 then Some (name, n - n0) else None)
      after
  in
  (v, diff)

let reset () =
  Hashtbl.iter
    (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells)
    counters;
  Hashtbl.iter
    (fun _ t ->
       Atomic.set t.ns 0;
       Atomic.set t.calls 0)
    timers

let pp ppf () =
  let docs =
    Hashtbl.fold (fun name c acc -> (name, c.doc) :: acc) counters []
    @ Hashtbl.fold (fun name t acc -> (name, t.tdoc) :: acc) timers []
  in
  let entries = List.filter (fun (_, n) -> n <> 0) (snapshot ()) in
  if entries = [] then Format.fprintf ppf "(no events recorded)@."
  else
    List.iter
      (fun (name, n) ->
         let doc =
           (* Exact name first (counters may themselves end in [.calls]);
              timer entries then fall back to their base name. *)
           match List.assoc_opt name docs with
           | Some d when d <> "" -> d
           | _ ->
             let base =
               match Filename.extension name with
               | ".ns" | ".calls" -> Filename.remove_extension name
               | _ -> name
             in
             Option.value ~default:"" (List.assoc_opt base docs)
         in
         if doc = "" then Format.fprintf ppf "%-44s %d@." name n
         else Format.fprintf ppf "%-44s %-12d %s@." name n doc)
      entries
