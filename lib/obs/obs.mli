(** Near-zero-overhead observability counters and timers.

    The hot paths of the explanation engine (subsumption deciders, the MGE
    algorithms, the chase) increment process-global counters through this
    module; a counter bump is a single mutable-field increment, so the
    instrumentation can stay on unconditionally. Consumers read the
    counters back as a {!snapshot} (the benchmark harness records a
    {!delta} around each measured experiment and dumps it into
    [BENCH_whynot.json]) or pretty-print them ([whynot_cli --stats]).

    Counters are registered lazily by name; names are dot-separated,
    lowest-level subsystem first (e.g. ["subsume.inst.hits"]). Registering
    the same name twice returns the same counter, so modules may simply
    call {!counter} at toplevel.

    The registry is process-global and safe to use from multiple domains:
    each counter is striped over an array of atomic cells indexed by the
    current domain id, so bumps from the parallel engine's worker domains
    never contend and are never lost; {!value} and {!snapshot} aggregate
    the per-domain stripes. A reader racing a concurrent bump may see a
    value that is off by the in-flight increments, but once the domains
    have joined the aggregate is exact. *)

type counter
(** A named monotone integer counter. *)

val counter : ?doc:string -> string -> counter
(** [counter name] registers (or retrieves) the counter called [name].
    [doc] is a one-line description shown by {!pp}; the first non-empty
    [doc] supplied for a name wins. *)

val incr : counter -> unit
(** Add 1. *)

val add : counter -> int -> unit
(** Add [n] (useful for batch counts, e.g. "candidates generated"). *)

val value : counter -> int
(** Current value since process start or the last {!reset}. *)

val name : counter -> string

val now_s : unit -> float
(** The wall clock the timers use ([Unix.gettimeofday]), re-exported so
    higher layers with no [unix] dependency of their own (the deadline
    checks of {!Whynot_concept.Subsume_memo}) share one time source. *)

type timer
(** A named accumulating wall-clock timer. Each {!time} adds the elapsed
    nanoseconds of one call; a timer surfaces in snapshots as two entries,
    [<name>.ns] (accumulated nanoseconds) and [<name>.calls]. *)

val timer : ?doc:string -> string -> timer
(** Register (or retrieve) the timer called [name]. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration into the timer.
    Exceptions propagate; the time spent is still recorded. *)

val timer_ns : timer -> int
(** Accumulated nanoseconds. *)

val snapshot : unit -> (string * int) list
(** All registered counters and timers with their current values, sorted
    by name. Timers contribute [<name>.ns] and [<name>.calls] entries. *)

val delta : (unit -> 'a) -> 'a * (string * int) list
(** Run the thunk and return the per-name increase of every counter/timer
    during the call (zero-increase entries are dropped). *)

val reset : unit -> unit
(** Zero every registered counter and timer (registrations persist). *)

val pp : Format.formatter -> unit -> unit
(** A human-readable table of every counter/timer with a non-zero value,
    with descriptions where supplied. *)
