(** Deterministic (seeded) workload generators for the benchmark harness.

    Each generator is parameterised by the quantity the corresponding
    experiment sweeps (instance size, query arity, ontology size, view
    nesting depth, ...), so `bench/main.ml` can regenerate every table and
    figure shape of EXPERIMENTS.md. *)

open Whynot_relational

(** {1 Scaled cities-style instances (Figures 1/2 blown up)} *)

val cities_like :
  ?seed:int -> n_cities:int -> n_countries:int -> n_connections:int -> unit ->
  Schema.t * Instance.t
(** The Figure 1 schema with a synthetic instance: [n_cities] cities over
    [n_countries] countries (continents assigned per country so the FD
    holds), [n_connections] train connections whose endpoints are cities
    (so the INDs hold), views materialised. *)

val cities_whynot :
  Schema.t * Instance.t -> Whynot_core.Whynot.t
(** The two-hop why-not question on a generated cities instance: why is
    (city_0, city_1) not connected in two hops? The generator guarantees the
    pair is not in the answer by removing offending connections. *)

(** {1 Scaled retail-style instances (EVAL kernel sweep)} *)

val retail_like :
  ?seed:int -> n_products:int -> n_stores:int -> n_stock:int -> unit ->
  Instance.t
(** The introduction's retail shape scaled up: [Products(pid, name,
    category, price)] over five categories, [Stores(sid, city, state)],
    and [n_stock] random [Stock(pid, sid, qty)] rows (one in five with
    quantity zero, so the canonical [qty > 0] selection filters). *)

val retail_join_query : category:string -> Cq.t
(** [q(name, city)]: the three-way Products–Stock–Stores join restricted
    to one product category (a constant in an atom position) and to
    positive quantities (a pushed-down comparison) — the EVAL benchmark's
    planned-vs-naive workload. *)

(** {1 Random finite ontologies (Algorithm 1 scaling)} *)

val random_hand_ontology :
  ?seed:int -> n_concepts:int -> n_constants:int -> unit ->
  string Whynot_core.Ontology.t
(** A random forest-shaped concept hierarchy over constants [k0..k_{n-1}]
    with monotone extensions (children's extensions are subsets of their
    parents'), instance-independent, à la Figure 3. *)

val arity_whynot :
  ?seed:int -> arity:int -> n_answers:int -> n_constants:int -> unit ->
  Whynot_core.Whynot.t
(** A why-not question of the given query arity over a chain query, with
    [n_answers] diagonal answers — the arity knob of Theorems 5.1/5.2. *)

(** {1 Schemas per Table-1 row} *)

val wide_schema : positions:int -> Schema.t
(** [ceil(positions/2)] binary relations, no constraints. *)

val fd_schema : positions:int -> Schema.t
(** Binary relations, each with the FD [1 -> 2]. *)

val ind_chain_schema : n_relations:int -> Schema.t
(** Unary-projection IND chain [R_i[1] ⊆ R_{i+1}[1]]. *)

val ucq_view_schema : n_disjuncts:int -> Schema.t
(** One flat view [V] defined as a union of [n_disjuncts] CQs over a binary
    base relation, with distinct selection constants per disjunct. *)

val nested_view_schema : depth:int -> Schema.t
(** Views [V_0, ..., V_{depth}] where [V_0] is a base-table view and each
    [V_{i+1}] joins [V_i] twice — unfolding doubles per level, the
    coNEXPTIME-shaped knob of Table 1. *)

val random_selection_free_concept :
  ?seed:int -> Schema.t -> ?conjuncts:int -> unit -> Whynot_concept.Ls.t

val random_selection_concept :
  ?seed:int -> Schema.t -> ?conjuncts:int -> ?constants:int -> unit ->
  Whynot_concept.Ls.t

(** {1 Random DL-LiteR TBoxes (D1 ablation)} *)

val random_tbox :
  ?seed:int -> n_atoms:int -> n_roles:int -> n_axioms:int -> unit ->
  Whynot_dllite.Tbox.t
