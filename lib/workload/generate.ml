open Whynot_relational

let s = Value.str
let i = Value.int
let var v = Cq.Var v
let atom rel args = { Cq.rel; args }

(* --- scaled cities --- *)

let cities_like ?(seed = 7) ~n_cities ~n_countries ~n_connections () =
  let st = Random.State.make [| seed |] in
  let city k = s (Printf.sprintf "city%03d" k) in
  let country c = s (Printf.sprintf "country%02d" c) in
  let continent c = s (Printf.sprintf "continent%d" (c mod 5)) in
  let cities_rows =
    List.init n_cities (fun k ->
        let c = k mod n_countries in
        let population =
          (* city0 stays small: it must have no outgoing connection (the
             why-not question needs (city0, city1) unreachable) and big
             cities are forced one by the BigCity IND. *)
          if k = 0 then 10_000
          else 10_000 + Random.State.int st 20_000_000
        in
        [
          city k;
          i population;
          country c;
          (* Continent is a function of the country: the FD holds. *)
          continent (c mod 5);
        ])
  in
  let connections =
    List.init n_connections (fun _ ->
        let a = Random.State.int st n_cities
        and b = Random.State.int st n_cities in
        [ city a; city b ])
  in
  (* Remove connections that would put (city0, city1) within two hops, so
     the canonical why-not question is well-formed. *)
  let connections =
    List.filter
      (fun row ->
         match row with
         | [ a; b ] ->
           not
             (Value.equal a (city 0)
              || (Value.equal b (city 1) && not (Value.equal a (city 1))))
         | _ -> true)
      connections
  in
  let schema = Cities.schema in
  let base =
    Instance.of_facts
      [ ("Cities", cities_rows); ("Train-Connections", connections) ]
  in
  (* The BigCity IND requires big cities to have outgoing connections: add
     a self-loopish connection for each big city that lacks one. *)
  let big =
    List.filter_map
      (fun row ->
         match row with
         | [ name; Value.Int pop; _; _ ] when pop >= 5_000_000 -> Some name
         | _ -> None)
      cities_rows
  in
  let base =
    List.fold_left
      (fun inst b ->
         let tc =
           Instance.relation_or_empty inst ~arity:2 "Train-Connections"
         in
         if Value_set.mem b (Relation.column 1 tc)
            || Value.equal b (city 0)
            (* city0 must stay connection-free on the left. *)
         then inst
         else
           let target = city (n_cities - 1) in
           (* Avoid creating a two-hop path from city0 to city1: fall back
              to a self-loop when the default target is city1. *)
           if Value.equal target (city 1) then
             Instance.add_fact "Train-Connections" [ b; b ] inst
           else Instance.add_fact "Train-Connections" [ b; target ] inst)
      base big
  in
  (schema, Schema.complete schema base)

let cities_whynot (schema, inst) =
  let q =
    Cq.make
      ~head:[ var "x"; var "y" ]
      ~atoms:
        [
          atom "Train-Connections" [ var "x"; var "z" ];
          atom "Train-Connections" [ var "z"; var "y" ];
        ]
      ()
  in
  Whynot_core.Whynot.make_exn ~schema ~instance:inst ~query:q
    ~missing:[ s "city000"; s "city001" ]
    ()

(* --- scaled retail --- *)

let retail_like ?(seed = 29) ~n_products ~n_stores ~n_stock () =
  let st = Random.State.make [| seed |] in
  let pid k = s (Printf.sprintf "P%04d" k) in
  let sid k = s (Printf.sprintf "S%03d" k) in
  let categories = [| "audio"; "computing"; "kitchen"; "garden"; "toys" |] in
  let products =
    List.init n_products (fun k ->
        [
          pid k;
          s (Printf.sprintf "product %d" k);
          s categories.(Random.State.int st (Array.length categories));
          i (5 + Random.State.int st 500);
        ])
  in
  let stores =
    List.init n_stores (fun k ->
        [
          sid k;
          s (Printf.sprintf "city%02d" (k mod 17));
          s (Printf.sprintf "state%d" (k mod 5));
        ])
  in
  let stock =
    List.init n_stock (fun _ ->
        [
          pid (Random.State.int st n_products);
          sid (Random.State.int st n_stores);
          (* One row in five is a zero-quantity row, so the qty > 0
             comparison actually filters. *)
          i (if Random.State.int st 5 = 0 then 0
             else 1 + Random.State.int st 50);
        ])
  in
  Instance.of_facts
    [ ("Products", products); ("Stores", stores); ("Stock", stock) ]

let retail_join_query ~category =
  Cq.make
    ~head:[ var "n"; var "city" ]
    ~atoms:
      [
        atom "Products" [ var "p"; var "n"; Cq.Const (s category); var "pr" ];
        atom "Stock" [ var "p"; var "st"; var "q" ];
        atom "Stores" [ var "st"; var "city"; var "state" ];
      ]
    ~comparisons:[ { Cq.subject = "q"; op = Cmp_op.Gt; value = i 0 } ]
    ()

(* --- random hand ontologies --- *)

let random_hand_ontology ?(seed = 11) ~n_concepts ~n_constants () =
  let st = Random.State.make [| seed |] in
  let constant k = s (Printf.sprintf "k%d" k) in
  let all = List.init n_constants constant in
  (* Concept 0 is the root with the full extension; every other concept
     picks a parent among earlier concepts and a random subset of the
     parent's extension. *)
  let extensions = Array.make n_concepts Value_set.empty in
  extensions.(0) <- Value_set.of_list all;
  let subsumptions = ref [] in
  for c = 1 to n_concepts - 1 do
    let parent = Random.State.int st c in
    let parent_ext = Value_set.elements extensions.(parent) in
    let sub =
      List.filter (fun _ -> Random.State.bool st) parent_ext
    in
    let sub = match sub with [] -> [ List.nth parent_ext (Random.State.int st (List.length parent_ext)) ] | _ -> sub in
    extensions.(c) <- Value_set.of_list sub;
    subsumptions :=
      (Printf.sprintf "C%d" c, Printf.sprintf "C%d" parent) :: !subsumptions
  done;
  Whynot_core.Ontology.of_extensions ~name:"random-hand"
    ~subsumptions:!subsumptions
    ~extensions:
      (List.init n_concepts (fun c -> (Printf.sprintf "C%d" c, extensions.(c))))

let arity_whynot ?(seed = 13) ~arity ~n_answers ~n_constants () =
  ignore seed;
  ignore n_constants;
  let x u = s (Printf.sprintf "x%d" u) in
  let inst =
    List.fold_left
      (fun inst u -> Instance.add_fact "E" [ x u; x u ] inst)
      Instance.empty
      (List.init n_answers (fun u -> u))
  in
  let head = List.init arity (fun k -> var (Printf.sprintf "v%d" k)) in
  let atoms =
    if arity = 1 then [ atom "E" [ var "v0"; var "v0" ] ]
    else
      List.init (arity - 1) (fun k ->
          atom "E" [ var (Printf.sprintf "v%d" k); var (Printf.sprintf "v%d" (k + 1)) ])
  in
  let q = Cq.make ~head ~atoms () in
  Whynot_core.Whynot.make_exn ~instance:inst ~query:q
    ~missing:(List.init arity (fun _ -> s "a"))
    ()

(* --- schemas per Table-1 row --- *)

let binary_rel k =
  { Schema.name = Printf.sprintf "R%d" k; attrs = [ "a"; "b" ] }

let wide_schema ~positions =
  let n = (positions + 1) / 2 in
  Schema.make_exn (List.init n binary_rel)

let fd_schema ~positions =
  let n = (positions + 1) / 2 in
  Schema.make_exn
    ~fds:
      (List.init n (fun k ->
           Fd.make ~rel:(Printf.sprintf "R%d" k) ~lhs:[ 1 ] ~rhs:[ 2 ]))
    (List.init n binary_rel)

let ind_chain_schema ~n_relations =
  Schema.make_exn
    ~inds:
      (List.init (n_relations - 1) (fun k ->
           Ind.make
             ~lhs_rel:(Printf.sprintf "R%d" k)
             ~lhs_attrs:[ 1 ]
             ~rhs_rel:(Printf.sprintf "R%d" (k + 1))
             ~rhs_attrs:[ 1 ]))
    (List.init n_relations binary_rel)

let ucq_view_schema ~n_disjuncts =
  let disjuncts =
    List.init n_disjuncts (fun k ->
        Cq.make ~head:[ var "x" ]
          ~atoms:[ atom "R0" [ var "x"; var "y" ] ]
          ~comparisons:[ { Cq.subject = "y"; op = Cmp_op.Eq; value = i k } ]
          ())
  in
  Schema.make_exn
    ~views:[ { View.name = "V"; body = Ucq.make disjuncts } ]
    [ binary_rel 0; { Schema.name = "V"; attrs = [ "a" ] } ]

let nested_view_schema ~depth =
  let v k = Printf.sprintf "V%d" k in
  let base_view =
    {
      View.name = v 0;
      body =
        Ucq.of_cq
          (Cq.make
             ~head:[ var "x"; var "y" ]
             ~atoms:[ atom "R0" [ var "x"; var "y" ] ]
             ());
    }
  in
  let level k =
    {
      View.name = v k;
      body =
        Ucq.of_cq
          (Cq.make
             ~head:[ var "x"; var "y" ]
             ~atoms:
               [
                 atom (v (k - 1)) [ var "x"; var "z" ];
                 atom (v (k - 1)) [ var "z"; var "y" ];
               ]
             ());
    }
  in
  Schema.make_exn
    ~views:(base_view :: List.init depth (fun k -> level (k + 1)))
    (binary_rel 0
     :: List.init (depth + 1) (fun k -> { Schema.name = v k; attrs = [ "a"; "b" ] }))

let random_selection_free_concept ?(seed = 17) schema ?(conjuncts = 2) () =
  let st = Random.State.make [| seed |] in
  let positions = Schema.positions schema in
  let pick () = List.nth positions (Random.State.int st (List.length positions)) in
  Whynot_concept.Ls.meet_all
    (List.init conjuncts (fun _ ->
         let rel, attr = pick () in
         Whynot_concept.Ls.proj ~rel ~attr ()))

let random_selection_concept ?(seed = 19) schema ?(conjuncts = 2) ?(constants = 5) () =
  let st = Random.State.make [| seed |] in
  let positions = Schema.positions schema in
  let pick () = List.nth positions (Random.State.int st (List.length positions)) in
  Whynot_concept.Ls.meet_all
    (List.init conjuncts (fun _ ->
         let rel, attr = pick () in
         let arity = Option.value ~default:2 (Schema.arity schema rel) in
         let sel_attr = 1 + Random.State.int st arity in
         let op =
           List.nth Cmp_op.all (Random.State.int st (List.length Cmp_op.all))
         in
         Whynot_concept.Ls.proj ~rel ~attr
           ~sels:
             [ { Whynot_concept.Ls.attr = sel_attr; op;
                 value = i (Random.State.int st constants) } ]
           ()))

let random_tbox ?(seed = 23) ~n_atoms ~n_roles ~n_axioms () =
  let st = Random.State.make [| seed |] in
  let open Whynot_dllite in
  let atom_g () = Dl.Atom (Printf.sprintf "A%d" (Random.State.int st n_atoms)) in
  let role_g () =
    let p = Printf.sprintf "P%d" (Random.State.int st (max 1 n_roles)) in
    if Random.State.bool st then Dl.Named p else Dl.Inv p
  in
  let basic_g () =
    if n_roles > 0 && Random.State.int st 3 = 0 then Dl.Exists (role_g ())
    else atom_g ()
  in
  let axiom_g () =
    match Random.State.int st 10 with
    | 0 | 1 -> Tbox.Concept_incl (basic_g (), Dl.Not (basic_g ()))
    | 2 when n_roles > 0 -> Tbox.Role_incl (role_g (), Dl.R (role_g ()))
    | _ -> Tbox.Concept_incl (basic_g (), Dl.B (basic_g ()))
  in
  Tbox.make (List.init n_axioms (fun _ -> axiom_g ()))
