(** The query-evaluation subsystem, as one surface.

    The kernel physically lives in [whynot_relational] — {!Index}
    ([Eval_index]) because it only needs instances and relations, and
    {!Plan} ([Cq.Plan]) because [Cq.eval]/[Cq.holds] must reach the
    planner without a dependency cycle between libraries. This facade is
    the subsystem's public name: depend on [whynot_eval] and use
    [Whynot_eval.query]/[Whynot_eval.ask] when evaluating many queries
    against one instance and the handle should be created once. *)

open Whynot_relational

module Index = Eval_index
(** Indexed instance storage: interned per-instance handles carrying
    tuple arrays, pattern (bound-column) hash indexes, and per-column
    value indexes. *)

module Plan = Cq.Plan
(** Greedy join planning and slot-compiled execution over {!Index}. *)

let index = Eval_index.of_instance
(** The interned index handle for an instance ([Index.of_instance]). *)

let query idx q = Cq.Plan.eval idx q
(** All answers of [q] over the indexed instance. *)

let ask idx q = Cq.Plan.holds idx q
(** Boolean evaluation; stops at the first witness. *)

let assignments idx q = Cq.Plan.eval_assignments idx q
(** Satisfying assignments restricted to [Cq.vars q]. *)

let clear = Eval_index.clear
(** Flush the handle registry (cold-start measurements). *)
