(** Why explanations — the dual problem the paper poses as future work
    (§7): explain why a tuple [a ∈ q(I)] {e is} an answer, at the ontology
    level.

    We adapt Definition 3.2 dually: a tuple of concepts [(C_1, ..., C_m)]
    is a {b why explanation} for [a ∈ q(I)] w.r.t. [O] if

    - [a_i ∈ ext(C_i, I)] for every [i], and
    - [ext(C_1, I) × ... × ext(C_m, I) ⊆ q(I)]: {e every} tuple of the
      product is an answer.

    A most-general why explanation generalises the single witness [a] to
    the broadest concept rectangle inside the answer set — e.g. "(Amsterdam,
    Rome) is an answer because {e every} pair of a city with an outgoing
    Berlin connection and a city reachable from Berlin is". The nominal
    tuple [({a_1}, ..., {a_m})] is always a why explanation, and the same
    incremental strategy as Algorithm 2 computes a most-general one w.r.t.
    [O_I] in polynomial time (selection-free). *)

open Whynot_relational

type t = private {
  instance : Instance.t;
  query : Cq.t;
  answers : Relation.t;
  witness : Tuple.t;
}

val make :
  ?answers:Relation.t ->
  instance:Instance.t ->
  query:Cq.t ->
  witness:Value.t list ->
  unit ->
  (t, Whynot_error.t) result
(** Requires [witness ∈ q(I)] — the mirror image of {!Whynot.make};
    failures are [`Invalid_whynot]. *)

val make_exn :
  ?answers:Relation.t ->
  instance:Instance.t ->
  query:Cq.t ->
  witness:Value.t list ->
  unit ->
  t
(** @deprecated Prefer {!make}; raises [Invalid_argument] on [Error]. *)

val is_why_explanation : 'c Ontology.t -> t -> 'c Explanation.t -> bool
(** The dual conditions: every [a_i ∈ ext(C_i)] and the product of the
    extensions stays {e inside} the answer set. *)

val one_mge :
  ?variant:Incremental.variant ->
  t ->
  Whynot_concept.Ls.t Explanation.t
(** A most-general why explanation w.r.t. [O_I], by the incremental
    strategy: grow each position's support set through the active domain,
    keeping the product inside the answer set. *)

val check_mge :
  ?variant:Incremental.variant ->
  t ->
  Whynot_concept.Ls.t Explanation.t ->
  bool
(** Is the candidate a why explanation admitting no strict
    single-position upgrade within the fragment? *)
