open Whynot_relational
module Obs = Whynot_obs.Obs

let c_candidates =
  Obs.counter "mge.exhaustive.candidates"
    ~doc:"Algorithm 1 per-position candidate concepts retained"

let c_tuples =
  Obs.counter "mge.exhaustive.tuples"
    ~doc:"Algorithm 1 candidate explanation tuples examined"

let concepts_exn o =
  match o.Ontology.concepts with
  | Some cs -> cs
  | None -> invalid_arg "Exhaustive: the ontology must be finite"

(* Per-position candidate concepts: those whose extension contains the
   corresponding component of the missing tuple (line 1 of Algorithm 1). *)
let candidates o wn =
  let cs = concepts_exn o in
  let per_position =
    List.map
      (fun a -> List.filter (fun c -> o.Ontology.mem c a) cs)
      (Whynot.missing_values wn)
  in
  List.iter (fun cands -> Obs.add c_candidates (List.length cands)) per_position;
  per_position

(* The kill-set of a concept at a position: which answer tuples have their
   component outside the concept's extension. Explanations are exactly the
   tuples of candidates whose kill-sets cover all answers. *)
let kill_set o wn position c =
  let answers = Relation.to_list wn.Whynot.answers in
  List.mapi (fun i t -> (i, not (o.Ontology.mem c (Tuple.get t (position + 1))))) answers
  |> List.filter_map (fun (i, killed) -> if killed then Some i else None)

module Int_set = Set.Make (Int)

let product_fold f acc per_position =
  let rec go acc chosen = function
    | [] -> f acc (List.rev chosen)
    | cands :: rest ->
      List.fold_left (fun acc c -> go acc (c :: chosen) rest) acc cands
  in
  go acc [] per_position

let enumerate_explanations o wn per_position =
  let n_answers = Relation.cardinal wn.Whynot.answers in
  let all = Int_set.of_list (List.init n_answers (fun i -> i)) in
  let with_kills =
    List.mapi
      (fun pos cands ->
         List.map (fun c -> (c, Int_set.of_list (kill_set o wn pos c))) cands)
      per_position
  in
  product_fold
    (fun acc chosen ->
       Obs.incr c_tuples;
       let killed =
         List.fold_left
           (fun s (_, ks) -> Int_set.union s ks)
           Int_set.empty chosen
       in
       if Int_set.equal killed all then List.map fst chosen :: acc else acc)
    [] with_kills

let keep_most_general o explanations =
  (* Drop explanations strictly below another; keep one representative per
     equivalence class. *)
  let maximal =
    List.filter
      (fun e ->
         not
           (List.exists
              (fun e' -> Explanation.strictly_less_general o e e')
              explanations))
      explanations
  in
  List.fold_left
    (fun acc e ->
       if List.exists (fun e' -> Explanation.equivalent o e e') acc then acc
       else e :: acc)
    [] maximal
  |> List.rev

let all_mges_unpruned_exn o wn =
  keep_most_general o (enumerate_explanations o wn (candidates o wn))

(* Preprocessing for the pruned variant: per position, drop a candidate
   when another candidate subsumes it and kills at least the same answers —
   the dropped one can never appear in a most-general explanation that the
   keeper cannot match or beat. *)
let prune_candidates o wn per_position =
  List.mapi
    (fun pos cands ->
       let with_kills =
         List.map (fun c -> (c, Int_set.of_list (kill_set o wn pos c))) cands
       in
       let dominated (c, ks) =
         List.exists
           (fun (c', ks') ->
              (not (o.Ontology.equal c c'))
              && o.Ontology.subsumes c c'
              && (not (o.Ontology.subsumes c' c))
              && Int_set.subset ks ks')
           with_kills
       in
       List.map fst (List.filter (fun ck -> not (dominated ck)) with_kills))
    per_position

let all_mges_exn o wn =
  let per_position = prune_candidates o wn (candidates o wn) in
  keep_most_general o (enumerate_explanations o wn per_position)

(* Existence: backtracking over positions accumulating killed answers, with
   the pruning rule that the remaining positions must be able to cover the
   still-alive answers. *)
let exists_explanation_exn o wn =
  let per_position = candidates o wn in
  if List.length per_position <> Whynot.arity wn then false
  else if List.exists (fun cands -> cands = []) per_position then false
  else
    let n_answers = Relation.cardinal wn.Whynot.answers in
    let all = Int_set.of_list (List.init n_answers (fun i -> i)) in
    let with_kills =
      List.mapi
        (fun pos cands ->
           List.map (fun c -> Int_set.of_list (kill_set o wn pos c)) cands)
        per_position
    in
    (* Union of everything a position can still kill. *)
    let position_reach =
      List.map
        (fun kss -> List.fold_left Int_set.union Int_set.empty kss)
        with_kills
    in
    let rec suffix_reach = function
      | [] -> [ Int_set.empty ]
      | r :: rest ->
        let tails = suffix_reach rest in
        Int_set.union r (List.hd tails) :: tails
    in
    let reaches = suffix_reach position_reach in
    let rec search killed kss reaches =
      match kss, reaches with
      | [], _ -> Int_set.equal killed all
      | kill_options :: rest, _ :: rest_reach ->
        let reachable =
          match rest_reach with
          | r :: _ -> r
          | [] -> Int_set.empty
        in
        List.exists
          (fun ks ->
             let killed' = Int_set.union killed ks in
             Int_set.subset (Int_set.diff all killed') reachable
             && search killed' rest rest_reach)
          kill_options
      | _ :: _, [] -> false
    in
    search Int_set.empty with_kills reaches

let strict_upgrades o c =
  List.filter
    (fun c' ->
       o.Ontology.subsumes c c' && not (o.Ontology.subsumes c' c))
    (concepts_exn o)

let upgrade_once o wn e =
  (* Try to strictly generalise a single position. *)
  let rec try_positions before = function
    | [] -> None
    | c :: rest ->
      let candidate_up =
        List.find_opt
          (fun c' ->
             Explanation.is_explanation o wn
               (List.rev_append before (c' :: rest)))
          (strict_upgrades o c)
      in
      (match candidate_up with
       | Some c' -> Some (List.rev_append before (c' :: rest))
       | None -> try_positions (c :: before) rest)
  in
  try_positions [] e

let rec generalise_exn o wn e =
  if not (Explanation.is_explanation o wn e) then
    invalid_arg "Exhaustive.generalise: not an explanation";
  match upgrade_once o wn e with
  | None -> e
  | Some e' -> generalise_exn o wn e'

let is_most_general_exn o wn e = upgrade_once o wn e = None

let check_mge_exn o wn e =
  Explanation.is_explanation o wn e && is_most_general_exn o wn e

let one_mge_exn o wn =
  (* Find any explanation via the existence search, then climb. *)
  let per_position = candidates o wn in
  if List.exists (fun cands -> cands = []) per_position then None
  else
    let n_answers = Relation.cardinal wn.Whynot.answers in
    let all = Int_set.of_list (List.init n_answers (fun i -> i)) in
    let with_kills =
      List.mapi
        (fun pos cands ->
           List.map (fun c -> (c, Int_set.of_list (kill_set o wn pos c))) cands)
        per_position
    in
    let rec search killed chosen = function
      | [] ->
        if Int_set.equal killed all then Some (List.rev chosen) else None
      | options :: rest ->
        List.fold_left
          (fun found (c, ks) ->
             match found with
             | Some _ -> found
             | None -> search (Int_set.union killed ks) (c :: chosen) rest)
          None options
    in
    Option.map (generalise_exn o wn) (search Int_set.empty [] with_kills)

(* --- lazy enumeration --- *)

let explanations_seq_exn o wn =
  let per_position = candidates o wn in
  let n_answers = Relation.cardinal wn.Whynot.answers in
  let all = Int_set.of_list (List.init n_answers (fun i -> i)) in
  let with_kills =
    List.mapi
      (fun pos cands ->
         List.map (fun c -> (c, Int_set.of_list (kill_set o wn pos c))) cands)
      per_position
  in
  let rec seq killed chosen rest () =
    match rest with
    | [] ->
      if Int_set.equal killed all then Seq.Cons (List.rev chosen, Seq.empty)
      else Seq.Nil
    | options :: more ->
      let branches =
        List.to_seq options
        |> Seq.concat_map (fun (c, ks) ->
            seq (Int_set.union killed ks) (c :: chosen) more)
      in
      branches ()
  in
  if List.length per_position <> Whynot.arity wn then Seq.empty
  else seq Int_set.empty [] with_kills

let mges_seq_exn o wn =
  let seen = ref [] in
  explanations_seq_exn o wn
  |> Seq.filter (fun e -> is_most_general_exn o wn e)
  |> Seq.filter (fun e ->
      if List.exists (fun e' -> Explanation.equivalent o e e') !seen then false
      else begin
        seen := e :: !seen;
        true
      end)

(* --- result-returning public surface --- *)

let finite o k =
  match o.Ontology.concepts with
  | Some _ -> k ()
  | None ->
    Error
      (`Infinite_ontology
         ("Exhaustive: ontology " ^ o.Ontology.name ^ " is not finite"))

let all_mges o wn = finite o (fun () -> Ok (all_mges_exn o wn))
let all_mges_unpruned o wn = finite o (fun () -> Ok (all_mges_unpruned_exn o wn))
let exists_explanation o wn = finite o (fun () -> Ok (exists_explanation_exn o wn))
let one_mge o wn = finite o (fun () -> Ok (one_mge_exn o wn))
let check_mge o wn e = finite o (fun () -> Ok (check_mge_exn o wn e))
let is_most_general o wn e = finite o (fun () -> Ok (is_most_general_exn o wn e))

let generalise o wn e =
  finite o (fun () ->
      if Explanation.is_explanation o wn e then Ok (generalise_exn o wn e)
      else
        Error (`Not_an_explanation "Exhaustive.generalise: not an explanation"))

let explanations_seq o wn = finite o (fun () -> Ok (explanations_seq_exn o wn))
let mges_seq o wn = finite o (fun () -> Ok (mges_seq_exn o wn))

(* --- the exploration plan shared with Whynot_parallel --- *)

module Plan = struct
  type 'c position = {
    candidates : ('c * Int_set.t) array;  (* candidate, kill-set *)
  }

  type 'c t = {
    ontology : 'c Ontology.t;
    whynot : Whynot.t;
    all_answers : Int_set.t;
    positions : 'c position array;
  }

  let prepare ?(prune = true) o wn =
    finite o (fun () ->
        let per_position = candidates o wn in
        let per_position =
          if prune then prune_candidates o wn per_position else per_position
        in
        let n_answers = Relation.cardinal wn.Whynot.answers in
        let all = Int_set.of_list (List.init n_answers (fun i -> i)) in
        let positions =
          Array.of_list
            (List.mapi
               (fun pos cands ->
                  {
                    candidates =
                      Array.of_list
                        (List.map
                           (fun c ->
                              (c, Int_set.of_list (kill_set o wn pos c)))
                           cands);
                  })
               per_position)
        in
        Ok { ontology = o; whynot = wn; all_answers = all; positions })
end
