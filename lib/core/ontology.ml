open Whynot_relational

type 'c t = {
  name : string;
  concepts : 'c list option;
  subsumes : 'c -> 'c -> bool;
  mem : 'c -> Value.t -> bool;
  equal : 'c -> 'c -> bool;
  pp : Format.formatter -> 'c -> unit;
}

let equivalent o c1 c2 = o.subsumes c1 c2 && o.subsumes c2 c1

let consistency_violations_exn o probes =
  match o.concepts with
  | None ->
    invalid_arg "Ontology.consistency_violations: infinite ontology"
  | Some cs ->
    List.concat_map
      (fun c1 ->
         List.filter_map
           (fun c2 ->
              if
                o.subsumes c1 c2
                && List.exists (fun v -> o.mem c1 v && not (o.mem c2 v)) probes
              then Some (c1, c2)
              else None)
           cs)
      cs

let consistency_violations o probes =
  match o.concepts with
  | None ->
    Error
      (`Infinite_ontology
         ("Ontology.consistency_violations: " ^ o.name ^ " is infinite"))
  | Some _ -> Ok (consistency_violations_exn o probes)

(* --- hand ontologies (Figure 3) --- *)

let of_extensions ~name ~subsumptions ~extensions =
  let concepts = List.map fst extensions in
  (* Reflexive-transitive closure of the direct edges. *)
  let subsumes c1 c2 =
    let rec reach seen frontier =
      match frontier with
      | [] -> false
      | c :: rest ->
        if String.equal c c2 then true
        else
          let nexts =
            List.filter_map
              (fun (x, y) ->
                 if String.equal x c && not (List.mem y seen) then Some y
                 else None)
              subsumptions
          in
          reach (nexts @ seen) (nexts @ rest)
    in
    String.equal c1 c2 || reach [ c1 ] [ c1 ]
  in
  let mem c v =
    match List.assoc_opt c extensions with
    | Some ext -> Value_set.mem v ext
    | None -> false
  in
  {
    name;
    concepts = Some concepts;
    subsumes;
    mem;
    equal = String.equal;
    pp = (fun ppf c -> Format.pp_print_string ppf c);
  }

(* --- OBDA-induced ontologies (Definition 4.4) --- *)

let of_obda induced =
  {
    name = "O_B";
    concepts = Some (Whynot_obda.Induced.concepts induced);
    subsumes = Whynot_obda.Induced.subsumes induced;
    mem =
      (fun c v ->
         Value_set.mem v (Whynot_obda.Induced.extension induced c));
    equal = Whynot_dllite.Dl.equal_basic;
    pp = Whynot_dllite.Dl.pp_basic;
  }

(* --- ontologies derived from an instance or a schema (Definition 4.8) --- *)

(* [handle] lets the parallel engine prepare an ontology value whose
   memoisation goes through a per-domain private handle; without it the
   shared interned handle is used, as before. *)

let of_instance ?handle inst =
  let h =
    match handle with
    | Some h -> h
    | None -> Whynot_concept.Subsume_memo.inst inst
  in
  {
    name = "O_I";
    concepts = None;
    subsumes = Whynot_concept.Subsume_memo.subsumes h;
    mem = (fun c v -> Whynot_concept.Subsume_memo.mem h v c);
    equal = Whynot_concept.Ls.equal;
    pp = (fun ppf c -> Whynot_concept.Ls.pp () ppf c);
  }

let of_schema ?schema_handle ?handle schema inst =
  (* Schema-level subsumption is costly (containment, counter-model
     search); the algorithms re-ask the same pairs, so all verdicts go
     through the shared memo layer, keyed on hash-consed concept ids. *)
  let sh =
    match schema_handle with
    | Some h -> h
    | None -> Whynot_concept.Subsume_memo.schema schema
  in
  let ih =
    match handle with
    | Some h -> h
    | None -> Whynot_concept.Subsume_memo.inst inst
  in
  {
    name = "O_S";
    concepts = None;
    subsumes = Whynot_concept.Subsume_memo.schema_subsumes sh;
    mem = (fun c v -> Whynot_concept.Subsume_memo.mem ih v c);
    equal = Whynot_concept.Ls.equal;
    pp = (fun ppf c -> Whynot_concept.Ls.pp ~schema () ppf c);
  }

let of_instance_finite ?handle inst pool =
  let base = of_instance ?handle inst in
  {
    base with
    name = "O_I[K]";
    concepts = Some (Whynot_concept.Count.enumerate_selection_free inst pool);
  }

let minimal_concepts schema pool =
  Whynot_concept.Ls.top
  :: List.map Whynot_concept.Ls.nominal (Value_set.elements pool)
  @ List.map
      (fun (rel, attr) -> Whynot_concept.Ls.proj ~rel ~attr ())
      (Schema.positions schema)

let of_schema_finite ?(minimal_only = false) ?schema_handle ?handle schema inst
    pool =
  let base = of_schema ?schema_handle ?handle schema inst in
  let concepts =
    if minimal_only then minimal_concepts schema pool
    else Whynot_concept.Count.enumerate_selection_free inst pool
  in
  {
    base with
    name = (if minimal_only then "O_S[K]-min" else "O_S[K]");
    concepts = Some concepts;
  }
