open Whynot_relational

type t = {
  schema : Schema.t option;
  instance : Instance.t;
  query : Cq.t;
  answers : Relation.t;
  missing : Tuple.t;
}

let make ?schema ?answers ~instance ~query ~missing () =
  let missing = Tuple.of_list missing in
  if not (Cq.is_safe query) then Error (`Invalid_whynot "query is not safe")
  else if Tuple.arity missing <> Cq.arity query then
    Error
      (`Invalid_whynot
         (Printf.sprintf "missing tuple has arity %d, query has arity %d"
            (Tuple.arity missing) (Cq.arity query)))
  else
    let answers =
      match answers with
      | Some r -> r
      | None -> Cq.eval query instance
    in
    if Relation.mem missing answers then
      Error (`Invalid_whynot "tuple is not missing: it belongs to the answer set")
    else
      match schema with
      | None -> Ok { schema; instance; query; answers; missing }
      | Some s ->
        (match Schema.satisfies s instance with
         | Ok () -> Ok { schema; instance; query; answers; missing }
         | Error msg ->
           Error (`Schema_violation ("instance violates schema: " ^ msg)))

let make_exn ?schema ?answers ~instance ~query ~missing () =
  match make ?schema ?answers ~instance ~query ~missing () with
  | Ok t -> t
  | Error e -> invalid_arg ("Whynot.make_exn: " ^ Whynot_error.message e)

let arity t = Tuple.arity t.missing

let missing_values t = Tuple.to_list t.missing

let constant_pool t =
  List.fold_left
    (fun acc v -> Value_set.add v acc)
    (Instance.adom t.instance)
    (missing_values t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>why-not %a?@,query: %a@,answers: %d tuple(s)@]" Tuple.pp t.missing
    Cq.pp t.query (Relation.cardinal t.answers)
