(** S-ontologies (Definition 3.1): a set of concepts [C], a pre-order [⊑]
    on them, and a polynomial-time extension function [ext].

    The algorithms of §5 only interrogate an ontology through membership
    queries [c ∈ ext(C, I)] for the {e fixed} instance of the why-not
    question, so an ontology value here is "prepared" against one instance.
    Finite ontologies additionally enumerate their concepts (needed by the
    exhaustive algorithm); derived ontologies like [O_I] are infinite and
    leave [concepts = None]. *)

open Whynot_relational

type 'c t = {
  name : string;
  concepts : 'c list option;
    (** [Some cs] iff the ontology is finite/enumerable. *)
  subsumes : 'c -> 'c -> bool;  (** [subsumes c1 c2] iff [c1 ⊑ c2]. *)
  mem : 'c -> Value.t -> bool;
    (** [mem c v] iff [v ∈ ext(c, I)] for the prepared instance. *)
  equal : 'c -> 'c -> bool;
  pp : Format.formatter -> 'c -> unit;
}

val equivalent : 'c t -> 'c -> 'c -> bool
(** Mutual subsumption. *)

val consistency_violations :
  'c t -> Value.t list -> (('c * 'c) list, Whynot_error.t) result
(** For a finite ontology: pairs [C1 ⊑ C2] whose extensions (restricted to
    the probe constants) violate [ext(C1) ⊆ ext(C2)] — the instance is
    consistent with the ontology iff this is empty on the active domain
    (Definition 3.1). [Error (`Infinite_ontology _)] on infinite
    ontologies. *)

val consistency_violations_exn : 'c t -> Value.t list -> ('c * 'c) list
(** @deprecated Use {!consistency_violations}; this variant raises
    [Invalid_argument] on infinite ontologies and remains for internal
    callers that know their ontology is finite. *)

(** {1 Constructors} *)

val of_extensions :
  name:string ->
  subsumptions:(string * string) list ->
  extensions:(string * Value_set.t) list ->
  string t
(** A hand ontology à la Figure 3: named concepts with explicitly listed,
    instance-independent extensions; [subsumptions] are direct edges whose
    reflexive-transitive closure is [⊑]. *)

val of_obda : Whynot_obda.Induced.t -> Whynot_dllite.Dl.basic t
(** The ontology [O_B] induced by an OBDA specification (Definition 4.4),
    prepared for the instance used in {!Whynot_obda.Induced.prepare}. *)

val of_instance :
  ?handle:Whynot_concept.Subsume_memo.inst -> Instance.t -> Whynot_concept.Ls.t t
(** [O_I] (Definition 4.8): infinite; subsumption is [⊑_I]. [handle]
    routes memoisation through an explicit (possibly private, per-domain)
    handle — see {!Whynot_concept.Subsume_memo.private_inst}. *)

val of_schema :
  ?schema_handle:Whynot_concept.Subsume_memo.schema ->
  ?handle:Whynot_concept.Subsume_memo.inst ->
  Schema.t -> Instance.t -> Whynot_concept.Ls.t t
(** [O_S] (Definition 4.8): infinite; subsumption is [⊑_S], decided by
    {!Whynot_concept.Subsume_schema} (sound for all constraint classes,
    complete for the pure ones — see that module). *)

val of_instance_finite :
  ?handle:Whynot_concept.Subsume_memo.inst ->
  Instance.t -> Value_set.t -> Whynot_concept.Ls.t t
(** The finite restriction of [O_I] to selection-free concepts with
    nominals from the given constant pool — the materialised [O_I[K]]
    used when running the exhaustive algorithm over a derived ontology
    (§5.2). Exponential in the number of positions; small inputs only. *)

val of_schema_finite :
  ?minimal_only:bool ->
  ?schema_handle:Whynot_concept.Subsume_memo.schema ->
  ?handle:Whynot_concept.Subsume_memo.inst ->
  Schema.t -> Instance.t -> Value_set.t -> Whynot_concept.Ls.t t
(** The finite restriction of [O_S[K]] (§5.3): selection-free concepts, or
    only [L_S^min] concepts when [minimal_only] is set (the PTIME case of
    Proposition 5.3). *)
