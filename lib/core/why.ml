open Whynot_relational
open Whynot_concept

type t = {
  instance : Instance.t;
  query : Cq.t;
  answers : Relation.t;
  witness : Tuple.t;
}

let make ?answers ~instance ~query ~witness () =
  let witness = Tuple.of_list witness in
  if not (Cq.is_safe query) then Error (`Invalid_whynot "query is not safe")
  else if Tuple.arity witness <> Cq.arity query then
    Error (`Invalid_whynot "witness arity differs from the query's")
  else
    let answers =
      match answers with
      | Some r -> r
      | None -> Cq.eval query instance
    in
    if Relation.mem witness answers then
      Ok { instance; query; answers; witness }
    else Error (`Invalid_whynot "the witness tuple is not an answer")

let make_exn ?answers ~instance ~query ~witness () =
  match make ?answers ~instance ~query ~witness () with
  | Ok t -> t
  | Error e -> invalid_arg ("Why.make_exn: " ^ Whynot_error.message e)

(* The product of the extensions must lie inside the answer set. With the
   abstract membership interface this is checked by enumerating the product
   over the answer constants plus the witness — sound because extensions of
   derived concepts live in the active domain (plus nominals), and [All]
   extensions make the product infinite, hence never inside a finite answer
   set unless every combination over the probe set is an answer AND the
   query cannot produce other tuples; we conservatively reject [All] via
   the probe set as well. *)
let probe_values t =
  Value_set.union
    (Relation.values t.answers)
    (Value_set.of_list (Tuple.to_list t.witness))
  |> Value_set.union (Instance.adom t.instance)

let product_inside o t e =
  let probes = Value_set.elements (probe_values t) in
  let rec loop prefix = function
    | [] -> Relation.mem (Tuple.of_list (List.rev prefix)) t.answers
    | c :: rest ->
      List.for_all
        (fun v ->
           if o.Ontology.mem c v then loop (v :: prefix) rest else true)
        probes
  in
  loop [] e

let covers_witness o t e =
  List.length e = Tuple.arity t.witness
  && List.for_all2
       (fun c v -> o.Ontology.mem c v)
       e
       (Tuple.to_list t.witness)

let is_why_explanation o t e = covers_witness o t e && product_inside o t e

let lub_of = function
  | Incremental.Selection_free -> fun inst x -> Lub.lub inst x
  | Incremental.With_selections -> fun inst x -> Lub.lub_sigma inst x

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

let one_mge ?(variant = Incremental.Selection_free) t =
  let lub = lub_of variant in
  let inst = t.instance in
  let o = Ontology.of_instance inst in
  let adom = Value_set.elements (Instance.adom inst) in
  let m = Tuple.arity t.witness in
  let support =
    Array.of_list (List.map Value_set.singleton (Tuple.to_list t.witness))
  in
  let concepts = Array.map (fun x -> lub inst x) support in
  for j = 0 to m - 1 do
    List.iter
      (fun b ->
         if not (Semantics.mem b concepts.(j) inst) then begin
           let x' = Value_set.add b support.(j) in
           let c' = lub inst x' in
           let e' = replace_nth (Array.to_list concepts) j c' in
           if is_why_explanation o t e' then begin
             support.(j) <- x';
             concepts.(j) <- c'
           end
         end)
      adom
  done;
  List.map (Irredundant.minimise inst) (Array.to_list concepts)

let check_mge ?(variant = Incremental.Selection_free) t e =
  let lub = lub_of variant in
  let inst = t.instance in
  let o = Ontology.of_instance inst in
  if not (is_why_explanation o t e) then false
  else
    let adom = Value_set.elements (Instance.adom inst) in
    let improvable j c =
      match Semantics.extension c inst with
      | Semantics.All -> false
      | Semantics.Fin ext ->
        List.exists
          (fun b ->
             (not (Value_set.mem b ext))
             &&
             let c' = lub inst (Value_set.add b ext) in
             is_why_explanation o t (replace_nth e j c'))
          adom
    in
    not
      (List.exists (fun (j, c) -> improvable j c)
         (List.mapi (fun j c -> (j, c)) e))
