(** Explanations and most-general explanations (Definitions 3.2, 3.3).

    An explanation for [a ∉ q(I)] w.r.t. an S-ontology [O] is a tuple of
    concepts [(C_1, ..., C_m)] such that every [a_i ∈ ext(C_i, I)] and the
    product of the extensions misses every answer tuple. *)

open Whynot_relational

type 'c t = 'c list
(** One concept per position of the missing tuple. *)

val covers_missing : 'c Ontology.t -> Whynot.t -> 'c t -> bool
(** First condition: [a_i ∈ ext(C_i, I)] for every [i]. *)

val kills : 'c Ontology.t -> 'c t -> Tuple.t -> bool
(** Whether the answer tuple lies {e outside} the product of extensions,
    i.e. some component of the tuple escapes the corresponding concept. *)

val disjoint_from_answers : 'c Ontology.t -> Whynot.t -> 'c t -> bool
(** Second condition: the product of extensions misses every answer. *)

val is_explanation : 'c Ontology.t -> Whynot.t -> 'c t -> bool
(** Both conditions: {!covers_missing} and {!disjoint_from_answers}. *)

val less_general : 'c Ontology.t -> 'c t -> 'c t -> bool
(** [less_general o e e'] iff [e ≤_O e']: componentwise subsumption. *)

val strictly_less_general : 'c Ontology.t -> 'c t -> 'c t -> bool
(** [e <_O e']: [e ≤_O e'] and not [e' ≤_O e]. *)

val equivalent : 'c Ontology.t -> 'c t -> 'c t -> bool
(** [e ≤_O e'] and [e' ≤_O e] — the equivalence classes modulo which
    {!Exhaustive.all_mges} keeps one representative. *)

val pp : 'c Ontology.t -> Format.formatter -> 'c t -> unit
(** Print as [(C_1, ..., C_m)] using the ontology's concept printer. *)
