(** Why-not instances (Definition 5.1): a quintuple [(S, I, q, Ans, a)] with
    [Ans = q(I)] and [a ∉ q(I)]. The answer set is part of the input — it
    is assumed to have been computed a priori — so the constructor either
    takes it or evaluates the query once. *)

open Whynot_relational

type t = private {
  schema : Schema.t option;
  instance : Instance.t;
  query : Cq.t;
  answers : Relation.t;
  missing : Tuple.t;
}

val make :
  ?schema:Schema.t ->
  ?answers:Relation.t ->
  instance:Instance.t ->
  query:Cq.t ->
  missing:Value.t list ->
  unit ->
  (t, Whynot_error.t) result
(** Checks that the query is safe, the missing tuple has the query's arity
    and is not among the answers ([`Invalid_whynot]), and (when a schema is
    supplied) that the instance satisfies it ([`Schema_violation]).
    [answers] defaults to [q(I)]. *)

val make_exn :
  ?schema:Schema.t ->
  ?answers:Relation.t ->
  instance:Instance.t ->
  query:Cq.t ->
  missing:Value.t list ->
  unit ->
  t
(** @deprecated Prefer {!make} (or the {!Whynot.Engine} facade); this
    variant raises [Invalid_argument] on [Error] and remains for internal
    callers with known-good inputs. *)

val arity : t -> int
(** The arity [m] of the query — one explanation concept per position. *)

val missing_values : t -> Value.t list
(** The components [a_1, ..., a_m] of the missing tuple. *)

val constant_pool : t -> Value_set.t
(** [K = adom(I) ∪ {a_1, ..., a_m}] (Proposition 5.1). *)

val pp : Format.formatter -> t -> unit
(** One-line [a ∉ q(I)] summary for diagnostics. *)
