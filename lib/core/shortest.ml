open Whynot_relational
open Whynot_concept

let length e = List.fold_left (fun acc c -> acc + Ls.size c) 0 e

let irredundant_mge ?variant wn = Incremental.one_mge ?variant ~shorten:true wn

let shortest_mge_selection_free wn =
  let o =
    Ontology.of_instance_finite wn.Whynot.instance (Whynot.constant_pool wn)
  in
  match Exhaustive.all_mges_exn o wn with
  | [] -> None
  | mges ->
    Some
      (List.fold_left
         (fun best e -> if length e < length best then e else best)
         (List.hd mges) (List.tl mges))

let minimise_concept_exact inst c =
  let target = Semantics.extension c inst in
  (* Atomic vocabulary: every projection position of the instance, plus
     nominals over the target extension (only they can help pin points). *)
  let projections =
    List.concat_map
      (fun name ->
         match Instance.relation inst name with
         | None -> []
         | Some r ->
           List.init (Relation.arity r) (fun i ->
               Ls.Proj { rel = name; attr = i + 1; sels = [] }))
      (Instance.relation_names inst)
  in
  let nominals =
    match target with
    | Semantics.All -> []
    | Semantics.Fin s -> List.map (fun v -> Ls.Nominal v) (Value_set.elements s)
  in
  let pool = nominals @ projections in
  let rec subsets_of_size k xs =
    if k = 0 then [ [] ]
    else
      match xs with
      | [] -> []
      | x :: rest ->
        List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
        @ subsets_of_size k rest
  in
  let matches conjs =
    Semantics.ext_equal (Semantics.extension (Ls.of_conjuncts conjs) inst) target
  in
  let rec search k =
    if k > List.length pool then c
    else
      let hits = List.filter matches (subsets_of_size k pool) in
      match hits with
      | [] -> search (k + 1)
      | _ :: _ ->
        (* Among same-cardinality hits, pick the one of least size. *)
        let best =
          List.fold_left
            (fun best conjs ->
               let cand = Ls.of_conjuncts conjs in
               match best with
               | None -> Some cand
               | Some b -> if Ls.size cand < Ls.size b then Some cand else best)
            None hits
        in
        Option.value ~default:c best
  in
  if matches [] then Ls.top else search 1
