(** Algorithm 1 (Exhaustive Search) and the decision problems of §5.1, for
    finite S-ontologies.

    - {!all_mges}: all most-general explanations (Theorem 5.2): EXPTIME in
      general, PTIME for fixed query arity.
    - {!exists_explanation}: EXISTENCE-OF-EXPLANATION (Theorem 5.1(2),
      NP-complete) — decided by a backtracking search with a coverage
      pruning rule rather than by materialising the whole product.
    - {!check_mge}: CHECK-MGE (Theorem 5.1(1), PTIME): an explanation is
      most general iff no single position can be strictly generalised while
      remaining an explanation (single-position upgrades suffice because
      componentwise products are monotone).
    - {!one_mge}: any one most-general explanation, by greedily climbing
      the subsumption order from any explanation found.

    All functions
    @raise Invalid_argument when the ontology is infinite. *)

val all_mges : 'c Ontology.t -> Whynot.t -> 'c Explanation.t list
(** The literal Algorithm 1: generate every candidate per-position tuple
    whose extensions cover the missing tuple and miss the answers, then
    discard the non-maximal ones. Returns all MGEs modulo equivalence (the
    paper keeps equivalent copies; we keep one representative of each
    equivalence class). *)

val all_mges_unpruned : 'c Ontology.t -> Whynot.t -> 'c Explanation.t list
(** The same, but without the candidate-deduplication preprocessing — the
    baseline for the D3 ablation benchmark. *)

val exists_explanation : 'c Ontology.t -> Whynot.t -> bool
(** EXISTENCE-OF-EXPLANATION: is there {e any} explanation w.r.t. this
    ontology? Backtracking over positions with a coverage pruning rule —
    it never builds the candidate product, so a positive answer can be
    much cheaper than {!all_mges}. *)

val one_mge : 'c Ontology.t -> Whynot.t -> 'c Explanation.t option
(** One most-general explanation, or [None] when none exists: find any
    explanation as in {!exists_explanation}, then {!generalise} it. *)

val check_mge : 'c Ontology.t -> Whynot.t -> 'c Explanation.t -> bool
(** CHECK-MGE: is the candidate an explanation that admits no strict
    single-position upgrade? Also the post-hoc verifier for the output
    of Algorithm 2 in the differential property tests. *)

val is_most_general :
  'c Ontology.t -> Whynot.t -> 'c Explanation.t -> bool
(** Like {!check_mge} but assumes the argument is already known to be an
    explanation. *)

val generalise : 'c Ontology.t -> Whynot.t -> 'c Explanation.t -> 'c Explanation.t
(** Climb: repeatedly upgrade single positions to strictly more general
    concepts while remaining an explanation; the result is most general.
    @raise Invalid_argument if the input is not an explanation. *)

(** {1 Lazy enumeration}

    Streaming variants that never materialise the candidate product: useful
    when only the first few (most-general) explanations are wanted. The
    per-element test for most-generality is local (an explanation is an MGE
    iff no single position admits a strict upgrade — see {!check_mge}), so
    the stream needs no global comparison; {!mges_seq} additionally
    deduplicates equivalent explanations, keeping the representatives seen
    so far in memory. *)

val explanations_seq : 'c Ontology.t -> Whynot.t -> 'c Explanation.t Seq.t
(** Every explanation, in product order. *)

val mges_seq : 'c Ontology.t -> Whynot.t -> 'c Explanation.t Seq.t
(** Every most-general explanation, one representative per equivalence
    class. Forcing the whole sequence yields the same set as
    {!all_mges}. *)
