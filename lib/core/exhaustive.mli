(** Algorithm 1 (Exhaustive Search) and the decision problems of §5.1, for
    finite S-ontologies.

    - {!all_mges}: all most-general explanations (Theorem 5.2): EXPTIME in
      general, PTIME for fixed query arity.
    - {!exists_explanation}: EXISTENCE-OF-EXPLANATION (Theorem 5.1(2),
      NP-complete) — decided by a backtracking search with a coverage
      pruning rule rather than by materialising the whole product.
    - {!check_mge}: CHECK-MGE (Theorem 5.1(1), PTIME): an explanation is
      most general iff no single position can be strictly generalised while
      remaining an explanation (single-position upgrades suffice because
      componentwise products are monotone).
    - {!one_mge}: any one most-general explanation, by greedily climbing
      the subsumption order from any explanation found.

    Every operation comes in two flavours: the plain name returns
    [(_, Whynot_error.t) result] and fails with [`Infinite_ontology] when
    the ontology does not enumerate its concepts; the [*_exn] variant is
    the raising original, kept for internal callers.

    The {!Whynot.Engine} facade runs these over a domain pool — see
    [Whynot_parallel.Par_exhaustive], which shares {!Plan} with this
    module so the parallel result provably coincides with the sequential
    one. *)

val all_mges :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t list, Whynot_error.t) result
(** The literal Algorithm 1: generate every candidate per-position tuple
    whose extensions cover the missing tuple and miss the answers, then
    discard the non-maximal ones. Returns all MGEs modulo equivalence (the
    paper keeps equivalent copies; we keep one representative of each
    equivalence class). *)

val all_mges_unpruned :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t list, Whynot_error.t) result
(** The same, but without the candidate-deduplication preprocessing — the
    baseline for the D3 ablation benchmark. *)

val exists_explanation :
  'c Ontology.t -> Whynot.t -> (bool, Whynot_error.t) result
(** EXISTENCE-OF-EXPLANATION: is there {e any} explanation w.r.t. this
    ontology? Backtracking over positions with a coverage pruning rule —
    it never builds the candidate product, so a positive answer can be
    much cheaper than {!all_mges}. *)

val one_mge :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t option, Whynot_error.t) result
(** One most-general explanation, or [Ok None] when none exists: find any
    explanation as in {!exists_explanation}, then generalise it. *)

val check_mge :
  'c Ontology.t -> Whynot.t -> 'c Explanation.t -> (bool, Whynot_error.t) result
(** CHECK-MGE: is the candidate an explanation that admits no strict
    single-position upgrade? Also the post-hoc verifier for the output
    of Algorithm 2 in the differential property tests. *)

val is_most_general :
  'c Ontology.t -> Whynot.t -> 'c Explanation.t -> (bool, Whynot_error.t) result
(** Like {!check_mge} but assumes the argument is already known to be an
    explanation. *)

val generalise :
  'c Ontology.t ->
  Whynot.t ->
  'c Explanation.t ->
  ('c Explanation.t, Whynot_error.t) result
(** Climb: repeatedly upgrade single positions to strictly more general
    concepts while remaining an explanation; the result is most general.
    [`Not_an_explanation] when the input is not an explanation. *)

(** {1 Lazy enumeration}

    Streaming variants that never materialise the candidate product: useful
    when only the first few (most-general) explanations are wanted. The
    per-element test for most-generality is local (an explanation is an MGE
    iff no single position admits a strict upgrade — see {!check_mge}), so
    the stream needs no global comparison; {!mges_seq} additionally
    deduplicates equivalent explanations, keeping the representatives seen
    so far in memory. *)

val explanations_seq :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t Seq.t, Whynot_error.t) result
(** Every explanation, in product order. *)

val mges_seq :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t Seq.t, Whynot_error.t) result
(** Every most-general explanation, one representative per equivalence
    class. Forcing the whole sequence yields the same set as
    {!all_mges}. *)

(** {1 Raising variants}

    @deprecated Prefer the result-returning functions above (or the
    {!Whynot.Engine} facade); these raise [Invalid_argument] when the
    ontology is infinite and remain for internal callers that construct
    the finite ontology themselves. *)

val all_mges_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t list
val all_mges_unpruned_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t list
val exists_explanation_exn : 'c Ontology.t -> Whynot.t -> bool
val one_mge_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t option
val check_mge_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t -> bool
val is_most_general_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t -> bool
val generalise_exn :
  'c Ontology.t -> Whynot.t -> 'c Explanation.t -> 'c Explanation.t
val explanations_seq_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t Seq.t
val mges_seq_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t Seq.t

(** {1 Shared exploration plan}

    The candidate lattice in solved form: per position, the candidate
    concepts (covering the missing value) with their kill-sets over the
    answer tuples. Explanations are exactly the members of the candidate
    product whose kill-sets cover every answer, so a plan reduces
    enumeration to pure integer-set operations — the unit of work the
    parallel engine partitions across domains. *)

module Int_set : Set.S with type elt = int

module Plan : sig
  type 'c position = { candidates : ('c * Int_set.t) array }

  type 'c t = {
    ontology : 'c Ontology.t;
    whynot : Whynot.t;
    all_answers : Int_set.t;
    positions : 'c position array;
  }

  val prepare :
    ?prune:bool -> 'c Ontology.t -> Whynot.t -> ('c t, Whynot_error.t) result
  (** Candidates, kill-sets, and (unless [prune:false]) the dominated-
      candidate preprocessing of {!all_mges}, computed sequentially. *)
end

val keep_most_general :
  'c Ontology.t -> 'c Explanation.t list -> 'c Explanation.t list
(** Drop explanations strictly below another and deduplicate equivalence
    classes, keeping the first representative in list order — exposed so
    the parallel merge reproduces the sequential choice exactly. *)
