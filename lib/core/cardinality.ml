open Whynot_relational

module Int_set = Set.Make (Int)

let pool_list wn = Value_set.elements (Whynot.constant_pool wn)

let concept_degree o pool c =
  List.length (List.filter (fun v -> o.Ontology.mem c v) pool)

let degree o wn e =
  let pool = pool_list wn in
  (* A concept whose membership holds for every probe and is known infinite
     cannot be distinguished through [mem]; over finite ontologies this
     does not arise, and for derived ontologies the caller should treat
     full-pool concepts with care. We simply count pool members. *)
  Some (List.fold_left (fun acc c -> acc + concept_degree o pool c) 0 e)

(* Candidate concepts per position with kill-sets and degrees. *)
let prepared_exn o wn =
  let cs =
    match o.Ontology.concepts with
    | Some cs -> cs
    | None -> invalid_arg "Cardinality: the ontology must be finite"
  in
  let pool = pool_list wn in
  let answers = Relation.to_list wn.Whynot.answers in
  List.mapi
    (fun pos a ->
       List.filter_map
         (fun c ->
            if o.Ontology.mem c a then
              let kills =
                List.mapi
                  (fun i t ->
                     if o.Ontology.mem c (Tuple.get t (pos + 1)) then None
                     else Some i)
                  answers
                |> List.filter_map Fun.id |> Int_set.of_list
              in
              Some (c, kills, concept_degree o pool c)
            else None)
         cs)
    (Whynot.missing_values wn)

let suffix_reach per_position =
  let rec go = function
    | [] -> [ Int_set.empty ]
    | cands :: rest ->
      let tails = go rest in
      let reach =
        List.fold_left
          (fun acc (_, ks, _) -> Int_set.union acc ks)
          (List.hd tails) cands
      in
      reach :: tails
  in
  go per_position

let all_answers wn =
  Int_set.of_list (List.init (Relation.cardinal wn.Whynot.answers) (fun i -> i))

let maximal_exn o wn =
  let per_position = prepared_exn o wn in
  if List.exists (fun cands -> cands = []) per_position then None
  else
    let all = all_answers wn in
    let reaches = suffix_reach per_position in
    (* Sort candidates by decreasing degree so good solutions come early. *)
    let per_position =
      List.map
        (List.sort (fun (_, _, d1) (_, _, d2) -> Stdlib.compare d2 d1))
        per_position
    in
    let suffix_max_degree =
      let rec go = function
        | [] -> [ 0 ]
        | cands :: rest ->
          let tails = go rest in
          let best =
            List.fold_left (fun acc (_, _, d) -> max acc d) 0 cands
          in
          (best + List.hd tails) :: tails
      in
      List.tl (go per_position)
    in
    let best = ref None in
    let best_score = ref min_int in
    let rec search killed score chosen cands reaches bounds =
      match cands, reaches, bounds with
      | [], _, _ ->
        if Int_set.equal killed all && score > !best_score then begin
          best_score := score;
          best := Some (List.rev chosen)
        end
      | options :: rest, _ :: rest_reach, bound :: rest_bounds ->
        let reachable =
          match rest_reach with r :: _ -> r | [] -> Int_set.empty
        in
        List.iter
          (fun (c, ks, d) ->
             let killed' = Int_set.union killed ks in
             if
               score + d + bound > !best_score
               && Int_set.subset (Int_set.diff all killed') reachable
             then
               search killed' (score + d) (c :: chosen) rest rest_reach
                 rest_bounds)
          options
      | _ -> ()
    in
    search Int_set.empty 0 [] per_position reaches suffix_max_degree;
    !best

let greedy_exn o wn =
  let per_position = prepared_exn o wn in
  if List.exists (fun cands -> cands = []) per_position then None
  else
    let all = all_answers wn in
    let reaches = suffix_reach per_position in
    (* Per position, choose the highest-degree candidate that keeps the
       remaining positions able to cover the still-alive answers. *)
    let rec choose killed chosen cands reaches =
      match cands, reaches with
      | [], _ -> if Int_set.equal killed all then Some (List.rev chosen) else None
      | options :: rest, _ :: rest_reach ->
        let reachable =
          match rest_reach with r :: _ -> r | [] -> Int_set.empty
        in
        let sorted =
          List.sort (fun (_, _, d1) (_, _, d2) -> Stdlib.compare d2 d1) options
        in
        let rec first = function
          | [] -> None
          | (c, ks, _) :: more ->
            let killed' = Int_set.union killed ks in
            if Int_set.subset (Int_set.diff all killed') reachable then
              match choose killed' (c :: chosen) rest rest_reach with
              | Some r -> Some r
              | None -> first more
            else first more
        in
        first sorted
      | _, [] -> None
    in
    choose Int_set.empty [] per_position reaches

let ranked_exn o wn =
  let pool = pool_list wn in
  Exhaustive.all_mges_exn o wn
  |> List.map (fun e ->
      (e, List.fold_left (fun acc c -> acc + concept_degree o pool c) 0 e))
  |> List.sort (fun (_, d1) (_, d2) -> Stdlib.compare d2 d1)

(* --- result-returning public surface --- *)

let finite o k =
  match o.Ontology.concepts with
  | Some _ -> k ()
  | None ->
    Error
      (`Infinite_ontology
         ("Cardinality: ontology " ^ o.Ontology.name ^ " is not finite"))

let maximal o wn = finite o (fun () -> Ok (maximal_exn o wn))
let greedy o wn = finite o (fun () -> Ok (greedy_exn o wn))
let ranked o wn = finite o (fun () -> Ok (ranked_exn o wn))
