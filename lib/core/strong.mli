(** Strong explanations (§6): [E = (C_1, ..., C_m)] is a strong explanation
    for [a ∉ q(I)] w.r.t. [O] if for {e every} instance [I'] consistent
    with [O], the product [ext(C_1, I') × ... × ext(C_m, I')] misses
    [q(I')]. A strong explanation is instance-independent evidence — the
    paper suggests it points at errors in the constraints or the query.

    For ontologies derived from a schema, strength is an (un)satisfiability
    question: the query body conjoined with the concept constraints on the
    head components must have no satisfying instance among those that
    satisfy the schema. We decide it with the same canonical-instantiation
    + bounded-chase machinery as {!Whynot_concept.Subsume_schema}: finding
    a witness instance refutes strength (sound); exhausting the canonical
    candidates establishes it for the constraint classes where the search
    is complete (no constraints, views, FDs) and is reported as [Unknown]
    otherwise. *)

type verdict =
  | Strong
  | Not_strong
  | Unknown

val pp_verdict : Format.formatter -> verdict -> unit

val decide_wrt_schema :
  ?chase_depth:int ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t ->
  verdict
(** Is the explanation strong: does it exclude the missing tuple on
    {e every} instance satisfying the schema, not just this one?
    Inherits the three-valued behaviour (and [chase_depth] bound) of
    the underlying [⊑_S] machinery, hence [Unknown]. *)

val is_explanation_but_not_strong :
  ?chase_depth:int ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t ->
  bool
(** Convenience for tests: an ordinary explanation whose strength is
    refuted by a concrete witness instance. *)
