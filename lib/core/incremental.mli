(** Algorithm 2 (Incremental Search): COMPUTE-ONE-MGE w.r.t. the derived
    ontology [O_I] (§5.2).

    Starting from the trivial explanation of nominals, the algorithm tries,
    position by position, to absorb each active-domain constant into the
    position's support set, replacing the concept with the [lub] of the
    enlarged set and keeping the change iff the tuple remains an
    explanation.

    With the selection-free [lub] (Lemma 5.1) this runs in polynomial time
    and returns a most-general explanation over selection-free [L_S]
    (Theorem 5.3); with [lubσ] (Lemma 5.2) it returns a most-general
    explanation over full [L_S] in exponential time — polynomial for
    bounded schema arity (Theorem 5.4).

    One refinement beyond the paper's pseudo-code: after the main loop we
    additionally try to replace each concept by [top] (whose extension is
    the whole infinite domain): [top] is strictly more general than any
    finite-extension concept even when that concept already covers the whole
    active domain, and it is not reachable by adding active-domain
    constants alone. *)

open Whynot_relational

type variant =
  | Selection_free   (** Lemma 5.1 lubs; Theorem 5.3 *)
  | With_selections  (** Lemma 5.2 lubs; Theorem 5.4 *)

val one_mge :
  ?variant:variant ->
  ?shorten:bool ->
  ?order:[ `Ascending | `Descending ] ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t
(** A most-general explanation for the why-not instance w.r.t. [O_I] (one
    always exists: the nominal tuple explains). [shorten] (default true)
    post-processes each concept with {!Whynot_concept.Irredundant} — a
    polynomial step that, combined with this algorithm, yields an
    irredundant most-general explanation (Proposition 6.2 discussion). *)

val one_mge_with_trace :
  ?variant:variant ->
  ?order:[ `Ascending | `Descending ] ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t * (int * Value.t * bool) list
(** Like {!one_mge} but also returns the trace of attempted constant
    absorptions [(position, constant, accepted)]. [order] is the D4
    ablation knob: the order in which active-domain constants are offered
    (different orders can reach different — equally most-general —
    explanations at different costs). *)

val check_mge :
  ?handle:Whynot_concept.Subsume_memo.inst ->
  ?variant:variant ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t ->
  bool
(** CHECK-MGE W.R.T. [O_I] (Definition 5.7, Proposition 5.2): the tuple is
    an explanation and no single position can absorb a further constant
    (or be replaced by [top]) while remaining one. *)

val trivial_explanation : Whynot.t -> Whynot_concept.Ls.t Explanation.t
(** The tuple of nominals [({a_1}, ..., {a_m})] — always an explanation
    w.r.t. [O_I] (§5.2). *)

(** {1 The stepwise core}

    One absorption step of Algorithm 2, factored out so the sequential
    driver above and the speculative parallel driver
    ([Whynot_parallel.Par_incremental]) share a single definition. A
    {!Step.ctx} bundles the why-not instance with the memo handle and the
    prepared [O_I] used for evaluation; giving each worker domain a
    {e private} handle (see {!Whynot_concept.Subsume_memo.private_inst})
    makes concurrent evaluation safe, and evaluation is deterministic — a
    step's verdict depends only on the state snapshot, never on which
    domain computes it. *)

module Step : sig
  type ctx
  (** Evaluation context: variant + instance + memo handle + [O_I]. *)

  type state = {
    support : Value_set.t array;  (** per-position support sets [X_j] *)
    concepts : Whynot_concept.Ls.t array;  (** [lub(X_j)] per position *)
  }

  val make_ctx :
    ?handle:Whynot_concept.Subsume_memo.inst ->
    ?variant:variant ->
    Whynot.t ->
    ctx

  val whynot : ctx -> Whynot.t
  val ontology : ctx -> Whynot_concept.Ls.t Ontology.t
  val handle : ctx -> Whynot_concept.Subsume_memo.inst

  val init : ctx -> state
  (** Singleton supports from the missing tuple, concepts their lubs. *)

  val copy_state : state -> state

  val attempts :
    ?order:[ `Ascending | `Descending ] -> Whynot.t -> (int * Value.t) list
  (** The full absorption schedule [(position, constant)] in the exact
      order the sequential loop visits it. *)

  val covered : ctx -> state -> int * Value.t -> bool
  (** The skip test: the constant is already in the position's extension. *)

  val evaluate :
    ctx -> state -> int * Value.t -> (Value_set.t * Whynot_concept.Ls.t) option
  (** Evaluate one absorption against a state snapshot without mutating
      it: [Some (support', concept')] iff the enlarged position keeps the
      tuple an explanation. *)

  val commit : state -> int -> Value_set.t * Whynot_concept.Ls.t -> unit
  (** Apply an accepted absorption to the state. *)

  val finish : ctx -> state -> Whynot_concept.Ls.t Explanation.t
  (** The final [top] refinement pass. *)

  val shorten_explanation :
    ctx -> Whynot_concept.Ls.t Explanation.t -> Whynot_concept.Ls.t Explanation.t
  (** Per-position {!Whynot_concept.Irredundant.minimise} through the
      context's handle. *)
end
