(** Cardinality-based preference (§6): the degree of generality of an
    explanation is [|ext(C_1, I)| + ... + |ext(C_m, I)|], and an explanation
    is [>card]-maximal when no explanation has a strictly higher degree.
    Computing a [>card]-maximal explanation is NP-hard (Proposition 6.4,
    by an L-reduction from SET COVER), and not even constant-factor
    approximable in PTIME; we provide an exact branch-and-bound for finite
    ontologies and the natural greedy heuristic, which the benchmarks
    compare. *)

val degree : 'c Ontology.t -> Whynot.t -> 'c Explanation.t -> int option
(** [None] when some extension is infinite (a concept like [top] in a
    derived ontology); finite ontologies always yield [Some]. The degree
    counts extension members among the why-not instance's constant pool. *)

val maximal :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t option, Whynot_error.t) result
(** An exact [>card]-maximal explanation (branch-and-bound over the finite
    ontology; exponential in general). [Ok None] when no explanation
    exists; [`Infinite_ontology] when the ontology is infinite. *)

val greedy :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t option, Whynot_error.t) result
(** Greedy heuristic: pick per position the candidate with the largest
    extension that keeps the partial tuple completable, then locally
    improve. Polynomial; no approximation guarantee exists unless P=NP. *)

val ranked :
  'c Ontology.t ->
  Whynot.t ->
  (('c Explanation.t * int) list, Whynot_error.t) result
(** Every most-general explanation paired with its degree of generality,
    sorted by decreasing degree — the bridge between the two preference
    orders of §6: the ⊑-maximal explanations, ranked by cardinality. *)

(** {1 Raising variants}

    @deprecated Prefer the result-returning functions above; these raise
    [Invalid_argument] on infinite ontologies. *)

val maximal_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t option
val greedy_exn : 'c Ontology.t -> Whynot.t -> 'c Explanation.t option
val ranked_exn :
  'c Ontology.t -> Whynot.t -> ('c Explanation.t * int) list
