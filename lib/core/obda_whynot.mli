(** Why-not questions for queries posed against the ontology (§7).

    In the OBDA setting users may query the ontology's vocabulary rather
    than the database schema; answers are certain answers, computed by
    {!Whynot_obda.Rewrite}. The induced ontology then plays both roles:
    it defines the answers {e and} supplies the concepts of the
    explanations. *)

open Whynot_relational

val make :
  Whynot_obda.Induced.t ->
  query:Cq.t ->
  missing:Value.t list ->
  (Whynot.t, Whynot_error.t) result
(** A why-not instance whose answer set is the certain answers of the
    ontology-level query over the prepared instance. Fails when the query
    is not over the TBox's signature, when the retrieved assertions are
    inconsistent (certain answers would be trivial), or when the tuple is
    among the certain answers. *)

val explain :
  Whynot_obda.Induced.t ->
  query:Cq.t ->
  missing:Value.t list ->
  (Whynot_dllite.Dl.basic Explanation.t list, Whynot_error.t) result
(** All most-general explanations, over {!Ontology.of_obda}. *)
