open Whynot_relational
open Whynot_concept

let src = Logs.Src.create "whynot.incremental" ~doc:"Algorithm 2"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Whynot_obs.Obs

let c_absorb_attempts =
  Obs.counter "mge.incremental.absorb_attempts"
    ~doc:"Algorithm 2 candidate (position, constant) absorptions tried"

let c_absorbed =
  Obs.counter "mge.incremental.absorbed"
    ~doc:"Algorithm 2 absorptions that kept the explanation valid"

type variant =
  | Selection_free
  | With_selections

let lub_of = function
  | Selection_free -> Lub.lub
  | With_selections -> Lub.lub_sigma ?prune:None

let trivial_explanation wn =
  List.map Ls.nominal (Whynot.missing_values wn)

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

(* The [top] refinement: try to lift single positions to [top] (most general
   of all concepts), in order. *)
let try_top o wn e =
  List.fold_left
    (fun e j ->
       let e' = replace_nth e j Ls.top in
       if Explanation.is_explanation o wn e' then e' else e)
    e
    (List.init (List.length e) (fun i -> i))

let one_mge_with_trace ?(variant = Selection_free) ?(order = `Ascending) wn =
  let lub = lub_of variant in
  let inst = wn.Whynot.instance in
  let o = Ontology.of_instance inst in
  let adom =
    let asc = Value_set.elements (Instance.adom inst) in
    match order with `Ascending -> asc | `Descending -> List.rev asc
  in
  let m = Whynot.arity wn in
  let h = Subsume_memo.inst inst in
  let trace = ref [] in
  let support =
    Array.of_list (List.map Value_set.singleton (Whynot.missing_values wn))
  in
  let concepts = Array.map (fun x -> lub inst x) support in
  for j = 0 to m - 1 do
    List.iter
      (fun b ->
         if not (Subsume_memo.mem h b concepts.(j)) then begin
           Obs.incr c_absorb_attempts;
           let x' = Value_set.add b support.(j) in
           let c' = lub inst x' in
           let e' = replace_nth (Array.to_list concepts) j c' in
           let ok = Explanation.is_explanation o wn e' in
           trace := (j, b, ok) :: !trace;
           if ok then begin
             Obs.incr c_absorbed;
             Log.debug (fun m ->
                 m "position %d absorbed %s" (j + 1) (Value.to_string b));
             support.(j) <- x';
             concepts.(j) <- c'
           end
         end)
      adom
  done;
  let e = try_top o wn (Array.to_list concepts) in
  (e, List.rev !trace)

let one_mge ?(variant = Selection_free) ?(shorten = true) ?order wn =
  let e, _ = one_mge_with_trace ~variant ?order wn in
  if shorten then List.map (Irredundant.minimise wn.Whynot.instance) e else e

let check_mge ?(variant = Selection_free) wn e =
  let lub = lub_of variant in
  let inst = wn.Whynot.instance in
  let o = Ontology.of_instance inst in
  if not (Explanation.is_explanation o wn e) then false
  else
    let adom = Value_set.elements (Instance.adom inst) in
    let h = Subsume_memo.inst inst in
    let ext_set c =
      match Subsume_memo.extension h c with
      | Semantics.All -> None
      | Semantics.Fin s -> Some s
    in
    let improvable j c =
      match ext_set c with
      | None -> false (* already top *)
      | Some ext ->
        (* (a) absorb a further active-domain constant *)
        List.exists
          (fun b ->
             (not (Value_set.mem b ext))
             &&
             let c' = lub inst (Value_set.add b ext) in
             Explanation.is_explanation o wn (replace_nth e j c'))
          adom
        (* (b) jump to top *)
        || Explanation.is_explanation o wn (replace_nth e j Ls.top)
    in
    not (List.exists (fun (j, c) -> improvable j c)
           (List.mapi (fun j c -> (j, c)) e))
