open Whynot_relational
open Whynot_concept

let src = Logs.Src.create "whynot.incremental" ~doc:"Algorithm 2"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Whynot_obs.Obs

let c_absorb_attempts =
  Obs.counter "mge.incremental.absorb_attempts"
    ~doc:"Algorithm 2 candidate (position, constant) absorptions tried"

let c_absorbed =
  Obs.counter "mge.incremental.absorbed"
    ~doc:"Algorithm 2 absorptions that kept the explanation valid"

type variant =
  | Selection_free
  | With_selections

let trivial_explanation wn =
  List.map Ls.nominal (Whynot.missing_values wn)

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

(* The [top] refinement: try to lift single positions to [top] (most general
   of all concepts), in order. *)
let try_top o wn e =
  List.fold_left
    (fun e j ->
       let e' = replace_nth e j Ls.top in
       if Explanation.is_explanation o wn e' then e' else e)
    e
    (List.init (List.length e) (fun i -> i))

(* --- the per-step core of Algorithm 2 ---

   Exposed so the sequential driver below and the speculative parallel
   driver in [Whynot_parallel.Par_incremental] share one definition of
   what a single absorption step means. A [ctx] carries everything an
   evaluation needs — instance, variant, memo handle, prepared [O_I] —
   so a worker domain can evaluate steps against its own private handle. *)

module Step = struct
  type ctx = {
    variant : variant;
    wn : Whynot.t;
    handle : Subsume_memo.inst;
    ontology : Ls.t Ontology.t;
  }

  type state = {
    support : Value_set.t array;
    concepts : Ls.t array;
  }

  let lub ctx x =
    let inst = ctx.wn.Whynot.instance in
    match ctx.variant with
    | Selection_free -> Lub.lub ~handle:ctx.handle inst x
    | With_selections -> Lub.lub_sigma ~handle:ctx.handle inst x

  let make_ctx ?handle ?(variant = Selection_free) wn =
    let inst = wn.Whynot.instance in
    let handle =
      match handle with Some h -> h | None -> Subsume_memo.inst inst
    in
    { variant; wn; handle; ontology = Ontology.of_instance ~handle inst }

  let whynot ctx = ctx.wn
  let ontology ctx = ctx.ontology
  let handle ctx = ctx.handle

  let init ctx =
    let support =
      Array.of_list
        (List.map Value_set.singleton (Whynot.missing_values ctx.wn))
    in
    { support; concepts = Array.map (fun x -> lub ctx x) support }

  let copy_state st =
    { support = Array.copy st.support; concepts = Array.copy st.concepts }

  let attempts ?(order = `Ascending) wn =
    let adom =
      let asc =
        Value_set.elements (Instance.adom wn.Whynot.instance)
      in
      match order with `Ascending -> asc | `Descending -> List.rev asc
    in
    List.concat_map
      (fun j -> List.map (fun b -> (j, b)) adom)
      (List.init (Whynot.arity wn) (fun j -> j))

  (* The skip test of the sequential loop: [b] already belongs to the
     position's current extension, so absorbing it cannot change anything. *)
  let covered ctx st (j, b) = Subsume_memo.mem ctx.handle b st.concepts.(j)

  (* Evaluate one absorption against a (snapshot of the) state: does
     enlarging position [j]'s support with [b] keep the tuple an
     explanation? Pure w.r.t. the state — drivers commit separately. *)
  let evaluate ctx st (j, b) =
    Obs.incr c_absorb_attempts;
    let x' = Value_set.add b st.support.(j) in
    let c' = lub ctx x' in
    let e' = replace_nth (Array.to_list st.concepts) j c' in
    if Explanation.is_explanation ctx.ontology ctx.wn e' then Some (x', c')
    else None

  let commit st j (x', c') =
    Obs.incr c_absorbed;
    st.support.(j) <- x';
    st.concepts.(j) <- c'

  let finish ctx st = try_top ctx.ontology ctx.wn (Array.to_list st.concepts)

  let shorten_explanation ctx e =
    List.map
      (Irredundant.minimise ~handle:ctx.handle ctx.wn.Whynot.instance)
      e
end

let one_mge_with_trace ?(variant = Selection_free) ?(order = `Ascending) wn =
  let ctx = Step.make_ctx ~variant wn in
  let st = Step.init ctx in
  let trace = ref [] in
  List.iter
    (fun (j, b) ->
       if not (Step.covered ctx st (j, b)) then begin
         match Step.evaluate ctx st (j, b) with
         | Some upd ->
           trace := (j, b, true) :: !trace;
           Log.debug (fun m ->
               m "position %d absorbed %s" (j + 1) (Value.to_string b));
           Step.commit st j upd
         | None -> trace := (j, b, false) :: !trace
       end)
    (Step.attempts ~order wn);
  (Step.finish ctx st, List.rev !trace)

let one_mge ?(variant = Selection_free) ?(shorten = true) ?order wn =
  let e, _ = one_mge_with_trace ~variant ?order wn in
  if shorten then List.map (Irredundant.minimise wn.Whynot.instance) e else e

let check_mge ?handle ?(variant = Selection_free) wn e =
  let ctx = Step.make_ctx ?handle ~variant wn in
  let inst = wn.Whynot.instance in
  let o = ctx.Step.ontology in
  if not (Explanation.is_explanation o wn e) then false
  else
    let adom = Value_set.elements (Instance.adom inst) in
    let h = ctx.Step.handle in
    let ext_set c =
      match Subsume_memo.extension h c with
      | Semantics.All -> None
      | Semantics.Fin s -> Some s
    in
    let improvable j c =
      match ext_set c with
      | None -> false (* already top *)
      | Some ext ->
        (* (a) absorb a further active-domain constant *)
        List.exists
          (fun b ->
             (not (Value_set.mem b ext))
             &&
             let c' = Step.lub ctx (Value_set.add b ext) in
             Explanation.is_explanation o wn (replace_nth e j c'))
          adom
        (* (b) jump to top *)
        || Explanation.is_explanation o wn (replace_nth e j Ls.top)
    in
    not (List.exists (fun (j, c) -> improvable j c)
           (List.mapi (fun j c -> (j, c)) e))
