type fragment =
  [ `Minimal
  | `Selection_free
  ]

module Obs = Whynot_obs.Obs

let c_concepts =
  Obs.counter "mge.schema.concepts"
    ~doc:"finite schema-ontology concept pool sizes enumerated"

let ontology fragment schema wn =
  let pool = Whynot.constant_pool wn in
  let o =
    Ontology.of_schema_finite
      ~minimal_only:(fragment = `Minimal)
      schema wn.Whynot.instance pool
  in
  (match o.Ontology.concepts with
   | Some cs -> Obs.add c_concepts (List.length cs)
   | None -> ());
  o

let one_mge fragment schema wn =
  Exhaustive.one_mge_exn (ontology fragment schema wn) wn

let all_mges_exn fragment schema wn =
  Exhaustive.all_mges_exn (ontology fragment schema wn) wn

let all_mges fragment schema wn =
  Exhaustive.all_mges (ontology fragment schema wn) wn

let check_mge fragment schema wn e =
  Exhaustive.check_mge_exn (ontology fragment schema wn) wn e
