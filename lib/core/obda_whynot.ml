let make induced ~query ~missing =
  let spec = Whynot_obda.Induced.spec induced in
  if not (Whynot_obda.Rewrite.is_ontology_query (Whynot_obda.Spec.tbox spec) query)
  then Error (`Invalid_whynot "the query is not over the ontology's signature")
  else
    match Whynot_obda.Induced.consistent induced with
    | Error msg -> Error (`Inconsistent ("inconsistent retrieved assertions: " ^ msg))
    | Ok () ->
      let answers = Whynot_obda.Rewrite.certain_answers induced query in
      Whynot.make ~answers
        ~instance:(Whynot_obda.Induced.instance induced)
        ~query ~missing ()

let explain induced ~query ~missing =
  match make induced ~query ~missing with
  | Error _ as e -> e |> Result.map (fun _ -> [])
  | Ok wn -> Ok (Exhaustive.all_mges_exn (Ontology.of_obda induced) wn)
