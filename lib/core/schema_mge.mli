(** COMPUTE-ONE-MGE and CHECK-MGE with respect to [O_S] (§5.3,
    Propositions 5.3 and 5.4): materialise the finite restriction
    [O_S[K]] with [K = adom(I) ∪ {a}] and run the exhaustive machinery.

    The [fragment] selects the concept space: [`Minimal] is the PTIME case
    of Proposition 5.3 ([L_S^min] with fixed query arity); [`Selection_free]
    is the EXPTIME case. Schema-level subsumption is delegated to
    {!Whynot_concept.Subsume_schema}, so for constraint classes where that
    decider is incomplete (mixtures), "most general" is relative to the
    derivable subsumptions. *)

type fragment =
  [ `Minimal
  | `Selection_free
  ]

val ontology :
  fragment ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Ontology.t
(** The materialised [O_S[K]] for this why-not instance. *)

val one_mge :
  fragment ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t option
(** An explanation always exists (the nominal tuple), so this returns
    [Some] unless the fragment excludes the needed nominals — it never does,
    since nominals are in every fragment. *)

val all_mges :
  fragment ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  (Whynot_concept.Ls.t Explanation.t list, Whynot_error.t) result
(** All MGEs w.r.t. [O_S] restricted to the fragment, by Algorithm 1
    over the materialised finite ontology. [`Infinite_ontology] if the
    fragment is infinite over this schema and constant pool. *)

val all_mges_exn :
  fragment ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t list
(** @deprecated Use {!all_mges}; raises [Invalid_argument] on an infinite
    fragment. *)

val check_mge :
  fragment ->
  Whynot_relational.Schema.t ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t ->
  bool
(** CHECK-MGE w.r.t. [O_S]: subsumption is [⊑_S] under the schema's
    constraints, extensions are still evaluated over the instance. *)
