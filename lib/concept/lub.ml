open Whynot_relational

let nominal_conjuncts x =
  match Value_set.elements x with
  | [ c ] -> [ Ls.Nominal c ]
  | _ -> []

(* Memo tags for the lub caches of an instance handle (see
   {!Subsume_memo.memo_lub}): the variants range over different concept
   languages, so they must not share entries. *)
let tag_selection_free = 0
let tag_sigma_pruned = 1
let tag_sigma_unpruned = 2

let handle_of handle inst =
  match handle with Some h -> h | None -> Subsume_memo.inst inst

let lub ?handle inst x =
  if Value_set.is_empty x then invalid_arg "Lub.lub: empty constant set";
  let h = handle_of handle inst in
  Subsume_memo.memo_lub h ~tag:tag_selection_free x (fun () ->
      let projections =
        List.filter_map
          (fun (rel, attr) ->
             if Value_set.subset x (Subsume_memo.column h ~rel ~attr) then
               Some (Ls.Proj { rel; attr; sels = [] })
             else None)
          (Subsume_memo.positions h)
      in
      Ls.of_conjuncts (nominal_conjuncts x @ projections))

(* --- with selections --- *)

(* Canonical per-attribute interval options: unconstrained, or a closed
   interval [l, u] with endpoints among the witness values on that
   attribute. Closed endpoints suffice on a fixed instance: any selection
   can be strengthened to one whose endpoints are realised witness values
   without changing validity, and only stronger selections matter for the
   minimal extensions. *)
let interval_options values =
  let vs = Value_set.elements values in
  let closed =
    List.concat_map
      (fun l ->
         List.filter_map
           (fun u ->
              if Value.compare l u <= 0 then
                Some [ Interval.Closed l, Interval.Closed u ]
              else None)
           vs)
      vs
  in
  [] :: List.map (fun bounds -> List.map (fun (lo, hi) -> Interval.make lo hi) bounds) closed

let sels_of_intervals per_attr =
  List.concat_map
    (fun (attr, itvs) ->
       List.concat_map
         (fun itv ->
            List.map
              (fun (op, value) -> { Ls.attr; op; value })
              (Interval.to_conditions itv))
         itvs)
    per_attr

let conjunct_ext_set h c =
  match Subsume_memo.conjunct_ext h c with
  | Semantics.All -> assert false (* Proj/Nominal extensions are finite *)
  | Semantics.Fin s -> s

let atomic_selection_candidates ?(prune = true) ?handle inst ~rel ~attr x =
  let h = handle_of handle inst in
  match Instance.relation inst rel with
  | None -> []
  | Some r ->
    let arity = Relation.arity r in
    (* Witness tuples per element of X. *)
    let witnesses =
      Value_set.fold
        (fun v acc ->
           let ts =
             Relation.fold
               (fun t ts ->
                  if Value.equal (Tuple.get t attr) v then t :: ts else ts)
               r []
           in
           ts :: acc)
        x []
    in
    if List.exists (fun ts -> ts = []) witnesses then []
    else
      let all_witnesses = List.concat witnesses in
      let witness_values b =
        List.fold_left
          (fun acc t -> Value_set.add (Tuple.get t b) acc)
          Value_set.empty all_witnesses
      in
      (* DFS over attributes; prune as soon as the partial selection loses a
         witness for some element of X (selections only shrink). *)
      let valid sels =
        let selected =
          Relation.select
            (List.map (fun (s : Ls.selection) -> (s.attr, s.op, s.value)) sels)
            r
        in
        Value_set.subset x (Relation.column attr selected)
      in
      let rec dfs b acc_intervals acc =
        if b > arity then
          let sels = sels_of_intervals (List.rev acc_intervals) in
          if valid sels then (sels :: acc) else acc
        else
          List.fold_left
            (fun acc opt ->
               let partial = (b, opt) :: acc_intervals in
               let sels = sels_of_intervals partial in
               if valid sels then dfs (b + 1) partial acc else acc)
            acc
            (interval_options (witness_values b))
      in
      let valid_sels = dfs 1 [] [] in
      let with_ext =
        List.map
          (fun sels ->
             let c = Ls.Proj { rel; attr; sels } in
             (c, conjunct_ext_set h c))
          valid_sels
      in
      (* Keep the subset-minimal extensions (their meet equals the meet of
         all valid candidates), deduplicating equal extensions. The
         unpruned variant (D2 ablation) keeps every valid candidate. *)
      let minimal =
        if not prune then with_ext
        else
        List.filter
          (fun (_, ext) ->
             not
               (List.exists
                  (fun (_, ext') ->
                     Value_set.subset ext' ext && not (Value_set.equal ext' ext))
                  with_ext))
          with_ext
      in
      let deduped =
        List.fold_left
          (fun acc (c, ext) ->
             if List.exists (fun (_, ext') -> Value_set.equal ext ext') acc then acc
             else (c, ext) :: acc)
          [] minimal
      in
      List.map fst deduped

let lub_sigma ?(prune = true) ?handle inst x =
  if Value_set.is_empty x then invalid_arg "Lub.lub_sigma: empty constant set";
  let h = handle_of handle inst in
  let tag = if prune then tag_sigma_pruned else tag_sigma_unpruned in
  Subsume_memo.memo_lub h ~tag x (fun () ->
      let candidates =
        List.concat_map
          (fun (rel, attr) ->
             atomic_selection_candidates ~prune ~handle:h inst ~rel ~attr x)
          (Subsume_memo.positions h)
      in
      Ls.of_conjuncts (nominal_conjuncts x @ candidates))
