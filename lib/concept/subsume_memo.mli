(** The memoised subsumption and extension layer.

    The MGE algorithms (Algorithms 1 and 2), the irredundancy minimiser
    and the lub computations re-decide subsumption and re-evaluate concept
    extensions for heavily overlapping concept pairs; the Table-1 deciders
    behind [⊑_S] are the most expensive calls in the system. This module
    puts a memo table in front of both {!Subsume_inst} ([⊑_I]) and
    {!Subsume_schema} ([⊑_S]) so each (left, right, constraint-class)
    verdict is decided once per run, keyed on the hash-consed concept ids
    of {!Ls.id}.

    Caches live in {e handles}, interned per physical instance or schema
    value: the algorithms thread one instance value through a run, so
    handle lookup is a hash-table probe and the caches have exactly the
    lifetime of the data they describe. Two structurally equal schemas
    with different physical identity get independent handles — in
    particular a schema whose constraint set differs can never see stale
    verdicts (cross-checked by the memo unit tests and the
    [memo/*] differential properties). Handle registries are capped and
    flushed wholesale past the cap, bounding memory on instance-churning
    workloads.

    All cache traffic is counted through {!Whynot_obs.Obs}
    ([subsume.inst.calls]/[subsume.inst.hits],
    [subsume.schema.calls]/[subsume.schema.hits], [memo.ext.*],
    [memo.translate.*], [memo.lub.*]); the benchmark harness records the
    counters into [BENCH_whynot.json], and [whynot_cli --stats] prints
    them. *)

open Whynot_relational

(** {1 Instance-level caching ([⊑_I], extensions, lubs)} *)

type inst
(** A memo handle for one (physical) instance. *)

val inst : Instance.t -> inst
(** The handle for this instance — interned, so repeated calls with the
    same instance value share one cache. *)

val private_inst : Instance.t -> inst
(** A fresh, unregistered handle for this instance. The parallel engine
    gives each worker domain its own private handle (handles are not
    thread-safe) and merges the caches back with {!absorb_inst} once the
    domains join. *)

val absorb_inst : into:inst -> inst -> unit
(** [absorb_inst ~into src] copies every cache entry of [src] that [into]
    does not already have (verdicts, extensions, lubs, columns). Both
    handles must wrap the same physical instance; entries are keyed on
    process-global hash-consed ids, so merged verdicts stay sound.
    @raise Invalid_argument when the instances differ. *)

val instance : inst -> Instance.t
(** The instance the handle was built from. *)

val extension : inst -> Ls.t -> Semantics.ext
(** [[C]]^I, memoised per {!Ls.id} with a shared per-conjunct cache (the
    irredundancy minimiser probes many conjunct subsets of one concept). *)

val conjunct_ext : inst -> Ls.conjunct -> Semantics.ext
(** The extension of a single atomic conjunct, memoised structurally —
    the unit the irredundancy minimiser and [lub_sigma] recombine. *)

val mem : inst -> Value.t -> Ls.t -> bool
(** Membership via the cached extension. *)

val subsumes : inst -> Ls.t -> Ls.t -> bool
(** [C1 ⊑_I C2], memoised on [(Ls.id C1, Ls.id C2)]. *)

val positions : inst -> (string * int) list
(** All (relation, attribute) positions of the instance, computed once. *)

val column : inst -> rel:string -> attr:int -> Value_set.t
(** The value set of one column, memoised — the inner loop of {!Lub.lub}. *)

val memo_lub : inst -> tag:int -> Value_set.t -> (unit -> Ls.t) -> Ls.t
(** Compute-through cache for lub results keyed on [(tag, elements X)];
    [tag] separates lub variants (selection-free / with selections /
    unpruned) that share a handle. *)

(** {1 Schema-level caching ([⊑_S])} *)

type schema
(** A memo handle for one (physical) schema. *)

val schema : Schema.t -> schema
(** The handle for this schema — interned like {!inst}. *)

val private_schema : Schema.t -> schema
(** A fresh, unregistered schema handle — the schema-level counterpart of
    {!private_inst}. *)

val absorb_schema : into:schema -> schema -> unit
(** Merge a private schema handle's verdict and translation caches back
    into a shared one. Both handles must wrap the same physical schema.
    @raise Invalid_argument when the schemas differ. *)

val schema_of : schema -> Schema.t
(** The schema the handle was built from. *)

val constraint_class : schema -> Subsume_schema.constraint_class
(** The Table-1 class, classified once per handle; every cached verdict
    of the handle was decided under this class. *)

val translate : schema -> Ls.t -> Ucq.t
(** Memoised {!To_query.ucq} (per {!Ls.id}); also passed into
    {!Subsume_schema.decide} as its [translate] hook on cache misses. *)

val decide :
  ?chase_depth:int -> schema -> Ls.t -> Ls.t -> Subsume_schema.verdict
(** Memoised {!Subsume_schema.decide}. [chase_depth] only influences the
    first decision of a pair; callers that need a different depth for an
    already-cached pair must use the uncached decider directly. *)

val schema_subsumes : ?chase_depth:int -> schema -> Ls.t -> Ls.t -> bool
(** [decide = Subsumed]. *)

(** {1 Cooperative deadlines}

    A handle may carry an absolute deadline ([Whynot_obs.Obs.now_s]
    seconds). Every memoised entry point checks it before touching a
    cache and raises {!Deadline_exceeded} once the clock passes it, so
    the MGE algorithms — whose expensive work all funnels through these
    entry points — unwind within one candidate evaluation.
    [Whynot.Engine] sets deadlines on its (shared and per-worker) handles
    around an operation and converts the exception into a [`Timeout]
    result; direct callers of this module normally never see the
    exception because handles start with no deadline. *)

exception Deadline_exceeded

val set_inst_deadline : inst -> float option -> unit
(** [Some t]: raise from this handle's entry points once
    [Whynot_obs.Obs.now_s () > t]; [None] clears. *)

val set_schema_deadline : schema -> float option -> unit

(** {1 Lifecycle} *)

val clear : unit -> unit
(** Flush both handle registries: the next [inst]/[schema] call starts
    cold. Existing handles captured in closures keep working but are no
    longer shared. Used by the benchmark harness to measure the uncached
    path, and by tests. *)
