let naive_subsumes inst c1 c2 =
  Semantics.ext_subset (Semantics.extension c1 inst) (Semantics.extension c2 inst)

let subsumes inst c1 c2 = Subsume_memo.subsumes (Subsume_memo.inst inst) c1 c2

let strictly_subsumed inst c1 c2 = subsumes inst c1 c2 && not (subsumes inst c2 c1)

let equivalent inst c1 c2 = subsumes inst c1 c2 && subsumes inst c2 c1
