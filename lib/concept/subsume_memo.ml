open Whynot_relational
module Obs = Whynot_obs.Obs

let c_inst_calls =
  Obs.counter "subsume.inst.calls" ~doc:"instance-level subsumption queries"

let c_inst_hits =
  Obs.counter "subsume.inst.hits" ~doc:"instance-level verdicts answered from cache"

let c_ext_calls =
  Obs.counter "memo.ext.calls" ~doc:"concept extension requests"

let c_ext_hits =
  Obs.counter "memo.ext.hits" ~doc:"concept extensions answered from cache"

let c_schema_calls =
  Obs.counter "subsume.schema.calls" ~doc:"schema-level subsumption queries"

let c_schema_hits =
  Obs.counter "subsume.schema.hits" ~doc:"schema-level verdicts answered from cache"

let c_translate_calls =
  Obs.counter "memo.translate.calls" ~doc:"concept-to-UCQ translation requests"

let c_translate_hits =
  Obs.counter "memo.translate.hits" ~doc:"translations answered from cache"

let c_lub_calls = Obs.counter "memo.lub.calls" ~doc:"lub requests"
let c_lub_hits = Obs.counter "memo.lub.hits" ~doc:"lubs answered from cache"

let c_handles_inst =
  Obs.counter "memo.handles.instance" ~doc:"instance memo handles created"

let c_handles_schema =
  Obs.counter "memo.handles.schema" ~doc:"schema memo handles created"

let c_flushes =
  Obs.counter "memo.flushes" ~doc:"registry flushes (cap reached or clear)"

let c_merges =
  Obs.counter "memo.merges"
    ~doc:"per-domain handle caches merged back into a shared handle"

let c_merged_entries =
  Obs.counter "memo.merged_entries"
    ~doc:"cache entries copied during handle merges"

(* --- key modules --- *)

module Conj_tbl = Hashtbl.Make (struct
    type t = Ls.conjunct

    let equal a b = Stdlib.compare a b = 0
    let hash = Hashtbl.hash
  end)

module Pair_tbl = Hashtbl.Make (struct
    type t = int * int

    let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
    let hash (a, b) = (a * 65599) + b
  end)

module Int_tbl = Hashtbl.Make (Int)

module Lub_tbl = Hashtbl.Make (struct
    type t = int * Value.t list

    let equal (t1, vs1) (t2, vs2) = t1 = t2 && Stdlib.compare vs1 vs2 = 0
    let hash = Hashtbl.hash
  end)

(* --- cooperative deadlines ---

   Every memoised entry point doubles as a cancellation point: when a
   handle carries a deadline (absolute [Obs.now_s] seconds; [0.] = none)
   and the clock has passed it, the call raises [Deadline_exceeded]
   instead of computing. The MGE algorithms funnel all their expensive
   work (extensions, subsumption verdicts, lubs, Table-1 decisions)
   through these entry points, so a long search unwinds within one
   candidate evaluation of the deadline passing — that is how
   [Whynot.Engine] turns a server request deadline into a [`Timeout]
   result without hard-killing any domain. *)

exception Deadline_exceeded

let c_deadline_trips =
  Obs.counter "memo.deadline.trips"
    ~doc:"operations unwound by a cooperative deadline check"

(* --- per-instance handles --- *)

type inst = {
  instance : Instance.t;
  conj_exts : Semantics.ext Conj_tbl.t;
  exts : Semantics.ext Int_tbl.t;
  verdicts : bool Pair_tbl.t;
  columns : (string * int, Value_set.t) Hashtbl.t;
  mutable positions : (string * int) list option;
  lubs : Ls.t Lub_tbl.t;
  mutable deadline : float;  (* absolute seconds; 0. = none *)
}

type schema_handle = {
  sschema : Schema.t;
  cls : Subsume_schema.constraint_class;
  sverdicts : Subsume_schema.verdict Pair_tbl.t;
  ucqs : Ucq.t Int_tbl.t;
  mutable sdeadline : float;
}

let check_inst_deadline h =
  if h.deadline > 0. && Obs.now_s () > h.deadline then begin
    Obs.incr c_deadline_trips;
    raise Deadline_exceeded
  end

let check_schema_deadline h =
  if h.sdeadline > 0. && Obs.now_s () > h.sdeadline then begin
    Obs.incr c_deadline_trips;
    raise Deadline_exceeded
  end

let set_inst_deadline h d =
  h.deadline <- (match d with Some t -> t | None -> 0.)

let set_schema_deadline h d =
  h.sdeadline <- (match d with Some t -> t | None -> 0.)

(* Handles are interned per *physical* instance/schema value: the
   algorithms thread one instance value through a whole run, so physical
   identity is exactly the lifetime we want to cache for, and it can never
   confuse two structurally equal but semantically distinct runs. The
   registries are capped; past the cap they are flushed wholesale (live
   handles captured in closures keep working, they just stop being
   shared), which bounds memory under workloads that churn through many
   instances (the property-based tests generate thousands). *)

module Phys (T : sig type t end) = Hashtbl.Make (struct
    type t = T.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

module Inst_reg = Phys (struct type t = Instance.t end)
module Schema_reg = Phys (struct type t = Schema.t end)

let max_handles = 64
let inst_registry : inst Inst_reg.t = Inst_reg.create 64
let schema_registry : schema_handle Schema_reg.t = Schema_reg.create 16

(* Registry probes are cheap and rare (once per algorithm run), so one
   lock guards both registries. Handles themselves stay single-domain:
   the parallel engine gives each worker a {!private_inst} and merges it
   back with {!absorb_inst} after the join. *)
let registry_lock = Mutex.create ()

let clear () =
  Mutex.protect registry_lock (fun () ->
      Obs.incr c_flushes;
      Inst_reg.reset inst_registry;
      Schema_reg.reset schema_registry)

let fresh_inst instance =
  Obs.incr c_handles_inst;
  {
    instance;
    conj_exts = Conj_tbl.create 64;
    exts = Int_tbl.create 64;
    verdicts = Pair_tbl.create 64;
    columns = Hashtbl.create 16;
    positions = None;
    lubs = Lub_tbl.create 64;
    deadline = 0.;
  }

let inst instance =
  Mutex.protect registry_lock (fun () ->
      match Inst_reg.find_opt inst_registry instance with
      | Some h -> h
      | None ->
        if Inst_reg.length inst_registry >= max_handles then begin
          Obs.incr c_flushes;
          Inst_reg.reset inst_registry
        end;
        let h = fresh_inst instance in
        Inst_reg.add inst_registry instance h;
        h)

let private_inst instance = fresh_inst instance

let instance h = h.instance

let conjunct_ext h conj =
  check_inst_deadline h;
  match Conj_tbl.find_opt h.conj_exts conj with
  | Some e -> e
  | None ->
    let e = Semantics.conjunct_ext conj h.instance in
    Conj_tbl.add h.conj_exts conj e;
    e

let extension h c =
  check_inst_deadline h;
  Obs.incr c_ext_calls;
  let key = Ls.id c in
  match Int_tbl.find_opt h.exts key with
  | Some e ->
    Obs.incr c_ext_hits;
    e
  | None ->
    let e =
      List.fold_left
        (fun acc conj -> Semantics.ext_inter acc (conjunct_ext h conj))
        Semantics.All (Ls.conjuncts c)
    in
    Int_tbl.add h.exts key e;
    e

let mem h v c = Semantics.ext_mem v (extension h c)

let subsumes h c1 c2 =
  check_inst_deadline h;
  Obs.incr c_inst_calls;
  let key = (Ls.id c1, Ls.id c2) in
  match Pair_tbl.find_opt h.verdicts key with
  | Some r ->
    Obs.incr c_inst_hits;
    r
  | None ->
    let r = Semantics.ext_subset (extension h c1) (extension h c2) in
    Pair_tbl.add h.verdicts key r;
    r

let positions h =
  match h.positions with
  | Some ps -> ps
  | None ->
    let ps =
      List.concat_map
        (fun name ->
           match Instance.relation h.instance name with
           | None -> []
           | Some r -> List.init (Relation.arity r) (fun i -> (name, i + 1)))
        (Instance.relation_names h.instance)
    in
    h.positions <- Some ps;
    ps

let column h ~rel ~attr =
  match Hashtbl.find_opt h.columns (rel, attr) with
  | Some s -> s
  | None ->
    let s =
      Eval_index.column_values (Eval_index.of_instance h.instance) ~rel ~attr
    in
    Hashtbl.add h.columns (rel, attr) s;
    s

let memo_lub h ~tag x compute =
  check_inst_deadline h;
  Obs.incr c_lub_calls;
  let key = (tag, Value_set.elements x) in
  match Lub_tbl.find_opt h.lubs key with
  | Some c ->
    Obs.incr c_lub_hits;
    c
  | None ->
    let c = compute () in
    Lub_tbl.add h.lubs key c;
    c

(* --- merging per-domain handles --- *)

let merge_tbl ~iter ~mem ~addf src =
  let copied = ref 0 in
  iter
    (fun k v ->
       if not (mem k) then begin
         addf k v;
         Stdlib.incr copied
       end)
    src;
  !copied

let absorb_inst ~into src =
  if not (into.instance == src.instance) then
    invalid_arg "Subsume_memo.absorb_inst: handles for different instances";
  if into == src then ()
  else begin
    Obs.incr c_merges;
    let n = ref 0 in
    n := !n + merge_tbl
        ~iter:Conj_tbl.iter
        ~mem:(Conj_tbl.mem into.conj_exts)
        ~addf:(Conj_tbl.add into.conj_exts)
        src.conj_exts;
    n := !n + merge_tbl
        ~iter:Int_tbl.iter
        ~mem:(Int_tbl.mem into.exts)
        ~addf:(Int_tbl.add into.exts)
        src.exts;
    n := !n + merge_tbl
        ~iter:Pair_tbl.iter
        ~mem:(Pair_tbl.mem into.verdicts)
        ~addf:(Pair_tbl.add into.verdicts)
        src.verdicts;
    n := !n + merge_tbl
        ~iter:Hashtbl.iter
        ~mem:(Hashtbl.mem into.columns)
        ~addf:(Hashtbl.add into.columns)
        src.columns;
    n := !n + merge_tbl
        ~iter:Lub_tbl.iter
        ~mem:(Lub_tbl.mem into.lubs)
        ~addf:(Lub_tbl.add into.lubs)
        src.lubs;
    (match into.positions, src.positions with
     | None, (Some _ as ps) -> into.positions <- ps
     | _ -> ());
    Obs.add c_merged_entries !n
  end

(* --- per-schema handles --- *)

type schema = schema_handle

let fresh_schema sschema =
  Obs.incr c_handles_schema;
  {
    sschema;
    cls = Subsume_schema.classify sschema;
    sverdicts = Pair_tbl.create 64;
    ucqs = Int_tbl.create 64;
    sdeadline = 0.;
  }

let schema sschema =
  Mutex.protect registry_lock (fun () ->
      match Schema_reg.find_opt schema_registry sschema with
      | Some h -> h
      | None ->
        if Schema_reg.length schema_registry >= max_handles then begin
          Obs.incr c_flushes;
          Schema_reg.reset schema_registry
        end;
        let h = fresh_schema sschema in
        Schema_reg.add schema_registry sschema h;
        h)

let private_schema sschema = fresh_schema sschema

let absorb_schema ~into src =
  if not (into.sschema == src.sschema) then
    invalid_arg "Subsume_memo.absorb_schema: handles for different schemas";
  if into == src then ()
  else begin
    Obs.incr c_merges;
    let n = ref 0 in
    n := !n + merge_tbl
        ~iter:Pair_tbl.iter
        ~mem:(Pair_tbl.mem into.sverdicts)
        ~addf:(Pair_tbl.add into.sverdicts)
        src.sverdicts;
    n := !n + merge_tbl
        ~iter:Int_tbl.iter
        ~mem:(Int_tbl.mem into.ucqs)
        ~addf:(Int_tbl.add into.ucqs)
        src.ucqs;
    Obs.add c_merged_entries !n
  end

let schema_of h = h.sschema
let constraint_class h = h.cls

let translate h c =
  Obs.incr c_translate_calls;
  let key = Ls.id c in
  match Int_tbl.find_opt h.ucqs key with
  | Some u ->
    Obs.incr c_translate_hits;
    u
  | None ->
    let u = To_query.ucq h.sschema c in
    Int_tbl.add h.ucqs key u;
    u

let decide ?chase_depth h c1 c2 =
  check_schema_deadline h;
  Obs.incr c_schema_calls;
  let key = (Ls.id c1, Ls.id c2) in
  match Pair_tbl.find_opt h.sverdicts key with
  | Some v ->
    Obs.incr c_schema_hits;
    v
  | None ->
    let v =
      Subsume_schema.decide ?chase_depth ~translate:(translate h) h.sschema c1
        c2
    in
    Pair_tbl.add h.sverdicts key v;
    v

let schema_subsumes ?chase_depth h c1 c2 =
  decide ?chase_depth h c1 c2 = Subsume_schema.Subsumed
