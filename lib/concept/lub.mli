(** Least upper bounds of constant sets in [L_S], w.r.t. a fixed instance.

    [lub I X] (Lemma 5.1) is the smallest selection-free [L_S] concept whose
    extension over [I] contains every constant of [X]: the conjunction of
    all atomic selection-free concepts [pi_A(R)] whose column contains [X]
    (plus the nominal when [X] is a singleton). Polynomial time.

    [lub_sigma I X] (Lemma 5.2) is the analogue for full [L_S]: selections
    are allowed. We enumerate canonical selections per relation — one
    interval per attribute, with endpoints among the values of witness
    tuples — which realises every achievable extension on [I]; the result
    is the conjunction of the subset-minimal valid atomic concepts, which is
    equivalent over [I] to the conjunction of all valid ones. Exponential in
    the arity (polynomial for bounded schema arity), matching the lemma. *)

open Whynot_relational

val lub : ?handle:Subsume_memo.inst -> Instance.t -> Value_set.t -> Ls.t
(** Selection-free least upper bound. [handle] routes all memoisation
    through an explicit (possibly private, per-domain) handle instead of
    the shared interned one. @raise Invalid_argument on empty [X]. *)

val lub_sigma :
  ?prune:bool -> ?handle:Subsume_memo.inst -> Instance.t -> Value_set.t -> Ls.t
(** Least upper bound with selections. @raise Invalid_argument on empty
    [X]. *)

val atomic_selection_candidates :
  ?prune:bool ->
  ?handle:Subsume_memo.inst ->
  Instance.t -> rel:string -> attr:int -> Value_set.t -> Ls.conjunct list
(** The subset-minimal valid atomic concepts [pi_attr(sigma(rel))] whose
    extension contains [X] (exposed for tests and benchmarks). *)
