(** Concept subsumption with respect to an instance, [C1 ⊑_I C2]
    (§4.2): extension inclusion on the given instance. Decidable in
    polynomial time (Proposition 4.1). *)

open Whynot_relational

val subsumes : Instance.t -> Ls.t -> Ls.t -> bool
(** [subsumes inst c1 c2] iff [[[c1]]^I ⊆ [[c2]]^I]. Answered through the
    {!Subsume_memo} layer: verdicts and extensions are cached per
    (physical) instance, keyed on hash-consed concept ids. *)

val naive_subsumes : Instance.t -> Ls.t -> Ls.t -> bool
(** The direct, cache-free decision — recomputes both extensions on every
    call. Semantically identical to {!subsumes}; kept as the independent
    oracle for the [memo/subsume-inst-cached-vs-naive] differential
    property. *)

val strictly_subsumed : Instance.t -> Ls.t -> Ls.t -> bool
(** [strictly_subsumed inst c1 c2] iff [c1 ⊑_I c2] and not [c2 ⊑_I c1]. *)

val equivalent : Instance.t -> Ls.t -> Ls.t -> bool
(** Mutual [⊑_I] subsumption. *)
