open Whynot_relational

let src = Logs.Src.create "whynot.subsume" ~doc:"schema-level concept subsumption"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Whynot_obs.Obs

let c_canonical =
  Obs.counter "subsume.schema.canonical_insts"
    ~doc:"canonical instantiations enumerated"

let c_chase_steps =
  Obs.counter "subsume.schema.chase_steps" ~doc:"IND chase rounds applied"

let c_countermodels =
  Obs.counter "subsume.schema.countermodel_attempts"
    ~doc:"bounded counter-model searches"

let c_decides =
  Obs.counter "subsume.schema.decides" ~doc:"uncached decide invocations"

type verdict =
  | Subsumed
  | Not_subsumed
  | Unknown

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
     | Subsumed -> "subsumed"
     | Not_subsumed -> "not subsumed"
     | Unknown -> "unknown")

type constraint_class =
  | No_constraints
  | Views_only
  | Fds_only
  | Inds_only
  | Mixed

let classify schema =
  match Schema.fds schema, Schema.inds schema, Schema.has_views schema with
  | [], [], false -> No_constraints
  | [], [], true -> Views_only
  | _ :: _, [], false -> Fds_only
  | [], _ :: _, false -> Inds_only
  | _ -> Mixed

(* --- unsatisfiability of a concept over every instance --- *)

let distinct_nominals c =
  Value_set.cardinal
    (List.fold_left
       (fun acc conj ->
          match conj with
          | Ls.Nominal v -> Value_set.add v acc
          | Ls.Proj _ -> acc)
       Value_set.empty (Ls.conjuncts c))

let concept_unsat ~translate c =
  distinct_nominals c >= 2
  || (not (To_query.is_pure c))
     && List.for_all Cq.is_unsatisfiable_syntactic (translate c).Ucq.disjuncts

(* --- sound rule (iii): IND positional reachability --- *)

let ind_reach_rule schema c1 rhs_rel rhs_attr =
  let inds = Schema.inds schema in
  List.exists
    (function
      | Ls.Nominal _ -> false
      | Ls.Proj { rel; attr; _ } ->
        List.mem (rhs_rel, rhs_attr) (Ind.unary_reachable inds (rel, attr)))
    (Ls.conjuncts c1)

(* --- complete checks based on canonical instantiations --- *)

(* All canonical instantiations of the (unfolded) concept query of [c1],
   optionally filtered by the schema's FDs, paired with the head constant.

   When FD-filtering, the instantiations must include within-region variable
   merges ([~merges:true]): the FD-satisfying witnesses of a query such as
   [R(x,y1), R(x,y2), y2 > 2] under the FD R:1→2 are exactly the merges
   y1 = y2, and the distinct-representatives enumeration alone would be
   filtered down to nothing, leaving the containment check vacuously true. *)
let canonical_candidates ?(fd_filter = false) ~translate schema c1
    ~extra_constants =
  let u1 = translate c1 in
  List.concat_map
    (fun d ->
       if Cq.is_unsatisfiable_syntactic d then []
       else
         let instantiations =
           Containment.canonical_instantiations ~merges:fd_filter d
             ~extra_constants
         in
         Obs.add c_canonical (List.length instantiations);
         List.filter_map
           (fun (inst, head) ->
              let keep =
                (not fd_filter)
                || List.for_all
                     (fun (fd : Fd.t) ->
                        match Instance.relation inst fd.Fd.rel with
                        | None -> true
                        | Some r -> Fd.satisfied_in fd r)
                     (Schema.fds schema)
              in
              if keep then Some (inst, Tuple.get head 1) else None)
           instantiations)
    u1.Ucq.disjuncts

(* Complete subsumption check for the classes without INDs: every canonical
   (FD-satisfying, when FDs are present) instantiation's head must be an
   answer of the right-hand side. *)
let canonical_containment ~fd_filter ~translate schema c1 c2_conjunct_ucq
    rhs_constants =
  List.for_all
    (fun (inst, head) ->
       Relation.mem (Tuple.of_list [ head ]) (Ucq.eval c2_conjunct_ucq inst))
    (canonical_candidates ~fd_filter ~translate schema c1
       ~extra_constants:rhs_constants)

(* [c1]'s extension is within [{v}] in every instance. *)
let always_within_singleton ~fd_filter ~translate schema c1 v =
  List.for_all
    (fun (_, head) -> Value.equal head v)
    (canonical_candidates ~fd_filter ~translate schema c1
       ~extra_constants:(Value_set.singleton v))

(* --- bounded counter-model search --- *)

(* Atomic so concurrent chases in different domains never hand out the
   same fresh null. *)
let fresh_counter = Atomic.make 0

let fresh_value () =
  Value.Int (-1000000000 - Atomic.fetch_and_add fresh_counter 1 - 1)

(* One chase round: repair every IND violation whose right-hand relation is
   a data relation by inserting a tuple with fresh values at unmapped
   positions. Returns [None] if a violation cannot be repaired. *)
let chase_round schema inst =
  let completed = Schema.complete schema inst in
  let data = Schema.data_relation_names schema in
  let repair acc (ind : Ind.t) =
    match acc with
    | None -> None
    | Some (inst, changed) ->
      let arr name =
        Instance.relation_or_empty completed
          ~arity:(Option.value ~default:0 (Schema.arity schema name))
          name
      in
      let missing =
        Ind.violations ind ~lhs:(arr ind.Ind.lhs_rel) ~rhs:(arr ind.Ind.rhs_rel)
      in
      if missing = [] then Some (inst, changed)
      else if not (List.mem ind.Ind.rhs_rel data) then None
      else begin
        Obs.incr c_chase_steps;
        let arity = Option.get (Schema.arity schema ind.Ind.rhs_rel) in
        let inst =
          List.fold_left
            (fun inst p ->
               let row =
                 List.init arity (fun j ->
                     let j = j + 1 in
                     match
                       List.find_index (Int.equal j) ind.Ind.rhs_attrs
                     with
                     | Some k -> Tuple.get p (k + 1)
                     | None -> fresh_value ())
               in
               Instance.add_fact ind.Ind.rhs_rel row inst)
            inst missing
        in
        Some (inst, true)
      end
  in
  List.fold_left repair (Some (inst, false)) (Schema.inds schema)

let rec chase schema inst depth =
  if depth <= 0 then None
  else
    match chase_round schema inst with
    | None -> None
    | Some (inst, false) -> Some inst
    | Some (inst, true) -> chase schema inst (depth - 1)

let chase_to_legal_instance ?(depth = 4) schema inst =
  (* Keep only the data relations; views get recomputed. *)
  let data = Instance.restrict (Schema.data_relation_names schema) inst in
  match chase schema data depth with
  | None -> None
  | Some data ->
    let full = Schema.complete schema data in
    (match Schema.satisfies schema full with
     | Error _ -> None
     | Ok () -> Some full)

let refute_with_counter_model ~chase_depth ~translate schema c1 c2 =
  Obs.incr c_countermodels;
  let extra_constants = Ls.constants c2 in
  let candidates =
    canonical_candidates ~fd_filter:false ~translate schema c1 ~extra_constants
  in
  Log.debug (fun m ->
      m "counter-model search: %d canonical candidate(s) for %s vs %s"
        (List.length candidates) (Ls.to_string c1) (Ls.to_string c2));
  List.exists
    (fun (inst0, head) ->
       match chase_to_legal_instance ~depth:chase_depth schema inst0 with
       | None -> false
       | Some full ->
         let refuted =
           Semantics.mem head c1 full && not (Semantics.mem head c2 full)
         in
         if refuted then
           Log.debug (fun m ->
               m "refuted by a legal instance with %d fact(s)"
                 (Instance.fact_count full));
         refuted)
    candidates

(* --- per-conjunct decision --- *)

let conjunct_concept conj = Ls.of_conjuncts [ conj ]

let decide_conjunct ~cls ~translate schema c1 conj =
  let sound_containment () =
    match conj with
    | Ls.Nominal v ->
      List.mem (Ls.Nominal v) (Ls.conjuncts c1)
      || (not (To_query.is_pure c1))
         && always_within_singleton ~fd_filter:(cls = Fds_only) ~translate
              schema c1 v
    | Ls.Proj _ ->
      if To_query.is_pure c1 then false
      else
        let rhs = conjunct_concept conj in
        let rhs_ucq = translate rhs in
        (match cls with
         | Fds_only ->
           canonical_containment ~fd_filter:true ~translate schema c1 rhs_ucq
             (Ucq.constants rhs_ucq)
         | No_constraints | Views_only | Inds_only | Mixed ->
           Containment.ucq_in_ucq (translate c1) rhs_ucq)
  in
  let ind_rule () =
    match conj with
    | Ls.Proj { rel; attr; sels = [] } -> ind_reach_rule schema c1 rel attr
    | Ls.Proj _ | Ls.Nominal _ -> false
  in
  sound_containment () || (Schema.inds schema <> [] && ind_rule ())

let selection_free_pair c1 c2 =
  Ls.is_selection_free c1 && Ls.is_selection_free c2

let decide ?(chase_depth = 4) ?translate schema c1 c2 =
  Obs.incr c_decides;
  let translate =
    match translate with Some f -> f | None -> To_query.ucq schema
  in
  if concept_unsat ~translate c1 then Subsumed
  else
    let cls = classify schema in
    let all_covered =
      List.for_all
        (fun conj -> decide_conjunct ~cls ~translate schema c1 conj)
        (Ls.conjuncts c2)
    in
    if all_covered then Subsumed
    else
      match cls with
      | No_constraints | Views_only | Fds_only -> Not_subsumed
      | Inds_only when selection_free_pair c1 c2 ->
        (* Reachability + trivial containment is complete here. *)
        Not_subsumed
      | Inds_only | Mixed ->
        if refute_with_counter_model ~chase_depth ~translate schema c1 c2 then
          Not_subsumed
        else Unknown

let subsumes ?chase_depth ?translate schema c1 c2 =
  decide ?chase_depth ?translate schema c1 c2 = Subsumed

let refutes ?chase_depth ?translate schema c1 c2 =
  decide ?chase_depth ?translate schema c1 c2 = Not_subsumed
