(** Irredundant concept expressions (Proposition 6.2): a conjunction
    [C = C1 ⊓ ... ⊓ Cn] is irredundant w.r.t. [O_I] if no strict subset of
    its conjuncts is equivalent to [C] over [I]. There is a polynomial-time
    algorithm producing an irredundant equivalent. *)

open Whynot_relational

val minimise : ?handle:Subsume_memo.inst -> Instance.t -> Ls.t -> Ls.t
(** Drop conjuncts greedily while the extension over [I] is unchanged, then
    drop selection conditions inside each surviving conjunct the same way
    (a strengthening beyond Proposition 6.2's conjunct-level notion).
    Polynomial time; the result is irredundant and [≡_{O_I}] the input. *)

val is_irredundant : ?handle:Subsume_memo.inst -> Instance.t -> Ls.t -> bool
(** Does dropping any single conjunct (or any single selection condition
    inside one) change the extension over [I]? Holds of every
    {!minimise} result. *)
