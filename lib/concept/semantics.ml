open Whynot_relational

type ext =
  | All
  | Fin of Value_set.t

let ext_mem v = function
  | All -> true
  | Fin s -> Value_set.mem v s

let ext_inter e1 e2 =
  match e1, e2 with
  | All, e | e, All -> e
  | Fin s1, Fin s2 -> Fin (Value_set.inter s1 s2)

let ext_subset e1 e2 =
  match e1, e2 with
  | _, All -> true
  | All, Fin _ -> false
  | Fin s1, Fin s2 -> Value_set.subset s1 s2

let ext_is_empty = function
  | All -> false
  | Fin s -> Value_set.is_empty s

let ext_cardinality = function
  | All -> None
  | Fin s -> Some (Value_set.cardinal s)

let ext_equal e1 e2 = ext_subset e1 e2 && ext_subset e2 e1

(* [pi_attr(sigma_sels(rel))] answered from the interned {!Eval_index}
   handle's per-column value indexes instead of a full-relation
   [Relation.select] scan. The scan version is preserved in
   [Whynot_proptest.Oracle.scan_conjunct_ext] and pinned against this one
   by the [ext/indexed-equals-scan] differential property. *)
let conjunct_ext c inst =
  match c with
  | Ls.Nominal v -> Fin (Value_set.singleton v)
  | Ls.Proj { rel; attr; sels } ->
    let idx = Eval_index.of_instance inst in
    Fin
      (Eval_index.select_column idx ~rel ~attr
         ~sels:
           (List.map (fun (s : Ls.selection) -> (s.attr, s.op, s.value)) sels))

let extension t inst =
  List.fold_left
    (fun acc c -> ext_inter acc (conjunct_ext c inst))
    All (Ls.conjuncts t)

let mem v t inst =
  List.for_all (fun c -> ext_mem v (conjunct_ext c inst)) (Ls.conjuncts t)
