open Whynot_relational

type selection = {
  attr : int;
  op : Cmp_op.t;
  value : Value.t;
}

type conjunct =
  | Nominal of Value.t
  | Proj of {
      rel : string;
      attr : int;
      sels : selection list;
    }

(* Concepts are hash-consed: [of_conjuncts] interns the normal form, so
   structurally equal concepts share one physical representation and a
   unique integer [id]. The id is the memo key used throughout the
   subsumption/extension caches (see {!Subsume_memo}); [equal] becomes an
   integer comparison. The intern table is never pruned — concepts are
   tiny and the live set per process is bounded by the workload. *)
type t = {
  id : int;
  conjs : conjunct list;
}

(* Normalise a selection list: group per attribute, meet the intervals, and
   re-emit canonical conditions (at most two per attribute; a single [=] for
   point intervals). An empty interval is re-emitted as an unsatisfiable
   canonical pair so the concept keeps an empty extension syntactically. *)
let normalise_sels sels =
  let module Int_map = Map.Make (Int) in
  let by_attr =
    List.fold_left
      (fun m s ->
         let itv = Interval.of_condition s.op s.value in
         Int_map.update s.attr
           (function
             | None -> Some itv
             | Some itv' -> Some (Interval.meet itv itv'))
           m)
      Int_map.empty sels
  in
  Int_map.fold
    (fun attr itv acc ->
       let conds =
         if Interval.is_empty itv then
           (* Canonical unsatisfiable condition pair. *)
           [ (Cmp_op.Lt, Value.Int 0); (Cmp_op.Gt, Value.Int 0) ]
         else Interval.to_conditions itv
       in
       acc @ List.map (fun (op, value) -> { attr; op; value }) conds)
    by_attr []

let normalise_conjunct = function
  | Nominal _ as c -> c
  | Proj p -> Proj { p with sels = normalise_sels p.sels }

(* The intern table compares keys with [Stdlib.compare] (not [(=)]) so
   that floating-point selection constants behave consistently with the
   structural order used everywhere else. *)
module Intern = Hashtbl.Make (struct
    type t = conjunct list

    let equal a b = Stdlib.compare a b = 0
    let hash = Hashtbl.hash
  end)

let intern_table : t Intern.t = Intern.create 1024
let next_id = ref 0
let interned = Whynot_obs.Obs.counter "ls.interned" ~doc:"distinct hash-consed L_S concepts"

(* The table is process-global on purpose: ids must stay unique across
   domains so that the parallel engine can merge id-keyed memo caches
   soundly. Interning is therefore serialised; the critical section is a
   hash probe, far cheaper than the extension/subsumption work the ids
   key. *)
let intern_lock = Mutex.create ()

let intern conjs =
  Mutex.protect intern_lock (fun () ->
      match Intern.find_opt intern_table conjs with
      | Some t -> t
      | None ->
        let t = { id = !next_id; conjs } in
        Stdlib.incr next_id;
        Whynot_obs.Obs.incr interned;
        Intern.add intern_table conjs t;
        t)

let of_conjuncts cs =
  intern (List.sort_uniq Stdlib.compare (List.map normalise_conjunct cs))

let top = intern []
let nominal c = intern [ Nominal c ]
let proj ?(sels = []) ~rel ~attr () = of_conjuncts [ Proj { rel; attr; sels } ]
let meet c1 c2 = of_conjuncts (c1.conjs @ c2.conjs)
let meet_all cs = of_conjuncts (List.concat_map (fun c -> c.conjs) cs)
let conjuncts t = t.conjs
let id t = t.id

let is_top t = t.conjs = []

let is_selection_free t =
  List.for_all
    (function Nominal _ -> true | Proj { sels; _ } -> sels = [])
    t.conjs

let is_intersection_free t = List.length t.conjs <= 1

let is_minimal t = is_intersection_free t && is_selection_free t

let has_nominal t =
  List.exists (function Nominal _ -> true | Proj _ -> false) t.conjs

let constants t =
  List.fold_left
    (fun acc c ->
       match c with
       | Nominal v -> Value_set.add v acc
       | Proj { sels; _ } ->
         List.fold_left (fun acc s -> Value_set.add s.value acc) acc sels)
    Value_set.empty t.conjs

let relations t =
  List.sort_uniq String.compare
    (List.filter_map
       (function Nominal _ -> None | Proj { rel; _ } -> Some rel)
       t.conjs)

let size t =
  match t.conjs with
  | [] -> 1 (* top *)
  | cs ->
    List.fold_left
      (fun acc c ->
         acc
         + (match c with
            | Nominal _ -> 1
            | Proj { sels; _ } ->
              (* pi, attribute, relation + 3 tokens per condition. *)
              3 + (3 * List.length sels)))
      (List.length cs - 1) (* ⊓ symbols *)
      cs

(* Interning makes [id] equality coincide with structural equality of the
   normal forms; [compare] keeps the pre-hash-consing structural order so
   sorted outputs stay stable. *)
let compare t1 t2 = if t1.id = t2.id then 0 else Stdlib.compare t1.conjs t2.conjs
let equal t1 t2 = t1.id = t2.id

let attr_label schema rel attr =
  match schema with
  | Some s ->
    (match Schema.attr_name s ~rel attr with
     | Some name -> name
     | None -> Printf.sprintf "#%d" attr)
  | None -> Printf.sprintf "#%d" attr

let pp_selection schema rel ppf s =
  Format.fprintf ppf "%s%a%a"
    (attr_label schema rel s.attr)
    Cmp_op.pp s.op Value.pp s.value

let pp_conjunct schema ppf = function
  | Nominal v -> Format.fprintf ppf "{%a}" Value.pp v
  | Proj { rel; attr; sels = [] } ->
    Format.fprintf ppf "pi_%s(%s)" (attr_label schema rel attr) rel
  | Proj { rel; attr; sels } ->
    Format.fprintf ppf "pi_%s(sigma_{%a}(%s))"
      (attr_label schema rel attr)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_selection schema rel))
      sels rel

let pp ?schema () ppf t =
  match t.conjs with
  | [] -> Format.pp_print_string ppf "top"
  | cs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " n ")
      (pp_conjunct schema) ppf cs

let pp_sql_conjunct schema ppf = function
  | Nominal v -> Value.pp ppf v
  | Proj { rel; attr; sels = [] } ->
    Format.fprintf ppf "%s from %s" (attr_label schema rel attr) rel
  | Proj { rel; attr; sels } ->
    Format.fprintf ppf "%s from %s where %a"
      (attr_label schema rel attr)
      rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
         (pp_selection schema rel))
      sels

let pp_sql ?schema () ppf t =
  match t.conjs with
  | [] -> Format.pp_print_string ppf "anything"
  | cs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ AND ")
      (pp_sql_conjunct schema) ppf cs

let to_string ?schema t = Format.asprintf "%a" (pp ?schema ()) t
