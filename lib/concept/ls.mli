(** The concept language [L_S] (Definition 4.6):

    {v
      D ::= R | sigma_{A1 op c1, ..., An op cn}(R)
      C ::= top | {c} | pi_A(D) | C ⊓ C
    v}

    A concept is kept in the normal form [C1 ⊓ ... ⊓ Cn] where each [Ci] is
    an atomic conjunct: a nominal [{c}] or a projection [pi_A(D)] ([top] is
    the empty conjunction). Selections are normalised per attribute to
    canonical interval conditions; conjuncts are sorted and deduplicated, so
    syntactic equality is meaningful modulo those normalisations. *)

open Whynot_relational

type selection = {
  attr : int;                (** 1-based attribute of the selected relation *)
  op : Cmp_op.t;
  value : Value.t;
}

type conjunct =
  | Nominal of Value.t       (** [{c}] *)
  | Proj of {
      rel : string;
      attr : int;            (** the projected attribute *)
      sels : selection list; (** empty list = no selection *)
    }

type t
(** A concept in normal form. Values are hash-consed: structurally equal
    concepts share one physical representation and one {!id}, so {!equal}
    is an integer comparison and ids serve as memo-table keys (see
    {!Subsume_memo}). *)

(** {2 Smart constructors}

    The only way to build concepts; each normalises (sorts and
    deduplicates conjuncts and selections, flattens meets, absorbs
    [top]) and interns the result in the hash-cons table. *)

val top : t
val nominal : Value.t -> t
val proj : ?sels:selection list -> rel:string -> attr:int -> unit -> t
val meet : t -> t -> t
val meet_all : t list -> t
val of_conjuncts : conjunct list -> t
val conjuncts : t -> conjunct list
(** Empty list iff the concept is [top]. *)

val is_top : t -> bool
val is_selection_free : t -> bool
val is_intersection_free : t -> bool
(** At most one conjunct. *)

val is_minimal : t -> bool
(** In [L_S^min]: both selection-free and intersection-free. *)

val has_nominal : t -> bool

val constants : t -> Value_set.t
(** Constants occurring in the concept (nominals and selection constants). *)

val relations : t -> string list

val size : t -> int
(** The length measure of §6: the number of symbols needed to write the
    concept out (a token count). *)

val id : t -> int
(** The hash-consed identity: [id c1 = id c2] iff the concepts are
    structurally equal (same normal form). Ids are unique within a
    process run and are {e not} stable across runs — use them as
    in-memory cache keys only, never persist them. *)

val compare : t -> t -> int
(** Structural order on normal forms (with an [id]-equality fast path). *)

val equal : t -> t -> bool
(** Constant time, by {!id}. *)

val pp : ?schema:Schema.t -> unit -> Format.formatter -> t -> unit
(** Mathematical rendering, e.g.
    [pi_name(sigma_continent="Europe"(Cities))]; attribute names are used
    when a schema is supplied, positions otherwise. *)

val pp_sql : ?schema:Schema.t -> unit -> Format.formatter -> t -> unit
(** The SELECT-FROM-WHERE rendering of Figure 5. *)

val to_string : ?schema:Schema.t -> t -> string
