
(* All extension evaluation goes through the per-instance memo handle: the
   minimiser probes many conjunct subsets of the same concept, and every
   subset's extension is an intersection of the same few conjunct
   extensions, so the per-conjunct cache turns the quadratic probe loop
   into set intersections over cached sets. *)

let ext_of h conjuncts =
  List.fold_left
    (fun acc c -> Semantics.ext_inter acc (Subsume_memo.conjunct_ext h c))
    Semantics.All conjuncts

(* Drop redundant selection conditions inside one conjunct: greedily remove
   conditions while the conjunct's own extension is unchanged. *)
let slim_conjunct h conj =
  match conj with
  | Ls.Nominal _ -> conj
  | Ls.Proj { rel; attr; sels } ->
    let ext_with sels =
      Subsume_memo.conjunct_ext h (Ls.Proj { rel; attr; sels })
    in
    let target = ext_with sels in
    let rec drop kept = function
      | [] -> List.rev kept
      | s :: rest ->
        let without = List.rev_append kept rest in
        if Semantics.ext_equal (ext_with without) target then drop kept rest
        else drop (s :: kept) rest
    in
    Ls.Proj { rel; attr; sels = drop [] sels }

let handle_of handle inst =
  match handle with Some h -> h | None -> Subsume_memo.inst inst

let minimise ?handle inst c =
  let h = handle_of handle inst in
  let target = Subsume_memo.extension h c in
  let rec drop kept = function
    | [] -> List.rev kept
    | conj :: rest ->
      let without = List.rev_append kept rest in
      if Semantics.ext_equal (ext_of h without) target then drop kept rest
      else drop (conj :: kept) rest
  in
  Ls.of_conjuncts (List.map (slim_conjunct h) (drop [] (Ls.conjuncts c)))

let is_irredundant ?handle inst c =
  let h = handle_of handle inst in
  let conjuncts = Ls.conjuncts c in
  let target = ext_of h conjuncts in
  let rec check before = function
    | [] -> true
    | conj :: rest ->
      let without = List.rev_append before rest in
      (not (Semantics.ext_equal (ext_of h without) target))
      && check (conj :: before) rest
  in
  check [] conjuncts
