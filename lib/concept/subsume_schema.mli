(** Concept subsumption with respect to a schema, [C1 ⊑_S C2] (§4.2):
    extension inclusion over {e every} instance satisfying the schema's
    integrity constraints. The complexity landscape is Table 1 of the paper;
    this module implements one decision procedure per constraint class:

    - {b no constraints}: conjunct-wise containment of the translated
      queries over dense orders — complete.
    - {b UCQ / nested UCQ views (only)}: unfold both sides over the views,
      then CQ-in-UCQ containment — complete (the paper's ΠP2 / coNEXPTIME
      upper-bound strategy).
    - {b FDs (only)}: containment restricted to FD-satisfying canonical
      instantiations — complete (FDs are closed under sub-instances, so
      every counter-example shrinks to an FD-satisfying canonical one).
    - {b INDs (only), selection-free concepts}: reachability in the
      positional graph of the INDs — the paper's PTIME fragment. With
      selections the paper leaves the problem open; we answer [Subsumed]
      when a sound rule applies, then attempt a bounded chase-based
      counter-model, and return [Unknown] when both fail.
    - {b mixtures (views + FDs + INDs)}: sound derivation rules
      (view-unfolded containment, IND reachability) for [Subsumed], and a
      bounded counter-model search (canonical instantiation + IND chase +
      view completion + constraint check) for [Not_subsumed]; [Unknown]
      otherwise. Table 1 marks IND+FD implication undecidable, so a
      complete procedure cannot exist.

    [Subsumed] and [Not_subsumed] verdicts are always sound. *)

open Whynot_relational

type verdict =
  | Subsumed
  | Not_subsumed
  | Unknown

val pp_verdict : Format.formatter -> verdict -> unit

type constraint_class =
  | No_constraints
  | Views_only
  | Fds_only
  | Inds_only
  | Mixed

val classify : Schema.t -> constraint_class
(** Which Table-1 row applies: determined purely by which kinds of
    constraints (FDs, INDs, views) the schema carries. *)

val decide :
  ?chase_depth:int -> ?translate:(Ls.t -> Ucq.t) -> Schema.t -> Ls.t -> Ls.t ->
  verdict
(** [chase_depth] bounds the counter-model chase (default 4).

    [translate] supplies the concept-to-UCQ translation (default
    {!To_query.ucq} on the given schema); {!Subsume_memo} passes a
    memoised translation here so repeated decisions over the same schema
    unfold each concept only once. A custom [translate] must agree with
    [To_query.ucq schema] — it is a cache hook, not a semantic knob.

    This entry point is deliberately uncached (each call re-decides from
    scratch) so it can serve as the oracle for the differential tests;
    use {!Subsume_memo.decide} on hot paths. *)

val subsumes :
  ?chase_depth:int -> ?translate:(Ls.t -> Ucq.t) -> Schema.t -> Ls.t -> Ls.t ->
  bool
(** [decide = Subsumed]. For the complete classes this decides ⊑_S; in
    general it under-approximates it. *)

val refutes :
  ?chase_depth:int -> ?translate:(Ls.t -> Ucq.t) -> Schema.t -> Ls.t -> Ls.t ->
  bool
(** [decide = Not_subsumed]. *)

val chase_to_legal_instance :
  ?depth:int -> Schema.t -> Instance.t -> Instance.t option
(** The counter-model construction kernel, exposed for reuse (e.g. strong
    explanations): keep the data relations of the given instance, repair
    IND violations by inserting tuples with fresh values (bounded by
    [depth] rounds), materialise the views, and return the completed
    instance iff it satisfies every constraint of the schema. *)
