(** Parser for the why-not text format. A document is a sequence of items:

    {v
    # relations, constraints, views
    relation Cities(name, population, country, continent)
    relation Train-Connections(city_from, city_to)
    fd Cities: country -> continent
    ind BigCity[name] <= Train-Connections[city_from]
    view BigCity(x) := Cities(x, y, z, w), y >= 5000000
    view Reachable(x, y) := Train-Connections(x, y)
                          | Train-Connections(x, z), Train-Connections(z, y)

    # facts (bare identifiers are string constants here)
    fact Cities("Amsterdam", 779808, "Netherlands", "Europe")

    # the query and the why-not tuple
    query q(x, y) := Train-Connections(x, z), Train-Connections(z, y)
    whynot ("Amsterdam", "New York")

    # optional hand ontology (Figure 3 style)
    concept Dutch-City [= European-City
    ext Dutch-City = {"Amsterdam"}

    # optional DL-LiteR TBox and GAV mappings (Figure 4 style)
    axiom EU-City [= City
    axiom EU-City [= not NA-City
    axiom exists hasCountry- [= Country
    mapping Cities(x, z, w, "Europe") -> EU-City(x)
    v}

    In rule bodies (views, queries, mappings), bare identifiers are
    variables and quoted strings / numbers are constants; [fd] attributes
    may be named (resolved against the relation declaration) or positional
    numbers. *)

open Whynot_relational

type document = {
  relations : Schema.rel_decl list;
  fds : Fd.t list;
  inds : Ind.t list;
  views : View.def list;
  facts : (string * Value.t list) list;
  query : (string * Cq.t) option;
  whynot_tuple : Value.t list option;
  concepts : (string * string) list;    (** hand-ontology subsumption edges *)
  extensions : (string * Value_set.t) list;
  tbox_axioms : Whynot_dllite.Tbox.axiom list;
  mappings : Whynot_obda.Mapping.t list;
  rules : Whynot_datalog.Program.rule list;
    (** possibly recursive Datalog rules ([rule P(x) := ..., !Q(x)]) *)
}

val parse : string -> (document, Whynot_error.t) result
(** Lexer and grammar failures are [`Parse] with a [line N] prefix. *)

val parse_file : string -> (document, Whynot_error.t) result
(** Additionally [`Missing_input] when the file cannot be read. *)

val schema_of : document -> (Schema.t, Whynot_error.t) result

val instance_of : document -> Instance.t
(** The facts, with the document's views materialised when the schema is
    well-formed. *)

val whynot_of : document -> (Whynot_core.Whynot.t, Whynot_error.t) result
(** Requires a query and a whynot tuple. *)

val hand_ontology_of : document -> string Whynot_core.Ontology.t option
(** [Some] iff the document declares at least one concept extension. *)

val obda_spec_of : document -> (Whynot_obda.Spec.t option, Whynot_error.t) result
(** [Some] iff the document declares TBox axioms or mappings. *)

val program_of :
  document -> (Whynot_datalog.Program.t option, Whynot_error.t) result
(** The document's [rule] items as a validated (safe, stratified) Datalog
    program; [None] when there are no rules. *)

val values_of_string : string -> (Value.t list, Whynot_error.t) result
(** Parse a comma-separated constant list, e.g. ["Amsterdam", 7]. *)

val concept_of_string :
  document -> string -> (Whynot_concept.Ls.t, Whynot_error.t) result
(** Parse an [L_S] concept expression:

    {v
      concept := conjunct ('&' conjunct)*
      conjunct := 'top' | '{' constant '}' | REL '.' ATTR selections?
      selections := '[' ATTR op constant (',' ATTR op constant)* ']'
    v}

    e.g. [Cities.name[continent = "Europe", population >= 5000000] & {"Rome"}].
    Attribute names are resolved against the document's relation
    declarations; positional numbers are accepted too. *)
