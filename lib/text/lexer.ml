type token =
  | Ident of string
  | String of string
  | Number of Whynot_relational.Value.t
  | Lparen | Rparen
  | Lbracket | Rbracket
  | Lbrace | Rbrace
  | Comma | Colon | Semicolon
  | Eq | Lt | Gt | Le | Ge
  | Arrow
  | Define
  | Subsumed
  | Bar
  | Amp
  | Bang
  | Eof

type located = {
  token : token;
  line : int;
}

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit token = toks := { token; line = !line } :: !toks in
  let error msg = Error (`Parse (Printf.sprintf "line %d: %s" !line msg)) in
  let rec loop i =
    if i >= n then begin
      emit Eof;
      Ok (List.rev !toks)
    end
    else
      match src.[i] with
      | '\n' ->
        incr line;
        loop (i + 1)
      | ' ' | '\t' | '\r' -> loop (i + 1)
      | '#' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        loop (skip i)
      | '(' -> emit Lparen; loop (i + 1)
      | ')' -> emit Rparen; loop (i + 1)
      | '[' ->
        (* "[=" is the subsumption arrow of DL syntax. *)
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit Subsumed;
          loop (i + 2)
        end
        else begin
          emit Lbracket;
          loop (i + 1)
        end
      | ']' -> emit Rbracket; loop (i + 1)
      | '{' -> emit Lbrace; loop (i + 1)
      | '}' -> emit Rbrace; loop (i + 1)
      | ',' -> emit Comma; loop (i + 1)
      | ';' -> emit Semicolon; loop (i + 1)
      | '|' -> emit Bar; loop (i + 1)
      | '&' -> emit Amp; loop (i + 1)
      | '!' -> emit Bang; loop (i + 1)
      | '=' -> emit Eq; loop (i + 1)
      | ':' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit Define;
          loop (i + 2)
        end
        else begin
          emit Colon;
          loop (i + 1)
        end
      | '-' ->
        if i + 1 < n && src.[i + 1] = '>' then begin
          emit Arrow;
          loop (i + 2)
        end
        else if i + 1 < n && (is_digit src.[i + 1]) then
          number i
        else error "unexpected '-'"
      | '<' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit Le;
          loop (i + 2)
        end
        else begin
          emit Lt;
          loop (i + 1)
        end
      | '>' ->
        if i + 1 < n && src.[i + 1] = '=' then begin
          emit Ge;
          loop (i + 2)
        end
        else begin
          emit Gt;
          loop (i + 1)
        end
      | '"' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then error "unterminated string"
          else
            match src.[j] with
            | '"' ->
              emit (String (Buffer.contents buf));
              loop (j + 1)
            | '\\' when j + 1 < n ->
              Buffer.add_char buf src.[j + 1];
              str (j + 2)
            | '\n' -> error "newline in string literal"
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        str (i + 1)
      | c when is_digit c -> number i
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
        let j = ident i in
        emit (Ident (String.sub src i (j - i)));
        loop j
      | c -> error (Printf.sprintf "unexpected character %C" c)
  and number i =
    let rec num j seen_dot =
      if j < String.length src then
        match src.[j] with
        | c when is_digit c -> num (j + 1) seen_dot
        | '.' when not seen_dot -> num (j + 1) true
        | '_' -> num (j + 1) seen_dot
        | _ -> j
      else j
    in
    let start = i in
    let i = if src.[i] = '-' then i + 1 else i in
    let j = num i false in
    let text =
      String.concat ""
        (String.split_on_char '_' (String.sub src start (j - start)))
    in
    (match int_of_string_opt text with
     | Some k -> emit (Number (Whynot_relational.Value.Int k))
     | None ->
       (match float_of_string_opt text with
        | Some x -> emit (Number (Whynot_relational.Value.Real x))
        | None -> ()));
    loop j
  in
  loop 0

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | String s -> Format.fprintf ppf "string %S" s
  | Number v -> Format.fprintf ppf "number %a" Whynot_relational.Value.pp v
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Comma -> Format.pp_print_string ppf "','"
  | Colon -> Format.pp_print_string ppf "':'"
  | Semicolon -> Format.pp_print_string ppf "';'"
  | Eq -> Format.pp_print_string ppf "'='"
  | Lt -> Format.pp_print_string ppf "'<'"
  | Gt -> Format.pp_print_string ppf "'>'"
  | Le -> Format.pp_print_string ppf "'<='"
  | Ge -> Format.pp_print_string ppf "'>='"
  | Arrow -> Format.pp_print_string ppf "'->'"
  | Define -> Format.pp_print_string ppf "':='"
  | Subsumed -> Format.pp_print_string ppf "'[='"
  | Bar -> Format.pp_print_string ppf "'|'"
  | Amp -> Format.pp_print_string ppf "'&'"
  | Bang -> Format.pp_print_string ppf "'!'"
  | Eof -> Format.pp_print_string ppf "end of input"
