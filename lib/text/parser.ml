open Whynot_relational

type document = {
  relations : Schema.rel_decl list;
  fds : Fd.t list;
  inds : Ind.t list;
  views : View.def list;
  facts : (string * Value.t list) list;
  query : (string * Cq.t) option;
  whynot_tuple : Value.t list option;
  concepts : (string * string) list;
  extensions : (string * Value_set.t) list;
  tbox_axioms : Whynot_dllite.Tbox.axiom list;
  mappings : Whynot_obda.Mapping.t list;
  rules : Whynot_datalog.Program.rule list;
}

let empty_document =
  {
    relations = [];
    fds = [];
    inds = [];
    views = [];
    facts = [];
    query = None;
    whynot_tuple = None;
    concepts = [];
    extensions = [];
    tbox_axioms = [];
    mappings = [];
    rules = [];
  }

(* --- a tiny state-passing parser over the token list --- *)

exception Parse_error of string

type state = {
  mutable tokens : Lexer.located list;
}

let peek st =
  match st.tokens with
  | [] -> Lexer.Eof
  | t :: _ -> t.Lexer.token

let line st =
  match st.tokens with
  | [] -> 0
  | t :: _ -> t.Lexer.line

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "line %d: %s (found %s)" (line st) msg
          (Format.asprintf "%a" Lexer.pp_token (peek st))))

let expect st token msg =
  if peek st = token then advance st else fail st msg

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | _ -> fail st "expected an identifier"

let value st =
  match peek st with
  | Lexer.String s ->
    advance st;
    Value.Str s
  | Lexer.Number v ->
    advance st;
    v
  | Lexer.Ident s ->
    (* Bare identifiers are string constants in fact/extension position. *)
    advance st;
    Value.Str s
  | _ -> fail st "expected a constant"

let comma_separated st parse_item =
  let rec more acc =
    if peek st = Lexer.Comma then begin
      advance st;
      more (parse_item st :: acc)
    end
    else List.rev acc
  in
  more [ parse_item st ]

let parenthesised st parse_item =
  expect st Lexer.Lparen "expected '('";
  if peek st = Lexer.Rparen then begin
    advance st;
    []
  end
  else begin
    let items = comma_separated st parse_item in
    expect st Lexer.Rparen "expected ')'";
    items
  end

(* --- rule bodies: atoms and comparisons over variables --- *)

let term st =
  match peek st with
  | Lexer.Ident v ->
    advance st;
    Cq.Var v
  | Lexer.String s ->
    advance st;
    Cq.Const (Value.Str s)
  | Lexer.Number v ->
    advance st;
    Cq.Const v
  | _ -> fail st "expected a variable or constant"

let cmp_op_of_token = function
  | Lexer.Eq -> Some Cmp_op.Eq
  | Lexer.Lt -> Some Cmp_op.Lt
  | Lexer.Gt -> Some Cmp_op.Gt
  | Lexer.Le -> Some Cmp_op.Le
  | Lexer.Ge -> Some Cmp_op.Ge
  | _ -> None

(* One Datalog body literal: atom, negated atom, or comparison. *)
let rule_conjunct st =
  match peek st with
  | Lexer.Bang ->
    advance st;
    let name = ident st in
    let args = parenthesised st term in
    `Neg { Cq.rel = name; args }
  | _ ->
    let name = ident st in
    (match peek st with
     | Lexer.Lparen ->
       let args = parenthesised st term in
       `Atom { Cq.rel = name; args }
     | tok ->
       (match cmp_op_of_token tok with
        | Some op ->
          advance st;
          let v = value st in
          `Comparison { Cq.subject = name; op; value = v }
        | None -> fail st "expected '(' or a comparison operator"))

(* One conjunct: either [Rel(t1, ..., tk)] or [var op const]. *)
let body_conjunct st =
  let name = ident st in
  match peek st with
  | Lexer.Lparen ->
    let args = parenthesised st term in
    `Atom { Cq.rel = name; args }
  | tok ->
    (match cmp_op_of_token tok with
     | Some op ->
       advance st;
       let v = value st in
       `Comparison { Cq.subject = name; op; value = v }
     | None -> fail st "expected '(' or a comparison operator")

let body st =
  let conjuncts = comma_separated st body_conjunct in
  let atoms =
    List.filter_map (function `Atom a -> Some a | `Comparison _ -> None)
      conjuncts
  in
  let comparisons =
    List.filter_map
      (function `Comparison c -> Some c | `Atom _ -> None)
      conjuncts
  in
  (atoms, comparisons)

let rule_bodies st head =
  let one () =
    let atoms, comparisons = body st in
    Cq.make ~head ~atoms ~comparisons ()
  in
  let rec more acc =
    if peek st = Lexer.Bar then begin
      advance st;
      more (one () :: acc)
    end
    else List.rev acc
  in
  more [ one () ]

(* --- attribute lists: named (resolved later) or positional --- *)

type raw_attr =
  | By_name of string
  | By_position of int

let raw_attr st =
  match peek st with
  | Lexer.Number (Value.Int k) ->
    advance st;
    By_position k
  | Lexer.Ident s ->
    advance st;
    By_name s
  | _ -> fail st "expected an attribute name or position"

let resolve_attr doc ~rel attr =
  match attr with
  | By_position k -> k
  | By_name name ->
    (match
       List.find_opt (fun (r : Schema.rel_decl) -> String.equal r.name rel)
         doc.relations
     with
     | None ->
       raise
         (Parse_error
            (Printf.sprintf "attribute %s of undeclared relation %s" name rel))
     | Some r ->
       (match List.find_index (String.equal name) r.Schema.attrs with
        | Some i -> i + 1
        | None ->
          raise
            (Parse_error
               (Printf.sprintf "unknown attribute %s of %s" name rel))))

(* --- DL-LiteR concepts for TBox axioms --- *)

let dl_role_of_name name =
  let n = String.length name in
  if n > 1 && name.[n - 1] = '-' then
    Whynot_dllite.Dl.Inv (String.sub name 0 (n - 1))
  else Whynot_dllite.Dl.Named name

let dl_basic st =
  match peek st with
  | Lexer.Ident "exists" ->
    advance st;
    Whynot_dllite.Dl.Exists (dl_role_of_name (ident st))
  | Lexer.Ident _ -> Whynot_dllite.Dl.Atom (ident st)
  | _ -> fail st "expected a basic concept"

let dl_concept st =
  match peek st with
  | Lexer.Ident "not" ->
    advance st;
    Whynot_dllite.Dl.Not (dl_basic st)
  | _ -> Whynot_dllite.Dl.B (dl_basic st)

(* --- items --- *)

let subsumption_token st =
  match peek st with
  | Lexer.Subsumed | Lexer.Le ->
    advance st;
    ()
  | _ -> fail st "expected '[=' or '<='"

let rec items st doc =
  match peek st with
  | Lexer.Eof -> doc
  | Lexer.Ident "relation" ->
    advance st;
    let name = ident st in
    let attrs = parenthesised st ident in
    items st { doc with relations = doc.relations @ [ { Schema.name; attrs } ] }
  | Lexer.Ident "fd" ->
    advance st;
    let rel = ident st in
    expect st Lexer.Colon "expected ':'";
    let lhs = comma_separated st raw_attr in
    expect st Lexer.Arrow "expected '->'";
    let rhs = comma_separated st raw_attr in
    let fd =
      Fd.make ~rel
        ~lhs:(List.map (resolve_attr doc ~rel) lhs)
        ~rhs:(List.map (resolve_attr doc ~rel) rhs)
    in
    items st { doc with fds = doc.fds @ [ fd ] }
  | Lexer.Ident "ind" ->
    advance st;
    let lhs_rel = ident st in
    expect st Lexer.Lbracket "expected '['";
    let lhs_attrs = comma_separated st raw_attr in
    expect st Lexer.Rbracket "expected ']'";
    subsumption_token st;
    let rhs_rel = ident st in
    expect st Lexer.Lbracket "expected '['";
    let rhs_attrs = comma_separated st raw_attr in
    expect st Lexer.Rbracket "expected ']'";
    let ind =
      Ind.make ~lhs_rel
        ~lhs_attrs:(List.map (resolve_attr doc ~rel:lhs_rel) lhs_attrs)
        ~rhs_rel
        ~rhs_attrs:(List.map (resolve_attr doc ~rel:rhs_rel) rhs_attrs)
    in
    items st { doc with inds = doc.inds @ [ ind ] }
  | Lexer.Ident "view" ->
    advance st;
    let name = ident st in
    let head = parenthesised st term in
    expect st Lexer.Define "expected ':='";
    let bodies = rule_bodies st head in
    items st
      { doc with views = doc.views @ [ { View.name; body = Ucq.make bodies } ] }
  | Lexer.Ident "fact" ->
    advance st;
    let name = ident st in
    let vs = parenthesised st value in
    items st { doc with facts = doc.facts @ [ (name, vs) ] }
  | Lexer.Ident "query" ->
    advance st;
    let name = ident st in
    let head = parenthesised st term in
    expect st Lexer.Define "expected ':='";
    (match rule_bodies st head with
     | [ q ] -> items st { doc with query = Some (name, q) }
     | _ -> fail st "queries must have a single body (use a view for unions)")
  | Lexer.Ident "rule" ->
    advance st;
    let name = ident st in
    let head_args = parenthesised st term in
    expect st Lexer.Define "expected ':='";
    let conjuncts = comma_separated st rule_conjunct in
    let body =
      List.filter_map
        (function
          | `Atom a -> Some (Whynot_datalog.Program.Pos a)
          | `Neg a -> Some (Whynot_datalog.Program.Neg a)
          | `Comparison _ -> None)
        conjuncts
    in
    let comparisons =
      List.filter_map
        (function `Comparison c -> Some c | `Atom _ | `Neg _ -> None)
        conjuncts
    in
    let r =
      Whynot_datalog.Program.rule ~comparisons
        ~head:{ Cq.rel = name; args = head_args }
        body
    in
    items st { doc with rules = doc.rules @ [ r ] }
  | Lexer.Ident "whynot" ->
    advance st;
    let vs = parenthesised st value in
    items st { doc with whynot_tuple = Some vs }
  | Lexer.Ident "concept" ->
    advance st;
    let child = ident st in
    subsumption_token st;
    let parent = ident st in
    items st { doc with concepts = doc.concepts @ [ (child, parent) ] }
  | Lexer.Ident "ext" ->
    advance st;
    let name = ident st in
    expect st Lexer.Eq "expected '='";
    expect st Lexer.Lbrace "expected '{'";
    let vs =
      if peek st = Lexer.Rbrace then []
      else comma_separated st value
    in
    expect st Lexer.Rbrace "expected '}'";
    items st
      { doc with extensions = doc.extensions @ [ (name, Value_set.of_list vs) ] }
  | Lexer.Ident "axiom" ->
    advance st;
    let lhs = dl_basic st in
    subsumption_token st;
    let rhs = dl_concept st in
    items st
      { doc with
        tbox_axioms = doc.tbox_axioms @ [ Whynot_dllite.Tbox.Concept_incl (lhs, rhs) ] }
  | Lexer.Ident "role-axiom" ->
    advance st;
    let lhs = dl_role_of_name (ident st) in
    subsumption_token st;
    let rhs =
      match peek st with
      | Lexer.Ident "not" ->
        advance st;
        Whynot_dllite.Dl.NotR (dl_role_of_name (ident st))
      | _ -> Whynot_dllite.Dl.R (dl_role_of_name (ident st))
    in
    items st
      { doc with
        tbox_axioms = doc.tbox_axioms @ [ Whynot_dllite.Tbox.Role_incl (lhs, rhs) ] }
  | Lexer.Ident "mapping" ->
    advance st;
    let atoms, comparisons = body st in
    expect st Lexer.Arrow "expected '->'";
    let head_name = ident st in
    let head_args = parenthesised st ident in
    let head =
      match head_args with
      | [ x ] -> Whynot_obda.Mapping.Concept_of (head_name, x)
      | [ x; y ] -> Whynot_obda.Mapping.Role_of (head_name, x, y)
      | _ -> fail st "mapping heads are unary or binary"
    in
    items st
      { doc with
        mappings = doc.mappings @ [ Whynot_obda.Mapping.make ~comparisons ~head atoms ] }
  | Lexer.Semicolon ->
    advance st;
    items st doc
  | _ -> fail st "expected an item (relation, fd, ind, view, rule, fact, query, whynot, concept, ext, axiom, role-axiom, mapping)"

let parse src =
  match Lexer.tokenize src with
  | Error _ as e -> e
  | Ok tokens ->
    let st = { tokens } in
    (try Ok (items st empty_document) with
     | Parse_error msg -> Error (`Parse msg))

let parse_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | src -> parse src
  | exception Sys_error msg -> Error (`Missing_input msg)

let schema_of doc =
  (* Declare view relations implicitly when missing. *)
  let declared = List.map (fun (r : Schema.rel_decl) -> r.name) doc.relations in
  let implicit =
    List.filter_map
      (fun (v : View.def) ->
         if List.mem v.View.name declared then None
         else
           Some
             {
               Schema.name = v.View.name;
               attrs =
                 List.init (Ucq.arity v.View.body) (fun i ->
                     Printf.sprintf "a%d" (i + 1));
             })
      doc.views
  in
  Result.map_error
    (fun msg -> `Parse ("schema: " ^ msg))
    (Schema.make ~fds:doc.fds ~inds:doc.inds ~views:doc.views
       (doc.relations @ implicit))

let instance_of doc =
  let base =
    List.fold_left
      (fun inst (name, vs) -> Instance.add_fact name vs inst)
      Instance.empty doc.facts
  in
  match schema_of doc with
  | Ok schema ->
    (* Materialise the views on top of ALL facts — including facts of
       relations the document never declared (handy for rule-only
       documents), which Schema.complete would drop. *)
    View.materialise (Schema.views schema) base
  | Error _ -> base

let whynot_of doc =
  match doc.query, doc.whynot_tuple with
  | None, _ -> Error (`Missing_input "the document declares no query")
  | _, None -> Error (`Missing_input "the document declares no whynot tuple")
  | Some (_, q), Some missing ->
    let instance = instance_of doc in
    let schema = Result.to_option (schema_of doc) in
    Whynot_core.Whynot.make ?schema ~instance ~query:q ~missing ()

let hand_ontology_of doc =
  if doc.extensions = [] then None
  else
    Some
      (Whynot_core.Ontology.of_extensions ~name:"document"
         ~subsumptions:doc.concepts ~extensions:doc.extensions)

let obda_spec_of doc =
  if doc.tbox_axioms = [] && doc.mappings = [] then Ok None
  else
    match schema_of doc with
    | Error _ as e -> e |> Result.map (fun _ -> None)
    | Ok schema ->
      (match
         Whynot_obda.Spec.make
           ~tbox:(Whynot_dllite.Tbox.make doc.tbox_axioms)
           ~schema ~mappings:doc.mappings
       with
       | Ok spec -> Ok (Some spec)
       | Error msg -> Error (`Parse ("obda: " ^ msg)))

(* --- standalone value lists and concept expressions --- *)

let with_tokens src f =
  match Lexer.tokenize src with
  | Error _ as e -> e
  | Ok tokens ->
    let st = { tokens } in
    (try
       let v = f st in
       expect st Lexer.Eof "trailing input";
       Ok v
     with Parse_error msg -> Error (`Parse msg))

let values_of_string src = with_tokens src (fun st -> comma_separated st value)

let program_of doc =
  if doc.rules = [] then Ok None
  else
    match Whynot_datalog.Program.make doc.rules with
    | Ok p -> Ok (Some p)
    | Error msg -> Error (`Parse ("datalog: " ^ msg))

(* [Rel.attr] arrives from the lexer as a single identifier (idents may
   contain dots); split at the last dot. *)
let split_projection st name =
  match String.rindex_opt name '.' with
  | None -> fail st "expected REL.ATTR"
  | Some i ->
    (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let concept_of_string doc src =
  let attr_of ~rel name =
    match int_of_string_opt name with
    | Some k -> k
    | None -> resolve_attr doc ~rel (By_name name)
  in
  let selection st ~rel =
    let a = ident st in
    let op =
      match cmp_op_of_token (peek st) with
      | Some op ->
        advance st;
        op
      | None -> fail st "expected a comparison operator"
    in
    let v = value st in
    { Whynot_concept.Ls.attr = attr_of ~rel a; op; value = v }
  in
  let conjunct st =
    match peek st with
    | Lexer.Ident "top" ->
      advance st;
      Whynot_concept.Ls.top
    | Lexer.Lbrace ->
      advance st;
      let v = value st in
      expect st Lexer.Rbrace "expected '}'";
      Whynot_concept.Ls.nominal v
    | Lexer.Ident name ->
      advance st;
      let rel, attr_name = split_projection st name in
      let attr = attr_of ~rel attr_name in
      let sels =
        if peek st = Lexer.Lbracket then begin
          advance st;
          let ss = comma_separated st (fun st -> selection st ~rel) in
          expect st Lexer.Rbracket "expected ']'";
          ss
        end
        else []
      in
      Whynot_concept.Ls.proj ~rel ~attr ~sels ()
    | _ -> fail st "expected 'top', '{c}' or REL.ATTR"
  in
  with_tokens src (fun st ->
      let rec more acc =
        if peek st = Lexer.Amp then begin
          advance st;
          more (conjunct st :: acc)
        end
        else acc
      in
      Whynot_concept.Ls.meet_all (List.rev (more [ conjunct st ])))
