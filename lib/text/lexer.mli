(** Hand-written lexer for the why-not text format (see {!Parser} for the
    grammar). Comments run from [#] to end of line. *)

type token =
  | Ident of string     (** bare identifiers, may contain [- _ .] *)
  | String of string    (** double-quoted *)
  | Number of Whynot_relational.Value.t  (** [Int] or [Real] *)
  | Lparen | Rparen
  | Lbracket | Rbracket
  | Lbrace | Rbrace
  | Comma | Colon | Semicolon
  | Eq | Lt | Gt | Le | Ge
  | Arrow        (** [->] *)
  | Define       (** [:=] *)
  | Subsumed     (** [[=] or [<=] — context disambiguates [Le]: the lexer
                     emits [Le] and the parser treats it as subsumption
                     where appropriate *)
  | Bar          (** [|] *)
  | Amp          (** [&] — concept intersection *)
  | Bang         (** [!] — Datalog negation *)
  | Eof

type located = {
  token : token;
  line : int;
}

val tokenize : string -> (located list, Whynot_error.t) result
(** Errors are [`Parse] and carry a line number and a short
    description. *)

val pp_token : Format.formatter -> token -> unit
