type t = Value.t array

let of_list vs = Array.of_list vs
let of_array a = Array.copy a
let to_list t = Array.to_list t
let arity t = Array.length t

let get t a =
  if a < 1 || a > Array.length t then
    invalid_arg
      (Printf.sprintf "Tuple.get: attribute %d out of range 1..%d" a
         (Array.length t))
  else t.(a - 1)

let proj attrs t = Array.of_list (List.map (fun a -> get t a) attrs)
let append t1 t2 = Array.append t1 t2

let compare t1 t2 =
  let n1 = Array.length t1 and n2 = Array.length t2 in
  if n1 <> n2 then Stdlib.compare n1 n2
  else
    let rec loop i =
      if i >= n1 then 0
      else
        let c = Value.compare t1.(i) t2.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal t1 t2 = compare t1 t2 = 0

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
