module Tuple_set = Set.Make (Tuple)

type t = {
  arity : int;
  tuples : Tuple_set.t;
}

let empty ~arity = { arity; tuples = Tuple_set.empty }
let arity r = r.arity
let is_empty r = Tuple_set.is_empty r.tuples
let cardinal r = Tuple_set.cardinal r.tuples

let check_arity r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple of arity %d in relation of arity %d"
         (Tuple.arity t) r.arity)

let add t r =
  check_arity r t;
  { r with tuples = Tuple_set.add t r.tuples }

let mem t r = Tuple_set.mem t r.tuples
let remove t r = { r with tuples = Tuple_set.remove t r.tuples }

let of_list ~arity ts = List.fold_left (fun r t -> add t r) (empty ~arity) ts

let of_value_lists ~arity rows =
  of_list ~arity (List.map Tuple.of_list rows)

let to_list r = Tuple_set.elements r.tuples

let binop name f r1 r2 =
  if r1.arity <> r2.arity then
    invalid_arg (Printf.sprintf "Relation.%s: arity mismatch" name)
  else { arity = r1.arity; tuples = f r1.tuples r2.tuples }

let union = binop "union" Tuple_set.union
let inter = binop "inter" Tuple_set.inter
let diff = binop "diff" Tuple_set.diff

let subset r1 r2 =
  r1.arity = r2.arity && Tuple_set.subset r1.tuples r2.tuples

let equal r1 r2 = r1.arity = r2.arity && Tuple_set.equal r1.tuples r2.tuples

let compare r1 r2 =
  let c = Stdlib.compare r1.arity r2.arity in
  if c <> 0 then c else Tuple_set.compare r1.tuples r2.tuples

let filter p r = { r with tuples = Tuple_set.filter p r.tuples }
let fold f r acc = Tuple_set.fold f r.tuples acc
let iter f r = Tuple_set.iter f r.tuples
let exists p r = Tuple_set.exists p r.tuples
let for_all p r = Tuple_set.for_all p r.tuples

let project attrs r =
  let k = List.length attrs in
  fold (fun t acc -> add (Tuple.proj attrs t) acc) r (empty ~arity:k)

let column a r =
  fold (fun t acc -> Value_set.add (Tuple.get t a) acc) r Value_set.empty

let select conds r =
  filter
    (fun t ->
       List.for_all (fun (a, op, c) -> Cmp_op.eval op (Tuple.get t a) c) conds)
    r

let values r =
  fold
    (fun t acc ->
       List.fold_left (fun acc v -> Value_set.add v acc) acc (Tuple.to_list t))
    r Value_set.empty

let product r1 r2 =
  let arity = r1.arity + r2.arity in
  fold
    (fun t1 acc ->
       fold (fun t2 acc -> add (Tuple.append t1 t2) acc) r2 acc)
    r1 (empty ~arity)

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Tuple.pp)
    (to_list r)
