module Obs = Whynot_obs.Obs

let c_handles =
  Obs.counter "eval.index.handles" ~doc:"indexed-instance handles created"

let c_builds =
  Obs.counter "eval.index.builds" ~doc:"hash/column indexes built"

let c_probes =
  Obs.counter "eval.index.probes" ~doc:"index probes (pattern or column)"

let c_hits =
  Obs.counter "eval.index.hits" ~doc:"index probes answered by an existing index"

let c_scanned =
  Obs.counter "eval.tuples.scanned"
    ~doc:"tuples touched while building indexes or scanning unindexed atoms"

let c_flushes =
  Obs.counter "eval.index.flushes" ~doc:"indexed-instance registry flushes"

(* --- per-relation data --- *)

(* A pattern index groups the tuples of one relation by their projection
   onto a fixed list of (1-based) columns; probing it with a key returns
   exactly the tuples whose projection equals the key.  Pattern indexes
   are what the compiled join steps of {!Cq.Plan} probe with the values of
   the already-bound variables and constants of an atom. *)
module Key_tbl = Hashtbl.Make (struct
    type t = Value.t list

    let equal a b = List.equal Value.equal a b

    let hash k =
      List.fold_left (fun acc v -> (acc * 65599) + Value.hash v) 17 k
  end)

module Val_tbl = Hashtbl.Make (struct
    type t = Value.t

    let equal = Value.equal
    let hash = Value.hash
  end)

type col_index = {
  by_value : Tuple.t list Val_tbl.t;          (* equality probes *)
  sorted : (Value.t * Tuple.t list) array;    (* range probes, ascending *)
  distinct : Value_set.t;                     (* the column's value set *)
}

type rel_data = {
  tuples : Tuple.t array;
  rel_arity : int;
  patterns : Tuple.t list Key_tbl.t Key_tbl.t;
  (* pattern indexes keyed by the probed column list (encoded as a
     [Value.Int] list so {!Key_tbl} can double as the outer table) *)
  mutable columns : col_index option array;   (* slot per 1-based column *)
}

type t = {
  instance : Instance.t;
  rels : (string, rel_data) Hashtbl.t;
  lock : Mutex.t;
  (* All lazy index building happens under [lock]; once an index is
     published it is never mutated again, but concurrent readers must not
     race a [Hashtbl.add], so probes take the lock for the (cheap)
     find-or-build step and only then walk the frozen result. *)
}

let instance h = h.instance

let empty_rel_data arity =
  {
    tuples = [||];
    rel_arity = arity;
    patterns = Key_tbl.create 4;
    columns = Array.make (max arity 1) None;
  }

let make instance =
  Obs.incr c_handles;
  let rels = Hashtbl.create 16 in
  List.iter
    (fun name ->
       match Instance.relation instance name with
       | None -> ()
       | Some r ->
         let arity = Relation.arity r in
         let tuples = Array.of_list (Relation.to_list r) in
         Hashtbl.replace rels name
           { (empty_rel_data arity) with tuples })
    (Instance.relation_names instance);
  { instance; rels; lock = Mutex.create () }

(* --- the handle registry ---

   Handles are interned per *physical* instance value, exactly like the
   memo handles of the concept layer: instances are immutable, so a
   physically new instance is the only way the data can change, and a new
   physical value simply gets a fresh handle — that is the whole index
   invalidation story.  The registry is capped and flushed wholesale past
   the cap, which bounds memory under instance-churning workloads (the
   property harness generates thousands of small instances). *)

module Phys_tbl = Hashtbl.Make (struct
    type t = Instance.t

    let equal = ( == )
    let hash = Hashtbl.hash
  end)

let max_handles = 64
let registry : t Phys_tbl.t = Phys_tbl.create 64
let registry_lock = Mutex.create ()

let of_instance instance =
  Mutex.protect registry_lock (fun () ->
      match Phys_tbl.find_opt registry instance with
      | Some h -> h
      | None ->
        if Phys_tbl.length registry >= max_handles then begin
          Obs.incr c_flushes;
          Phys_tbl.reset registry
        end;
        let h = make instance in
        Phys_tbl.add registry instance h;
        h)

let clear () =
  Mutex.protect registry_lock (fun () ->
      Obs.incr c_flushes;
      Phys_tbl.reset registry)

(* --- lookups --- *)

let rel_data h name = Hashtbl.find_opt h.rels name

let arity h name =
  Option.map (fun rd -> rd.rel_arity) (rel_data h name)

let cardinal h name =
  match rel_data h name with
  | None -> 0
  | Some rd -> Array.length rd.tuples

let no_tuples : Tuple.t array = [||]

let tuples h name =
  match rel_data h name with
  | None -> no_tuples
  | Some rd ->
    Obs.add c_scanned (Array.length rd.tuples);
    rd.tuples

(* --- pattern indexes --- *)

let cols_key cols = List.map (fun c -> Value.Int c) cols

let build_pattern rd cols =
  Obs.incr c_builds;
  let tbl = Key_tbl.create (max 16 (Array.length rd.tuples)) in
  Obs.add c_scanned (Array.length rd.tuples);
  Array.iter
    (fun t ->
       let key = List.map (fun c -> Tuple.get t c) cols in
       let prev = Option.value ~default:[] (Key_tbl.find_opt tbl key) in
       Key_tbl.replace tbl key (t :: prev))
    rd.tuples;
  tbl

let pattern_index h ~rel ~cols =
  match rel_data h rel with
  | None -> None
  | Some rd ->
    let ck = cols_key cols in
    Some
      (Mutex.protect h.lock (fun () ->
           match Key_tbl.find_opt rd.patterns ck with
           | Some tbl ->
             Obs.incr c_hits;
             tbl
           | None ->
             let tbl = build_pattern rd cols in
             Key_tbl.add rd.patterns ck tbl;
             tbl))

let no_matches : Tuple.t list = []

let probe h ~rel ~cols key =
  Obs.incr c_probes;
  match pattern_index h ~rel ~cols with
  | None -> no_matches
  | Some tbl -> Option.value ~default:no_matches (Key_tbl.find_opt tbl key)

(* --- per-column value indexes --- *)

let build_column rd attr =
  Obs.incr c_builds;
  let by_value = Val_tbl.create (max 16 (Array.length rd.tuples)) in
  Obs.add c_scanned (Array.length rd.tuples);
  Array.iter
    (fun t ->
       let v = Tuple.get t attr in
       let prev = Option.value ~default:[] (Val_tbl.find_opt by_value v) in
       Val_tbl.replace by_value v (t :: prev))
    rd.tuples;
  let sorted =
    Val_tbl.fold (fun v ts acc -> (v, ts) :: acc) by_value []
    |> List.sort (fun (v1, _) (v2, _) -> Value.compare v1 v2)
    |> Array.of_list
  in
  let distinct =
    Array.fold_left
      (fun acc (v, _) -> Value_set.add v acc)
      Value_set.empty sorted
  in
  { by_value; sorted; distinct }

let column_index h ~rel ~attr =
  match rel_data h rel with
  | None -> None
  | Some rd ->
    if attr < 1 then
      invalid_arg (Printf.sprintf "Eval_index: attribute %d out of range" attr);
    Some
      (Mutex.protect h.lock (fun () ->
           (* Out-of-range attributes on a non-empty relation fail inside
              [build_column] via [Tuple.get], matching the full-scan
              behaviour of [Relation.column]/[Relation.select]. *)
           if attr > Array.length rd.columns then begin
             let grown = Array.make attr None in
             Array.blit rd.columns 0 grown 0 (Array.length rd.columns);
             rd.columns <- grown
           end;
           match rd.columns.(attr - 1) with
           | Some ci ->
             Obs.incr c_hits;
             ci
           | None ->
             let ci = build_column rd attr in
             rd.columns.(attr - 1) <- Some ci;
             ci))

let column_values h ~rel ~attr =
  Obs.incr c_probes;
  match column_index h ~rel ~attr with
  | None -> Value_set.empty
  | Some ci -> ci.distinct

(* Tuples of [rel] whose [attr] satisfies [op value], via the sorted
   column array (binary search for the boundary, then a contiguous
   walk). *)
let range_matches ci op value =
  let n = Array.length ci.sorted in
  (* First index whose value is >= [value] (n when none). *)
  let lower_bound () =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare (fst ci.sorted.(mid)) value < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo
  in
  (* First index whose value is > [value] (n when none). *)
  let upper_bound () =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Value.compare (fst ci.sorted.(mid)) value <= 0 then lo := mid + 1
      else hi := mid
    done;
    !lo
  in
  let slice lo hi =
    let acc = ref [] in
    for i = hi - 1 downto lo do
      acc := snd ci.sorted.(i) :: !acc
    done;
    List.concat !acc
  in
  match (op : Cmp_op.t) with
  | Cmp_op.Eq ->
    Option.value ~default:[] (Val_tbl.find_opt ci.by_value value)
  | Cmp_op.Lt -> slice 0 (lower_bound ())
  | Cmp_op.Le -> slice 0 (upper_bound ())
  | Cmp_op.Gt -> slice (upper_bound ()) n
  | Cmp_op.Ge -> slice (lower_bound ()) n

let matching h ~rel sels =
  match rel_data h rel with
  | None -> []
  | Some rd ->
    (match sels with
     | [] ->
       Obs.add c_scanned (Array.length rd.tuples);
       Array.to_list rd.tuples
     | (attr0, op0, v0) :: rest ->
       Obs.incr c_probes;
       (match column_index h ~rel ~attr:attr0 with
        | None -> []
        | Some ci ->
          let first = range_matches ci op0 v0 in
          (match rest with
           | [] -> first
           | _ ->
             Obs.add c_scanned (List.length first);
             List.filter
               (fun t ->
                  List.for_all
                    (fun (a, op, c) -> Cmp_op.eval op (Tuple.get t a) c)
                    rest)
               first)))

let select_column h ~rel ~attr ~sels =
  match sels with
  | [] -> column_values h ~rel ~attr
  | _ ->
    List.fold_left
      (fun acc t -> Value_set.add (Tuple.get t attr) acc)
      Value_set.empty
      (matching h ~rel sels)
