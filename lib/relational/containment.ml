(* Representative values.

   The constants mentioned in either query carve the ordered domain into
   point regions {c} and open regions between/around consecutive constants.
   A canonical instantiation assigns each variable either a constant point
   or a value inside an open region. Two instantiations that agree on the
   region of every variable and on the equality pattern within regions are
   order-isomorphic over the constants, hence interchangeable.

   Moreover, instantiations that merge two variables inside one region are
   homomorphic images of the instantiation that keeps them distinct (the
   merge preserves atoms, constants and regions), and CQ matches transport
   along such homomorphisms — so for plain containment it suffices to give
   each variable its OWN representative per region, distinct from every
   other variable's. This keeps the per-variable candidate count at
   (#constants + #regions) instead of (#constants + #regions × #variables).

   That shortcut is only valid for properties closed under those merge
   homomorphisms. A caller that post-filters the instantiations — e.g.
   [Whynot_concept.Subsume_schema], which keeps only the FD-satisfying ones
   — must see the merged patterns explicitly: the FD-satisfying witnesses
   are often exactly the merges of an FD-violating distinct instantiation,
   so filtering the distinct-reps enumeration can leave nothing to check
   and turn a universally-quantified test vacuously true. [~merges:true]
   additionally lets the j-th variable reuse any earlier variable's
   representative within a region, which enumerates every equality pattern
   (only the pattern matters: comparisons are variable-vs-constant, so all
   values of one region are interchangeable). *)

let reps_between a b n =
  let rec loop lo acc k =
    if k = 0 then List.rev acc
    else
      match Value.between lo b with
      | None -> List.rev acc
      | Some v -> loop v (v :: acc) (k - 1)
  in
  loop a [] n

let reps_below b n =
  let rec loop hi acc k =
    if k = 0 then acc
    else
      let v = Value.below hi in
      loop v (v :: acc) (k - 1)
  in
  loop b [] n

let reps_above a n =
  let rec loop lo acc k =
    if k = 0 then List.rev acc
    else
      let v = Value.above lo in
      loop v (v :: acc) (k - 1)
  in
  loop a [] n

(* [region_reps constants n]: for each open region, up to [n] distinct
   representatives (the j-th variable uses the j-th); plus the constant
   points themselves. Returns (points, regions) where each region is a
   non-empty list of representatives. *)
let region_reps constants n =
  let cs = Value_set.to_sorted_list constants in
  match cs with
  | [] -> ([], [ List.init (max n 1) (fun i -> Value.Int i) ])
  | first :: _ ->
    let last = List.nth cs (List.length cs - 1) in
    let rec betweens = function
      | c1 :: (c2 :: _ as rest) ->
        let reps = reps_between c1 c2 n in
        (if reps = [] then [] else [ reps ]) @ betweens rest
      | _ -> []
    in
    let below = reps_below first n and above = reps_above last n in
    ( cs,
      (if below = [] then [] else [ below ])
      @ betweens cs
      @ if above = [] then [] else [ above ] )

let canonical_instantiations ?(merges = false) q ~extra_constants =
  let qvars = Cq.vars q in
  let n = List.length qvars in
  let points, regions =
    region_reps (Value_set.union (Cq.constants q) extra_constants) (max n 1)
  in
  let candidates_for j v =
    let itv = Cq.var_interval q v in
    let point_cands = List.filter (fun value -> Interval.mem value itv) points in
    let region_cands =
      List.concat_map
        (fun reps ->
           (* The j-th variable's private representative in this region is
              [reps.(j)]; if the region has fewer than j+1 values, variables
              share the last one (the region is too sparse for full
              distinctness, which only happens in genuinely sparse corners
              of the domain). With [merges], earlier variables' reps are
              also offered, so every within-region equality pattern gets
              enumerated. *)
           let own = min j (List.length reps - 1) in
           let cands =
             if merges then List.filteri (fun i _ -> i <= own) reps
             else [ List.nth reps own ]
           in
           List.filter (fun rep -> Interval.mem rep itv) cands)
        regions
    in
    point_cands @ region_cands
  in
  let rec assignments j = function
    | [] -> [ [] ]
    | v :: rest ->
      let tails = assignments (j + 1) rest in
      List.concat_map
        (fun value -> List.map (fun tl -> (v, value) :: tl) tails)
        (candidates_for j v)
  in
  List.map
    (fun assignment ->
       let fresh v =
         match List.assoc_opt v assignment with
         | Some value -> value
         | None -> Value.Str ("\000unbound:" ^ v)
       in
       Cq.freeze ~fresh q)
    (assignments 0 qvars)

let has_comparisons (q : Cq.t) = q.Cq.comparisons <> []

let ucq_has_comparisons (u : Ucq.t) = List.exists has_comparisons u.Ucq.disjuncts

(* Classical frozen-query test, sound and complete when no comparisons occur
   anywhere: freeze the left query with pairwise-distinct fresh values and
   evaluate the right side on the frozen instance. *)
let frozen_test q u =
  let fresh v = Value.Str ("\000frozen:" ^ v) in
  let inst, head = Cq.freeze ~fresh q in
  Relation.mem head (Ucq.eval u inst)

let cq_in_ucq q u =
  if Cq.arity q <> Ucq.arity u then
    invalid_arg "Containment.cq_in_ucq: arity mismatch";
  if Cq.is_unsatisfiable_syntactic q then true
  else if (not (has_comparisons q)) && not (ucq_has_comparisons u) then
    frozen_test q u
  else
    let extra_constants = Ucq.constants u in
    List.for_all
      (fun (inst, head) -> Relation.mem head (Ucq.eval u inst))
      (canonical_instantiations q ~extra_constants)

let cq_in_cq q1 q2 = cq_in_ucq q1 (Ucq.of_cq q2)

let ucq_in_ucq u1 u2 =
  List.for_all (fun q -> cq_in_ucq q u2) u1.Ucq.disjuncts

let equivalent u1 u2 = ucq_in_ucq u1 u2 && ucq_in_ucq u2 u1
