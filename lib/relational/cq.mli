(** Conjunctive queries with comparisons to constants (§2).

    A CQ is [exists y. phi(x, y)] where [phi] is a conjunction of relational
    atoms plus comparisons of the form [v op c] with [op] in
    [{=, <, >, <=, >=}] and [c] a constant. Comparisons between variables are
    not allowed, following the paper. Answers are computed under the usual
    active-domain/safe semantics: every head variable and every compared
    variable must occur in some relational atom. *)

type term =
  | Var of string
  | Const of Value.t

type atom = {
  rel : string;
  args : term list;
}

type comparison = {
  subject : string;  (** the compared variable *)
  op : Cmp_op.t;
  value : Value.t;
}

type t = {
  head : term list;       (** answer tuple; constants allowed *)
  atoms : atom list;
  comparisons : comparison list;
}

val make :
  head:term list -> atoms:atom list -> ?comparisons:comparison list -> unit -> t

val arity : t -> int

val atom_id : atom -> int
(** Hash-consed identity of an atom: structurally equal atoms share an id.
    Ids are process-unique memo keys; they are not stable across runs. *)

val id : t -> int
(** Hash-consed identity of a whole query (same contract as {!atom_id});
    the key used by the translation caches of the subsumption memo layer. *)

val vars : t -> string list
(** All variables, in first-occurrence order (head, then atoms, then
    comparisons). *)

val body_vars : t -> string list
(** Variables occurring in relational atoms. *)

val head_vars : t -> string list

val is_safe : t -> bool
(** Head variables and compared variables all occur in relational atoms. *)

val constants : t -> Value_set.t
(** Constants occurring anywhere in the query. *)

val rename_apart : suffix:string -> t -> t
(** Append [suffix] to every variable name (standardising apart). *)

val substitute : (string * term) list -> t -> t
(** Replace variables by terms throughout (head, atoms). Comparisons on a
    variable substituted by a constant are evaluated away; if one fails the
    resulting query is unsatisfiable, represented by a comparison both
    [< c] and [> c] on a dummy variable — use {!is_unsatisfiable_syntactic}
    or evaluation to detect. Substituting a compared variable by another
    variable transfers the comparison. *)

val var_interval : t -> string -> Interval.t
(** The interval implied by the query's comparisons on the given variable
    ({!Interval.top} when unconstrained). *)

val is_unsatisfiable_syntactic : t -> bool
(** True when some variable's comparisons are jointly unsatisfiable or a head
    constant... (conservative check: only comparisons are inspected). *)

(** Compiled evaluation plans — the planning half of the query-evaluation
    kernel (the storage half is {!Eval_index}; the public face of the
    subsystem is the [Whynot_eval] facade library).

    A plan fixes a greedy join order over the query's atoms — at each step
    the atom with the most already-bound positions (constants included),
    ties broken towards the smaller relation, then towards textual order —
    compiles variables to integer slots so a binding is a mutable
    [Value.t option array], probes {!Eval_index} pattern indexes with the
    bound positions of each atom, and checks each comparison at the first
    step that binds its subject. Plans are cached per
    (physical index handle, {!id}) pair. *)
module Plan : sig
  type plan

  val of_query : Eval_index.t -> t -> plan
  (** The (cached) plan for [t] over this indexed instance. *)

  val eval : Eval_index.t -> t -> Relation.t
  val holds : Eval_index.t -> t -> bool
  (** Short-circuits on the first witness binding. *)

  val eval_assignments : Eval_index.t -> t -> (string * Value.t) list list

  val pp : Format.formatter -> plan -> unit
  (** Step order with probe columns vs. scans and pushed-down
      comparisons. *)
end

val eval : t -> Instance.t -> Relation.t
(** All answers over the instance (set semantics). A Boolean query (empty
    head) evaluates to the arity-0 relation containing the empty tuple iff
    the query holds. Evaluates via {!Plan} over the interned
    {!Eval_index.of_instance} handle. *)

val holds : t -> Instance.t -> bool
(** [holds q inst]: the Boolean version — is [eval] non-empty? Unlike
    [eval], stops at the first satisfying binding. *)

val eval_assignments : t -> Instance.t -> (string * Value.t) list list
(** Satisfying assignments restricted to {!vars} (used by GAV mappings). *)

val freeze : fresh:(string -> Value.t) -> t -> Instance.t * Tuple.t
(** Canonical instance: replace each variable [v] by [fresh v] and return the
    resulting facts plus the frozen head tuple. Ignores comparisons — callers
    that need comparison-aware canonical instances should use
    {!Containment}. *)

val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> term -> unit
