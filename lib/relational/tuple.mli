(** Tuples of constants. Attributes are 1-based positions, as in the paper
    ("an attribute [A] of a k-ary relation name [R] is a number [i] such that
    [1 <= i <= k]"). *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val arity : t -> int

val get : t -> int -> Value.t
(** [get t a] is the value at 1-based attribute [a].
    @raise Invalid_argument if out of range. *)

val append : t -> t -> t
(** Concatenation (arities add up) — what {!Relation.product} builds its
    tuples with, without round-tripping through lists. *)

val proj : int list -> t -> t
(** [proj [a1; ...; ak] t] is the tuple of the [a1]-th, ..., [ak]-th
    components (1-based), i.e. the paper's [pi_{A1,...,Ak}(t)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
