(** Indexed read-only view of an {!Instance} — the storage half of the
    query-evaluation kernel (the planning half is {!Cq.Plan}; the public
    face of the subsystem is the [Whynot_eval] facade library).

    A handle materialises each relation as a tuple array once and then
    builds, lazily and cached for the lifetime of the handle, two kinds of
    index:

    - {e pattern indexes}: the relation's tuples grouped by their
      projection onto a list of bound columns — what a compiled join step
      probes with the values of its already-bound variables and constants;
    - {e per-column value indexes}: a hash table from value to tuples plus
      a sorted array of distinct values — what selections ([attr op const],
      including range operators) and {!Whynot_concept.Semantics.conjunct_ext}
      resolve against without scanning the relation.

    {b Lifecycle and invalidation.} Handles are interned per {e physical}
    instance value ({!of_instance}), mirroring the memo handles of the
    concept layer: instances are immutable, so data can only "change" by
    constructing a new physical instance, which simply maps to a fresh
    handle with no indexes — stale indexes are unrepresentable. The
    registry is capped; past the cap it is flushed wholesale (live handles
    keep working, they just stop being shared).

    Handles are safe to share across domains: lazy index building happens
    under a per-handle mutex, and a published index is never mutated. *)

type t

val of_instance : Instance.t -> t
(** The (registry-cached) handle for this physical instance value. *)

val instance : t -> Instance.t

val clear : unit -> unit
(** Flush the handle registry (for cold-start measurements). *)

val arity : t -> string -> int option
(** Arity of the named relation, [None] when absent. *)

val cardinal : t -> string -> int
(** Tuple count of the named relation, [0] when absent. *)

val tuples : t -> string -> Tuple.t array
(** The named relation's tuples (empty when absent). The returned array is
    owned by the handle — callers must not mutate it. Counted as a scan by
    the [eval.tuples.scanned] observability counter. *)

val probe : t -> rel:string -> cols:int list -> Value.t list -> Tuple.t list
(** [probe h ~rel ~cols key]: the tuples of [rel] whose projection onto the
    1-based columns [cols] equals [key] (element-aligned with [cols]).
    Builds and caches the pattern index for [cols] on first use.
    @raise Invalid_argument when a column exceeds the relation's arity and
    the relation is non-empty (mirrors the full-scan behaviour). *)

val column_values : t -> rel:string -> attr:int -> Value_set.t
(** Distinct values of the column — an indexed [Relation.column]. *)

val matching : t -> rel:string -> (int * Cmp_op.t * Value.t) list -> Tuple.t list
(** Tuples satisfying every [attr op const] condition — an indexed
    [Relation.select]. The first condition is answered from the column
    index ([Eq] by hash, range operators by binary search over the sorted
    distinct values); remaining conditions filter the matches. *)

val select_column :
  t -> rel:string -> attr:int -> sels:(int * Cmp_op.t * Value.t) list ->
  Value_set.t
(** [select_column h ~rel ~attr ~sels]: the distinct values of [attr] among
    the tuples satisfying [sels] — the kernel of
    [Semantics.conjunct_ext] ([pi_attr(sigma_sels(rel))]). *)
