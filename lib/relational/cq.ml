type term =
  | Var of string
  | Const of Value.t

type atom = {
  rel : string;
  args : term list;
}

type comparison = {
  subject : string;
  op : Cmp_op.t;
  value : Value.t;
}

type t = {
  head : term list;
  atoms : atom list;
  comparisons : comparison list;
}

let make ~head ~atoms ?(comparisons = []) () = { head; atoms; comparisons }

let arity q = List.length q.head

(* --- hash-consed identities ---

   Atoms and whole queries are given process-unique integer ids via intern
   side-tables (the types stay transparent, so this is identity
   hash-consing rather than representation sharing). Structurally equal
   values — under [Stdlib.compare], so float constants behave like they do
   in the rest of the order — always receive the same id, which makes the
   ids usable as memo keys for translation and containment caches. *)

module Intern (K : sig type t end) = struct
  module Tbl = Hashtbl.Make (struct
      type t = K.t

      let equal a b = Stdlib.compare a b = 0
      let hash = Hashtbl.hash
    end)

  let make counter =
    let table : int Tbl.t = Tbl.create 256 in
    let next = ref 0 in
    (* Serialised like {!Ls.intern}: ids are memo keys shared across the
       parallel engine's domains, so they must be globally unique. *)
    let lock = Mutex.create () in
    fun k ->
      Mutex.protect lock (fun () ->
          match Tbl.find_opt table k with
          | Some id -> id
          | None ->
            let id = !next in
            Stdlib.incr next;
            Whynot_obs.Obs.incr counter;
            Tbl.add table k id;
            id)
end

module Atom_intern = Intern (struct type nonrec t = atom end)
module Query_intern = Intern (struct type nonrec t = t end)

let atom_id =
  Atom_intern.make
    (Whynot_obs.Obs.counter "cq.atoms.interned"
       ~doc:"distinct hash-consed CQ atoms")

let id =
  Query_intern.make
    (Whynot_obs.Obs.counter "cq.queries.interned"
       ~doc:"distinct hash-consed CQs")

let add_var seen acc = function
  | Const _ -> (seen, acc)
  | Var v -> if List.mem v seen then (seen, acc) else (v :: seen, v :: acc)

let vars q =
  let step (seen, acc) t = add_var seen acc t in
  let seen, acc = List.fold_left step ([], []) q.head in
  let seen, acc =
    List.fold_left
      (fun st atom -> List.fold_left step st atom.args)
      (seen, acc) q.atoms
  in
  let _, acc =
    List.fold_left (fun st c -> step st (Var c.subject)) (seen, acc)
      q.comparisons
  in
  List.rev acc

let body_vars q =
  let step (seen, acc) t = add_var seen acc t in
  let _, acc =
    List.fold_left
      (fun st atom -> List.fold_left step st atom.args)
      ([], []) q.atoms
  in
  List.rev acc

let head_vars q =
  let step (seen, acc) t = add_var seen acc t in
  let _, acc = List.fold_left step ([], []) q.head in
  List.rev acc

let is_safe q =
  let bv = body_vars q in
  List.for_all (fun v -> List.mem v bv) (head_vars q)
  && List.for_all (fun c -> List.mem c.subject bv) q.comparisons

let constants q =
  let add acc = function
    | Const v -> Value_set.add v acc
    | Var _ -> acc
  in
  let acc = List.fold_left add Value_set.empty q.head in
  let acc =
    List.fold_left
      (fun acc atom -> List.fold_left add acc atom.args)
      acc q.atoms
  in
  List.fold_left (fun acc c -> Value_set.add c.value acc) acc q.comparisons

let rename_apart ~suffix q =
  let rt = function
    | Var v -> Var (v ^ suffix)
    | Const _ as t -> t
  in
  {
    head = List.map rt q.head;
    atoms = List.map (fun a -> { a with args = List.map rt a.args }) q.atoms;
    comparisons =
      List.map (fun c -> { c with subject = c.subject ^ suffix })
        q.comparisons;
  }

(* A variable with contradictory comparisons, used to mark queries made
   unsatisfiable by substitution. *)
let falsum_var = "__false__"

let falsum_comparisons =
  [
    { subject = falsum_var; op = Cmp_op.Lt; value = Value.Int 0 };
    { subject = falsum_var; op = Cmp_op.Gt; value = Value.Int 0 };
  ]

let substitute subst q =
  let st = function
    | Var v as t ->
      (match List.assoc_opt v subst with Some t' -> t' | None -> t)
    | Const _ as t -> t
  in
  let head = List.map st q.head in
  let atoms =
    List.map (fun a -> { a with args = List.map st a.args }) q.atoms
  in
  let ok = ref true in
  let comparisons =
    List.filter_map
      (fun c ->
         match List.assoc_opt c.subject subst with
         | None -> Some c
         | Some (Var v') -> Some { c with subject = v' }
         | Some (Const value) ->
           if Cmp_op.eval c.op value c.value then None
           else (
             ok := false;
             None))
      q.comparisons
  in
  let comparisons =
    if !ok then comparisons else falsum_comparisons @ comparisons
  in
  { head; atoms; comparisons }

let var_interval q v =
  List.fold_left
    (fun acc c ->
       if String.equal c.subject v then
         Interval.meet acc (Interval.of_condition c.op c.value)
       else acc)
    Interval.top q.comparisons

let is_unsatisfiable_syntactic q =
  List.exists
    (fun v -> Interval.is_empty (var_interval q v))
    (List.sort_uniq String.compare (List.map (fun c -> c.subject) q.comparisons))

(* --- evaluation: planned, indexed join ---

   The naive backtracking evaluator (fixed textual atom order, assoc-list
   bindings, one full relation scan per atom) that used to live here is
   preserved verbatim in [Whynot_proptest.Oracle] as the differential
   oracle; the [eval/planned-equals-naive] property pins the two routes
   against each other.  Production evaluation compiles each query, per
   indexed instance, into a {!Plan}: a greedy join order whose steps probe
   {!Eval_index} pattern indexes with the already-bound variables and
   check comparisons the moment their subject is bound. *)

module Plan = struct
  module Obs = Whynot_obs.Obs

  let c_built = Obs.counter "eval.plans.built" ~doc:"query plans compiled"

  let c_cached =
    Obs.counter "eval.plans.cached" ~doc:"plan requests answered from cache"

  type key_part =
    | K_const of Value.t
    | K_slot of int

  type step = {
    s_atom : atom;                (* the source atom, for pretty-printing *)
    s_key_cols : int list;        (* probed 1-based columns; [] = full scan *)
    s_key : key_part list;        (* aligned with [s_key_cols] *)
    s_binds : (int * int) list;   (* (column, slot): new variables bound here *)
    s_eqs : (int * int) list;     (* within-atom repeats: col must equal col' *)
    s_cmps : (int * (Cmp_op.t * Value.t) list) list;
        (* comparisons pushed to this step, keyed by newly bound slot *)
  }

  (* How the whole query evaluates, decided statically:
     [Trivial]  — no atoms, no comparisons: exactly one (empty) binding;
     [Never]    — a compared or head variable never occurs in an atom, so
                  no binding can project/satisfy (the naive evaluator
                  enumerates and then drops everything; we skip the walk);
     [Steps]    — the compiled join. *)
  type shape =
    | Trivial
    | Never
    | Steps of step list

  type plan = {
    p_arity : int;
    p_nslots : int;
    p_head : key_part list;
    p_qvars : (string * int) list;  (* {!vars} order, with slots *)
    p_shape : shape;
  }

  (* --- compilation --- *)

  let build idx q =
    Obs.incr c_built;
    let slots : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let atom_vars =
      List.concat_map
        (fun a ->
           List.filter_map (function Var v -> Some v | Const _ -> None) a.args)
        q.atoms
    in
    List.iter
      (fun v ->
         if not (Hashtbl.mem slots v) then
           Hashtbl.add slots v (Hashtbl.length slots))
      atom_vars;
    let in_atoms v = Hashtbl.mem slots v in
    let head_ok =
      List.for_all
        (function Const _ -> true | Var v -> in_atoms v)
        q.head
    in
    let cmps_ok = List.for_all (fun c -> in_atoms c.subject) q.comparisons in
    let shape =
      if q.atoms = [] && q.comparisons = [] then Trivial
      else if not (head_ok && cmps_ok) then Never
      else begin
        (* Greedy join order: at each step take the atom with the most
           bound positions (constants count), breaking ties towards the
           smaller relation, then towards textual order. *)
        let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
        let bound_count a =
          List.length
            (List.filter
               (function
                 | Const _ -> true
                 | Var v -> Hashtbl.mem bound v)
               a.args)
        in
        let score (i, a) =
          (bound_count a, -Eval_index.cardinal idx a.rel, -i)
        in
        let compile a =
          let key_cols = ref [] and key = ref [] in
          let binds = ref [] and eqs = ref [] in
          let new_here : (string, int) Hashtbl.t = Hashtbl.create 4 in
          List.iteri
            (fun i0 arg ->
               let col = i0 + 1 in
               match arg with
               | Const c ->
                 key_cols := col :: !key_cols;
                 key := K_const c :: !key
               | Var v ->
                 if Hashtbl.mem bound v then begin
                   key_cols := col :: !key_cols;
                   key := K_slot (Hashtbl.find slots v) :: !key
                 end
                 else (
                   match Hashtbl.find_opt new_here v with
                   | Some first_col -> eqs := (col, first_col) :: !eqs
                   | None ->
                     Hashtbl.add new_here v col;
                     binds := (col, Hashtbl.find slots v) :: !binds))
            a.args;
          let cmps =
            Hashtbl.fold
              (fun v _ acc ->
                 let checks =
                   List.filter_map
                     (fun c ->
                        if String.equal c.subject v then Some (c.op, c.value)
                        else None)
                     q.comparisons
                 in
                 if checks = [] then acc
                 else (Hashtbl.find slots v, checks) :: acc)
              new_here []
          in
          Hashtbl.iter (fun v _ -> Hashtbl.replace bound v ()) new_here;
          {
            s_atom = a;
            s_key_cols = List.rev !key_cols;
            s_key = List.rev !key;
            s_binds = List.rev !binds;
            s_eqs = List.rev !eqs;
            s_cmps = cmps;
          }
        in
        let rec order acc remaining =
          match remaining with
          | [] -> List.rev acc
          | _ ->
            let best =
              List.fold_left
                (fun best cand ->
                   match best with
                   | None -> Some cand
                   | Some b -> if score cand > score b then Some cand else Some b)
                None remaining
              |> Option.get
            in
            let remaining =
              List.filter (fun (i, _) -> i <> fst best) remaining
            in
            order (compile (snd best) :: acc) remaining
        in
        Steps (order [] (List.mapi (fun i a -> (i, a)) q.atoms))
      end
    in
    let head =
      List.map
        (function
          | Const c -> K_const c
          | Var v ->
            (* Dangling head variables only occur under [Trivial]/[Never],
               where the slot is never dereferenced. *)
            K_slot (Option.value ~default:(-1) (Hashtbl.find_opt slots v)))
        q.head
    in
    let qvars =
      match shape with
      | Trivial | Never -> []
      | Steps _ -> List.map (fun v -> (v, Hashtbl.find slots v)) (vars q)
    in
    {
      p_arity = arity q;
      p_nslots = Hashtbl.length slots;
      p_head = head;
      p_qvars = qvars;
      p_shape = shape;
    }

  (* --- the per-(instance handle, query) plan cache --- *)

  module Phys_tbl = Hashtbl.Make (struct
      type t = Eval_index.t

      let equal = ( == )
      let hash = Hashtbl.hash
    end)

  module Int_tbl = Hashtbl.Make (Int)

  let max_plan_tables = 64
  let plan_registry : plan Int_tbl.t Phys_tbl.t = Phys_tbl.create 64
  let plan_lock = Mutex.create ()

  let of_query idx q =
    let qid = id q in
    Mutex.protect plan_lock (fun () ->
        let tbl =
          match Phys_tbl.find_opt plan_registry idx with
          | Some tbl -> tbl
          | None ->
            if Phys_tbl.length plan_registry >= max_plan_tables then
              Phys_tbl.reset plan_registry;
            let tbl = Int_tbl.create 16 in
            Phys_tbl.add plan_registry idx tbl;
            tbl
        in
        match Int_tbl.find_opt tbl qid with
        | Some p ->
          Obs.incr c_cached;
          p
        | None ->
          let p = build idx q in
          Int_tbl.add tbl qid p;
          p)

  (* --- execution --- *)

  (* Run [f] on the slot array of every satisfying binding. Slots newly
     bound by a step are written before descending and cleared on the way
     back up, so the array is the only allocation of the whole walk. *)
  let iter_bindings idx plan f =
    match plan.p_shape with
    | Trivial | Never -> ()
    | Steps steps ->
      let slots = Array.make (max plan.p_nslots 1) None in
      let part_value = function
        | K_const c -> c
        | K_slot s -> Option.get slots.(s)
      in
      let rec go = function
        | [] -> f slots
        | st :: rest ->
          let consider t =
            if
              List.for_all
                (fun (c, c') -> Value.equal (Tuple.get t c) (Tuple.get t c'))
                st.s_eqs
            then begin
              List.iter
                (fun (c, s) -> slots.(s) <- Some (Tuple.get t c))
                st.s_binds;
              if
                List.for_all
                  (fun (s, checks) ->
                     let v = Option.get slots.(s) in
                     List.for_all
                       (fun (op, c) -> Cmp_op.eval op v c)
                       checks)
                  st.s_cmps
              then go rest;
              List.iter (fun (_, s) -> slots.(s) <- None) st.s_binds
            end
          in
          (match st.s_key_cols with
           | [] ->
             Array.iter consider (Eval_index.tuples idx st.s_atom.rel)
           | cols ->
             List.iter consider
               (Eval_index.probe idx ~rel:st.s_atom.rel ~cols
                  (List.map part_value st.s_key)))
      in
      go steps

  let project plan slots =
    Tuple.of_list
      (List.map
         (function
           | K_const c -> c
           | K_slot s -> Option.get slots.(s))
         plan.p_head)

  (* [Trivial] queries have one empty binding; the head projects iff it is
     all constants (a head variable projects to nothing, exactly as the
     naive evaluator's [project] drops bindings missing a head variable). *)
  let trivial_head plan =
    if List.for_all (function K_const _ -> true | K_slot _ -> false) plan.p_head
    then Some (List.map (function K_const c -> c | K_slot _ -> assert false)
                 plan.p_head)
    else None

  let eval idx q =
    let plan = of_query idx q in
    let acc = ref (Relation.empty ~arity:plan.p_arity) in
    (match plan.p_shape with
     | Never -> ()
     | Trivial ->
       (match trivial_head plan with
        | Some vs -> acc := Relation.add (Tuple.of_list vs) !acc
        | None -> ())
     | Steps _ ->
       iter_bindings idx plan (fun slots ->
           acc := Relation.add (project plan slots) !acc));
    !acc

  exception Witness

  let holds idx q =
    let plan = of_query idx q in
    match plan.p_shape with
    | Never -> false
    | Trivial -> Option.is_some (trivial_head plan)
    | Steps _ ->
      (try
         iter_bindings idx plan (fun _ -> raise_notrace Witness);
         false
       with Witness -> true)

  let eval_assignments idx q =
    let plan = of_query idx q in
    match plan.p_shape with
    | Never -> []
    | Trivial ->
      (* One empty binding; it restricts to all query variables only when
         there are none (constant-only heads). *)
      if vars q = [] then [ [] ] else []
    | Steps _ ->
      let acc = ref [] in
      iter_bindings idx plan (fun slots ->
          acc :=
            List.map
              (fun (v, s) -> (v, Option.get slots.(s)))
              plan.p_qvars
            :: !acc);
      List.sort_uniq Stdlib.compare !acc

  let pp_part ppf = function
    | K_const c -> Value.pp ppf c
    | K_slot s -> Format.fprintf ppf "$%d" s

  let pp ppf plan =
    match plan.p_shape with
    | Trivial -> Format.pp_print_string ppf "trivial"
    | Never -> Format.pp_print_string ppf "empty (unsafe head or comparison)"
    | Steps steps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ -> ")
        (fun ppf st ->
           if st.s_key_cols = [] then
             Format.fprintf ppf "scan %s" st.s_atom.rel
           else
             Format.fprintf ppf "probe %s[%a](%a)" st.s_atom.rel
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
                  Format.pp_print_int)
               st.s_key_cols
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
                  pp_part)
               st.s_key;
           List.iter
             (fun (s, checks) ->
                List.iter
                  (fun (op, c) ->
                     Format.fprintf ppf " [$%d %s %s]" s (Cmp_op.to_string op)
                       (Value.to_string c))
                  checks)
             st.s_cmps)
        ppf steps
end

let eval q inst = Plan.eval (Eval_index.of_instance inst) q
let holds q inst = Plan.holds (Eval_index.of_instance inst) q
let eval_assignments q inst = Plan.eval_assignments (Eval_index.of_instance inst) q

let freeze ~fresh q =
  let term_value = function
    | Const v -> v
    | Var x -> fresh x
  in
  (* Batch the facts per relation so each relation is built once, instead
     of one [Instance.add_fact] map-rebuild per atom. *)
  let by_rel : (string, Value.t list list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun atom ->
       let row = List.map term_value atom.args in
       let prev = Option.value ~default:[] (Hashtbl.find_opt by_rel atom.rel) in
       Hashtbl.replace by_rel atom.rel (row :: prev))
    q.atoms;
  let inst =
    Hashtbl.fold
      (fun rel rows inst ->
         let arity =
           match rows with row :: _ -> List.length row | [] -> 0
         in
         Instance.add_relation rel (Relation.of_value_lists ~arity rows) inst)
      by_rel Instance.empty
  in
  (inst, Tuple.of_list (List.map term_value q.head))

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Value.pp ppf c

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    a.args

let pp_comparison ppf c =
  Format.fprintf ppf "%s %a %a" c.subject Cmp_op.pp c.op Value.pp c.value

let pp ppf q =
  let pp_body ppf () =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
      pp_atom ppf q.atoms;
    if q.comparisons <> [] then begin
      if q.atoms <> [] then Format.pp_print_string ppf " & ";
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
        pp_comparison ppf q.comparisons
    end
  in
  Format.fprintf ppf "(%a) <- %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    q.head pp_body ()
