type term =
  | Var of string
  | Const of Value.t

type atom = {
  rel : string;
  args : term list;
}

type comparison = {
  subject : string;
  op : Cmp_op.t;
  value : Value.t;
}

type t = {
  head : term list;
  atoms : atom list;
  comparisons : comparison list;
}

let make ~head ~atoms ?(comparisons = []) () = { head; atoms; comparisons }

let arity q = List.length q.head

(* --- hash-consed identities ---

   Atoms and whole queries are given process-unique integer ids via intern
   side-tables (the types stay transparent, so this is identity
   hash-consing rather than representation sharing). Structurally equal
   values — under [Stdlib.compare], so float constants behave like they do
   in the rest of the order — always receive the same id, which makes the
   ids usable as memo keys for translation and containment caches. *)

module Intern (K : sig type t end) = struct
  module Tbl = Hashtbl.Make (struct
      type t = K.t

      let equal a b = Stdlib.compare a b = 0
      let hash = Hashtbl.hash
    end)

  let make counter =
    let table : int Tbl.t = Tbl.create 256 in
    let next = ref 0 in
    (* Serialised like {!Ls.intern}: ids are memo keys shared across the
       parallel engine's domains, so they must be globally unique. *)
    let lock = Mutex.create () in
    fun k ->
      Mutex.protect lock (fun () ->
          match Tbl.find_opt table k with
          | Some id -> id
          | None ->
            let id = !next in
            Stdlib.incr next;
            Whynot_obs.Obs.incr counter;
            Tbl.add table k id;
            id)
end

module Atom_intern = Intern (struct type nonrec t = atom end)
module Query_intern = Intern (struct type nonrec t = t end)

let atom_id =
  Atom_intern.make
    (Whynot_obs.Obs.counter "cq.atoms.interned"
       ~doc:"distinct hash-consed CQ atoms")

let id =
  Query_intern.make
    (Whynot_obs.Obs.counter "cq.queries.interned"
       ~doc:"distinct hash-consed CQs")

let add_var seen acc = function
  | Const _ -> (seen, acc)
  | Var v -> if List.mem v seen then (seen, acc) else (v :: seen, v :: acc)

let vars q =
  let step (seen, acc) t = add_var seen acc t in
  let seen, acc = List.fold_left step ([], []) q.head in
  let seen, acc =
    List.fold_left
      (fun st atom -> List.fold_left step st atom.args)
      (seen, acc) q.atoms
  in
  let _, acc =
    List.fold_left (fun st c -> step st (Var c.subject)) (seen, acc)
      q.comparisons
  in
  List.rev acc

let body_vars q =
  let step (seen, acc) t = add_var seen acc t in
  let _, acc =
    List.fold_left
      (fun st atom -> List.fold_left step st atom.args)
      ([], []) q.atoms
  in
  List.rev acc

let head_vars q =
  let step (seen, acc) t = add_var seen acc t in
  let _, acc = List.fold_left step ([], []) q.head in
  List.rev acc

let is_safe q =
  let bv = body_vars q in
  List.for_all (fun v -> List.mem v bv) (head_vars q)
  && List.for_all (fun c -> List.mem c.subject bv) q.comparisons

let constants q =
  let add acc = function
    | Const v -> Value_set.add v acc
    | Var _ -> acc
  in
  let acc = List.fold_left add Value_set.empty q.head in
  let acc =
    List.fold_left
      (fun acc atom -> List.fold_left add acc atom.args)
      acc q.atoms
  in
  List.fold_left (fun acc c -> Value_set.add c.value acc) acc q.comparisons

let rename_apart ~suffix q =
  let rt = function
    | Var v -> Var (v ^ suffix)
    | Const _ as t -> t
  in
  {
    head = List.map rt q.head;
    atoms = List.map (fun a -> { a with args = List.map rt a.args }) q.atoms;
    comparisons =
      List.map (fun c -> { c with subject = c.subject ^ suffix })
        q.comparisons;
  }

(* A variable with contradictory comparisons, used to mark queries made
   unsatisfiable by substitution. *)
let falsum_var = "__false__"

let falsum_comparisons =
  [
    { subject = falsum_var; op = Cmp_op.Lt; value = Value.Int 0 };
    { subject = falsum_var; op = Cmp_op.Gt; value = Value.Int 0 };
  ]

let substitute subst q =
  let st = function
    | Var v as t ->
      (match List.assoc_opt v subst with Some t' -> t' | None -> t)
    | Const _ as t -> t
  in
  let head = List.map st q.head in
  let atoms =
    List.map (fun a -> { a with args = List.map st a.args }) q.atoms
  in
  let ok = ref true in
  let comparisons =
    List.filter_map
      (fun c ->
         match List.assoc_opt c.subject subst with
         | None -> Some c
         | Some (Var v') -> Some { c with subject = v' }
         | Some (Const value) ->
           if Cmp_op.eval c.op value c.value then None
           else (
             ok := false;
             None))
      q.comparisons
  in
  let comparisons =
    if !ok then comparisons else falsum_comparisons @ comparisons
  in
  { head; atoms; comparisons }

let var_interval q v =
  List.fold_left
    (fun acc c ->
       if String.equal c.subject v then
         Interval.meet acc (Interval.of_condition c.op c.value)
       else acc)
    Interval.top q.comparisons

let is_unsatisfiable_syntactic q =
  List.exists
    (fun v -> Interval.is_empty (var_interval q v))
    (List.sort_uniq String.compare (List.map (fun c -> c.subject) q.comparisons))

(* Evaluation: backtracking join. Bindings are association lists
   variable -> value. Comparisons are checked as soon as their subject is
   bound; comparisons whose subject never gets bound (unsafe query) make the
   query fail. *)

let check_comparisons q binding =
  List.for_all
    (fun c ->
       match List.assoc_opt c.subject binding with
       | Some v -> Cmp_op.eval c.op v c.value
       | None -> true (* not yet bound; rechecked at the end *))
    q.comparisons

let fully_checked q binding =
  List.for_all
    (fun c ->
       match List.assoc_opt c.subject binding with
       | Some v -> Cmp_op.eval c.op v c.value
       | None -> false)
    q.comparisons

let unify_atom binding atom tuple =
  let rec loop binding args i =
    match args with
    | [] -> Some binding
    | arg :: rest ->
      let v = Tuple.get tuple i in
      (match arg with
       | Const c -> if Value.equal c v then loop binding rest (i + 1) else None
       | Var x ->
         (match List.assoc_opt x binding with
          | Some v' ->
            if Value.equal v v' then loop binding rest (i + 1) else None
          | None -> loop ((x, v) :: binding) rest (i + 1)))
  in
  loop binding atom.args 1

let satisfying_bindings q inst =
  let results = ref [] in
  let rec search binding = function
    | [] -> if fully_checked q binding then results := binding :: !results
    | atom :: rest ->
      let r =
        Instance.relation_or_empty inst ~arity:(List.length atom.args) atom.rel
      in
      Relation.iter
        (fun tuple ->
           match unify_atom binding atom tuple with
           | Some binding' ->
             if check_comparisons q binding' then search binding' rest
           | None -> ())
        r
  in
  if q.comparisons = [] && q.atoms = [] then [ [] ]
  else begin
    search [] q.atoms;
    !results
  end

let eval q inst =
  let k = arity q in
  let project binding =
    let component = function
      | Const v -> Some v
      | Var x -> List.assoc_opt x binding
    in
    match List.map component q.head with
    | comps when List.for_all Option.is_some comps ->
      Some (Tuple.of_list (List.map Option.get comps))
    | _ -> None
  in
  List.fold_left
    (fun acc binding ->
       match project binding with
       | Some t -> Relation.add t acc
       | None -> acc)
    (Relation.empty ~arity:k)
    (satisfying_bindings q inst)

let holds q inst = not (Relation.is_empty (eval q inst))

let eval_assignments q inst =
  let qvars = vars q in
  List.filter_map
    (fun binding ->
       let restricted =
         List.filter_map
           (fun v ->
              Option.map (fun value -> (v, value)) (List.assoc_opt v binding))
           qvars
       in
       if List.length restricted = List.length qvars then Some restricted
       else None)
    (satisfying_bindings q inst)
  |> List.sort_uniq Stdlib.compare

let freeze ~fresh q =
  let term_value = function
    | Const v -> v
    | Var x -> fresh x
  in
  let inst =
    List.fold_left
      (fun inst atom ->
         Instance.add_fact atom.rel (List.map term_value atom.args) inst)
      Instance.empty q.atoms
  in
  (inst, Tuple.of_list (List.map term_value q.head))

let pp_term ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Value.pp ppf c

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    a.args

let pp_comparison ppf c =
  Format.fprintf ppf "%s %a %a" c.subject Cmp_op.pp c.op Value.pp c.value

let pp ppf q =
  let pp_body ppf () =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
      pp_atom ppf q.atoms;
    if q.comparisons <> [] then begin
      if q.atoms <> [] then Format.pp_print_string ppf " & ";
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
        pp_comparison ppf q.comparisons
    end
  in
  Format.fprintf ppf "(%a) <- %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    q.head pp_body ()
