module Str_map = Map.Make (String)

type t = Relation.t Str_map.t

let empty = Str_map.empty

let add_relation name r inst = Str_map.add name r inst

let add_fact name vs inst =
  let tuple = Tuple.of_list vs in
  let r =
    match Str_map.find_opt name inst with
    | Some r -> r
    | None -> Relation.empty ~arity:(Tuple.arity tuple)
  in
  Str_map.add name (Relation.add tuple r) inst

let of_facts groups =
  List.fold_left
    (fun inst (name, rows) ->
       List.fold_left (fun inst row -> add_fact name row inst) inst rows)
    empty groups

let relation inst name = Str_map.find_opt name inst

let relation_or_empty inst ~arity name =
  match Str_map.find_opt name inst with
  | Some r -> r
  | None -> Relation.empty ~arity

let mem_fact inst name t =
  match Str_map.find_opt name inst with
  | Some r -> Relation.mem t r
  | None -> false

let relation_names inst = List.map fst (Str_map.bindings inst)

let adom inst =
  Str_map.fold
    (fun _ r acc -> Value_set.union (Relation.values r) acc)
    inst Value_set.empty

let fact_count inst =
  Str_map.fold (fun _ r acc -> acc + Relation.cardinal r) inst 0

let union i1 i2 =
  Str_map.union (fun _name r1 r2 -> Some (Relation.union r1 r2)) i1 i2

module Str_set = Set.Make (String)

let restrict names inst =
  let keep = Str_set.of_list names in
  Str_map.filter (fun name _ -> Str_set.mem name keep) inst

let equal i1 i2 = Str_map.equal Relation.equal i1 i2

let fold f inst acc = Str_map.fold f inst acc

let pp ppf inst =
  Str_map.iter
    (fun name r ->
       Format.fprintf ppf "@[<v2>%s (%d tuples):@,%a@]@." name
         (Relation.cardinal r) Relation.pp r)
    inst
