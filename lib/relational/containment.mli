(** Containment of conjunctive queries and unions thereof, over all
    instances, in the presence of comparisons to constants.

    Without comparisons this is the classical canonical-database (frozen
    query) test. With comparisons we enumerate canonical instantiations of
    the left query over a finite set of representative values — one
    representative region per "order type" of the variables with respect to
    the constants mentioned in either query, with enough distinct
    representatives per region to realise every equality pattern. Both
    directions of the equivalence are proved by the standard
    order-isomorphism argument; the procedure is exponential in the number
    of variables of the left query, which matches the ΠP2 upper bounds of
    Table 1.

    All queries must be safe ({!Cq.is_safe}). *)

val cq_in_ucq : Cq.t -> Ucq.t -> bool
(** [cq_in_ucq q u]: does [q(I) ⊆ u(I)] hold for every instance [I]? *)

val cq_in_cq : Cq.t -> Cq.t -> bool

val ucq_in_ucq : Ucq.t -> Ucq.t -> bool

val equivalent : Ucq.t -> Ucq.t -> bool

val canonical_instantiations : ?merges:bool -> Cq.t
  -> extra_constants:Value_set.t -> (Instance.t * Tuple.t) list
(** The canonical instances used by the containment test (exposed for the
    test-suite and for {!Whynot_concept}): all instantiations of the query's
    variables by representative values consistent with its comparisons,
    paired with the corresponding head tuple. [extra_constants] join the
    query's own constants when carving regions.

    By default two variables falling in the same open region keep distinct
    representatives — enough for plain containment, where merged
    instantiations are homomorphic images of the distinct one. Callers that
    post-filter the instantiations by a property not closed under those
    merges (FD-satisfaction, notably) must pass [~merges:true], which also
    enumerates every within-region equality pattern. *)
