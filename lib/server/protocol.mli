(** The wire protocol of the why-not server: newline-delimited JSON
    request/response envelopes, schema_version {b 3}.

    Every request is one JSON object on one line:

    {v {"op": "one_mge", "session": "s1", "deadline_ms": 500, "id": 7} v}

    [op] is required; [session] names a registry entry (required by the
    session-scoped operations); [id] is an arbitrary JSON value echoed
    verbatim in the response, so pipelining clients can match replies;
    every other field is an operation parameter. Every response is one
    JSON object on one line, either

    {v {"schema_version": 3, "op": "...", "session": "...", "id": ...,
        "result": ...} v}

    or the error shape sharing the same header fields:

    {v {"schema_version": 3, "op": "...", "error":
        {"code": "timeout", "message": "..."}} v}

    Error codes are the {!Whynot_error.code} vocabulary plus the
    server-level codes ["unknown-op"], ["unknown-session"],
    ["session-exists"], ["session-limit"], ["overloaded"] (load shed) and
    ["request-cap"] (per-connection request budget exhausted). *)

module Wjson = Whynot.Json

val schema_version : int
(** [3]. Version 2 is the one-shot CLI envelope ({!Whynot.Json}); the
    server envelope adds [op]/[session]/[id] headers and the server error
    codes. *)

type request = {
  id : Wjson.t option;      (** echoed verbatim in the response *)
  op : string;
  session : string option;
  body : Wjson.t;           (** the whole request object, for parameters *)
}

val parse_request : string -> (request, string) result
(** Decode one request line. [Error] carries a human-readable message —
    the caller wraps it in a ["parse"] error envelope and {e keeps the
    connection open}. *)

val param : request -> string -> Wjson.t option
val str_param : request -> string -> string option
val int_param : request -> string -> int option
val list_param : request -> string -> Wjson.t list option

val value_of_json : Wjson.t -> (Whynot_relational.Value.t, string) result
(** JSON scalar to constant: [Int] / [Float] / [String] only. *)

val values_of_json :
  Wjson.t list -> (Whynot_relational.Value.t list, string) result

val json_of_value : Whynot_relational.Value.t -> Wjson.t

val ok_line : request -> Wjson.t -> string
(** Success envelope (without the trailing newline). *)

val error_line :
  ?request:request -> ?op:string -> ?session:string ->
  code:string -> message:string -> unit -> string
(** Error envelope; header fields come from [request] when available (the
    pre-parse failures — malformed line, connection shed — have none). *)
