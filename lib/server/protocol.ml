(* Wire envelopes for the why-not server: one JSON object per line in
   each direction, schema_version 3. The module is pure string/JSON
   plumbing — no sockets, no sessions — so the differential tests can
   round-trip envelopes without booting a server. *)

module Wjson = Whynot.Json

let schema_version = 3

type request = {
  id : Wjson.t option;
  op : string;
  session : string option;
  body : Wjson.t;
}

let parse_request line =
  match Wjson.of_string line with
  | Error e -> Error (Whynot_error.message e)
  | Ok (Wjson.Obj _ as body) -> (
    match Wjson.member "op" body with
    | Some (Wjson.String op) ->
      let session =
        Option.bind (Wjson.member "session" body) Wjson.to_string_opt
      in
      Ok { id = Wjson.member "id" body; op; session; body }
    | Some _ -> Error "the \"op\" field must be a string"
    | None -> Error "the request object lacks an \"op\" field")
  | Ok _ -> Error "a request must be a JSON object"

let param req key = Wjson.member key req.body
let str_param req key = Option.bind (param req key) Wjson.to_string_opt
let int_param req key = Option.bind (param req key) Wjson.to_int_opt
let list_param req key = Option.bind (param req key) Wjson.to_list_opt

let value_of_json = function
  | Wjson.Int n -> Ok (Whynot_relational.Value.Int n)
  | Wjson.Float x -> Ok (Whynot_relational.Value.Real x)
  | Wjson.String s -> Ok (Whynot_relational.Value.Str s)
  | j ->
    Error
      (Printf.sprintf "expected a constant (number or string), found %s"
         (Wjson.to_string j))

let values_of_json js =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest -> (
      match value_of_json j with
      | Ok v -> go (v :: acc) rest
      | Error _ as e -> e)
  in
  go [] js

let json_of_value = function
  | Whynot_relational.Value.Int n -> Wjson.Int n
  | Whynot_relational.Value.Real x -> Wjson.Float x
  | Whynot_relational.Value.Str s -> Wjson.String s

(* Response headers appear in a fixed order so envelopes are byte-stable:
   schema_version, op, session, id, then result or error. *)

let header ?op ?session ?id () =
  List.concat
    [
      [ ("schema_version", Wjson.Int schema_version) ];
      (match op with Some o -> [ ("op", Wjson.String o) ] | None -> []);
      (match session with
       | Some s -> [ ("session", Wjson.String s) ]
       | None -> []);
      (match id with Some j -> [ ("id", j) ] | None -> []);
    ]

let ok_line req result =
  Wjson.to_string
    (Wjson.Obj
       (header ~op:req.op ?session:req.session ?id:req.id ()
        @ [ ("result", result) ]))

let error_line ?request ?op ?session ~code ~message () =
  let op = match request with Some r -> Some r.op | None -> op in
  let session =
    match request with Some r -> r.session | None -> session
  in
  let id = Option.bind request (fun r -> r.id) in
  Wjson.to_string
    (Wjson.Obj
       (header ?op ?session ?id ()
        @ [
            ( "error",
              Wjson.Obj
                [
                  ("code", Wjson.String code);
                  ("message", Wjson.String message);
                ] );
          ]))
