(** Request handlers: one function per wire operation, dispatched by
    {!handle}. Handlers are transport-agnostic — they consume a parsed
    {!Protocol.request} and produce either a result JSON or an
    [(error code, message)] pair; the server layer wraps both in
    envelopes, meters them, and owns the sockets. *)

type deps = {
  registry : Registry.t;
  domains_default : int;      (** worker domains for new sessions *)
  domains_max : int;          (** upper bound a client may request *)
  default_deadline_ms : int;  (** per-request deadline; [0] = none *)
  max_deadline_ms : int;      (** cap on client-chosen deadlines; [0] = none *)
  debug_ops : bool;           (** enable [debug_sleep] (tests only) *)
  started_at_s : float;
}

val known_ops : string list
(** Every op {!handle} dispatches (including the debug ones) — the server
    pre-registers one latency timer per entry. *)

val handle : deps -> Protocol.request -> (Protocol.Wjson.t, string * string) result
(** Dispatch one request. Session-scoped operations lock the session,
    install the request deadline on its engine, and clear it afterwards;
    an engine that trips the deadline yields the ["timeout"] error code
    with the session left warm and usable. *)

val close_session : swept:bool -> Registry.session -> unit
(** Close a session's engine under its lock, counting it as closed (and
    additionally as swept when the idle sweeper triggered the close).
    Shared with the server's TTL sweeper and shutdown drain. *)
