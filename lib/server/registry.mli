(** The session registry: a bounded, mutex-guarded table mapping
    client-chosen names to live {!Whynot.Engine} values plus the parsing
    context needed to serve wire requests against them.

    The registry owns only the {e table}; engines are closed by the
    caller (the request handlers and the server's sweeper/drain paths),
    always under the session's own [lock] so an in-flight operation
    finishes before the engine goes away. *)

open Whynot_relational

type source = Workload of string | Inline

type session = {
  name : string;
  doc : Whynot_text.Parser.document;
      (** attribute-name context for parsing and rendering concepts *)
  schema : Schema.t;
  engine : Whynot.Engine.t;
  query : Cq.t option;        (** the document's query, when present *)
  default_missing : Value.t list option;
  source : source;
  created_at_s : float;
  lock : Mutex.t;
      (** serialises engine operations — engines are single-domain-at-a-
          time values; every handler and the sweeper take this lock *)
  mutable last_used_s : float;
}

type t

val create : max_sessions:int -> t

val count : t -> int

val add : t -> session -> (unit, [ `Exists | `Full ]) result

val find : t -> string -> session option
(** Bumps the session's [last_used_s] (keeping it alive w.r.t. the TTL
    sweep) before returning it. *)

val remove : t -> string -> session option
(** Unlinks the session from the table; the caller closes its engine. *)

val sweep : t -> ttl_s:float -> now_s:float -> session list
(** Unlink every session idle longer than [ttl_s] and return them for
    the caller to close. *)

val drain : t -> session list
(** Unlink all sessions (shutdown path). *)
