(** The long-running why-not server: a TCP listener speaking the
    newline-delimited JSON protocol of {!Protocol}, one systhread per
    connection, sessions shared across connections through {!Registry}.

    Robustness posture:
    {ul
     {- {b Load shedding} — at most [max_inflight] requests execute at
        once; excess requests are answered ["overloaded"] immediately
        rather than queued without bound. Likewise connections beyond
        [max_conns] are refused with an ["overloaded"] line.}
     {- {b Deadlines} — every session-scoped request runs under a
        cooperative deadline ({!Whynot.Engine.set_deadline}); a tripped
        deadline yields a ["timeout"] response and leaves both the
        connection and the session usable.}
     {- {b Request caps} — a connection is closed (after a
        ["request-cap"] error) once it has sent [max_requests_per_conn]
        requests, bounding what any one client can hold.}
     {- {b Malformed input} — an unparsable line gets a ["parse"] error
        response; it never kills the connection, let alone the server.}
     {- {b Graceful drain} — {!initiate_shutdown} (installed on SIGTERM /
        SIGINT by {!install_signal_handlers}) stops accepting, lets
        in-flight requests finish, closes every session, and lets
        {!wait} return.}}

    Observability: the [server.*] counters ({!Whynot_obs.Obs}) meter
    accepted/shed connections, served/shed/timed-out/malformed requests
    and session lifecycle; per-op latency timers surface as
    [server.op.<op>.ns]/[.calls]; one access-log line per request goes to
    stderr when [access_log] is set. *)

type config = {
  host : string;             (** bind address, e.g. ["127.0.0.1"] *)
  port : int;                (** [0] picks an ephemeral port (see {!port}) *)
  domains : int;             (** default worker domains per session *)
  max_sessions : int;
  max_conns : int;           (** concurrent connections *)
  max_inflight : int;        (** concurrently executing requests *)
  max_requests_per_conn : int;
  max_line_bytes : int;      (** request lines longer than this close the
                                 connection after a ["parse"] error *)
  default_deadline_ms : int; (** per-request deadline; [0] = none *)
  max_deadline_ms : int;     (** cap on client deadlines; [0] = none *)
  session_ttl_ms : int;      (** idle-session eviction; [0] = never *)
  sweep_interval_ms : int;   (** how often the TTL sweeper wakes up *)
  access_log : bool;         (** one stderr line per request *)
  debug_ops : bool;          (** enable [debug_sleep] (tests only) *)
}

val default_config : config
(** Loopback host, ephemeral port, 1 domain, generous limits, a 10 s
    default deadline with a 60 s cap, 10 min TTL, access log on. *)

type t

val start : config -> (t, string) result
(** Bind, listen, and spawn the accept loop and the TTL sweeper.
    [Error] carries the bind failure (address in use, permission). *)

val port : t -> int
(** The actually bound port (useful with [config.port = 0]). *)

val config : t -> config
val session_count : t -> int

val initiate_shutdown : t -> unit
(** Signal-safe and idempotent: flips the shutdown flag the accept loop,
    connection loops and sweeper poll. *)

val wait : t -> unit
(** Block until the server has fully drained: accept loop exited, every
    connection thread finished, every session closed, listener closed.
    Call {!initiate_shutdown} (or send SIGTERM) to make it return. *)

val install_signal_handlers : t -> unit
(** SIGTERM and SIGINT call {!initiate_shutdown}. (SIGPIPE is already
    ignored by {!start} — a client hanging up mid-response must not kill
    the process.) *)
