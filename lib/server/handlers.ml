(* One handler per wire operation. Handlers never touch sockets: they
   turn a parsed request into [Ok result_json] or [Error (code, message)]
   and let the server layer do the enveloping and metering. *)

open Whynot_relational
module Obs = Whynot_obs.Obs
module Parser = Whynot_text.Parser
module Engine = Whynot.Engine
module Ls = Whynot_concept.Ls
module Wjson = Protocol.Wjson

type deps = {
  registry : Registry.t;
  domains_default : int;
  domains_max : int;
  default_deadline_ms : int;
  max_deadline_ms : int;
  debug_ops : bool;
  started_at_s : float;
}

let c_sessions_created =
  Obs.counter "server.sessions.created" ~doc:"sessions opened over the wire"

let c_sessions_closed =
  Obs.counter "server.sessions.closed"
    ~doc:"sessions closed (explicitly, swept, or drained)"

let c_sessions_swept =
  Obs.counter "server.sessions.swept" ~doc:"sessions evicted by the idle TTL"

let known_ops =
  [
    "ping"; "create"; "question"; "one_mge"; "all_mges"; "check_mge";
    "stats"; "close"; "debug_sleep";
  ]

(* --- small helpers --- *)

let err code fmt = Printf.ksprintf (fun m -> Error (code, m)) fmt

let of_engine_result = function
  | Ok v -> Ok v
  | Error e -> Error (Whynot_error.code e, Whynot_error.message e)

let of_text_result = function
  | Ok v -> Ok v
  | Error e -> Error (Whynot_error.code e, Whynot_error.message e)

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

(* Concepts travel the wire in the text format's grammar
   ([Cities.name[population >= 5000000] & {"Rome"}]) so a client can feed
   a response concept straight back into [check_mge]. The renderer is the
   inverse of [Parser.concept_of_string] over the session's schema. *)

let attr_label schema ~rel attr =
  match Schema.attr_name schema ~rel attr with
  | Some name -> name
  | None -> string_of_int attr

let render_concept schema c =
  match Ls.conjuncts c with
  | [] -> "top"
  | conjuncts ->
    conjuncts
    |> List.map (function
         | Ls.Nominal v -> Printf.sprintf "{%s}" (Value.to_string v)
         | Ls.Proj { rel; attr; sels } ->
           let sel_str =
             match sels with
             | [] -> ""
             | _ ->
               Printf.sprintf "[%s]"
                 (String.concat ", "
                    (List.map
                       (fun (s : Ls.selection) ->
                          Printf.sprintf "%s %s %s"
                            (attr_label schema ~rel s.Ls.attr)
                            (Cmp_op.to_string s.Ls.op)
                            (Value.to_string s.Ls.value))
                       sels))
           in
           Printf.sprintf "%s.%s%s" rel (attr_label schema ~rel attr) sel_str)
    |> String.concat " & "

let json_of_explanation schema e =
  Wjson.List (List.map (fun c -> Wjson.String (render_concept schema c)) e)

let variant_of req =
  match Protocol.str_param req "variant" with
  | None | Some "selection-free" -> Ok Whynot_core.Incremental.Selection_free
  | Some "with-selections" -> Ok Whynot_core.Incremental.With_selections
  | Some other ->
    err "missing-input"
      "unknown variant %S (expected \"selection-free\" or \"with-selections\")"
      other

(* --- session lifecycle --- *)

let physical_copy inst =
  (* Interned memo/eval handles key on physical identity, so each session
     gets its own copy of a shared workload instance: handle state (and
     the per-request deadline living on it) never crosses sessions. *)
  Instance.fold (fun name r acc -> Instance.add_relation name r acc) inst
    Instance.empty

let empty_doc relations fds inds views =
  {
    Parser.relations;
    fds;
    inds;
    views;
    facts = [];
    query = None;
    whynot_tuple = None;
    concepts = [];
    extensions = [];
    tbox_axioms = [];
    mappings = [];
    rules = [];
  }

let workload_parts = function
  | "cities" ->
    Ok
      ( Whynot_workload.Cities.schema,
        Whynot_workload.Cities.instance,
        Some Whynot_workload.Cities.two_hop_query,
        Some Whynot_workload.Cities.missing_tuple )
  | "retail" ->
    Ok
      ( Whynot_workload.Retail.schema,
        Whynot_workload.Retail.instance,
        Some Whynot_workload.Retail.in_stock_query,
        Some Whynot_workload.Retail.missing_tuple )
  | other ->
    err "missing-input" "unknown workload %S (expected \"cities\" or \"retail\")"
      other

let handle_create deps req =
  let* name =
    match req.Protocol.session with
    | Some n when n <> "" -> Ok n
    | _ -> err "missing-input" "\"create\" requires a non-empty \"session\" name"
  in
  let* domains =
    match Protocol.int_param req "domains" with
    | None -> Ok deps.domains_default
    | Some d when d >= 1 && d <= deps.domains_max -> Ok d
    | Some d ->
      err "invalid-config" "\"domains\" must be between 1 and %d, got %d"
        deps.domains_max d
  in
  let* schema, instance, query, default_missing, doc, source =
    match
      (Protocol.str_param req "workload", Protocol.str_param req "document")
    with
    | Some _, Some _ ->
      err "missing-input" "\"workload\" and \"document\" are mutually exclusive"
    | Some w, None ->
      let* schema, instance, query, missing = workload_parts w in
      let doc =
        empty_doc (Schema.relations schema) (Schema.fds schema)
          (Schema.inds schema)
          (View.defs (Schema.views schema))
      in
      Ok
        ( schema,
          physical_copy instance,
          query,
          missing,
          doc,
          Registry.Workload w )
    | None, Some text ->
      let* doc = of_text_result (Parser.parse text) in
      let* schema = of_text_result (Parser.schema_of doc) in
      Ok
        ( schema,
          Parser.instance_of doc,
          Option.map snd doc.Parser.query,
          doc.Parser.whynot_tuple,
          doc,
          Registry.Inline )
    | None, None ->
      err "missing-input" "\"create\" requires a \"workload\" or a \"document\""
  in
  let* engine = of_engine_result (Engine.create ~schema ~domains ~instance ()) in
  let now = Obs.now_s () in
  let session =
    {
      Registry.name;
      doc;
      schema;
      engine;
      query;
      default_missing;
      source;
      created_at_s = now;
      lock = Mutex.create ();
      last_used_s = now;
    }
  in
  match Registry.add deps.registry session with
  | Ok () ->
    Obs.incr c_sessions_created;
    Ok
      (Wjson.Obj
         [
           ("session", Wjson.String name);
           ("domains", Wjson.Int domains);
           ( "relations",
             Wjson.Int (List.length (Schema.relations schema)) );
           ("has_query", Wjson.Bool (query <> None));
         ])
  | Error reason ->
    (* The engine never made it into the table: close it here. *)
    ignore (Engine.close engine);
    (match reason with
     | `Exists -> err "session-exists" "session %S already exists" name
     | `Full -> err "session-limit" "the server's session table is full")

let close_session ~swept (s : Registry.session) =
  Mutex.protect s.Registry.lock (fun () ->
    ignore (Engine.close s.Registry.engine));
  Obs.incr c_sessions_closed;
  if swept then Obs.incr c_sessions_swept

(* --- session-scoped dispatch --- *)

let deadline_of deps req =
  let requested = Protocol.int_param req "deadline_ms" in
  let ms =
    match requested with
    | Some ms -> Some ms
    | None ->
      if deps.default_deadline_ms > 0 then Some deps.default_deadline_ms
      else None
  in
  match ms with
  | None -> None
  | Some ms ->
    let ms =
      if deps.max_deadline_ms > 0 then min ms deps.max_deadline_ms else ms
    in
    Some (Obs.now_s () +. (float_of_int (max ms 0) /. 1000.))

let with_session deps req k =
  match req.Protocol.session with
  | None -> err "missing-input" "\"%s\" requires a \"session\"" req.Protocol.op
  | Some name -> (
    match Registry.find deps.registry name with
    | None -> err "unknown-session" "no session named %S" name
    | Some s ->
      Mutex.protect s.Registry.lock (fun () ->
        Engine.set_deadline s.Registry.engine (deadline_of deps req);
        Fun.protect
          ~finally:(fun () -> Engine.set_deadline s.Registry.engine None)
          (fun () -> k s)))

let question_of (s : Registry.session) req =
  let* missing =
    match Protocol.list_param req "missing" with
    | Some js -> (
      match Protocol.values_of_json js with
      | Ok vs -> Ok vs
      | Error m -> Error ("missing-input", m))
    | None -> (
      match s.Registry.default_missing with
      | Some vs -> Ok vs
      | None ->
        err "missing-input"
          "no \"missing\" tuple given and the session has no default")
  in
  let* query =
    match s.Registry.query with
    | Some q -> Ok q
    | None ->
      err "missing-input"
        "the session's document declares no query; \"question\" needs one"
  in
  let* wn =
    of_engine_result (Engine.question s.Registry.engine ~query ~missing ())
  in
  Ok (wn, missing)

let handle_question deps req =
  with_session deps req (fun s ->
    let* wn, missing = question_of s req in
    Ok
      (Wjson.Obj
         [
           ("missing", Wjson.List (List.map Protocol.json_of_value missing));
           ( "answers",
             Wjson.Int
               (List.length (Relation.to_list wn.Whynot_core.Whynot.answers))
           );
           ( "constants",
             Wjson.Int
               (Value_set.cardinal (Whynot_core.Whynot.constant_pool wn)) );
         ]))

let handle_one_mge deps req =
  with_session deps req (fun s ->
    let* wn, missing = question_of s req in
    let* variant = variant_of req in
    let* mge =
      of_engine_result (Engine.one_mge ~variant s.Registry.engine wn)
    in
    Ok
      (Wjson.Obj
         [
           ("missing", Wjson.List (List.map Protocol.json_of_value missing));
           ("mge", json_of_explanation s.Registry.schema mge);
         ]))

let handle_all_mges deps req =
  with_session deps req (fun s ->
    let* wn, _missing = question_of s req in
    let* mges = of_engine_result (Engine.all_mges s.Registry.engine wn) in
    Ok
      (Wjson.Obj
         [
           ("count", Wjson.Int (List.length mges));
           ( "mges",
             Wjson.List
               (List.map (json_of_explanation s.Registry.schema) mges) );
         ]))

let handle_check_mge deps req =
  with_session deps req (fun s ->
    let* wn, _missing = question_of s req in
    let* variant = variant_of req in
    let* concept_srcs =
      match Protocol.list_param req "explanation" with
      | None ->
        err "missing-input"
          "\"check_mge\" requires an \"explanation\" (a list of concepts)"
      | Some js ->
        let rec strings acc = function
          | [] -> Ok (List.rev acc)
          | Wjson.String s :: rest -> strings (s :: acc) rest
          | j :: _ ->
            err "missing-input" "concepts must be strings, found %s"
              (Wjson.to_string j)
        in
        strings [] js
    in
    let* explanation =
      List.fold_left
        (fun acc src ->
           let* acc = acc in
           let* c =
             of_text_result (Parser.concept_of_string s.Registry.doc src)
           in
           Ok (c :: acc))
        (Ok []) concept_srcs
      |> Result.map List.rev
    in
    let* is_mge =
      of_engine_result
        (Engine.check_mge ~variant s.Registry.engine wn explanation)
    in
    Ok (Wjson.Obj [ ("is_mge", Wjson.Bool is_mge) ]))

let handle_close deps req =
  match req.Protocol.session with
  | None -> err "missing-input" "\"close\" requires a \"session\""
  | Some name -> (
    match Registry.remove deps.registry name with
    | None -> err "unknown-session" "no session named %S" name
    | Some s ->
      close_session ~swept:false s;
      Ok (Wjson.Obj [ ("closed", Wjson.Bool true) ]))

let handle_stats deps _req =
  let uptime_ms =
    int_of_float ((Obs.now_s () -. deps.started_at_s) *. 1000.)
  in
  let counters =
    List.map (fun (name, v) -> (name, Wjson.Int v)) (Obs.snapshot ())
  in
  Ok
    (Wjson.Obj
       [
         ("uptime_ms", Wjson.Int uptime_ms);
         ("sessions", Wjson.Int (Registry.count deps.registry));
         ("counters", Wjson.Obj counters);
       ])

let handle_debug_sleep deps req =
  if not deps.debug_ops then
    err "unknown-op" "unknown operation \"debug_sleep\""
  else begin
    let ms = Option.value (Protocol.int_param req "ms") ~default:100 in
    let ms = max 0 (min ms 60_000) in
    Thread.delay (float_of_int ms /. 1000.);
    Ok (Wjson.Obj [ ("slept_ms", Wjson.Int ms) ])
  end

let handle deps req =
  match req.Protocol.op with
  | "ping" -> Ok (Wjson.Obj [ ("pong", Wjson.Bool true) ])
  | "create" -> handle_create deps req
  | "question" -> handle_question deps req
  | "one_mge" -> handle_one_mge deps req
  | "all_mges" -> handle_all_mges deps req
  | "check_mge" -> handle_check_mge deps req
  | "stats" -> handle_stats deps req
  | "close" -> handle_close deps req
  | "debug_sleep" -> handle_debug_sleep deps req
  | other -> err "unknown-op" "unknown operation %S" other
