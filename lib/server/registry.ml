open Whynot_relational

type source = Workload of string | Inline

type session = {
  name : string;
  doc : Whynot_text.Parser.document;
  schema : Schema.t;
  engine : Whynot.Engine.t;
  query : Cq.t option;
  default_missing : Value.t list option;
  source : source;
  created_at_s : float;
  lock : Mutex.t;
  mutable last_used_s : float;
}

type t = {
  max_sessions : int;
  table : (string, session) Hashtbl.t;
  mutex : Mutex.t;
}

let create ~max_sessions =
  { max_sessions; table = Hashtbl.create 16; mutex = Mutex.create () }

let count t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.table)

let add t s =
  Mutex.protect t.mutex (fun () ->
    if Hashtbl.mem t.table s.name then Error `Exists
    else if Hashtbl.length t.table >= t.max_sessions then Error `Full
    else begin
      Hashtbl.replace t.table s.name s;
      Ok ()
    end)

let find t name =
  Mutex.protect t.mutex (fun () ->
    match Hashtbl.find_opt t.table name with
    | None -> None
    | Some s ->
      s.last_used_s <- Whynot_obs.Obs.now_s ();
      Some s)

let remove t name =
  Mutex.protect t.mutex (fun () ->
    match Hashtbl.find_opt t.table name with
    | None -> None
    | Some s ->
      Hashtbl.remove t.table name;
      Some s)

let sweep t ~ttl_s ~now_s =
  Mutex.protect t.mutex (fun () ->
    let stale =
      Hashtbl.fold
        (fun _ s acc -> if now_s -. s.last_used_s > ttl_s then s :: acc else acc)
        t.table []
    in
    List.iter (fun s -> Hashtbl.remove t.table s.name) stale;
    stale)

let drain t =
  Mutex.protect t.mutex (fun () ->
    let all = Hashtbl.fold (fun _ s acc -> s :: acc) t.table [] in
    Hashtbl.reset t.table;
    all)
