(* The TCP serving layer. One systhread per connection (request handling
   is dominated by engine work, which runs on the engine's own domains;
   systhreads are plenty for the socket plumbing), a polling accept loop
   so shutdown needs no self-pipe, and a counting semaphore as the
   bounded "queue": try_acquire either admits a request or sheds it with
   an "overloaded" response — requests are never buffered without bound. *)

module Obs = Whynot_obs.Obs

type config = {
  host : string;
  port : int;
  domains : int;
  max_sessions : int;
  max_conns : int;
  max_inflight : int;
  max_requests_per_conn : int;
  max_line_bytes : int;
  default_deadline_ms : int;
  max_deadline_ms : int;
  session_ttl_ms : int;
  sweep_interval_ms : int;
  access_log : bool;
  debug_ops : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = 1;
    max_sessions = 64;
    max_conns = 64;
    max_inflight = 16;
    max_requests_per_conn = 10_000;
    max_line_bytes = 1 lsl 20;
    default_deadline_ms = 10_000;
    max_deadline_ms = 60_000;
    session_ttl_ms = 600_000;
    sweep_interval_ms = 1_000;
    access_log = true;
    debug_ops = false;
  }

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound_port : int;
  registry : Registry.t;
  deps : Handlers.deps;
  shutting_down : bool Atomic.t;
  inflight : Semaphore.Counting.t;
  conns : int ref;                  (* guarded by [conn_mutex] *)
  conn_mutex : Mutex.t;
  conn_cond : Condition.t;
  mutable accept_thread : Thread.t option;
  mutable sweeper_thread : Thread.t option;
}

(* --- counters and timers --- *)

let c_conns_accepted =
  Obs.counter "server.conns.accepted" ~doc:"TCP connections accepted"

let c_conns_shed =
  Obs.counter "server.conns.shed"
    ~doc:"connections refused because max_conns was reached"

let c_requests = Obs.counter "server.requests" ~doc:"request lines received"
let c_served = Obs.counter "server.served" ~doc:"requests answered with a result"

let c_errors =
  Obs.counter "server.errors" ~doc:"requests answered with a non-timeout error"

let c_shed =
  Obs.counter "server.shed"
    ~doc:"requests shed with \"overloaded\" because max_inflight was reached"

let c_timeouts =
  Obs.counter "server.timeouts" ~doc:"requests cancelled by their deadline"

let c_malformed =
  Obs.counter "server.malformed" ~doc:"request lines that failed to parse"

let op_timers =
  (* Only the fixed op vocabulary gets a timer: registering timers for
     arbitrary client-supplied op strings would let a client grow the
     process-global registry without bound. *)
  List.map
    (fun op -> (op, Obs.timer ("server.op." ^ op) ~doc:"wire op latency"))
    Handlers.known_ops

(* --- logging --- *)

let log t fmt =
  if t.cfg.access_log then
    Printf.ksprintf (fun s -> Printf.eprintf "whynot-server: %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

let peer_string = function
  | Unix.ADDR_INET (addr, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX path -> path

(* --- connection I/O --- *)

exception Conn_closed

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd data !off (len - !off)
     done
   with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
     raise Conn_closed)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
}

let make_reader fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 4096 }

(* Pull one newline-terminated line out of the reader, polling the
   shutdown flag while idle so draining connections exit promptly.
   [`Line s] (CR stripped), [`Eof] (peer hung up or shutdown), or
   [`Too_long] once the pending unterminated input exceeds the cap. *)
let read_line r ~max_bytes ~stop =
  let take_line () =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
  in
  let rec loop () =
    match take_line () with
    | Some line -> `Line line
    | None ->
      if Buffer.length r.buf > max_bytes then `Too_long
      else if Atomic.get stop then `Eof
      else begin
        match Unix.select [ r.fd ] [] [] 0.2 with
        | [], _, _ -> loop ()
        | _ -> (
          match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
          | 0 -> `Eof
          | n ->
            Buffer.add_subbytes r.buf r.chunk 0 n;
            loop ()
          | exception Unix.Unix_error (EINTR, _, _) -> loop ()
          | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) -> `Eof)
        | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      end
  in
  loop ()

(* --- per-request processing --- *)

let classify_code = function
  | "timeout" -> `Timeout
  | "overloaded" -> `Shed
  | _ -> `Error

let serve_request t peer line =
  Obs.incr c_requests;
  let t0 = Obs.now_s () in
  let reply, status =
    match Protocol.parse_request line with
    | Error msg ->
      Obs.incr c_malformed;
      Obs.incr c_errors;
      ( Protocol.error_line ~code:"parse" ~message:msg (),
        "parse" )
    | Ok req ->
      if not (Semaphore.Counting.try_acquire t.inflight) then begin
        Obs.incr c_shed;
        ( Protocol.error_line ~request:req ~code:"overloaded"
            ~message:"the server is at its concurrent-request limit" (),
          "overloaded" )
      end
      else
        Fun.protect
          ~finally:(fun () -> Semaphore.Counting.release t.inflight)
          (fun () ->
             let run () = Handlers.handle t.deps req in
             let result =
               match List.assoc_opt req.Protocol.op op_timers with
               | Some timer -> Obs.time timer run
               | None -> run ()
             in
             match result with
             | Ok json ->
               Obs.incr c_served;
               (Protocol.ok_line req json, "ok")
             | Error (code, message) ->
               (match classify_code code with
                | `Timeout -> Obs.incr c_timeouts
                | `Shed -> Obs.incr c_shed
                | `Error -> Obs.incr c_errors);
               (Protocol.error_line ~request:req ~code ~message (), code))
  in
  let dur_ms = (Obs.now_s () -. t0) *. 1000. in
  log t "peer=%s status=%s dur_ms=%.2f bytes=%d" peer status dur_ms
    (String.length reply);
  reply

(* --- connection loop --- *)

let conn_main t fd peer =
  let reader = make_reader fd in
  let served = ref 0 in
  (try
     let rec loop () =
       if Atomic.get t.shutting_down then ()
       else
         match
           read_line reader ~max_bytes:t.cfg.max_line_bytes
             ~stop:t.shutting_down
         with
         | `Eof -> ()
         | `Too_long ->
           Obs.incr c_malformed;
           Obs.incr c_errors;
           write_line fd
             (Protocol.error_line ~code:"parse"
                ~message:
                  (Printf.sprintf "request line exceeds %d bytes"
                     t.cfg.max_line_bytes)
                ());
           (* Framing is lost beyond the cap: drop the connection. *)
           ()
         | `Line "" -> loop ()
         | `Line line ->
           if !served >= t.cfg.max_requests_per_conn then begin
             Obs.incr c_errors;
             write_line fd
               (Protocol.error_line ~code:"request-cap"
                  ~message:
                    (Printf.sprintf
                       "this connection exhausted its budget of %d requests"
                       t.cfg.max_requests_per_conn)
                  ())
           end
           else begin
             incr served;
             write_line fd (serve_request t peer line);
             loop ()
           end
     in
     loop ()
   with
   | Conn_closed -> ()
   | e ->
     log t "peer=%s connection error: %s" peer (Printexc.to_string e));
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  Mutex.protect t.conn_mutex (fun () ->
    decr t.conns;
    Condition.broadcast t.conn_cond)

(* --- accept loop and sweeper --- *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.shutting_down then ()
    else begin
      (match Unix.select [ t.lsock ] [] [] 0.2 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept ~cloexec:true t.lsock with
         | fd, peer_addr ->
           Obs.incr c_conns_accepted;
           let peer = peer_string peer_addr in
           let admitted =
             Mutex.protect t.conn_mutex (fun () ->
               if !(t.conns) >= t.cfg.max_conns then false
               else begin
                 incr t.conns;
                 true
               end)
           in
           if admitted then
             ignore (Thread.create (fun () -> conn_main t fd peer) ())
           else begin
             Obs.incr c_conns_shed;
             (try
                write_line fd
                  (Protocol.error_line ~code:"overloaded"
                     ~message:"the server is at its connection limit" ())
              with Conn_closed -> ());
             (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
             log t "peer=%s status=conn-shed" peer
           end
         | exception Unix.Unix_error ((EINTR | ECONNABORTED), _, _) -> ())
       | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  (try Unix.close t.lsock with Unix.Unix_error (_, _, _) -> ())

let sweeper_loop t =
  let interval_s = float_of_int (max t.cfg.sweep_interval_ms 10) /. 1000. in
  let rec loop () =
    if Atomic.get t.shutting_down then ()
    else begin
      (* Sleep in short slices so shutdown is never held up by a long
         sweep interval. *)
      let slices = int_of_float (Float.ceil (interval_s /. 0.05)) in
      let rec doze k =
        if k > 0 && not (Atomic.get t.shutting_down) then begin
          Thread.delay 0.05;
          doze (k - 1)
        end
      in
      doze slices;
      if (not (Atomic.get t.shutting_down)) && t.cfg.session_ttl_ms > 0 then begin
        let ttl_s = float_of_int t.cfg.session_ttl_ms /. 1000. in
        let stale =
          Registry.sweep t.registry ~ttl_s ~now_s:(Obs.now_s ())
        in
        List.iter
          (fun (s : Registry.session) ->
             Handlers.close_session ~swept:true s;
             log t "session=%s status=swept" s.Registry.name)
          stale
      end;
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let start cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
   | _ -> ()
   | exception Sys_error _ -> ());
  match
    let addr = Unix.inet_addr_of_string cfg.host in
    let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt lsock Unix.SO_REUSEADDR true;
    (try Unix.bind lsock (Unix.ADDR_INET (addr, cfg.port))
     with e ->
       Unix.close lsock;
       raise e);
    Unix.listen lsock 64;
    let bound_port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> cfg.port
    in
    let registry = Registry.create ~max_sessions:cfg.max_sessions in
    let deps =
      {
        Handlers.registry;
        domains_default = max cfg.domains 1;
        domains_max = 16;
        default_deadline_ms = cfg.default_deadline_ms;
        max_deadline_ms = cfg.max_deadline_ms;
        debug_ops = cfg.debug_ops;
        started_at_s = Obs.now_s ();
      }
    in
    let t =
      {
        cfg;
        lsock;
        bound_port;
        registry;
        deps;
        shutting_down = Atomic.make false;
        inflight = Semaphore.Counting.make (max cfg.max_inflight 1);
        conns = ref 0;
        conn_mutex = Mutex.create ();
        conn_cond = Condition.create ();
        accept_thread = None;
        sweeper_thread = None;
      }
    in
    t.accept_thread <- Some (Thread.create accept_loop t);
    t.sweeper_thread <- Some (Thread.create sweeper_loop t);
    log t "listening on %s:%d" cfg.host bound_port;
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | exception Failure msg -> Error msg

let port t = t.bound_port
let config t = t.cfg
let session_count t = Registry.count t.registry
let initiate_shutdown t = Atomic.set t.shutting_down true

let wait t =
  Option.iter Thread.join t.accept_thread;
  Mutex.protect t.conn_mutex (fun () ->
    while !(t.conns) > 0 do
      Condition.wait t.conn_cond t.conn_mutex
    done);
  Option.iter Thread.join t.sweeper_thread;
  let drained = Registry.drain t.registry in
  List.iter (Handlers.close_session ~swept:false) drained;
  log t "drained: %d sessions closed, %d requests served" (List.length drained)
    (Obs.value c_served)

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  (try Sys.set_signal Sys.sigterm handle with Sys_error _ | Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handle with Sys_error _ | Invalid_argument _ -> ())
