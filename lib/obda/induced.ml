open Whynot_relational
open Whynot_dllite

module Basic_tbl = Hashtbl.Make (struct
    type t = Dl.basic

    let equal = Dl.equal_basic
    let hash = Hashtbl.hash
  end)

type t = {
  spec : Spec.t;
  reasoner : Reasoner.t;
  retrieved : Interp.t;
  instance : Instance.t;
  bases : (Dl.basic * Value_set.t) list;
  (* base (pre-closure) extensions, computed once at {!prepare} — they
     only depend on the retrieved interpretation, and [extension] /
     [consistent] / [base_concepts_of] all fold over them *)
  ext_cache : Value_set.t Basic_tbl.t;
  (* [extension] is called concurrently when the parallel engine explores
     an OBDA-induced ontology; the cache update must not lose entries. *)
  ext_lock : Mutex.t;
}

(* All basic concepts with a non-empty retrieved (pre-closure) extension,
   with those extensions. *)
let compute_base_extensions spec retrieved =
  let tb = Spec.tbox spec in
  let atoms = Tbox.atomic_concepts tb in
  let roles = Tbox.atomic_roles tb in
  let of_atom a = (Dl.Atom a, Interp.concept_ext retrieved (Dl.Atom a)) in
  let of_role p =
    [
      (Dl.Exists (Dl.Named p), Interp.concept_ext retrieved (Dl.Exists (Dl.Named p)));
      (Dl.Exists (Dl.Inv p), Interp.concept_ext retrieved (Dl.Exists (Dl.Inv p)));
    ]
  in
  List.map of_atom atoms @ List.concat_map of_role roles

let prepare spec inst =
  let retrieved = Spec.retrieve spec inst in
  {
    spec;
    reasoner = Reasoner.saturate (Spec.tbox spec);
    retrieved;
    instance = inst;
    bases = compute_base_extensions spec retrieved;
    ext_cache = Basic_tbl.create 32;
    ext_lock = Mutex.create ();
  }

let instance t = t.instance

let reasoner t = t.reasoner
let spec t = t.spec
let retrieved t = t.retrieved

let concepts t = Tbox.occurring_basic_concepts (Spec.tbox t.spec)

let subsumes t b1 b2 = Reasoner.subsumes t.reasoner b1 b2

let base_extensions t = t.bases

let extension t c =
  Mutex.protect t.ext_lock (fun () ->
      match Basic_tbl.find_opt t.ext_cache c with
      | Some ext -> ext
      | None ->
        let ext =
          List.fold_left
            (fun acc (b0, base) ->
               if Reasoner.subsumes t.reasoner b0 c then
                 Value_set.union base acc
               else acc)
            Value_set.empty t.bases
        in
        Basic_tbl.add t.ext_cache c ext;
        ext)

let base_concepts_of t v =
  List.filter_map
    (fun (b, ext) -> if Value_set.mem v ext then Some b else None)
    (base_extensions t)

let consistent t =
  let bases = base_extensions t in
  (* Derived basic-concept memberships per constant must avoid derived
     disjointness; it suffices to check the base concepts pairwise, since
     the disjointness relation is already closed downward under ⊑. *)
  let concept_clash =
    List.find_map
      (fun (b1, ext1) ->
         List.find_map
           (fun (b2, ext2) ->
              if Reasoner.disjoint t.reasoner b1 b2 then
                match Value_set.choose_opt (Value_set.inter ext1 ext2) with
                | Some c ->
                  Some
                    (Format.asprintf "%a is asserted into disjoint %a and %a"
                       Value.pp c Dl.pp_basic b1 Dl.pp_basic b2)
                | None -> None
              else None)
           bases)
      bases
  in
  match concept_clash with
  | Some msg -> Error msg
  | None ->
    let unsat_clash =
      List.find_map
        (fun (b, ext) ->
           if Reasoner.unsatisfiable t.reasoner b && not (Value_set.is_empty ext)
           then Some (Format.asprintf "non-empty unsatisfiable concept %a" Dl.pp_basic b)
           else None)
        bases
    in
    (match unsat_clash with
     | Some msg -> Error msg
     | None ->
       (* Role disjointness on retrieved edges. *)
       let roles = Tbox.atomic_roles (Spec.tbox t.spec) in
       let edge_clash =
         List.find_map
           (fun p1 ->
              List.find_map
                (fun p2 ->
                   if
                     Reasoner.role_disjoint t.reasoner (Dl.Named p1) (Dl.Named p2)
                     && List.exists
                          (fun e ->
                             List.mem e (Interp.role_ext t.retrieved (Dl.Named p2)))
                          (Interp.role_ext t.retrieved (Dl.Named p1))
                   then Some (Printf.sprintf "edge in disjoint roles %s, %s" p1 p2)
                   else
                     if
                       Reasoner.role_disjoint t.reasoner (Dl.Named p1) (Dl.Inv p2)
                       && List.exists
                            (fun e ->
                               List.mem e (Interp.role_ext t.retrieved (Dl.Inv p2)))
                            (Interp.role_ext t.retrieved (Dl.Named p1))
                     then Some (Printf.sprintf "edge in disjoint roles %s, %s-" p1 p2)
                     else None)
                roles)
           roles
       in
       (match edge_clash with
        | Some msg -> Error msg
        | None -> Ok ()))
