open Whynot_relational
module Ls = Whynot_concept.Ls
module Semantics = Whynot_concept.Semantics
module Count = Whynot_concept.Count
module Dl = Whynot_dllite.Dl
module Tbox = Whynot_dllite.Tbox
module Interp = Whynot_dllite.Interp

(* ------------------------------------------------------------------ *)
(* Naive CQ evaluation (the pre-planner kernel, kept as oracle)        *)
(* ------------------------------------------------------------------ *)

(* This is, verbatim, the backtracking join that [Cq.eval] used before the
   indexed/planned kernel replaced it: fixed textual atom order,
   association-list bindings, one full relation scan per atom. The
   [eval/planned-equals-naive] property pins [Cq.eval]/[Cq.holds]/
   [Cq.eval_assignments] against these. *)

let check_comparisons (q : Cq.t) binding =
  List.for_all
    (fun (c : Cq.comparison) ->
       match List.assoc_opt c.subject binding with
       | Some v -> Cmp_op.eval c.op v c.value
       | None -> true (* not yet bound; rechecked at the end *))
    q.comparisons

let fully_checked (q : Cq.t) binding =
  List.for_all
    (fun (c : Cq.comparison) ->
       match List.assoc_opt c.subject binding with
       | Some v -> Cmp_op.eval c.op v c.value
       | None -> false)
    q.comparisons

let unify_atom binding (atom : Cq.atom) tuple =
  let rec loop binding args i =
    match args with
    | [] -> Some binding
    | arg :: rest ->
      let v = Tuple.get tuple i in
      (match arg with
       | Cq.Const c ->
         if Value.equal c v then loop binding rest (i + 1) else None
       | Cq.Var x ->
         (match List.assoc_opt x binding with
          | Some v' ->
            if Value.equal v v' then loop binding rest (i + 1) else None
          | None -> loop ((x, v) :: binding) rest (i + 1)))
  in
  loop binding atom.args 1

(* [on_binding] is called on every satisfying binding; raising from it
   aborts the search (how [naive_holds] short-circuits — satellite fix
   applied to the oracle too, as it changes no semantics). *)
let iter_satisfying_bindings (q : Cq.t) inst on_binding =
  let rec search binding = function
    | [] -> if fully_checked q binding then on_binding binding
    | (atom : Cq.atom) :: rest ->
      let r =
        Instance.relation_or_empty inst ~arity:(List.length atom.args) atom.rel
      in
      Relation.iter
        (fun tuple ->
           match unify_atom binding atom tuple with
           | Some binding' ->
             if check_comparisons q binding' then search binding' rest
           | None -> ())
        r
  in
  if q.comparisons = [] && q.atoms = [] then on_binding []
  else search [] q.atoms

let satisfying_bindings q inst =
  let results = ref [] in
  iter_satisfying_bindings q inst (fun b -> results := b :: !results);
  !results

let naive_eval (q : Cq.t) inst =
  let k = Cq.arity q in
  let project binding =
    let component = function
      | Cq.Const v -> Some v
      | Cq.Var x -> List.assoc_opt x binding
    in
    match List.map component q.head with
    | comps when List.for_all Option.is_some comps ->
      Some (Tuple.of_list (List.map Option.get comps))
    | _ -> None
  in
  List.fold_left
    (fun acc binding ->
       match project binding with
       | Some t -> Relation.add t acc
       | None -> acc)
    (Relation.empty ~arity:k)
    (satisfying_bindings q inst)

exception Naive_witness

let naive_holds (q : Cq.t) inst =
  (* [holds] is "is [eval] non-empty", so the projection matters: a head
     variable that no relational atom binds makes every binding project to
     nothing, and [holds] is false even when satisfying bindings exist.
     With that case excluded, every satisfying binding projects (at the end
     of the search all body variables are bound), so the first one
     witnesses [holds] — no need to materialise the answer relation. *)
  let body = Cq.body_vars q in
  let head_projects =
    List.for_all
      (function Cq.Const _ -> true | Cq.Var v -> List.mem v body)
      q.Cq.head
  in
  head_projects
  &&
  try
    iter_satisfying_bindings q inst (fun _ -> raise_notrace Naive_witness);
    false
  with Naive_witness -> true

let naive_eval_assignments (q : Cq.t) inst =
  let qvars = Cq.vars q in
  List.filter_map
    (fun binding ->
       let restricted =
         List.filter_map
           (fun v ->
              Option.map (fun value -> (v, value)) (List.assoc_opt v binding))
           qvars
       in
       if List.length restricted = List.length qvars then Some restricted
       else None)
    (satisfying_bindings q inst)
  |> List.sort_uniq Stdlib.compare

(* The pre-index [Semantics.conjunct_ext]: full-relation select + column
   scan. Differential oracle for the [Eval_index]-backed version. *)
let scan_conjunct_ext (c : Ls.conjunct) inst =
  match c with
  | Ls.Nominal v -> Semantics.Fin (Value_set.singleton v)
  | Ls.Proj { rel; attr; sels } ->
    (match Instance.relation inst rel with
     | None -> Semantics.Fin Value_set.empty
     | Some r ->
       let selected =
         Relation.select
           (List.map (fun (s : Ls.selection) -> (s.attr, s.op, s.value)) sels)
           r
       in
       Semantics.Fin (Relation.column attr selected))

let scan_extension c inst =
  List.fold_left
    (fun acc conj -> Semantics.ext_inter acc (scan_conjunct_ext conj inst))
    Semantics.All (Ls.conjuncts c)

(* ------------------------------------------------------------------ *)
(* Selection-free subsumption without constraints                      *)
(* ------------------------------------------------------------------ *)

let distinct_nominal_count c =
  Ls.conjuncts c
  |> List.filter_map (function Ls.Nominal v -> Some v | Ls.Proj _ -> None)
  |> List.sort_uniq Value.compare
  |> List.length

(* C1 is unsatisfiable iff it carries two distinct nominals (selection-free,
   no constraints: any single-nominal or nominal-free concept has a
   one-element model). Otherwise C1 ⊑ C2 iff every conjunct of C2 occurs
   literally in C1: for a missing conjunct D2 we can build a witness
   instance placing one value in exactly the columns C1 mentions (choosing
   C1's nominal for that value when present) while keeping it out of D2. *)
let selection_free_no_constraints_subsumes c1 c2 =
  if not (Ls.is_selection_free c1 && Ls.is_selection_free c2) then
    invalid_arg "Oracle: selection-free concepts expected";
  distinct_nominal_count c1 >= 2
  ||
  let cs1 = Ls.conjuncts c1 in
  List.for_all (fun d -> List.mem d cs1) (Ls.conjuncts c2)

(* ------------------------------------------------------------------ *)
(* CQ containment by homomorphism search                               *)
(* ------------------------------------------------------------------ *)

let hom_contained q1 q2 =
  if q1.Cq.comparisons <> [] || q2.Cq.comparisons <> [] then
    invalid_arg "Oracle.hom_contained: comparison-free queries expected";
  let fresh v = Value.Str ("?" ^ v) in
  let frozen, frozen_head = Cq.freeze ~fresh q1 in
  let bind subst x v =
    match List.assoc_opt x subst with
    | None -> Some ((x, v) :: subst)
    | Some v' -> if Value.equal v v' then Some subst else None
  in
  let match_args subst args values =
    List.fold_left2
      (fun acc arg v ->
         match acc with
         | None -> None
         | Some subst ->
           (match arg with
            | Cq.Const c -> if Value.equal c v then Some subst else None
            | Cq.Var x -> bind subst x v))
      (Some subst) args values
  in
  let rec go subst = function
    | [] ->
      (* All atoms embedded; the head image must be the frozen head. *)
      let image = function
        | Cq.Const c -> Some c
        | Cq.Var x -> List.assoc_opt x subst
      in
      let imgs = List.map image q2.Cq.head in
      List.for_all Option.is_some imgs
      && Tuple.equal
           (Tuple.of_list (List.map Option.get imgs))
           frozen_head
    | (atom : Cq.atom) :: rest ->
      let facts =
        match Instance.relation frozen atom.Cq.rel with
        | None -> []
        | Some r -> Relation.to_list r
      in
      List.exists
        (fun fact ->
           List.length atom.Cq.args = Tuple.arity fact
           &&
           match match_args subst atom.Cq.args (Tuple.to_list fact) with
           | None -> false
           | Some subst' -> go subst' rest)
        facts
  in
  go [] q2.Cq.atoms

(* ------------------------------------------------------------------ *)
(* DL-LiteR: positive chase into a finite model                        *)
(* ------------------------------------------------------------------ *)

let witness role =
  match role with
  | Dl.Named p -> Value.str ("_w+" ^ p)
  | Dl.Inv p -> Value.str ("_w-" ^ p)

(* Add an r-successor for [x]: x gets into ext(exists r). *)
let add_successor role x interp =
  match role with
  | Dl.Named p -> Interp.add_role_edge p x (witness role) interp
  | Dl.Inv p -> Interp.add_role_edge p (witness role) x interp

let add_role_pair role (x, y) interp =
  match role with
  | Dl.Named p -> Interp.add_role_edge p x y interp
  | Dl.Inv p -> Interp.add_role_edge p y x interp

let interp_size tbox interp =
  let concepts =
    List.fold_left
      (fun acc a ->
         acc + Value_set.cardinal (Interp.concept_ext interp (Dl.Atom a)))
      0 (Tbox.atomic_concepts tbox)
  in
  List.fold_left
    (fun acc p -> acc + List.length (Interp.role_ext interp (Dl.Named p)))
    concepts (Tbox.atomic_roles tbox)

let chase_step axioms interp =
  List.fold_left
    (fun interp axiom ->
       match axiom with
       | Tbox.Concept_incl (_, Dl.Not _) | Tbox.Role_incl (_, Dl.NotR _) ->
         interp
       | Tbox.Concept_incl (b, Dl.B rhs) ->
         let members = Interp.concept_ext interp b in
         Value_set.fold
           (fun x interp ->
              match rhs with
              | Dl.Atom a -> Interp.add_concept_member a x interp
              | Dl.Exists r ->
                if Value_set.mem x (Interp.concept_ext interp (Dl.Exists r))
                then interp
                else add_successor r x interp)
           members interp
       | Tbox.Role_incl (r1, Dl.R r2) ->
         List.fold_left
           (fun interp pair -> add_role_pair r2 pair interp)
           interp
           (Interp.role_ext interp r1))
    interp axioms

let positive_chase tbox interp =
  let axioms = Tbox.axioms tbox in
  let rec loop interp n =
    let interp' = chase_step axioms interp in
    if interp_size tbox interp' = n then interp'
    else loop interp' (interp_size tbox interp')
  in
  loop interp (interp_size tbox interp)

let interp_individuals interp =
  let from_concepts =
    List.fold_left
      (fun acc a ->
         Value_set.union acc (Interp.concept_ext interp (Dl.Atom a)))
      Value_set.empty (Interp.concept_names interp)
  in
  List.fold_left
    (fun acc p ->
       List.fold_left
         (fun acc (x, y) -> Value_set.add x (Value_set.add y acc))
         acc
         (Interp.role_ext interp (Dl.Named p)))
    from_concepts (Interp.role_names interp)

let chase_certain_extension spec inst b =
  let retrieved = Whynot_obda.Spec.retrieve spec inst in
  let named = interp_individuals retrieved in
  let chased = positive_chase (Whynot_obda.Spec.tbox spec) retrieved in
  let ext = Interp.concept_ext chased b in
  Value_set.filter (fun c -> Value_set.mem c ext) named

(* ------------------------------------------------------------------ *)
(* Irredundancy by exhaustive subset search                            *)
(* ------------------------------------------------------------------ *)

let minimal_equivalent_conjunct_count inst c =
  let cs = Array.of_list (Ls.conjuncts c) in
  let n = Array.length cs in
  if n > 12 then
    invalid_arg "Oracle.minimal_equivalent_conjunct_count: too many conjuncts";
  let full = Semantics.extension c inst in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    let size = ref 0 in
    let sub = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        incr size;
        sub := cs.(i) :: !sub
      end
    done;
    if
      !size < !best
      && Semantics.ext_equal
           (Semantics.extension (Ls.of_conjuncts !sub) inst)
           full
    then best := !size
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Upper-bound candidate spaces for the lub oracles                    *)
(* ------------------------------------------------------------------ *)

let contains_all inst x c =
  Value_set.for_all (fun v -> Semantics.mem v c inst) x

let selection_free_upper_bounds inst ~nominals x =
  Count.enumerate_selection_free inst nominals
  |> List.filter (contains_all inst x)

let single_condition_upper_bounds inst x =
  let adom = Value_set.elements (Instance.adom inst) in
  let candidates =
    List.concat_map
      (fun rel ->
         let r = Option.get (Instance.relation inst rel) in
         let k = Relation.arity r in
         let attrs = List.init k (fun i -> i + 1) in
         List.concat_map
           (fun attr ->
              Ls.proj ~rel ~attr ()
              :: List.concat_map
                   (fun sattr ->
                      List.concat_map
                        (fun op ->
                           List.map
                             (fun v ->
                                Ls.proj ~rel ~attr
                                  ~sels:[ { Ls.attr = sattr; op; value = v } ]
                                  ())
                             adom)
                        Cmp_op.all)
                   attrs)
           attrs)
      (Instance.relation_names inst)
  in
  List.filter (contains_all inst x) candidates
