open Whynot_relational
module Ls = Whynot_concept.Ls

let buf_add = Buffer.add_string

let attr_name schema ~rel attr =
  match Schema.attr_name schema ~rel attr with
  | Some name -> name
  | None -> string_of_int attr

let concept schema c =
  match Ls.conjuncts c with
  | [] -> "top"
  | conjuncts ->
    conjuncts
    |> List.map (function
         | Ls.Nominal v -> Printf.sprintf "{%s}" (Value.to_string v)
         | Ls.Proj { rel; attr; sels } ->
           let sel_str =
             match sels with
             | [] -> ""
             | _ ->
               Printf.sprintf "[%s]"
                 (String.concat ", "
                    (List.map
                       (fun (s : Ls.selection) ->
                          Printf.sprintf "%s %s %s"
                            (attr_name schema ~rel s.Ls.attr)
                            (Cmp_op.to_string s.Ls.op)
                            (Value.to_string s.Ls.value))
                       sels))
           in
           Printf.sprintf "%s.%s%s" rel (attr_name schema ~rel attr) sel_str)
    |> String.concat " & "

let term = function
  | Cq.Var v -> v
  | Cq.Const c -> Value.to_string c

let cq_body (q : Cq.t) =
  let atoms =
    List.map
      (fun (a : Cq.atom) ->
         Printf.sprintf "%s(%s)" a.Cq.rel
           (String.concat ", " (List.map term a.Cq.args)))
      q.Cq.atoms
  in
  let comparisons =
    List.map
      (fun (c : Cq.comparison) ->
         Printf.sprintf "%s %s %s" c.Cq.subject
           (Cmp_op.to_string c.Cq.op)
           (Value.to_string c.Cq.value))
      q.Cq.comparisons
  in
  String.concat ", " (atoms @ comparisons)

let document schema inst =
  let buf = Buffer.create 512 in
  List.iter
    (fun (d : Schema.rel_decl) ->
       buf_add buf
         (Printf.sprintf "relation %s(%s)\n" d.Schema.name
            (String.concat ", " d.Schema.attrs)))
    (Schema.relations schema);
  List.iter
    (fun (fd : Fd.t) ->
       buf_add buf
         (Printf.sprintf "fd %s: %s -> %s\n" fd.Fd.rel
            (String.concat ", " (List.map string_of_int fd.Fd.lhs))
            (String.concat ", " (List.map string_of_int fd.Fd.rhs))))
    (Schema.fds schema);
  List.iter
    (fun (ind : Ind.t) ->
       buf_add buf
         (Printf.sprintf "ind %s[%s] <= %s[%s]\n" ind.Ind.lhs_rel
            (String.concat ", " (List.map string_of_int ind.Ind.lhs_attrs))
            ind.Ind.rhs_rel
            (String.concat ", " (List.map string_of_int ind.Ind.rhs_attrs))))
    (Schema.inds schema);
  List.iter
    (fun (v : View.def) ->
       let head =
         match v.View.body.Ucq.disjuncts with
         | [] -> "()"
         | q :: _ -> String.concat ", " (List.map term q.Cq.head)
       in
       buf_add buf
         (Printf.sprintf "view %s(%s) := %s\n" v.View.name head
            (String.concat "\n  | "
               (List.map cq_body v.View.body.Ucq.disjuncts))))
    (View.defs (Schema.views schema));
  let data = Schema.data_relation_names schema in
  List.iter
    (fun rel ->
       match Instance.relation inst rel with
       | None -> ()
       | Some r ->
         Relation.iter
           (fun t ->
              buf_add buf
                (Printf.sprintf "fact %s(%s)\n" rel
                   (String.concat ", "
                      (List.map Value.to_string (Tuple.to_list t)))))
           r)
    data;
  Buffer.contents buf
