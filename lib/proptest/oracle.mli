(** Brute-force reference implementations ("oracles") for differential
    testing.

    Every function here recomputes, by a deliberately naive route, a result
    that some optimised module of the main libraries also computes. The
    property-based harness ({!Props}) generates random inputs and checks
    that the two routes agree; a disagreement is a bug in one of the two.
    None of these functions share code with the implementation they check
    beyond the basic data structures. *)

open Whynot_relational

val naive_eval : Cq.t -> Instance.t -> Relation.t
(** The pre-planner [Cq.eval], verbatim: backtracking join in textual atom
    order with association-list bindings and a full relation scan per atom.
    Differential oracle for the indexed/planned kernel
    ([eval/planned-equals-naive]). *)

val naive_holds : Cq.t -> Instance.t -> bool
(** Boolean evaluation against {!naive_eval}'s semantics, short-circuiting
    on the first satisfying binding (after excluding heads with variables
    no atom binds, which project every binding away). *)

val naive_eval_assignments : Cq.t -> Instance.t -> (string * Value.t) list list
(** The pre-planner [Cq.eval_assignments], verbatim. *)

val scan_extension :
  Whynot_concept.Ls.t -> Instance.t -> Whynot_concept.Semantics.ext
(** The pre-index [Semantics.extension]: each conjunct answered by a
    full-relation [Relation.select] scan and a column fold. Differential
    oracle for the [Eval_index]-backed version
    ([ext/indexed-equals-scan]). *)

val selection_free_no_constraints_subsumes :
  Whynot_concept.Ls.t -> Whynot_concept.Ls.t -> bool
(** [C1 ⊑_S C2] for selection-free concepts over a schema with no integrity
    constraints, decided syntactically: subsumption holds iff [C1] is
    unsatisfiable (two distinct nominals) or every conjunct of [C2] occurs
    among the conjuncts of [C1]. This is a complete characterisation for
    the constraint-free, selection-free fragment (one-element witness
    instances realise every failure). Both arguments must be
    selection-free. *)

val hom_contained : Cq.t -> Cq.t -> bool
(** [hom_contained q1 q2]: does [q1 ⊆ q2] hold over every instance, decided
    by the classical canonical-database test — freeze [q1] and search for a
    homomorphism from [q2] into the frozen instance mapping head to head.
    Both queries must be safe, comparison-free, and of the same arity.
    @raise Invalid_argument when a query carries comparisons. *)

val positive_chase :
  Whynot_dllite.Tbox.t -> Whynot_dllite.Interp.t -> Whynot_dllite.Interp.t
(** Close an interpretation under the {e positive} axioms of the TBox:
    memberships propagate along concept inclusions, existential
    requirements are satisfied by one global witness element per role
    direction, and role inclusions copy edges. Negative axioms are ignored.
    Terminates because the domain grows by at most two witnesses per atomic
    role. The result is a model of the positive part of the TBox extending
    the input. *)

val interp_individuals : Whynot_dllite.Interp.t -> Value_set.t
(** Every constant occurring in the interpretation (concept members and
    role-edge endpoints). *)

val chase_certain_extension :
  Whynot_obda.Spec.t -> Instance.t -> Whynot_dllite.Dl.basic -> Value_set.t
(** The certain extension [ext_OB(B, I)] computed by materialising a model:
    retrieve the assertions through the mappings, chase them under the
    positive TBox axioms ({!positive_chase}), and read off which {e named}
    individuals (those occurring in the retrieved assertions) ended up in
    the extension of [B]. Differential oracle for
    {!Whynot_obda.Induced.extension}, which instead forward-chains the
    saturated subsumption closure per constant. *)

val minimal_equivalent_conjunct_count :
  Instance.t -> Whynot_concept.Ls.t -> int
(** The size of the smallest subset of the concept's conjuncts whose meet
    has the same extension over the instance — found by exhaustive subset
    search. Differential oracle for {!Whynot_concept.Irredundant.minimise}.
    @raise Invalid_argument when the concept has more than 12 conjuncts. *)

val selection_free_upper_bounds :
  Instance.t -> nominals:Value_set.t -> Value_set.t ->
  Whynot_concept.Ls.t list
(** All selection-free concepts (enumerated over the instance's positions
    with nominals from [nominals]) whose extension contains the given
    constant set — the candidate space against which
    {!Whynot_concept.Lub.lub} must be least. Exponential; small instances
    only. *)

val single_condition_upper_bounds :
  Instance.t -> Value_set.t -> Whynot_concept.Ls.t list
(** All atomic concepts [pi_A(sigma_{B op c}(R))] with at most one selection
    condition ([c] ranging over the active domain), plus the selection-free
    atomic concepts, whose extension contains the given constant set. Every
    member is an upper bound that {!Whynot_concept.Lub.lub_sigma} must lie
    below. *)
