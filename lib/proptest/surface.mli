(** Rendering of generated artifacts into the {!Whynot_text} surface
    syntax, for parse/print round-trip properties.

    {!Whynot_concept.Ls.pp} prints the mathematical notation
    ([pi_a1(sigma_...(R0))]), which the parser does not read; these
    functions emit the parser's grammar instead ([R0.a1[a2 >= 3]],
    [relation R0(a1, a2)], [fact R0(1, "a")], ...), so that
    [parse (render x) = x] is a meaningful property. *)

open Whynot_relational

val concept : Schema.t -> Whynot_concept.Ls.t -> string
(** The [concept_of_string] grammar: conjuncts joined by [&]; attribute
    names resolved through the schema (positions when unnamed). *)

val cq_body : Cq.t -> string
(** The rule-body rendering: comma-separated atoms then comparisons. *)

val document : Schema.t -> Instance.t -> string
(** A full document: [relation] declarations, [fd]/[ind] constraints
    (positional attributes), [view] definitions, and one [fact] line per
    tuple of every {e data} relation of the instance. *)
