(** The replayable failure corpus.

    Every failure the differential harness ever finds is persisted as a
    [(property, seed, count)] triple in a [*.repro] file under
    [test/corpus/]; the test-suite replays every committed entry before
    (and in addition to) the fresh randomised run, so once-found bugs stay
    fixed for good. Entries are deterministic: replaying
    [prop=P seed=S count=N] re-runs property [P] with exactly the generator
    stream that found the original failure.

    File format — one entry per line, [#] comments and blank lines
    ignored:

    {v
    # found by proptest_runner on an overnight run
    prop=obda/induced-vs-chase seed=1234567 count=100
    v} *)

type entry = {
  prop : string;  (** registered property name, see {!Props.all} *)
  seed : int;     (** the [Random.State] seed that exposed the failure *)
  count : int;    (** how many generations the original run used *)
}

val entry_to_line : entry -> string

val entry_of_line : string -> (entry option, string) result
(** [Ok None] for blank/comment lines; [Error _] for malformed ones. *)

val load_file : string -> (entry list, string) result

val load_dir : string -> entry list * string list
(** All entries of every [*.repro] file in the directory (sorted by file
    name), plus human-readable complaints for unreadable files or
    malformed lines. A missing directory yields no entries and no
    complaints. *)

val save : dir:string -> entry -> string
(** Append the entry to [dir/<prop>.repro] (slashes in the property name
    become dashes; the directory is created if missing) and return the
    file path. *)
