(** Seeded QCheck2 generators covering the paper's whole input space:
    values, tuples, relations, schemas per Table-1 constraint class,
    instances {e satisfying} their schema, conjunctive queries with
    comparisons, [L_S] concepts, DL-LiteR TBoxes and models, GAV OBDA
    specifications, and why-not questions.

    All generators are plain [QCheck2.Gen.t] values, so they are
    deterministic given the [Random.State.t] the runner seeds them with,
    and they shrink through QCheck2's integrated shrinking: counterexamples
    are minimised structurally (fewer facts, fewer atoms, fewer conjuncts)
    before being reported. *)

open Whynot_relational

val value : Value.t QCheck2.Gen.t
(** Small ints, a five-letter string pool, and non-integral reals. The
    pools are deliberately tiny so that independently generated artifacts
    share constants (joins, memberships and FD/IND interactions actually
    fire). Reals are kept non-integral so that printing and re-parsing a
    value never changes its class. *)

val int_value : Value.t QCheck2.Gen.t

val tuple : arity:int -> Tuple.t QCheck2.Gen.t

val relation : arity:int -> Relation.t QCheck2.Gen.t

val instance : Instance.t QCheck2.Gen.t
(** A schema-less instance over a binary relation [R] and a unary [S]
    (both always present, possibly empty). *)

val rs_schema : Schema.t
(** The constraint-free schema matching {!instance}: [R(a1, a2)] and
    [S(a1)]. *)

type schema_class =
  | No_constraints
  | Fds_only
  | Inds_only
  | Views_only
  | Mixed

val schema_class : schema_class QCheck2.Gen.t

val schema : ?max_arity:int -> schema_class -> Schema.t QCheck2.Gen.t
(** One to three relations [R0, R1, R2] of arities 1-[max_arity]
    (default 3) with named attributes, carrying constraints of the
    requested class: FDs [first -> last] per relation, an IND chain on
    first attributes, a unary UCQ view [V0] over [R0], or a mixture. *)

val legal_instance : Schema.t -> Instance.t QCheck2.Gen.t
(** An instance satisfying every constraint of the schema, with all views
    materialised: random facts are repaired (FD violations dropped, IND
    violations chased with filler tuples) until [Schema.satisfies] holds;
    the empty instance is the fallback when repair does not converge. *)

val cq :
  ?with_comparisons:bool -> ?max_atoms:int -> ?arity:int -> Schema.t ->
  Cq.t QCheck2.Gen.t
(** A safe CQ over the schema's data relations: 1-[max_atoms] atoms
    (default 3), head variables drawn from the body, and (by default) up
    to two comparisons to constants. [arity] forces the head width
    (default random 0-2). *)

val ucq :
  ?with_comparisons:bool -> ?max_atoms:int -> ?arity:int -> Schema.t ->
  Ucq.t QCheck2.Gen.t

val concept :
  ?with_selections:bool ->
  ?with_nominal:bool ->
  ?max_conjuncts:int ->
  ?max_sels:int ->
  Schema.t ->
  Whynot_concept.Ls.t QCheck2.Gen.t
(** An [L_S] concept over the schema's positions: projections with up to
    [max_sels] selection conditions each (default 2; none when
    [with_selections] is false), an optional nominal, and occasionally
    [top]. *)

val tbox : Whynot_dllite.Tbox.t QCheck2.Gen.t
(** 1-3 atomic concepts, 1-2 atomic roles, 2-8 axioms mixing positive and
    negative concept/role inclusions. Always mentions the atomic concept
    [A0], so OBDA mapping heads have a target. *)

val model_of : Whynot_dllite.Tbox.t -> Whynot_dllite.Interp.t QCheck2.Gen.t
(** A finite interpretation satisfying the {e positive} axioms of the
    TBox: random memberships and edges over four constants, closed under
    {!Oracle.positive_chase}. Negative axioms may fail — callers that need
    a full model must filter with [Interp.satisfies]. *)

val obda : (Whynot_obda.Spec.t * Instance.t) QCheck2.Gen.t
(** A well-formed OBDA specification (random TBox, a small relational
    schema, 1-3 safe GAV mappings with optional comparisons) together with
    an instance for its schema. *)

val whynot : Whynot_core.Whynot.t option QCheck2.Gen.t
(** A why-not question over a binary relation [R] with a two-atom chain
    query of head arity 1 or 2 and a missing tuple certified absent from
    the answers; [None] when the random instance answers everything (the
    property should then pass vacuously). *)

val wire_json : Whynot.Json.t QCheck2.Gen.t
(** Arbitrary wire JSON: full-byte-range strings, finite floats (integral
    and fractional), deep lists/objects — everything the server's codec
    must round-trip byte-exactly. *)

val wire_envelope : Whynot.Json.t QCheck2.Gen.t
(** Half arbitrary {!wire_json} documents, half objects shaped like the
    server's schema_version-3 request/response envelopes. *)
