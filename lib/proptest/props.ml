open Whynot_relational
module QG = QCheck2.Gen
module Ls = Whynot_concept.Ls
module Semantics = Whynot_concept.Semantics
module Lub = Whynot_concept.Lub
module Subsume_schema = Whynot_concept.Subsume_schema
module Subsume_inst = Whynot_concept.Subsume_inst
module Irredundant = Whynot_concept.Irredundant

(* Bind the facade's JSON codec before [Whynot] is rebound to the core
   question module below. *)
module Wire_json = Whynot.Json
module Whynot = Whynot_core.Whynot
module Explanation = Whynot_core.Explanation
module Exhaustive = Whynot_core.Exhaustive
module Incremental = Whynot_core.Incremental
module Ontology = Whynot_core.Ontology
module Reasoner = Whynot_dllite.Reasoner
module Canonical = Whynot_dllite.Canonical
module Interp = Whynot_dllite.Interp
module Tbox = Whynot_dllite.Tbox
module Induced = Whynot_obda.Induced
module Spec = Whynot_obda.Spec
module Parser = Whynot_text.Parser
module Subsume_memo = Whynot_concept.Subsume_memo
module Pool = Whynot_parallel.Pool
module Par_exhaustive = Whynot_parallel.Par_exhaustive
module Par_incremental = Whynot_parallel.Par_incremental

let ( let* ) = QG.( let* )

type t = {
  name : string;
  default_count : int;
  make : count:int -> QCheck2.Test.t;
}

let prop name default_count print gen check =
  {
    name;
    default_count;
    make = (fun ~count -> QCheck2.Test.make ~name ~count ~print gen check);
  }

(* ------------------------------------------------------------------ *)
(* Printers for shrunk counterexamples                                 *)
(* ------------------------------------------------------------------ *)

let str_instance i = Format.asprintf "%a" Instance.pp i
let str_schema s = Format.asprintf "%a" Schema.pp s

let str_cq (q : Cq.t) =
  let term = function Cq.Var v -> v | Cq.Const c -> Value.to_string c in
  Printf.sprintf "q(%s) := %s"
    (String.concat ", " (List.map term q.Cq.head))
    (Surface.cq_body q)

let str_whynot = function
  | None -> "<no missing tuple available>"
  | Some wn -> Format.asprintf "%a" Whynot.pp wn

(* ------------------------------------------------------------------ *)
(* MGE computation: Algorithm 2 vs Algorithm 1                         *)
(* ------------------------------------------------------------------ *)

(* Incremental search works w.r.t. the infinite derived ontology [O_I];
   its selection-free variant only ever produces concepts of the finite
   restriction [O_I[K]] with [K] the constant pool of the question
   (Proposition 5.1), so its answer must be equivalent to one of the MGEs
   the exhaustive algorithm computes over that materialisation — and,
   conversely, every exhaustive MGE must pass the incremental CHECK-MGE
   procedure. *)
let mge_incremental_vs_exhaustive =
  prop "mge/incremental-vs-exhaustive" 100 str_whynot Gen.whynot (function
    | None -> true
    | Some wn ->
      let o =
        Ontology.of_instance_finite wn.Whynot.instance (Whynot.constant_pool wn)
      in
      let exhaustive = Exhaustive.all_mges_exn o wn in
      let incremental =
        Incremental.one_mge ~variant:Incremental.Selection_free wn
      in
      Explanation.is_explanation o wn incremental
      && List.exists (fun e -> Explanation.equivalent o e incremental) exhaustive
      && List.for_all (fun e -> Incremental.check_mge wn e) exhaustive)

let mge_incremental_selections =
  prop "mge/incremental-selections-check" 100 str_whynot Gen.whynot (function
    | None -> true
    | Some wn ->
      let o = Ontology.of_instance wn.Whynot.instance in
      let e = Incremental.one_mge ~variant:Incremental.With_selections wn in
      Explanation.is_explanation o wn e
      && Incremental.check_mge ~variant:Incremental.With_selections wn e
      && Explanation.less_general o (Incremental.trivial_explanation wn) e)

(* ------------------------------------------------------------------ *)
(* Schema-level subsumption deciders vs Table 1                        *)
(* ------------------------------------------------------------------ *)

let gen_subsume_case =
  let* cls = Gen.schema_class in
  let* s = Gen.schema ~max_arity:2 cls in
  (* The IND fragment of Table 1 is only complete selection-free. *)
  let with_selections = match cls with Gen.Inds_only -> false | _ -> true in
  let concept = Gen.concept ~with_selections ~max_conjuncts:2 ~max_sels:1 s in
  let* c1 = concept in
  let* c2 = concept in
  let* i1 = Gen.legal_instance s in
  let* i2 = Gen.legal_instance s in
  QG.return (cls, s, c1, c2, [ i1; i2 ])

let str_subsume_case (_, s, c1, c2, insts) =
  Printf.sprintf "%s\nC1 = %s\nC2 = %s\n%s" (str_schema s) (Ls.to_string c1)
    (Ls.to_string c2)
    (String.concat "\n" (List.map str_instance insts))

(* [Subsumed] verdicts must hold on every legal instance, and the pure
   constraint classes (everything except [Mixed]) admit complete
   procedures, so [Unknown] is only ever allowed for [Mixed]. *)
let subsume_deciders_sound =
  prop "subsume/deciders-sound-on-instances" 150 str_subsume_case
    gen_subsume_case (fun (cls, s, c1, c2, insts) ->
      match Subsume_schema.decide s c1 c2 with
      | Subsume_schema.Subsumed ->
        List.for_all (fun i -> Subsume_inst.subsumes i c1 c2) insts
      | Subsume_schema.Not_subsumed -> true
      | Subsume_schema.Unknown -> ( match cls with Gen.Mixed -> true | _ -> false))

let gen_noconstraints_pair =
  let* s = Gen.schema No_constraints in
  let concept = Gen.concept ~with_selections:false s in
  let* c1 = concept in
  let* c2 = concept in
  QG.return (s, c1, c2)

let subsume_noconstraints_vs_syntactic =
  prop "subsume/noconstraints-vs-syntactic" 400
    (fun (s, c1, c2) ->
      Printf.sprintf "%s\nC1 = %s\nC2 = %s" (str_schema s) (Ls.to_string c1)
        (Ls.to_string c2))
    gen_noconstraints_pair
    (fun (s, c1, c2) ->
      let expected =
        if Oracle.selection_free_no_constraints_subsumes c1 c2 then
          Subsume_schema.Subsumed
        else Subsume_schema.Not_subsumed
      in
      Subsume_schema.decide s c1 c2 = expected)

(* ------------------------------------------------------------------ *)
(* Least upper bounds vs brute-force candidate enumeration             *)
(* ------------------------------------------------------------------ *)

let gen_instance_with_targets =
  let* inst = Gen.instance in
  match Value_set.elements (Instance.adom inst) with
  | [] -> QG.return (inst, [])
  | vals ->
    let* n = QG.int_range 1 (min 3 (List.length vals)) in
    let* shuffled = QG.shuffle_l vals in
    QG.return (inst, List.filteri (fun i _ -> i < n) shuffled)

let str_instance_with_targets (inst, xs) =
  Printf.sprintf "%s\nX = {%s}" (str_instance inst)
    (String.concat ", " (List.map Value.to_string xs))

let lub_least_vs_enumeration =
  prop "lub/least-vs-enumeration" 250 str_instance_with_targets
    gen_instance_with_targets (fun (inst, xs) ->
      match xs with
      | [] -> true
      | _ ->
        let x = Value_set.of_list xs in
        let ext = Semantics.extension (Lub.lub inst x) inst in
        List.for_all (fun v -> Semantics.ext_mem v ext) xs
        && List.for_all
             (fun c -> Semantics.ext_subset ext (Semantics.extension c inst))
             (Oracle.selection_free_upper_bounds inst ~nominals:x x))

let lub_sigma_vs_single_condition =
  prop "lub/sigma-vs-single-condition-bounds" 150 str_instance_with_targets
    gen_instance_with_targets (fun (inst, xs) ->
      match xs with
      | [] -> true
      | _ ->
        let x = Value_set.of_list xs in
        let ext = Semantics.extension (Lub.lub_sigma inst x) inst in
        List.for_all (fun v -> Semantics.ext_mem v ext) xs
        (* lubσ ranges over a richer language, so it lies below lub. *)
        && Semantics.ext_subset ext (Semantics.extension (Lub.lub inst x) inst)
        && List.for_all
             (fun c -> Semantics.ext_subset ext (Semantics.extension c inst))
             (Oracle.single_condition_upper_bounds inst x))

(* ------------------------------------------------------------------ *)
(* DL-Lite saturation vs finite models and the canonical model         *)
(* ------------------------------------------------------------------ *)

let gen_tbox_with_model =
  let* tb = Gen.tbox in
  let* m = Gen.model_of tb in
  QG.return (tb, m)

let str_tbox_with_model (tb, m) =
  Format.asprintf "%a@.%a" Tbox.pp tb Instance.pp (Interp.to_instance m)

let dllite_saturation_sound =
  prop "dllite/saturation-sound-on-models" 250 str_tbox_with_model
    gen_tbox_with_model (fun (tb, m) ->
      (* The chase only closes the positive axioms; discard the draws
         that violate a negative one. *)
      (not (Interp.satisfies m tb))
      ||
      let r = Reasoner.saturate tb in
      let universe = Reasoner.universe r in
      List.for_all
        (fun b1 ->
          List.for_all
            (fun b2 ->
              (not (Reasoner.subsumes r b1 b2))
              || Interp.satisfies_inclusion m b1 b2)
            universe)
        universe)

let dllite_saturation_complete =
  prop "dllite/saturation-complete-vs-canonical" 300
    (Format.asprintf "%a" Tbox.pp)
    Gen.tbox
    (fun tb ->
      let r = Reasoner.saturate tb in
      let m = Canonical.build r in
      Interp.satisfies m tb
      && List.for_all
           (fun b1 ->
             List.for_all
               (fun b2 ->
                 Reasoner.subsumes r b1 b2
                 || not (Interp.satisfies_inclusion m b1 b2))
               (Reasoner.universe r))
           (Reasoner.universe r))

(* ------------------------------------------------------------------ *)
(* OBDA certain extensions vs a direct chase                           *)
(* ------------------------------------------------------------------ *)

let obda_induced_vs_chase =
  prop "obda/induced-vs-chase" 150
    (fun (spec, inst) ->
      Format.asprintf "%a@.%a" Spec.pp spec Instance.pp inst)
    Gen.obda
    (fun (spec, inst) ->
      let induced = Induced.prepare spec inst in
      (* When the retrieved assertions contradict the TBox there is no
         solution: [Induced.extension] then answers through the
         unsatisfiability closure, which the purely positive chase cannot
         (and should not) reproduce. *)
      match Induced.consistent induced with
      | Error _ -> true
      | Ok () ->
        List.for_all
          (fun b ->
            Value_set.equal (Induced.extension induced b)
              (Oracle.chase_certain_extension spec inst b))
          (Induced.concepts induced))

(* ------------------------------------------------------------------ *)
(* Irredundant minimisation vs exhaustive subset search                *)
(* ------------------------------------------------------------------ *)

let gen_instance_with_concept =
  let* inst = Gen.instance in
  let* c = Gen.concept ~max_conjuncts:4 Gen.rs_schema in
  QG.return (inst, c)

(* A conjunction's extension is the meet of its conjuncts' extensions, so
   the equivalent subsets of a conjunct set are upward closed; hence "no
   single conjunct can be dropped" coincides with "no strict subset is
   equivalent", i.e. irredundancy holds iff the exhaustive minimum subset
   size equals the conjunct count. *)
let irredundant_vs_subset_search =
  prop "concept/irredundant-vs-subset-search" 300
    (fun (inst, c) ->
      Printf.sprintf "%s\nC = %s" (str_instance inst) (Ls.to_string c))
    gen_instance_with_concept
    (fun (inst, c) ->
      let m = Irredundant.minimise inst c in
      Semantics.ext_equal (Semantics.extension m inst)
        (Semantics.extension c inst)
      && Irredundant.is_irredundant inst m
      && Oracle.minimal_equivalent_conjunct_count inst m
         = List.length (Ls.conjuncts m)
      && Irredundant.is_irredundant inst c
         = (Oracle.minimal_equivalent_conjunct_count inst c
            = List.length (Ls.conjuncts c)))

(* ------------------------------------------------------------------ *)
(* CQ containment vs the homomorphism test                             *)
(* ------------------------------------------------------------------ *)

let gen_cq_pair =
  let cq = Gen.cq ~with_comparisons:false ~max_atoms:2 ~arity:1 Gen.rs_schema in
  let* q1 = cq in
  let* q2 = cq in
  QG.return (q1, q2)

let cq_containment_vs_homomorphism =
  prop "cq/containment-vs-homomorphism" 300
    (fun (q1, q2) -> Printf.sprintf "%s\n%s" (str_cq q1) (str_cq q2))
    gen_cq_pair
    (fun (q1, q2) ->
      Containment.cq_in_cq q1 q2 = Oracle.hom_contained q1 q2)

let gen_cq_pair_with_instance =
  let cq = Gen.cq ~max_atoms:2 ~arity:1 Gen.rs_schema in
  let* q1 = cq in
  let* q2 = cq in
  let* inst = Gen.instance in
  QG.return (q1, q2, inst)

let cq_containment_sound =
  prop "cq/containment-sound-on-instances" 250
    (fun (q1, q2, inst) ->
      Printf.sprintf "%s\n%s\n%s" (str_cq q1) (str_cq q2) (str_instance inst))
    gen_cq_pair_with_instance
    (fun (q1, q2, inst) ->
      (* Dropping a comparison weakens the query, so containment must be
         derivable — a completeness probe with a known-true answer. *)
      let weakened =
        match q1.Cq.comparisons with
        | [] -> q1
        | _ :: rest -> { q1 with Cq.comparisons = rest }
      in
      Containment.cq_in_cq q1 q1
      && Containment.cq_in_cq q1 weakened
      && ((not (Containment.cq_in_cq q1 q2))
          || Relation.subset (Cq.eval q1 inst) (Cq.eval q2 inst)))

(* ------------------------------------------------------------------ *)
(* The memo layer vs the cache-free oracles                            *)
(* ------------------------------------------------------------------ *)

let gen_inst_concept_pair =
  let* inst = Gen.instance in
  let concept = Gen.concept ~max_conjuncts:3 Gen.rs_schema in
  let* c1 = concept in
  let* c2 = concept in
  QG.return (inst, c1, c2)

(* The cached instance-level decider must agree with the direct
   extension-inclusion computation, and asking again (now guaranteed to be
   answered from the memo table) must return the same verdict. *)
let memo_inst_cached_vs_naive =
  prop "memo/subsume-inst-cached-vs-naive" 300
    (fun (inst, c1, c2) ->
      Printf.sprintf "%s\nC1 = %s\nC2 = %s" (str_instance inst)
        (Ls.to_string c1) (Ls.to_string c2))
    gen_inst_concept_pair
    (fun (inst, c1, c2) ->
      let naive = Subsume_inst.naive_subsumes inst c1 c2 in
      let cached = Subsume_inst.subsumes inst c1 c2 in
      let replayed = Subsume_inst.subsumes inst c1 c2 in
      let h = Whynot_concept.Subsume_memo.inst inst in
      cached = naive && replayed = naive
      && Semantics.ext_equal
           (Whynot_concept.Subsume_memo.extension h c1)
           (Semantics.extension c1 inst))

(* The cached schema-level decider must return exactly the verdict of the
   uncached Table-1 decider (which is kept deliberately memo-free as the
   oracle), on first ask and on the replay that hits the cache. *)
let memo_schema_cached_vs_uncached =
  prop "memo/subsume-schema-cached-vs-uncached" 100 str_subsume_case
    gen_subsume_case (fun (_cls, s, c1, c2, _insts) ->
      let oracle = Subsume_schema.decide s c1 c2 in
      let h = Whynot_concept.Subsume_memo.schema s in
      let cached = Whynot_concept.Subsume_memo.decide h c1 c2 in
      let replayed = Whynot_concept.Subsume_memo.decide h c1 c2 in
      cached = oracle && replayed = oracle)

(* ------------------------------------------------------------------ *)
(* Text parser vs the Surface printer                                  *)
(* ------------------------------------------------------------------ *)

let gen_schema_with_concept =
  let* s = Gen.schema No_constraints in
  let* c = Gen.concept s in
  QG.return (s, c)

let text_concept_roundtrip =
  prop "text/concept-roundtrip" 300
    (fun (s, c) ->
      Printf.sprintf "%s\nC = %s\nprinted = %s" (str_schema s) (Ls.to_string c)
        (Surface.concept s c))
    gen_schema_with_concept
    (fun (s, c) ->
      match Parser.parse (Surface.document s Instance.empty) with
      | Error _ -> false
      | Ok doc ->
        (match Parser.concept_of_string doc (Surface.concept s c) with
         | Error _ -> false
         | Ok c' -> Ls.equal c c'))

let gen_schema_with_instance =
  let* cls = Gen.schema_class in
  let* s = Gen.schema cls in
  let* inst = Gen.legal_instance s in
  QG.return (s, inst)

let text_document_roundtrip =
  prop "text/document-roundtrip" 250
    (fun (s, inst) -> Surface.document s inst)
    gen_schema_with_instance
    (fun (s, inst) ->
      match Parser.parse (Surface.document s inst) with
      | Error _ -> false
      | Ok doc ->
        (match Parser.schema_of doc with
         | Error _ -> false
         | Ok s' ->
           let sorted l = List.sort Stdlib.compare l in
           Schema.relations s' = Schema.relations s
           && sorted (Schema.fds s') = sorted (Schema.fds s)
           && sorted (Schema.inds s') = sorted (Schema.inds s)
           && Instance.equal (Parser.instance_of doc) inst))

let text_values_roundtrip =
  prop "text/values-roundtrip" 500
    (fun vs -> String.concat ", " (List.map Value.to_string vs))
    (QG.list_size (QG.int_range 1 5) Gen.value)
    (fun vs ->
      let printed = String.concat ", " (List.map Value.to_string vs) in
      match Parser.values_of_string printed with
      | Error _ -> false
      | Ok vs' ->
        List.length vs = List.length vs' && List.for_all2 Value.equal vs vs')

(* ------------------------------------------------------------------ *)
(* The parallel engine vs the sequential algorithms                    *)
(* ------------------------------------------------------------------ *)

(* The contract of [Whynot_parallel] is not "a correct MGE set" but "the
   sequential MGE set, exactly": the block merge of Algorithm 1 and the
   speculative replay of Algorithm 2 must be invisible at every domain
   count. Sequential is compared against pools of 1, 2 and 4 domains —
   1 exercises the degenerate no-spawn path, 2 and 4 genuinely interleave
   on multicore hosts. *)
let parallel_mge_equals_sequential =
  prop "parallel/mge-equals-sequential" 30 str_whynot Gen.whynot (function
    | None -> true
    | Some wn ->
      let inst = wn.Whynot.instance in
      let o =
        Ontology.of_instance_finite inst (Whynot.constant_pool wn)
      in
      let seq_all = Exhaustive.all_mges_exn o wn in
      let seq_exists = Exhaustive.exists_explanation_exn o wn in
      let seq_incr = Incremental.one_mge ~shorten:false wn in
      List.for_all
        (fun domains ->
          let pool = Pool.create ~domains in
          Fun.protect
            ~finally:(fun () -> Pool.close pool)
            (fun () ->
              let ontology ~worker =
                if worker = 0 then o
                else
                  {
                    (Ontology.of_instance
                       ~handle:(Subsume_memo.private_inst inst) inst)
                    with
                    Ontology.name = o.Ontology.name;
                    concepts = o.Ontology.concepts;
                  }
              in
              let ctx ~worker =
                if worker = 0 then Incremental.Step.make_ctx wn
                else
                  Incremental.Step.make_ctx
                    ~handle:(Subsume_memo.private_inst inst) wn
              in
              let par_all =
                match Par_exhaustive.all_mges pool ~ontology wn with
                | Ok es -> es
                | Error _ -> []
              in
              let par_exists =
                Par_exhaustive.exists_explanation pool ~ontology wn
                = Ok seq_exists
              in
              let par_incr = Par_incremental.one_mge pool ~ctx ~shorten:false wn in
              List.length par_all = List.length seq_all
              && List.for_all2 (Explanation.equivalent o) par_all seq_all
              && par_exists
              && List.length par_incr = List.length seq_incr
              && List.for_all2 Ls.equal par_incr seq_incr))
        [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* The planned/indexed evaluation kernel vs the retained naive kernel  *)
(* ------------------------------------------------------------------ *)

let gen_cq_with_instance =
  let* q = Gen.cq ~max_atoms:3 ~arity:2 Gen.rs_schema in
  let* inst = Gen.instance in
  QG.return (q, inst)

(* [Cq.eval]/[Cq.holds]/[Cq.eval_assignments] now compile a greedy plan
   over [Eval_index]; the pre-planner backtracking join lives on in
   {!Oracle}. The two routes must agree exactly — answer relation, Boolean
   verdict, and assignment list (same variable order, same sort). Asking
   twice exercises the plan/index caches on the replay. *)
let eval_planned_equals_naive =
  prop "eval/planned-equals-naive" 400
    (fun (q, inst) -> Printf.sprintf "%s\n%s" (str_cq q) (str_instance inst))
    gen_cq_with_instance
    (fun (q, inst) ->
      let planned = Cq.eval q inst in
      let replayed = Cq.eval q inst in
      let naive = Oracle.naive_eval q inst in
      Relation.equal planned naive
      && Relation.equal replayed naive
      && Cq.holds q inst = Oracle.naive_holds q inst
      && Cq.eval_assignments q inst = Oracle.naive_eval_assignments q inst)

(* [Semantics.extension] now answers each conjunct from the per-column
   value indexes of the interned [Eval_index] handle; the full-scan
   version is the oracle. *)
let ext_indexed_equals_scan =
  prop "ext/indexed-equals-scan" 400
    (fun (inst, c) ->
      Printf.sprintf "%s\nC = %s" (str_instance inst) (Ls.to_string c))
    (let* inst = Gen.instance in
     let* c = Gen.concept ~max_conjuncts:4 Gen.rs_schema in
     QG.return (inst, c))
    (fun (inst, c) ->
      let indexed = Semantics.extension c inst in
      let replayed = Semantics.extension c inst in
      let scan = Oracle.scan_extension c inst in
      Semantics.ext_equal indexed scan && Semantics.ext_equal replayed scan)

(* ------------------------------------------------------------------ *)
(* The wire codec vs itself                                            *)
(* ------------------------------------------------------------------ *)

(* The server's hand-rolled JSON decoder against the hand-rolled encoder:
   every envelope (and every other finite JSON document — adversarial
   strings, integral and fractional floats, deep nesting, duplicate keys)
   must survive [encode ∘ decode] {e exactly}, field order, Int/Float
   class and all. Structural equality is the oracle. *)
let wire_envelope_roundtrip =
  prop "wire/envelope-roundtrip" 500
    (fun j -> Wire_json.to_string j)
    Gen.wire_envelope
    (fun j ->
      match Wire_json.of_string (Wire_json.to_string j) with
      | Ok j' -> j' = j
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all =
  [
    mge_incremental_vs_exhaustive;
    mge_incremental_selections;
    subsume_deciders_sound;
    subsume_noconstraints_vs_syntactic;
    lub_least_vs_enumeration;
    lub_sigma_vs_single_condition;
    dllite_saturation_sound;
    dllite_saturation_complete;
    obda_induced_vs_chase;
    irredundant_vs_subset_search;
    cq_containment_vs_homomorphism;
    cq_containment_sound;
    memo_inst_cached_vs_naive;
    memo_schema_cached_vs_uncached;
    text_concept_roundtrip;
    text_document_roundtrip;
    text_values_roundtrip;
    parallel_mge_equals_sequential;
    eval_planned_equals_naive;
    ext_indexed_equals_scan;
    wire_envelope_roundtrip;
  ]

let names = List.map (fun p -> p.name) all

let find name = List.find_opt (fun p -> p.name = name) all

let default_seed = 20250806

let run ?count ~seed p =
  let count = Option.value count ~default:p.default_count in
  let test = p.make ~count in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| seed |]) test with
  | () -> Ok ()
  | exception QCheck2.Test_exceptions.Test_fail (name, cexs) ->
    Error
      (Printf.sprintf "%s failed (seed %d, count %d) on:\n%s" name seed count
         (String.concat "\n---\n" cexs))
  | exception QCheck2.Test_exceptions.Test_error (name, cex, exn, _bt) ->
    Error
      (Printf.sprintf "%s raised %s (seed %d, count %d) on:\n%s" name
         (Printexc.to_string exn) seed count cex)
