open Whynot_relational
module QG = QCheck2.Gen
module Ls = Whynot_concept.Ls
module Dl = Whynot_dllite.Dl
module Tbox = Whynot_dllite.Tbox
module Interp = Whynot_dllite.Interp

let ( let* ) = QG.( let* )

(* Small pools so that independently drawn artifacts share constants. *)
let str_pool = [ "a"; "b"; "c"; "d"; "e" ]
let var_pool = [ "x"; "y"; "z"; "u"; "v" ]

let int_value = QG.map Value.int (QG.int_range 0 6)

let value =
  QG.frequency
    [
      (6, int_value);
      (3, QG.map Value.str (QG.oneofl str_pool));
      (* n + 0.5: non-integral, so printing with %g round-trips. *)
      (1, QG.map (fun n -> Value.real (float_of_int n +. 0.5)) (QG.int_range 0 5));
    ]

let tuple ~arity =
  QG.map Tuple.of_list (QG.list_size (QG.return arity) value)

let relation ~arity =
  QG.map (Relation.of_list ~arity) (QG.list_size (QG.int_range 0 6) (tuple ~arity))

let instance =
  let* r = relation ~arity:2 in
  let* s = relation ~arity:1 in
  QG.return
    (Instance.add_relation "R" r (Instance.add_relation "S" s Instance.empty))

(* ------------------------------------------------------------------ *)
(* Schemas per Table-1 constraint class                                *)
(* ------------------------------------------------------------------ *)

type schema_class =
  | No_constraints
  | Fds_only
  | Inds_only
  | Views_only
  | Mixed

let schema_class =
  QG.oneofl [ No_constraints; Fds_only; Inds_only; Views_only; Mixed ]

(* The schema of {!instance}: a binary [R] and a unary [S]. *)
let rs_schema =
  Schema.make_exn
    [
      { Schema.name = "R"; attrs = [ "a1"; "a2" ] };
      { Schema.name = "S"; attrs = [ "a1" ] };
    ]

let rel_decls ~max_arity =
  let* n = QG.int_range 1 3 in
  let* arities = QG.list_size (QG.return n) (QG.int_range 1 max_arity) in
  QG.return
    (List.mapi
       (fun i k ->
          {
            Schema.name = Printf.sprintf "R%d" i;
            attrs = List.init k (fun j -> Printf.sprintf "a%d" (j + 1));
          })
       arities)

(* Keep each element with an independent coin flip. *)
let sublist xs =
  let* keep = QG.list_size (QG.return (List.length xs)) QG.bool in
  QG.return (List.filteri (fun i _ -> List.nth keep i) xs)

let fds_for decls =
  decls
  |> List.filter (fun (d : Schema.rel_decl) -> List.length d.attrs >= 2)
  |> List.map (fun (d : Schema.rel_decl) ->
         Fd.make ~rel:d.Schema.name ~lhs:[ 1 ]
           ~rhs:[ List.length d.Schema.attrs ])

let rec consecutive = function
  | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
  | _ -> []

let inds_for decls =
  consecutive decls
  |> List.map (fun ((d1 : Schema.rel_decl), (d2 : Schema.rel_decl)) ->
         Ind.make ~lhs_rel:d1.Schema.name ~lhs_attrs:[ 1 ]
           ~rhs_rel:d2.Schema.name ~rhs_attrs:[ 1 ])

let cmp_op = QG.oneofl Cmp_op.all

(* A unary view over the first declared relation: 1-2 disjuncts, each
   projecting the first attribute, optionally filtered by a comparison. *)
let view_over (d : Schema.rel_decl) =
  let arity = List.length d.Schema.attrs in
  let disjunct =
    let args =
      List.init arity (fun j ->
          if j = 0 then Cq.Var "x" else Cq.Var (Printf.sprintf "y%d" j))
    in
    let* with_cmp = QG.bool in
    let* op = cmp_op in
    let* c = int_value in
    let comparisons =
      if with_cmp then [ { Cq.subject = "x"; op; value = c } ] else []
    in
    QG.return
      (Cq.make ~head:[ Cq.Var "x" ]
         ~atoms:[ { Cq.rel = d.Schema.name; args } ]
         ~comparisons ())
  in
  let* n = QG.int_range 1 2 in
  let* disjuncts = QG.list_size (QG.return n) disjunct in
  QG.return { View.name = "V0"; body = Ucq.make disjuncts }

let view_decl = { Schema.name = "V0"; attrs = [ "a1" ] }

let schema ?(max_arity = 3) cls =
  let* decls = rel_decls ~max_arity in
  match cls with
  | No_constraints -> QG.return (Schema.make_exn decls)
  | Fds_only ->
    let* fds = sublist (fds_for decls) in
    QG.return (Schema.make_exn ~fds decls)
  | Inds_only ->
    let* inds = sublist (inds_for decls) in
    QG.return (Schema.make_exn ~inds decls)
  | Views_only ->
    let* v = view_over (List.hd decls) in
    QG.return (Schema.make_exn ~views:[ v ] (decls @ [ view_decl ]))
  | Mixed ->
    let* fds = sublist (fds_for decls) in
    let* inds = sublist (inds_for decls) in
    let* v = view_over (List.hd decls) in
    QG.return (Schema.make_exn ~fds ~inds ~views:[ v ] (decls @ [ view_decl ]))

(* ------------------------------------------------------------------ *)
(* Instances satisfying a schema: generate, repair, complete           *)
(* ------------------------------------------------------------------ *)

(* Keep the first tuple per left-hand-side projection of every FD. *)
let fd_repair schema inst =
  List.fold_left
    (fun inst (fd : Fd.t) ->
       match Instance.relation inst fd.Fd.rel with
       | None -> inst
       | Some r ->
         let seen = Hashtbl.create 16 in
         let r' =
           Relation.fold
             (fun t acc ->
                let key = Tuple.to_string (Tuple.proj fd.Fd.lhs t) in
                if Hashtbl.mem seen key then acc
                else begin
                  Hashtbl.add seen key ();
                  Relation.add t acc
                end)
             r
             (Relation.empty ~arity:(Relation.arity r))
         in
         Instance.add_relation fd.Fd.rel r' inst)
    inst (Schema.fds schema)

(* Insert filler tuples into the right-hand relation of every violated
   IND: required values at the IND's positions, Int 0 elsewhere. *)
let ind_fill schema inst =
  List.fold_left
    (fun inst (ind : Ind.t) ->
       let arity_of rel = Option.value ~default:1 (Schema.arity schema rel) in
       let lhs =
         Instance.relation_or_empty inst ~arity:(arity_of ind.Ind.lhs_rel)
           ind.Ind.lhs_rel
       in
       let rhs_arity = arity_of ind.Ind.rhs_rel in
       let rhs =
         Instance.relation_or_empty inst ~arity:rhs_arity ind.Ind.rhs_rel
       in
       List.fold_left
         (fun inst missing ->
            let arr = Array.make rhs_arity (Value.Int 0) in
            List.iteri
              (fun i attr -> arr.(attr - 1) <- Tuple.get missing (i + 1))
              ind.Ind.rhs_attrs;
            Instance.add_fact ind.Ind.rhs_rel (Array.to_list arr) inst)
         inst
         (Ind.violations ind ~lhs ~rhs))
    inst (Schema.inds schema)

let legal_instance schema =
  let data = Schema.data_relation_names schema in
  let* per_rel =
    QG.flatten_l
      (List.map
         (fun rel ->
            let arity = Option.get (Schema.arity schema rel) in
            let* tuples =
              QG.list_size (QG.int_range 0 5) (tuple ~arity)
            in
            QG.return (rel, tuples))
         data)
  in
  let inst =
    List.fold_left
      (fun inst (rel, tuples) ->
         List.fold_left
           (fun inst t -> Instance.add_fact rel (Tuple.to_list t) inst)
           inst tuples)
      Instance.empty per_rel
  in
  let rec repair inst n =
    if n = 0 then inst
    else repair (ind_fill schema (fd_repair schema inst)) (n - 1)
  in
  let inst = fd_repair schema (repair inst 4) in
  let inst = Schema.complete schema inst in
  QG.return
    (match Schema.satisfies schema inst with
     | Ok () -> inst
     | Error _ -> Schema.complete schema Instance.empty)

(* ------------------------------------------------------------------ *)
(* Conjunctive queries                                                 *)
(* ------------------------------------------------------------------ *)

let pick_distinct n xs =
  (* First n of a shuffle, padded by repetition when xs is shorter. *)
  let* shuffled = QG.shuffle_l xs in
  let len = List.length xs in
  QG.return (List.init n (fun i -> List.nth shuffled (i mod len)))

let cq ?(with_comparisons = true) ?(max_atoms = 3) ?arity schema =
  let decls =
    List.filter
      (fun (d : Schema.rel_decl) ->
         List.mem d.Schema.name (Schema.data_relation_names schema))
      (Schema.relations schema)
  in
  let atom =
    let* d = QG.oneofl decls in
    let* args =
      QG.flatten_l
        (List.map
           (fun _ ->
              QG.frequency
                [
                  (4, QG.map (fun v -> Cq.Var v) (QG.oneofl var_pool));
                  (1, QG.map (fun c -> Cq.Const c) int_value);
                ])
           d.Schema.attrs)
    in
    QG.return { Cq.rel = d.Schema.name; args }
  in
  let* n_atoms = QG.int_range 1 max_atoms in
  let* atoms = QG.list_size (QG.return n_atoms) atom in
  (* Guarantee at least one variable so the query can be safe. *)
  let atoms =
    match atoms with
    | { Cq.rel; args = _ :: rest } :: more
      when not
             (List.exists
                (List.exists (function Cq.Var _ -> true | Cq.Const _ -> false))
                (List.map (fun (a : Cq.atom) -> a.Cq.args) atoms)) ->
      { Cq.rel; args = Cq.Var "x" :: rest } :: more
    | _ -> atoms
  in
  let bvars =
    List.concat_map
      (fun (a : Cq.atom) ->
         List.filter_map
           (function Cq.Var v -> Some v | Cq.Const _ -> None)
           a.Cq.args)
      atoms
    |> List.sort_uniq String.compare
  in
  let* arity =
    match arity with
    | Some a -> QG.return a
    | None -> QG.int_range 0 (min 2 (List.length bvars))
  in
  let* head_vars = pick_distinct arity bvars in
  let* comparisons =
    if with_comparisons then
      let* n = QG.int_range 0 2 in
      QG.list_size (QG.return n)
        (let* subject = QG.oneofl bvars in
         let* op = cmp_op in
         let* c = int_value in
         QG.return { Cq.subject; op; value = c })
    else QG.return []
  in
  QG.return
    (Cq.make
       ~head:(List.map (fun v -> Cq.Var v) head_vars)
       ~atoms ~comparisons ())

let ucq ?with_comparisons ?max_atoms ?arity schema =
  let* arity =
    match arity with Some a -> QG.return a | None -> QG.int_range 0 2
  in
  let* n = QG.int_range 1 3 in
  let* disjuncts =
    QG.list_size (QG.return n) (cq ?with_comparisons ?max_atoms ~arity schema)
  in
  QG.return (Ucq.make disjuncts)

(* ------------------------------------------------------------------ *)
(* L_S concepts                                                        *)
(* ------------------------------------------------------------------ *)

let concept ?(with_selections = true) ?(with_nominal = true)
    ?(max_conjuncts = 3) ?(max_sels = 2) schema =
  let positions = Schema.positions schema in
  let proj_conjunct =
    let* rel, attr = QG.oneofl positions in
    let rel_arity = Option.get (Schema.arity schema rel) in
    let* sels =
      if with_selections then
        let* n = QG.int_range 0 max_sels in
        QG.list_size (QG.return n)
          (let* sattr = QG.int_range 1 rel_arity in
           let* op = cmp_op in
           let* v = value in
           QG.return { Ls.attr = sattr; op; value = v })
      else QG.return []
    in
    QG.return (Ls.proj ~rel ~attr ~sels ())
  in
  let build =
    let* n = QG.int_range 1 max_conjuncts in
    let* projs = QG.list_size (QG.return n) proj_conjunct in
    let* nom =
      if with_nominal then
        QG.frequency [ (3, QG.return None); (1, QG.map Option.some value) ]
      else QG.return None
    in
    let parts =
      match nom with Some v -> Ls.nominal v :: projs | None -> projs
    in
    QG.return (Ls.meet_all parts)
  in
  QG.frequency [ (1, QG.return Ls.top); (9, build) ]

(* ------------------------------------------------------------------ *)
(* DL-LiteR                                                            *)
(* ------------------------------------------------------------------ *)

let tbox =
  let* n_atoms = QG.int_range 1 3 in
  let* n_roles = QG.int_range 1 2 in
  let atoms = List.init n_atoms (fun i -> Printf.sprintf "A%d" i) in
  let roles = List.init n_roles (fun i -> Printf.sprintf "P%d" i) in
  let role =
    let* p = QG.oneofl roles in
    QG.oneofl [ Dl.Named p; Dl.Inv p ]
  in
  let basic =
    QG.frequency
      [
        (2, QG.map (fun a -> Dl.Atom a) (QG.oneofl atoms));
        (1, QG.map (fun r -> Dl.Exists r) role);
      ]
  in
  let axiom =
    QG.frequency
      [
        ( 4,
          let* lhs = basic in
          let* rhs =
            QG.frequency
              [
                (3, QG.map (fun b -> Dl.B b) basic);
                (1, QG.map (fun b -> Dl.Not b) basic);
              ]
          in
          QG.return (Tbox.Concept_incl (lhs, rhs)) );
        ( 1,
          let* r1 = role in
          let* rhs =
            QG.frequency
              [
                (3, QG.map (fun r -> Dl.R r) role);
                (1, QG.map (fun r -> Dl.NotR r) role);
              ]
          in
          QG.return (Tbox.Role_incl (r1, rhs)) );
      ]
  in
  let* n_axioms = QG.int_range 1 7 in
  let* axioms = QG.list_size (QG.return n_axioms) axiom in
  (* Anchor the signature: A0 always occurs, so downstream generators
     (OBDA mapping heads) have a concept to target. *)
  let anchor = Tbox.Concept_incl (Dl.Atom "A0", Dl.B (Dl.Atom "A0")) in
  QG.return (Tbox.make (anchor :: axioms))

let model_consts = List.init 4 (fun i -> Value.str (Printf.sprintf "c%d" i))

let model_of tb =
  let atoms = Tbox.atomic_concepts tb in
  let roles = Tbox.atomic_roles tb in
  let* memberships =
    QG.flatten_l
      (List.concat_map
         (fun a ->
            List.map
              (fun c ->
                 let* keep = QG.frequencyl [ (2, false); (1, true) ] in
                 QG.return (a, c, keep))
              model_consts)
         atoms)
  in
  let* edges =
    QG.flatten_l
      (List.concat_map
         (fun p ->
            List.concat_map
              (fun c1 ->
                 List.map
                   (fun c2 ->
                      let* keep = QG.frequencyl [ (4, false); (1, true) ] in
                      QG.return (p, c1, c2, keep))
                   model_consts)
              model_consts)
         roles)
  in
  let base =
    List.fold_left
      (fun i (a, c, keep) -> if keep then Interp.add_concept_member a c i else i)
      Interp.empty memberships
  in
  let base =
    List.fold_left
      (fun i (p, c1, c2, keep) ->
         if keep then Interp.add_role_edge p c1 c2 i else i)
      base edges
  in
  QG.return (Oracle.positive_chase tb base)

(* ------------------------------------------------------------------ *)
(* OBDA specifications                                                 *)
(* ------------------------------------------------------------------ *)

let obda =
  let* tb = tbox in
  let* arity0 = QG.int_range 1 2 in
  let* two_rels = QG.bool in
  let decls =
    { Schema.name = "T0"; attrs = List.init arity0 (fun j -> Printf.sprintf "a%d" (j + 1)) }
    :: (if two_rels then [ { Schema.name = "T1"; attrs = [ "a1" ] } ] else [])
  in
  let schema = Schema.make_exn decls in
  let atoms = Tbox.atomic_concepts tb in
  let roles = Tbox.atomic_roles tb in
  let mapping =
    let* d = QG.oneofl decls in
    let arity = List.length d.Schema.attrs in
    let vars = List.init arity (fun j -> Printf.sprintf "x%d" (j + 1)) in
    let body = [ { Cq.rel = d.Schema.name; args = List.map (fun v -> Cq.Var v) vars } ] in
    let concept_head =
      let* a = QG.oneofl atoms in
      let* x = QG.oneofl vars in
      QG.return (Whynot_obda.Mapping.Concept_of (a, x))
    in
    let* head =
      if arity >= 2 && roles <> [] then
        QG.frequency
          [
            (1, concept_head);
            ( 1,
              let* p = QG.oneofl roles in
              QG.return
                (Whynot_obda.Mapping.Role_of
                   (p, List.nth vars 0, List.nth vars 1)) );
          ]
      else concept_head
    in
    let* with_cmp = QG.frequencyl [ (3, false); (1, true) ] in
    let* op = cmp_op in
    let* c = int_value in
    let comparisons =
      if with_cmp then [ { Cq.subject = List.hd vars; op; value = c } ]
      else []
    in
    QG.return (Whynot_obda.Mapping.make ~comparisons ~head body)
  in
  let* n_mappings = QG.int_range 1 3 in
  let* mappings = QG.list_size (QG.return n_mappings) mapping in
  let spec = Whynot_obda.Spec.make_exn ~tbox:tb ~schema ~mappings in
  let fact_value =
    QG.frequency
      [ (2, int_value); (2, QG.oneofl model_consts); (1, value) ]
  in
  let* inst =
    QG.flatten_l
      (List.map
         (fun (d : Schema.rel_decl) ->
            let arity = List.length d.Schema.attrs in
            let* tuples =
              QG.list_size (QG.int_range 0 5)
                (QG.list_size (QG.return arity) fact_value)
            in
            QG.return (d.Schema.name, tuples))
         decls)
  in
  let instance =
    List.fold_left
      (fun acc (rel, tuples) ->
         List.fold_left (fun acc vs -> Instance.add_fact rel vs acc) acc tuples)
      Instance.empty inst
  in
  QG.return (spec, instance)

(* ------------------------------------------------------------------ *)
(* Why-not questions                                                   *)
(* ------------------------------------------------------------------ *)

let whynot =
  let* rows =
    QG.list_size (QG.int_range 2 8)
      (QG.pair (QG.int_range 0 4) (QG.int_range 0 4))
  in
  let inst =
    List.fold_left
      (fun inst (a, b) ->
         Instance.add_fact "R" [ Value.int a; Value.int b ] inst)
      Instance.empty rows
  in
  let chain =
    [
      { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "z" ] };
      { Cq.rel = "R"; args = [ Cq.Var "z"; Cq.Var "y" ] };
    ]
  in
  let* binary = QG.bool in
  let q =
    if binary then Cq.make ~head:[ Cq.Var "x"; Cq.Var "y" ] ~atoms:chain ()
    else Cq.make ~head:[ Cq.Var "x" ] ~atoms:chain ()
  in
  let answers = Cq.eval q inst in
  let pool = [ 0; 1; 2; 3; 4; 9 ] in
  let candidates =
    (if binary then
       List.concat_map
         (fun a -> List.map (fun b -> [ Value.int a; Value.int b ]) pool)
         pool
     else List.map (fun a -> [ Value.int a ]) pool)
    |> List.filter (fun t -> not (Relation.mem (Tuple.of_list t) answers))
  in
  match candidates with
  | [] -> QG.return None
  | _ :: _ ->
    let* i = QG.int_range 0 (List.length candidates - 1) in
    QG.return
      (Some
         (Whynot_core.Whynot.make_exn ~instance:inst ~query:q
            ~missing:(List.nth candidates i) ()))

(* ------------------------------------------------------------------ *)
(* Wire-protocol JSON                                                  *)
(* ------------------------------------------------------------------ *)

module Wjson = Whynot.Json

(* Strings over the full byte range: quotes, backslashes, control
   characters (the encoder escapes them as \u00XX) and high bytes (which
   travel raw). *)
let wire_string =
  let wire_char =
    QG.frequency
      [
        (8, QG.char_range 'a' 'z');
        (2, QG.oneofl [ '"'; '\\'; '/'; '\n'; '\t'; '\r'; ' ' ]);
        (1, QG.map Char.chr (QG.int_range 0 31));
        (1, QG.map Char.chr (QG.int_range 128 255));
      ]
  in
  QG.string_size ~gen:wire_char (QG.int_range 0 10)

(* Finite floats only (JSON has no NaN/infinity), mixing integral values
   (printed "%.1f") with fractional ones (printed "%.17g"). *)
let wire_float =
  let* mantissa = QG.int_range (-1_000_000) 1_000_000 in
  let* scale = QG.oneofl [ 0.001; 0.25; 0.5; 1.; 3.; 1000. ] in
  QG.return (float_of_int mantissa *. scale)

let wire_scalar =
  QG.frequency
    [
      (2, QG.return Wjson.Null);
      (2, QG.map (fun b -> Wjson.Bool b) QG.bool);
      (4, QG.map (fun n -> Wjson.Int n) QG.int);
      (2, QG.map (fun x -> Wjson.Float x) wire_float);
      (4, QG.map (fun s -> Wjson.String s) wire_string);
    ]

let wire_json =
  let node self depth =
    if depth <= 0 then wire_scalar
    else
      QG.frequency
        [
          (3, wire_scalar);
          ( 1,
            QG.map
              (fun xs -> Wjson.List xs)
              (QG.list_size (QG.int_range 0 4) (self (depth - 1))) );
          ( 1,
            QG.map
              (fun fields -> Wjson.Obj fields)
              (QG.list_size (QG.int_range 0 4)
                 (QG.pair wire_string (self (depth - 1)))) );
        ]
  in
  let rec self depth = node self depth in
  self 4

let wire_envelope =
  (* Half the draws are arbitrary JSON documents, half are shaped like the
     server's schema_version-3 envelopes (headers + result/error). *)
  let envelope =
    let* op = QG.oneofl [ "create"; "question"; "one_mge"; "stats"; "close" ] in
    let* session = QG.oneofl [ "s1"; "bench-0"; "a b"; "" ] in
    let* id = wire_scalar in
    let* payload = wire_json in
    let* is_error = QG.bool in
    QG.return
      (Wjson.Obj
         [
           ("schema_version", Wjson.Int 3);
           ("op", Wjson.String op);
           ("session", Wjson.String session);
           ("id", id);
           (if is_error then
              ( "error",
                Wjson.Obj
                  [
                    ("code", Wjson.String "timeout");
                    ("message", Wjson.String "the operation exceeded its deadline");
                  ] )
            else ("result", payload));
         ])
  in
  QG.frequency [ (1, envelope); (1, wire_json) ]
