type entry = {
  prop : string;
  seed : int;
  count : int;
}

let entry_to_line e =
  Printf.sprintf "prop=%s seed=%d count=%d" e.prop e.seed e.count

let entry_of_line line =
  let line = String.trim line in
  if line = "" || String.length line > 0 && line.[0] = '#' then Ok None
  else
    let fields =
      String.split_on_char ' ' line
      |> List.filter (fun s -> s <> "")
      |> List.filter_map (fun tok ->
             match String.index_opt tok '=' with
             | None -> None
             | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) ))
    in
    let int_field k =
      match List.assoc_opt k fields with
      | None -> Error (Printf.sprintf "missing %s= in %S" k line)
      | Some v ->
        (match int_of_string_opt v with
         | Some n -> Ok n
         | None -> Error (Printf.sprintf "non-numeric %s= in %S" k line))
    in
    match List.assoc_opt "prop" fields with
    | None -> Error (Printf.sprintf "missing prop= in %S" line)
    | Some prop ->
      (match int_field "seed", int_field "count" with
       | Ok seed, Ok count -> Ok (Some { prop; seed; count })
       | Error e, _ | _, Error e -> Error e)

let load_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | lines ->
    let entries, errors =
      List.fold_left
        (fun (entries, errors) line ->
           match entry_of_line line with
           | Ok None -> (entries, errors)
           | Ok (Some e) -> (e :: entries, errors)
           | Error msg -> (entries, msg :: errors))
        ([], []) lines
    in
    (match errors with
     | [] -> Ok (List.rev entries)
     | _ :: _ ->
       Error
         (Printf.sprintf "%s: %s" path (String.concat "; " (List.rev errors))))

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then ([], [])
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.fold_left
         (fun (entries, errors) f ->
            match load_file (Filename.concat dir f) with
            | Ok es -> (entries @ es, errors)
            | Error msg -> (entries, errors @ [ msg ]))
         ([], [])

let sanitize prop =
  String.map (fun c -> if c = '/' || c = ' ' then '-' else c) prop

let save ~dir entry =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (sanitize entry.prop ^ ".repro") in
  let existed = Sys.file_exists path in
  Out_channel.with_open_gen
    [ Open_append; Open_creat; Open_text ]
    0o644 path
    (fun oc ->
       if not existed then
         Out_channel.output_string oc
           "# failure corpus entry — replayed by `dune runtest` and \
            `proptest_runner --replay`\n";
       Out_channel.output_string oc (entry_to_line entry);
       Out_channel.output_char oc '\n');
  path
