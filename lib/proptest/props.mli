(** The differential-property registry.

    Each property pairs a generator from {!Gen} with a boolean check that
    cross-validates an optimised implementation against an independent
    oracle from {!Oracle} (or against a second implementation of the same
    function). The registry is consumed by the [proptest_runner]
    executable and by the [test_prop] alcotest suite; both run every
    property from an explicit seed, so failures are reproducible by
    [(name, seed, count)] alone — exactly what {!Corpus} persists.

    The oracle pairs (one property each unless noted):

    - Incremental (Alg. 2) vs Exhaustive (Alg. 1) MGE computation over the
      materialised ontology [O_I[K]], plus [check_mge] cross-validation.
    - Incremental with selections: explanation-hood, [check_mge], and
      dominance over the trivial nominal explanation.
    - [Subsume_schema.decide] vs extension inclusion on random legal
      instances (soundness) and vs completeness per Table-1 class.
    - [Subsume_schema.decide] vs the syntactic characterisation of
      selection-free, no-constraints subsumption (exact equivalence).
    - [Lub.lub] vs brute-force enumeration of all selection-free upper
      bounds (leastness).
    - [Lub.lub_sigma] vs single-condition upper bounds and vs [Lub.lub].
    - DL-Lite [Reasoner] saturation vs random finite models (soundness).
    - DL-Lite [Reasoner] saturation vs the [Canonical] model
      (completeness).
    - OBDA [Induced.extension] vs a direct positive chase of the retrieved
      assertions.
    - [Irredundant] vs exhaustive subset search over conjuncts.
    - [Containment.cq_in_cq] vs the canonical-database homomorphism test
      (comparison-free fragment), and soundness on sampled instances with
      comparisons.
    - The {!Whynot_concept.Subsume_memo} layer vs the cache-free deciders:
      cached [⊑_I] vs [Subsume_inst.naive_subsumes] (including the
      guaranteed-hit replay and the cached extension), and cached [⊑_S]
      vs the uncached [Subsume_schema.decide] oracle.
    - Text [Parser] vs {!Surface} printer: concept, document and value
      round-trips. *)

type t = {
  name : string;  (** e.g. ["lub/least-vs-enumeration"] *)
  default_count : int;  (** generations per run when the caller has no
                            opinion — tuned so the whole registry stays
                            fast enough for [dune runtest] *)
  make : count:int -> QCheck2.Test.t;
}

val all : t list

val names : string list

val find : string -> t option

val default_seed : int
(** The seed both the test-suite and the runner default to ([20250806]).
    Override with [PROPTEST_SEED] (suite) or [--seed] (runner). *)

val run : ?count:int -> seed:int -> t -> (unit, string) result
(** Run the property with the given seed; [Error] carries the printed
    counterexample (after shrinking) or the raised exception. *)
