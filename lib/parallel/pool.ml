module Obs = Whynot_obs.Obs

let c_runs =
  Obs.counter "parallel.pool.runs" ~doc:"batches distributed over the pool"

let c_items =
  Obs.counter "parallel.pool.items" ~doc:"work items processed by the pool"

(* One batch of work. Workers pull indices from [next] until it passes [n];
   whoever completes the last index signals the pool's [done_cv]. *)
type job = {
  n : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  f : int -> int -> unit;  (* worker slot -> item index -> unit *)
  first_error : exn option Atomic.t;
}

type t = {
  size : int;
  lock : Mutex.t;
  work_cv : Condition.t;  (* workers wait here between batches *)
  done_cv : Condition.t;  (* the caller waits here for batch completion *)
  mutable current : (int * job) option;  (* (epoch, job) *)
  mutable epoch : int;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let record_error job exn =
  ignore (Atomic.compare_and_set job.first_error None (Some exn))

(* Drain the shared cursor. Safe to call from several domains at once; the
   caller participates through the same path as the spawned workers. *)
let drain pool worker job =
  let rec pull () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try job.f worker i with exn -> record_error job exn);
      Obs.incr c_items;
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.n then
        Mutex.protect pool.lock (fun () -> Condition.broadcast pool.done_cv);
      pull ()
    end
  in
  pull ()

let worker_loop pool worker =
  let last_epoch = ref 0 in
  let rec loop () =
    let action =
      Mutex.protect pool.lock (fun () ->
          let rec wait () =
            if pool.closing then `Stop
            else
              match pool.current with
              | Some (epoch, job) when epoch <> !last_epoch ->
                last_epoch := epoch;
                `Run job
              | _ ->
                Condition.wait pool.work_cv pool.lock;
                wait ()
          in
          wait ())
    in
    match action with
    | `Stop -> ()
    | `Run job ->
      drain pool worker job;
      loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      size = domains;
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      epoch = 0;
      closing = false;
      domains = [];
    }
  in
  pool.domains <-
    List.init (domains - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop pool (k + 1)));
  pool

let size t = t.size

let run t ~n f =
  if n > 0 then begin
    Obs.incr c_runs;
    if t.size = 1 then begin
      (* No workers: plain loop, exceptions propagate directly. *)
      for i = 0 to n - 1 do
        f ~worker:0 i
      done;
      Obs.add c_items n
    end
    else begin
      let job =
        {
          n;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          f = (fun w i -> f ~worker:w i);
          first_error = Atomic.make None;
        }
      in
      Mutex.protect t.lock (fun () ->
          t.epoch <- t.epoch + 1;
          t.current <- Some (t.epoch, job);
          Condition.broadcast t.work_cv);
      drain t 0 job;
      Mutex.protect t.lock (fun () ->
          while Atomic.get job.completed < n do
            Condition.wait t.done_cv t.lock
          done);
      match Atomic.get job.first_error with
      | Some exn -> raise exn
      | None -> ()
    end
  end

let close t =
  let domains =
    Mutex.protect t.lock (fun () ->
        t.closing <- true;
        Condition.broadcast t.work_cv;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join domains
