(** Algorithm 2 (Incremental Search) over a domain pool, by speculative
    batch evaluation.

    The sequential algorithm folds absorption attempts through a single
    evolving state, so it cannot be partitioned; instead, the next K
    pending attempts are evaluated concurrently against a frozen snapshot
    and their verdicts replayed in schedule order, discarding everything
    after the first acceptance. The computed explanation is bit-identical
    to [Whynot_core.Incremental.one_mge] for every pool size and both lub
    variants; only the number of (memoised) evaluations differs.

    [ctx ~worker:w] must return the evaluation context for worker slot
    [w]; slot [0] is the caller's context and its handle receives the
    authoritative state. Worker contexts must wrap domain-private memo
    handles ({!Whynot_concept.Subsume_memo.private_inst}); merge them back
    with [Subsume_memo.absorb_inst] when the pool retires. The callback is
    invoked at most once per slot, from that slot's own domain. *)

val one_mge :
  Pool.t ->
  ctx:(worker:int -> Whynot_core.Incremental.Step.ctx) ->
  ?order:[ `Ascending | `Descending ] ->
  ?shorten:bool ->
  Whynot_core.Whynot.t ->
  Whynot_concept.Ls.t Whynot_core.Explanation.t
(** Same contract (and same result) as [Incremental.one_mge]; the variant
    is fixed by the contexts the factory returns. *)
