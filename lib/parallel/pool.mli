(** A persistent pool of worker domains for the parallel MGE search.

    The pool spawns its domains once and reuses them across runs, so the
    per-run cost is a mutex handshake rather than a [Domain.spawn] (which
    is far too slow to amortise over a single lattice sweep). The calling
    domain participates as worker [0]; a pool created with [~domains:1]
    spawns nothing and degenerates to a plain sequential loop, which is
    what makes [DOMAINS=1] runs bit-identical to the sequential engine.

    Work distribution is a shared atomic cursor over [0 .. n-1]: idle
    workers steal the next undone index, so uneven item costs balance
    without any static partitioning. Determinism is the {e caller's}
    affair — [run] guarantees only that every index is processed exactly
    once and that all effects of the run happen-before [run] returns. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains.
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Total number of participating domains, including the caller. *)

val run : t -> n:int -> (worker:int -> int -> unit) -> unit
(** [run t ~n f] calls [f ~worker i] exactly once for every
    [i ∈ 0 .. n-1], distributing indices over the pool; [worker] is the
    stable slot (in [0 .. size-1]) of the domain executing the call, so
    callers can keep per-worker scratch state (memo handles, contexts)
    indexed by it. Blocks until all [n] indices are done. If any [f]
    raises, the first exception (in completion order) is re-raised here
    after the run drains; the others are dropped. Runs must not be nested
    or issued concurrently. *)

val close : t -> unit
(** Shut the workers down and join them. Idempotent; the pool must not be
    used afterwards. *)
