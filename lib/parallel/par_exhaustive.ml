open Whynot_relational
open Whynot_core
module Obs = Whynot_obs.Obs
module Int_set = Exhaustive.Int_set

let c_plan_items =
  Obs.counter "parallel.exhaustive.plan_items"
    ~doc:"(position, concept) membership/kill-set items evaluated in parallel"

let c_tuples =
  Obs.counter "parallel.exhaustive.tuples"
    ~doc:"candidate explanation tuples examined by the parallel sweep"

let c_blocks =
  Obs.counter "parallel.exhaustive.blocks"
    ~doc:"first-position candidate blocks distributed over the pool"

let infinite o =
  Error
    (`Infinite_ontology
       ("Par_exhaustive: ontology " ^ o.Ontology.name ^ " is not finite"))

(* Per-worker ontology slots, created lazily. A slot is only ever touched by
   its own domain (a pool worker processes its items sequentially), so no
   locking is needed. *)
let make_slots pool ~ontology =
  let slots = Array.make (Pool.size pool) None in
  fun w ->
    match slots.(w) with
    | Some o -> o
    | None ->
      let o = ontology ~worker:w in
      slots.(w) <- Some o;
      o

(* --- plan construction ---

   Stage 1 fans the (position, concept) grid out over the pool: each item
   answers "is this concept a candidate here, and which answer tuples does
   it kill?". Collection then walks the grid in concept order, which is by
   construction the order [Exhaustive.candidates] produces. *)

let build_positions pool get_o ~prune wn concepts =
  let cs = Array.of_list concepts in
  let nc = Array.length cs in
  let missing = Array.of_list (Whynot.missing_values wn) in
  let m = Array.length missing in
  let answers = Array.of_list (Relation.to_list wn.Whynot.answers) in
  let n_answers = Array.length answers in
  let grid = Array.make (m * nc) None in
  Pool.run pool ~n:(m * nc) (fun ~worker idx ->
      Obs.incr c_plan_items;
      let o = get_o worker in
      let pos = idx / nc and ci = idx mod nc in
      let c = cs.(ci) in
      if o.Ontology.mem c missing.(pos) then begin
        let ks = ref Int_set.empty in
        for i = 0 to n_answers - 1 do
          if not (o.Ontology.mem c (Tuple.get answers.(i) (pos + 1))) then
            ks := Int_set.add i !ks
        done;
        grid.(idx) <- Some (c, !ks)
      end);
  let positions =
    Array.init m (fun pos ->
        let acc = ref [] in
        for ci = nc - 1 downto 0 do
          match grid.((pos * nc) + ci) with
          | Some ck -> acc := ck :: !acc
          | None -> ()
        done;
        Array.of_list !acc)
  in
  if not prune then positions
  else begin
    (* Dominated-candidate preprocessing, in parallel over the kept
       candidates; each verdict only reads the (immutable) per-position
       array, so the filtered result is independent of scheduling. *)
    let offsets = Array.make (m + 1) 0 in
    for pos = 0 to m - 1 do
      offsets.(pos + 1) <- offsets.(pos) + Array.length positions.(pos)
    done;
    let total = offsets.(m) in
    let keep = Array.make total true in
    Pool.run pool ~n:total (fun ~worker idx ->
        let o = get_o worker in
        let pos = ref 0 in
        while offsets.(!pos + 1) <= idx do incr pos done;
        let arr = positions.(!pos) in
        let c, ks = arr.(idx - offsets.(!pos)) in
        let dominated =
          Array.exists
            (fun (c', ks') ->
               (not (o.Ontology.equal c c'))
               && o.Ontology.subsumes c c'
               && (not (o.Ontology.subsumes c' c))
               && Int_set.subset ks ks')
            arr
        in
        if dominated then keep.(idx) <- false);
    Array.mapi
      (fun pos arr ->
         let kept = ref [] in
         for k = Array.length arr - 1 downto 0 do
           if keep.(offsets.(pos) + k) then kept := arr.(k) :: !kept
         done;
         Array.of_list !kept)
      positions
  end

let all_answer_ids wn =
  Int_set.of_list
    (List.init (Relation.cardinal wn.Whynot.answers) (fun i -> i))

(* --- ALL-MGES ---

   The candidate product is partitioned into blocks, one per first-position
   candidate; a block enumerates its sub-product depth-first in the same
   order as the sequential [product_fold]. The sequential accumulator pushes
   each explanation onto a list, so its final order is blocks reversed with
   each block's hits reversed — reproduced exactly below, after which the
   maximality filter (parallel, order-independent) and the equivalence dedup
   (sequential, first representative in list order wins) match
   [Exhaustive.keep_most_general] verbatim. *)

let all_mges pool ~ontology ?(prune = true) wn =
  let get_o = make_slots pool ~ontology in
  let o0 = get_o 0 in
  match o0.Ontology.concepts with
  | None -> infinite o0
  | Some concepts ->
    let positions = build_positions pool get_o ~prune wn concepts in
    let m = Array.length positions in
    let all = all_answer_ids wn in
    let explanations =
      if m = 0 then if Int_set.is_empty all then [ [] ] else []
      else begin
        let first = positions.(0) in
        let rest = Array.sub positions 1 (m - 1) in
        let n_rest = Array.length rest in
        let blocks = Array.make (Array.length first) [] in
        Pool.run pool ~n:(Array.length first) (fun ~worker:_ bi ->
            Obs.incr c_blocks;
            let c0, ks0 = first.(bi) in
            let acc = ref [] in
            let rec go killed chosen p =
              if p = n_rest then begin
                Obs.incr c_tuples;
                if Int_set.equal killed all then acc := List.rev chosen :: !acc
              end
              else
                Array.iter
                  (fun (c, ks) ->
                     go (Int_set.union killed ks) (c :: chosen) (p + 1))
                  rest.(p)
            in
            go ks0 [ c0 ] 0;
            blocks.(bi) <- !acc);
        List.concat (List.rev (Array.to_list blocks))
      end
    in
    (* Maximality is a per-explanation predicate against the full list —
       embarrassingly parallel; each worker compares through its own
       ontology handle. *)
    let arr = Array.of_list explanations in
    let keep = Array.make (Array.length arr) true in
    Pool.run pool ~n:(Array.length arr) (fun ~worker idx ->
        let o = get_o worker in
        let e = arr.(idx) in
        if
          Array.exists
            (fun e' -> Explanation.strictly_less_general o e e')
            arr
        then keep.(idx) <- false);
    let maximal = ref [] in
    for i = Array.length arr - 1 downto 0 do
      if keep.(i) then maximal := arr.(i) :: !maximal
    done;
    (* Equivalence dedup stays sequential: which representative survives
       depends on list order, and the contract is "exactly the sequential
       MGE set". *)
    Ok
      (List.rev
         (List.fold_left
            (fun acc e ->
               if List.exists (fun e' -> Explanation.equivalent o0 e e') acc
               then acc
               else e :: acc)
            [] !maximal))

(* --- EXISTENCE ---

   Boolean, hence order-independent: first-position candidates are searched
   as independent blocks with the same suffix-reach pruning rule as the
   sequential version, plus a shared early-exit flag. *)

let exists_explanation pool ~ontology wn =
  let get_o = make_slots pool ~ontology in
  let o0 = get_o 0 in
  match o0.Ontology.concepts with
  | None -> infinite o0
  | Some concepts ->
    let positions = build_positions pool get_o ~prune:false wn concepts in
    let m = Array.length positions in
    let all = all_answer_ids wn in
    if Array.exists (fun arr -> Array.length arr = 0) positions then Ok false
    else if m = 0 then Ok (Int_set.is_empty all)
    else begin
      let rest = Array.sub positions 1 (m - 1) in
      let n_rest = Array.length rest in
      (* reach.(p) = everything positions p.. of [rest] can still kill *)
      let reach = Array.make (n_rest + 1) Int_set.empty in
      for p = n_rest - 1 downto 0 do
        reach.(p) <-
          Array.fold_left
            (fun s (_, ks) -> Int_set.union s ks)
            reach.(p + 1) rest.(p)
      done;
      let found = Atomic.make false in
      Pool.run pool ~n:(Array.length positions.(0)) (fun ~worker:_ bi ->
          if not (Atomic.get found) then begin
            let _, ks0 = positions.(0).(bi) in
            let rec search killed p =
              (not (Atomic.get found))
              &&
              if p = n_rest then Int_set.equal killed all
              else
                Int_set.subset (Int_set.diff all killed) reach.(p)
                && Array.exists
                     (fun (_, ks) -> search (Int_set.union killed ks) (p + 1))
                     rest.(p)
            in
            if search ks0 0 then Atomic.set found true
          end);
      Ok (Atomic.get found)
    end

(* --- ONE-MGE ---

   Each block finds the first solution of its sub-product in product order;
   the lowest-numbered block that holds any solution holds the sequential
   algorithm's solution, so taking the minimum block index and climbing from
   its witness reproduces the sequential answer exactly. Blocks above the
   current best abort early. *)

exception Outbid

let one_mge pool ~ontology wn =
  let get_o = make_slots pool ~ontology in
  let o0 = get_o 0 in
  match o0.Ontology.concepts with
  | None -> infinite o0
  | Some concepts ->
    let positions = build_positions pool get_o ~prune:false wn concepts in
    let m = Array.length positions in
    let all = all_answer_ids wn in
    if Array.exists (fun arr -> Array.length arr = 0) positions then Ok None
    else if m = 0 then
      Ok (if Int_set.is_empty all then Some [] else None)
    else begin
      let n_blocks = Array.length positions.(0) in
      let rest = Array.sub positions 1 (m - 1) in
      let n_rest = Array.length rest in
      let witnesses = Array.make n_blocks None in
      let best = Atomic.make n_blocks in
      let rec lower_best bi =
        let cur = Atomic.get best in
        if bi < cur && not (Atomic.compare_and_set best cur bi) then
          lower_best bi
      in
      Pool.run pool ~n:n_blocks (fun ~worker:_ bi ->
          if bi < Atomic.get best then begin
            let c0, ks0 = positions.(0).(bi) in
            let rec search killed chosen p =
              if bi >= Atomic.get best then raise Outbid;
              if p = n_rest then
                if Int_set.equal killed all then Some (List.rev chosen)
                else None
              else
                Array.fold_left
                  (fun found (c, ks) ->
                     match found with
                     | Some _ -> found
                     | None ->
                       search (Int_set.union killed ks) (c :: chosen) (p + 1))
                  None rest.(p)
            in
            match search ks0 [ c0 ] 0 with
            | Some e ->
              witnesses.(bi) <- Some e;
              lower_best bi
            | None -> ()
            | exception Outbid -> ()
          end);
      let rec first bi =
        if bi >= n_blocks then None
        else
          match witnesses.(bi) with
          | Some e -> Some e
          | None -> first (bi + 1)
      in
      Ok (Option.map (Exhaustive.generalise_exn o0 wn) (first 0))
    end
