open Whynot_core
module Step = Incremental.Step
module Obs = Whynot_obs.Obs

let c_batches =
  Obs.counter "parallel.incremental.batches"
    ~doc:"speculative absorption batches distributed over the pool"

let c_wasted =
  Obs.counter "parallel.incremental.wasted"
    ~doc:"speculative absorption verdicts discarded after a commit"

(* Per-worker contexts, created lazily from the caller's factory; a slot is
   only touched by its own domain. Slot 0 is the caller's shared context. *)
let make_slots pool ~ctx =
  let slots = Array.make (Pool.size pool) None in
  fun w ->
    match slots.(w) with
    | Some c -> c
    | None ->
      let c = ctx ~worker:w in
      slots.(w) <- Some c;
      c

(* Algorithm 2 is a fold over absorption attempts, so it parallelises by
   speculation rather than by partitioning: evaluate the next K pending
   attempts concurrently against a frozen state snapshot, then replay the
   verdicts in schedule order. Until the first acceptance the state is
   unchanged, so every replayed verdict is exactly the one the sequential
   loop would have computed; at the first acceptance the remaining verdicts
   are stale and are thrown away, and the schedule resumes just after the
   accepted attempt. The result is therefore bit-identical to
   [Incremental.one_mge] for every pool size — only the number of
   (idempotent, memoised) evaluations differs, tracked by
   [parallel.incremental.wasted].

   The skip test is monotone — a constant covered by a position's concept
   stays covered as the support grows — so attempts consumed as covered
   during batch collection never need re-offering.

   The batch size adapts to the acceptance pattern (which is deterministic):
   accepts reset it to the pool size, a fully rejected batch doubles it, so
   the quiet tail of the schedule — where almost everything is rejected —
   runs at full width while the accept-heavy start wastes little. *)

let one_mge pool ~ctx ?(order = `Ascending) ?(shorten = true) wn =
  let get_ctx = make_slots pool ~ctx in
  let main_ctx = get_ctx 0 in
  let st = Step.init main_ctx in
  let attempts = Array.of_list (Step.attempts ~order wn) in
  let n = Array.length attempts in
  let size = Pool.size pool in
  let max_batch = 8 * size in
  let batch = Array.make max_batch 0 in
  let results = Array.make max_batch None in
  let batch_size = ref size in
  let pos = ref 0 in
  while !pos < n do
    let k = ref 0 in
    while !k < !batch_size && !pos < n do
      let a = attempts.(!pos) in
      incr pos;
      if not (Step.covered main_ctx st a) then begin
        batch.(!k) <- !pos - 1;
        incr k
      end
    done;
    let k = !k in
    if k > 0 then begin
      Obs.incr c_batches;
      Array.fill results 0 k None;
      Pool.run pool ~n:k (fun ~worker i ->
          results.(i) <- Step.evaluate (get_ctx worker) st attempts.(batch.(i)));
      let committed = ref false in
      let i = ref 0 in
      while (not !committed) && !i < k do
        (match results.(!i) with
         | Some upd ->
           let j, _ = attempts.(batch.(!i)) in
           Step.commit st j upd;
           committed := true;
           Obs.add c_wasted (k - !i - 1);
           pos := batch.(!i) + 1
         | None -> ());
        incr i
      done;
      batch_size :=
        if !committed then size else min max_batch (2 * !batch_size)
    end
  done;
  let e = Step.finish main_ctx st in
  if shorten then Step.shorten_explanation main_ctx e else e
