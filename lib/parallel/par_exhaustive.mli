(** Algorithm 1 (Exhaustive Search) over a domain pool.

    The candidate lattice is explored in three parallel stages — the
    (position, concept) candidate/kill-set grid, the per-first-candidate
    blocks of the candidate product, and the maximality filter — followed
    by a deterministic merge that reproduces the sequential result
    {e exactly}: the block hits are re-concatenated in the order the
    sequential accumulator would have produced, and the equivalence dedup
    (whose surviving representative depends on list order) stays
    sequential. Consequently every function here agrees with its
    [Whynot_core.Exhaustive] counterpart for every pool size, which is
    what differential property #18 checks.

    [ontology ~worker:w] must return an ontology usable from worker slot
    [w]; slot [0] runs on the calling domain. The slots may share
    immutable structure (in particular the concept list, which fixes the
    candidate order) but each must answer [mem]/[subsumes] through
    domain-private mutable state — see
    {!Whynot_concept.Subsume_memo.private_inst}. The callback is invoked
    at most once per slot, from that slot's own domain. *)

open Whynot_core

val all_mges :
  Pool.t ->
  ontology:(worker:int -> 'c Ontology.t) ->
  ?prune:bool ->
  Whynot.t ->
  ('c Explanation.t list, Whynot_error.t) result
(** Same result (same list, same order) as [Exhaustive.all_mges] — or as
    [Exhaustive.all_mges_unpruned] when [prune:false]. *)

val exists_explanation :
  Pool.t ->
  ontology:(worker:int -> 'c Ontology.t) ->
  Whynot.t ->
  (bool, Whynot_error.t) result
(** Same verdict as [Exhaustive.exists_explanation]; first-position blocks
    are searched concurrently with a shared early-exit flag. *)

val one_mge :
  Pool.t ->
  ontology:(worker:int -> 'c Ontology.t) ->
  Whynot.t ->
  ('c Explanation.t option, Whynot_error.t) result
(** Same explanation as [Exhaustive.one_mge]: the lowest-numbered block
    holding any solution holds the sequential witness, and later blocks
    abort as soon as an earlier one reports. *)
