(* Command-line interface: load a why-not document (schema, facts, query,
   why-not tuple, optional ontologies) and explain the missing tuple.

   See `examples/data/cities.whynot` for the input format, and the Parser
   module documentation for the grammar. *)

open Cmdliner
open Whynot_relational
open Whynot_core

let load path =
  match Whynot_text.Parser.parse_file path with
  | Ok doc -> Ok doc
  | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg))

let or_die = function
  | Ok v -> v
  | Error (`Msg msg) ->
    Format.eprintf "error: %s@." msg;
    exit 1

let msg_of_string r = Result.map_error (fun m -> `Msg m) r

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"After the command, print the engine's observability \
                 counters (subsumption calls vs cache hits, canonical \
                 instantiations, chase steps, candidates explored, ...).")

let dump_stats stats =
  if stats then Format.printf "@.-- stats --@.%a" Whynot_obs.Obs.pp ()

(* --- check --- *)

let check_cmd =
  let run path =
    let doc = or_die (load path) in
    let schema = or_die (msg_of_string (Whynot_text.Parser.schema_of doc)) in
    Format.printf "schema: %d relation(s), %d FD(s), %d IND(s), %d view(s)@."
      (List.length (Schema.relations schema))
      (List.length (Schema.fds schema))
      (List.length (Schema.inds schema))
      (List.length (Whynot_relational.View.defs (Schema.views schema)));
    let inst = Whynot_text.Parser.instance_of doc in
    Format.printf "instance: %d fact(s), %d constant(s) in the active domain@."
      (Instance.fact_count inst)
      (Value_set.cardinal (Instance.adom inst));
    (match Schema.satisfies schema inst with
     | Ok () -> Format.printf "integrity constraints: satisfied@."
     | Error msg -> Format.printf "integrity constraints: VIOLATED (%s)@." msg);
    (match Whynot_text.Parser.whynot_of doc with
     | Ok wn -> Format.printf "%a@." Whynot.pp wn
     | Error msg -> Format.printf "why-not question: %s@." msg);
    (match Whynot_text.Parser.hand_ontology_of doc with
     | Some o ->
       Format.printf "hand ontology: %d concept(s)@."
         (List.length (Option.value ~default:[] o.Ontology.concepts))
     | None -> ());
    match or_die (msg_of_string (Whynot_text.Parser.obda_spec_of doc)) with
    | Some spec ->
      Format.printf "OBDA: %d TBox axiom(s), %d mapping(s)@."
        (Whynot_dllite.Tbox.size (Whynot_obda.Spec.tbox spec))
        (List.length (Whynot_obda.Spec.mappings spec))
    | None -> ()
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a why-not document.")
    Term.(const run $ path)

(* --- answers --- *)

let answers_cmd =
  let run path =
    let doc = or_die (load path) in
    match doc.Whynot_text.Parser.query with
    | None -> or_die (Error (`Msg "no query in document"))
    | Some (name, q) ->
      let inst = Whynot_text.Parser.instance_of doc in
      let result = Cq.eval q inst in
      Format.printf "%s has %d answer(s):@." name (Relation.cardinal result);
      Relation.iter (fun t -> Format.printf "  %a@." Tuple.pp t) result
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "answers" ~doc:"Evaluate the document's query.")
    Term.(const run $ path)

(* --- explain --- *)

type ontology_choice =
  | Hand
  | Obda
  | From_instance
  | From_schema

let ontology_conv =
  Arg.enum
    [ ("hand", Hand); ("obda", Obda); ("instance", From_instance);
      ("schema", From_schema) ]

let explain_cmd =
  let run path choice selections all verbose stats =
    setup_logs verbose;
    let doc = or_die (load path) in
    let wn = or_die (msg_of_string (Whynot_text.Parser.whynot_of doc)) in
    let print_finite_mges (type c) (o : c Ontology.t) =
      let mges = Exhaustive.all_mges o wn in
      if mges = [] then Format.printf "no explanation exists@."
      else if all then
        List.iter
          (fun e -> Format.printf "MGE: %a@." (Explanation.pp o) e)
          mges
      else Format.printf "MGE: %a@." (Explanation.pp o) (List.hd mges)
    in
    (match choice with
     | Hand ->
       (match Whynot_text.Parser.hand_ontology_of doc with
        | None -> or_die (Error (`Msg "no hand ontology in document (ext items)"))
        | Some o -> print_finite_mges o)
     | Obda ->
       (match or_die (msg_of_string (Whynot_text.Parser.obda_spec_of doc)) with
        | None -> or_die (Error (`Msg "no OBDA specification in document"))
        | Some spec ->
          let induced =
            Whynot_obda.Induced.prepare spec wn.Whynot.instance
          in
          (match Whynot_obda.Induced.consistent induced with
           | Ok () -> ()
           | Error msg ->
             Format.printf "warning: retrieved assertions inconsistent: %s@." msg);
          print_finite_mges (Ontology.of_obda induced))
     | From_instance ->
       let variant =
         if selections then Incremental.With_selections
         else Incremental.Selection_free
       in
       let e = Incremental.one_mge ~variant wn in
       let o = Ontology.of_instance wn.Whynot.instance in
       Format.printf "MGE w.r.t. O_I: %a@." (Explanation.pp o) e
     | From_schema ->
       let schema =
         or_die (msg_of_string (Whynot_text.Parser.schema_of doc))
       in
       (match Schema_mge.one_mge `Minimal schema wn with
        | Some e ->
          let o = Schema_mge.ontology `Minimal schema wn in
          Format.printf "MGE w.r.t. O_S[K] (minimal fragment): %a@."
            (Explanation.pp o) e
        | None -> Format.printf "no explanation exists@."));
    dump_stats stats
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let choice =
    Arg.(value & opt ontology_conv From_instance
         & info [ "o"; "ontology" ]
             ~doc:"Ontology to explain with: $(b,hand), $(b,obda), \
                   $(b,instance) (O_I, default) or $(b,schema) (O_S).")
  in
  let selections =
    Arg.(value & flag
         & info [ "selections" ]
             ~doc:"With $(b,--ontology=instance): allow selections in \
                   concepts (Theorem 5.4 variant of Algorithm 2).")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"With finite ontologies: print every most-general \
                   explanation instead of one.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Compute most-general explanation(s) for the document's why-not \
             question.")
    Term.(const run $ path $ choice $ selections $ all $ verbose_arg
          $ stats_arg)

(* --- subsume --- *)

type wrt =
  | Wrt_instance
  | Wrt_schema

let subsume_cmd =
  let run path wrt c1_src c2_src verbose stats =
    setup_logs verbose;
    let doc = or_die (load path) in
    let parse src =
      or_die (msg_of_string (Whynot_text.Parser.concept_of_string doc src))
    in
    let c1 = parse c1_src and c2 = parse c2_src in
    let schema = or_die (msg_of_string (Whynot_text.Parser.schema_of doc)) in
    let inst = Whynot_text.Parser.instance_of doc in
    let pp_c = Whynot_concept.Ls.pp ~schema () in
    (match wrt with
     | Wrt_instance ->
       Format.printf "%a <=I %a : %b@." pp_c c1 pp_c c2
         (Whynot_concept.Subsume_inst.subsumes inst c1 c2)
     | Wrt_schema ->
       Format.printf "%a <=S %a : %a@." pp_c c1 pp_c c2
         Whynot_concept.Subsume_schema.pp_verdict
         (Whynot_concept.Subsume_schema.decide schema c1 c2));
    dump_stats stats
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let c1 = Arg.(required & pos 1 (some string) None & info [] ~docv:"CONCEPT1") in
  let c2 = Arg.(required & pos 2 (some string) None & info [] ~docv:"CONCEPT2") in
  let wrt =
    Arg.(value
         & opt (enum [ ("instance", Wrt_instance); ("schema", Wrt_schema) ])
             Wrt_instance
         & info [ "wrt" ]
             ~doc:"Compare w.r.t. the $(b,instance) (⊑_I, default) or the \
                   $(b,schema) (⊑_S).")
  in
  Cmd.v
    (Cmd.info "subsume"
       ~doc:"Decide concept subsumption, e.g. \
             'Cities.name[continent = \"Europe\"]' 'Cities.name'.")
    Term.(const run $ path $ wrt $ c1 $ c2 $ verbose_arg $ stats_arg)

(* --- why (the dual problem) --- *)

let why_cmd =
  let run path tuple_src selections stats =
    let doc = or_die (load path) in
    let witness =
      or_die (msg_of_string (Whynot_text.Parser.values_of_string tuple_src))
    in
    match doc.Whynot_text.Parser.query with
    | None -> or_die (Error (`Msg "no query in document"))
    | Some (_, q) ->
      let inst = Whynot_text.Parser.instance_of doc in
      let why =
        or_die
          (msg_of_string (Why.make ~instance:inst ~query:q ~witness ()))
      in
      let variant =
        if selections then Incremental.With_selections
        else Incremental.Selection_free
      in
      let e = Why.one_mge ~variant why in
      let o = Ontology.of_instance inst in
      Format.printf "most-general WHY explanation w.r.t. O_I: %a@."
        (Explanation.pp o) e;
      dump_stats stats
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let tuple =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TUPLE" ~doc:"e.g. '\"Amsterdam\", \"Rome\"'")
  in
  let selections =
    Arg.(value & flag & info [ "selections" ] ~doc:"Allow selections.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Explain why a tuple IS an answer (the dual problem, §7).")
    Term.(const run $ path $ tuple $ selections $ stats_arg)

(* --- provenance --- *)

let provenance_cmd =
  let run path tuple_src =
    let doc = or_die (load path) in
    let values =
      or_die (msg_of_string (Whynot_text.Parser.values_of_string tuple_src))
    in
    match doc.Whynot_text.Parser.query with
    | None -> or_die (Error (`Msg "no query in document"))
    | Some (name, q) ->
      let inst = Whynot_text.Parser.instance_of doc in
      let tuple = Tuple.of_list values in
      let ws = Provenance.witnesses q inst tuple in
      if ws = [] then
        Format.printf "%a is NOT an answer of %s — ask `explain` instead@."
          Tuple.pp tuple name
      else
        List.iteri
          (fun i w ->
             Format.printf "witness %d:@." (i + 1);
             List.iter
               (fun (rel, t) -> Format.printf "  %s%a@." rel Tuple.pp t)
               w.Provenance.facts;
             (* When the supporting facts are view tuples, also show one
                derivation down to the base facts. *)
             let schema =
               Result.to_option (Whynot_text.Parser.schema_of doc)
             in
             match schema with
             | None -> ()
             | Some schema ->
               let views = Schema.views schema in
               List.iter
                 (fun (rel, t) ->
                    if View.is_view views rel then
                      match Provenance.derive_one views inst rel t with
                      | Some d ->
                        Format.printf "  derivation:@.    %a@."
                          Provenance.pp_derivation d
                      | None -> ())
                 w.Provenance.facts)
          ws
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let tuple =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TUPLE")
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:"Show why-provenance (witnesses and derivations) for a tuple \
             that IS an answer.")
    Term.(const run $ path $ tuple)

(* --- eval (Datalog rules) --- *)

let eval_cmd =
  let run path =
    let doc = or_die (load path) in
    match or_die (msg_of_string (Whynot_text.Parser.program_of doc)) with
    | None -> or_die (Error (`Msg "no rule items in document"))
    | Some prog ->
      let inst = Whynot_text.Parser.instance_of doc in
      let out = Whynot_datalog.Program.eval prog inst in
      List.iter
        (fun p ->
           match Instance.relation out p with
           | None -> ()
           | Some r ->
             Format.printf "%s (%d tuple(s)):@." p (Relation.cardinal r);
             Relation.iter (fun t -> Format.printf "  %a@." Tuple.pp t) r)
        (Whynot_datalog.Program.idb_predicates prog)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate the document's Datalog rules (semi-naive, stratified \
             negation) and print the derived relations.")
    Term.(const run $ path)

let main =
  Cmd.group
    (Cmd.info "whynot" ~version:"1.0.0"
       ~doc:"High-level why-not explanations using ontologies (PODS 2015).")
    [ check_cmd; answers_cmd; explain_cmd; subsume_cmd; why_cmd; provenance_cmd; eval_cmd ]

let () = exit (Cmd.eval main)
