(* Command-line interface: load a why-not document (schema, facts, query,
   why-not tuple, optional ontologies) and explain the missing tuple
   through the [Whynot.Engine] facade.

   Every subcommand prints one JSON envelope on stdout,

     {"schema_version": 2, "command": "...", "result": ...}
     {"schema_version": 2, "command": "...", "error": {"code", "message"}}

   and exits 0 (ok), 1 (the question has no explanation / the tuple is not
   an answer), or 2 (error). Logs and --stats tables go to stderr so the
   envelope stays machine-readable.

   See `examples/data/cities.whynot` for the input format, and the Parser
   module documentation for the grammar. *)

(* Bind the facade before [open Whynot_core] shadows the [Whynot] name
   with the core question module. *)
module Engine = Whynot.Engine
module Json = Whynot.Json

open Cmdliner
open Whynot_relational
open Whynot_core
module Parser = Whynot_text.Parser

let ( let* ) = Result.bind

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ~app:Format.err_formatter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let dump_stats stats =
  if stats then Format.eprintf "@.-- stats --@.%a" Whynot_obs.Obs.pp ()

(* Run one subcommand body: [f ()] returns [Ok (result_json, exit_code)] or
   an engine error; either way exactly one envelope is printed. *)
let wrap command f =
  match f () with
  | Ok (result, code) ->
    print_endline (Json.to_string (Json.envelope ~command result));
    code
  | Error err ->
    print_endline (Json.to_string (Json.error_envelope ~command err));
    2

let json_of_value = function
  | Value.Int n -> Json.Int n
  | Value.Real x -> Json.Float x
  | Value.Str s -> Json.String s

let json_of_tuple t = Json.List (List.map json_of_value (Tuple.to_list t))

let json_of_explanation (o : _ Ontology.t) e =
  Json.List
    (List.map
       (fun c -> Json.String (Format.asprintf "%a" o.Ontology.pp c))
       e)

(* --- common flags --- *)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"After the command, print the engine's observability \
                 counters to stderr (subsumption calls vs cache hits, \
                 candidates explored, parallel batches, ...).")

let default_domains () =
  match Sys.getenv_opt "DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)
  | None -> 1

let domains_arg =
  Arg.(value & opt int (default_domains ())
       & info [ "domains" ] ~docv:"N"
           ~doc:"Worker domains for the parallel MGE search. Defaults to \
                 the $(b,DOMAINS) environment variable, else 1 (fully \
                 sequential). The answer is identical for every N.")

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* --- check --- *)

let check_cmd =
  let run path =
    wrap "check" @@ fun () ->
    let* doc = Parser.parse_file path in
    let* schema = Parser.schema_of doc in
    let inst = Parser.instance_of doc in
    let constraints =
      match Schema.satisfies schema inst with
      | Ok () -> Json.Obj [ ("satisfied", Json.Bool true) ]
      | Error msg ->
        Json.Obj
          [ ("satisfied", Json.Bool false); ("violation", Json.String msg) ]
    in
    let whynot =
      match Parser.whynot_of doc with
      | Ok wn -> Json.String (Format.asprintf "%a" Whynot.pp wn)
      | Error e -> Json.String (Whynot_error.to_string e)
    in
    let hand =
      match Parser.hand_ontology_of doc with
      | Some o ->
        Json.Int (List.length (Option.value ~default:[] o.Ontology.concepts))
      | None -> Json.Null
    in
    let* obda = Parser.obda_spec_of doc in
    let obda_json =
      match obda with
      | Some spec ->
        Json.Obj
          [
            ( "tbox_axioms",
              Json.Int (Whynot_dllite.Tbox.size (Whynot_obda.Spec.tbox spec)) );
            ( "mappings",
              Json.Int (List.length (Whynot_obda.Spec.mappings spec)) );
          ]
      | None -> Json.Null
    in
    Ok
      ( Json.Obj
          [
            ("relations", Json.Int (List.length (Schema.relations schema)));
            ("fds", Json.Int (List.length (Schema.fds schema)));
            ("inds", Json.Int (List.length (Schema.inds schema)));
            ( "views",
              Json.Int
                (List.length
                   (Whynot_relational.View.defs (Schema.views schema))) );
            ("facts", Json.Int (Instance.fact_count inst));
            ("adom", Json.Int (Value_set.cardinal (Instance.adom inst)));
            ("constraints", constraints);
            ("whynot", whynot);
            ("hand_ontology_concepts", hand);
            ("obda", obda_json);
          ],
        0 )
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a why-not document.")
    Term.(const run $ path_arg)

(* --- answers --- *)

let answers_cmd =
  let run path =
    wrap "answers" @@ fun () ->
    let* doc = Parser.parse_file path in
    match doc.Parser.query with
    | None -> Error (`Missing_input "no query in document")
    | Some (name, q) ->
      let inst = Parser.instance_of doc in
      let result = Cq.eval q inst in
      let tuples = ref [] in
      Relation.iter (fun t -> tuples := json_of_tuple t :: !tuples) result;
      Ok
        ( Json.Obj
            [
              ("query", Json.String name);
              ("count", Json.Int (Relation.cardinal result));
              ("answers", Json.List (List.rev !tuples));
            ],
          0 )
  in
  Cmd.v
    (Cmd.info "answers" ~doc:"Evaluate the document's query.")
    Term.(const run $ path_arg)

(* --- explain --- *)

type ontology_choice =
  | Hand
  | Obda
  | From_instance
  | From_schema

let ontology_conv =
  Arg.enum
    [ ("hand", Hand); ("obda", Obda); ("instance", From_instance);
      ("schema", From_schema) ]

let with_engine ?schema ~domains ~instance f =
  let* engine = Engine.create ?schema ~domains ~instance () in
  let finish r =
    let* () = Engine.close engine in
    r
  in
  match f engine with
  | r -> finish r
  | exception exn ->
    ignore (Engine.close engine);
    raise exn

let mges_result ~ontology_name ~domains o mges =
  Ok
    ( Json.Obj
        [
          ("ontology", Json.String ontology_name);
          ("domains", Json.Int domains);
          ("count", Json.Int (List.length mges));
          ("mges", Json.List (List.map (json_of_explanation o) mges));
        ],
      if mges = [] then 1 else 0 )

let explain_cmd =
  let run path choice selections all domains verbose stats =
    setup_logs verbose;
    let code =
      wrap "explain" @@ fun () ->
      let* doc = Parser.parse_file path in
      let* wn = Parser.whynot_of doc in
      let take mges = if all then mges else
          match mges with [] -> [] | e :: _ -> [ e ] in
      match choice with
      | Hand ->
        (match Parser.hand_ontology_of doc with
         | None ->
           Error (`Missing_input "no hand ontology in document (ext items)")
         | Some o ->
           with_engine ~domains ~instance:wn.Whynot.instance @@ fun engine ->
           let* mges = Engine.all_mges_finite engine o wn in
           mges_result ~ontology_name:"hand" ~domains o (take mges))
      | Obda ->
        let* obda = Parser.obda_spec_of doc in
        (match obda with
         | None -> Error (`Missing_input "no OBDA specification in document")
         | Some spec ->
           let induced =
             Whynot_obda.Induced.prepare spec wn.Whynot.instance
           in
           (match Whynot_obda.Induced.consistent induced with
            | Ok () -> ()
            | Error msg ->
              Format.eprintf
                "warning: retrieved assertions inconsistent: %s@." msg);
           let o = Ontology.of_obda induced in
           with_engine ~domains ~instance:wn.Whynot.instance @@ fun engine ->
           let* mges = Engine.all_mges_finite engine o wn in
           mges_result ~ontology_name:"O_B" ~domains o (take mges))
      | From_instance ->
        let variant =
          if selections then Incremental.With_selections
          else Incremental.Selection_free
        in
        with_engine ~domains ~instance:wn.Whynot.instance @@ fun engine ->
        let* e = Engine.one_mge ~variant engine wn in
        let o = Ontology.of_instance wn.Whynot.instance in
        Ok
          ( Json.Obj
              [
                ("ontology", Json.String "O_I");
                ("domains", Json.Int domains);
                ("count", Json.Int 1);
                ("mges", Json.List [ json_of_explanation o e ]);
              ],
            0 )
      | From_schema ->
        let* schema = Parser.schema_of doc in
        with_engine ~schema ~domains ~instance:wn.Whynot.instance
        @@ fun engine ->
        let* mges = Engine.all_mges_schema ~fragment:`Minimal engine wn in
        let o = Schema_mge.ontology `Minimal schema wn in
        mges_result ~ontology_name:"O_S[K]-min" ~domains o (take mges)
    in
    dump_stats stats;
    code
  in
  let choice =
    Arg.(value & opt ontology_conv From_instance
         & info [ "o"; "ontology" ]
             ~doc:"Ontology to explain with: $(b,hand), $(b,obda), \
                   $(b,instance) (O_I, default) or $(b,schema) (O_S).")
  in
  let selections =
    Arg.(value & flag
         & info [ "selections" ]
             ~doc:"With $(b,--ontology=instance): allow selections in \
                   concepts (Theorem 5.4 variant of Algorithm 2).")
  in
  let all =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"With finite ontologies: report every most-general \
                   explanation instead of one.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Compute most-general explanation(s) for the document's why-not \
             question. Exits 1 when no explanation exists.")
    Term.(const run $ path_arg $ choice $ selections $ all $ domains_arg
          $ verbose_arg $ stats_arg)

(* --- subsume --- *)

type wrt =
  | Wrt_instance
  | Wrt_schema

let subsume_cmd =
  let run path wrt c1_src c2_src verbose stats =
    setup_logs verbose;
    let code =
      wrap "subsume" @@ fun () ->
      let* doc = Parser.parse_file path in
      let* c1 = Parser.concept_of_string doc c1_src in
      let* c2 = Parser.concept_of_string doc c2_src in
      let* schema = Parser.schema_of doc in
      let inst = Parser.instance_of doc in
      let pp_c = Whynot_concept.Ls.pp ~schema () in
      let str_c c = Format.asprintf "%a" pp_c c in
      let wrt_name, verdict =
        match wrt with
        | Wrt_instance ->
          ( "instance",
            Json.Bool (Whynot_concept.Subsume_inst.subsumes inst c1 c2) )
        | Wrt_schema ->
          ( "schema",
            Json.String
              (Format.asprintf "%a" Whynot_concept.Subsume_schema.pp_verdict
                 (Whynot_concept.Subsume_schema.decide schema c1 c2)) )
      in
      Ok
        ( Json.Obj
            [
              ("c1", Json.String (str_c c1));
              ("c2", Json.String (str_c c2));
              ("wrt", Json.String wrt_name);
              ("verdict", verdict);
            ],
          0 )
    in
    dump_stats stats;
    code
  in
  let c1 = Arg.(required & pos 1 (some string) None & info [] ~docv:"CONCEPT1") in
  let c2 = Arg.(required & pos 2 (some string) None & info [] ~docv:"CONCEPT2") in
  let wrt =
    Arg.(value
         & opt (enum [ ("instance", Wrt_instance); ("schema", Wrt_schema) ])
             Wrt_instance
         & info [ "wrt" ]
             ~doc:"Compare w.r.t. the $(b,instance) (⊑_I, default) or the \
                   $(b,schema) (⊑_S).")
  in
  Cmd.v
    (Cmd.info "subsume"
       ~doc:"Decide concept subsumption, e.g. \
             'Cities.name[continent = \"Europe\"]' 'Cities.name'.")
    Term.(const run $ path_arg $ wrt $ c1 $ c2 $ verbose_arg $ stats_arg)

(* --- why (the dual problem) --- *)

let why_cmd =
  let run path tuple_src selections domains stats =
    let code =
      wrap "why" @@ fun () ->
      let* doc = Parser.parse_file path in
      let* witness = Parser.values_of_string tuple_src in
      match doc.Parser.query with
      | None -> Error (`Missing_input "no query in document")
      | Some (_, q) ->
        let inst = Parser.instance_of doc in
        let* why = Why.make ~instance:inst ~query:q ~witness () in
        let variant =
          if selections then Incremental.With_selections
          else Incremental.Selection_free
        in
        let e = Why.one_mge ~variant why in
        let o = Ontology.of_instance inst in
        Ok
          ( Json.Obj
              [
                ("witness", Json.List (List.map json_of_value witness));
                ("domains", Json.Int domains);
                ("explanation", json_of_explanation o e);
              ],
            0 )
    in
    dump_stats stats;
    code
  in
  let tuple =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TUPLE" ~doc:"e.g. '\"Amsterdam\", \"Rome\"'")
  in
  let selections =
    Arg.(value & flag & info [ "selections" ] ~doc:"Allow selections.")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Explain why a tuple IS an answer (the dual problem, §7).")
    Term.(const run $ path_arg $ tuple $ selections $ domains_arg $ stats_arg)

(* --- provenance --- *)

let provenance_cmd =
  let run path tuple_src =
    wrap "provenance" @@ fun () ->
    let* doc = Parser.parse_file path in
    let* values = Parser.values_of_string tuple_src in
    match doc.Parser.query with
    | None -> Error (`Missing_input "no query in document")
    | Some (name, q) ->
      let inst = Parser.instance_of doc in
      let tuple = Tuple.of_list values in
      let ws = Provenance.witnesses q inst tuple in
      let schema = Result.to_option (Parser.schema_of doc) in
      let witness_json w =
        Json.List
          (List.map
             (fun (rel, t) ->
                let base =
                  [ ("relation", Json.String rel); ("tuple", json_of_tuple t) ]
                in
                let derivation =
                  match schema with
                  | None -> []
                  | Some schema ->
                    let views = Schema.views schema in
                    if View.is_view views rel then
                      match Provenance.derive_one views inst rel t with
                      | Some d ->
                        [ ( "derivation",
                            Json.String
                              (Format.asprintf "%a" Provenance.pp_derivation d)
                          ) ]
                      | None -> []
                    else []
                in
                Json.Obj (base @ derivation))
             w.Provenance.facts)
      in
      Ok
        ( Json.Obj
            [
              ("query", Json.String name);
              ("tuple", Json.List (List.map json_of_value values));
              ("is_answer", Json.Bool (ws <> []));
              ("witnesses", Json.List (List.map witness_json ws));
            ],
          if ws = [] then 1 else 0 )
  in
  let tuple =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TUPLE")
  in
  Cmd.v
    (Cmd.info "provenance"
       ~doc:"Show why-provenance (witnesses and derivations) for a tuple \
             that IS an answer. Exits 1 when it is not an answer.")
    Term.(const run $ path_arg $ tuple)

(* --- eval (Datalog rules) --- *)

let eval_cmd =
  let run path =
    wrap "eval" @@ fun () ->
    let* doc = Parser.parse_file path in
    let* prog = Parser.program_of doc in
    match prog with
    | None -> Error (`Missing_input "no rule items in document")
    | Some prog ->
      let inst = Parser.instance_of doc in
      let out = Whynot_datalog.Program.eval prog inst in
      let relations =
        List.filter_map
          (fun p ->
             match Instance.relation out p with
             | None -> None
             | Some r ->
               let tuples = ref [] in
               Relation.iter (fun t -> tuples := json_of_tuple t :: !tuples) r;
               Some (p, Json.List (List.rev !tuples)))
          (Whynot_datalog.Program.idb_predicates prog)
      in
      Ok (Json.Obj [ ("relations", Json.Obj relations) ], 0)
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate the document's Datalog rules (semi-naive, stratified \
             negation) and print the derived relations.")
    Term.(const run $ path_arg)

let main =
  Cmd.group
    (Cmd.info "whynot" ~version:"2.0.0"
       ~doc:"High-level why-not explanations using ontologies (PODS 2015).")
    [ check_cmd; answers_cmd; explain_cmd; subsume_cmd; why_cmd;
      provenance_cmd; eval_cmd ]

let () = exit (Cmd.eval' main)
