(* Standalone driver for the differential property harness.

   Replays the committed failure corpus first, then runs the selected
   properties (all of them by default) from an explicit seed, so every
   reported failure is reproducible with

     proptest_runner --prop NAME --seed SEED --count COUNT

   and can be pinned forever with --save-failures, which appends the
   failing (prop, seed, count) triple to the corpus directory.

   Per-property PASS/FAIL progress goes to stderr; stdout carries exactly
   one versioned JSON envelope (the same shape the CLI emits), so CI can
   pipe the output straight into a JSON validator. Exit code is 0 on
   success and 2 on any failure. *)

module Props = Whynot_proptest.Props
module Corpus = Whynot_proptest.Corpus
module Json = Whynot.Json

let default_corpus_dir = "test/corpus"

let emit result =
  print_endline (Json.to_string (Json.envelope ~command:"proptest" result))

let () =
  let list_only = ref false in
  let seed = ref Props.default_seed in
  let count = ref None in
  let selected = ref [] in
  let corpus_dir = ref default_corpus_dir in
  let replay = ref true in
  let save_failures = ref false in
  let specs =
    [
      ("--list", Arg.Set list_only, " list registered properties and exit");
      ( "--seed",
        Arg.Set_int seed,
        Printf.sprintf "N random seed (default %d)" Props.default_seed );
      ( "--count",
        Arg.Int (fun n -> count := Some n),
        "N generations per property (default: per-property)" );
      ( "--prop",
        Arg.String (fun s -> selected := s :: !selected),
        "NAME run only this property (repeatable)" );
      ( "--corpus",
        Arg.Set_string corpus_dir,
        Printf.sprintf "DIR failure-corpus directory (default %s)"
          default_corpus_dir );
      ("--no-replay", Arg.Clear replay, " skip the corpus replay pass");
      ( "--save-failures",
        Arg.Set save_failures,
        " append failing (prop, seed, count) triples to the corpus" );
    ]
  in
  let usage = "proptest_runner [options]\n\nOptions:" in
  Arg.parse (Arg.align specs)
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    usage;
  if !list_only then begin
    emit
      (Json.Obj
         [
           ( "properties",
             Json.List
               (List.map
                  (fun (p : Props.t) ->
                     Json.Obj
                       [
                         ("name", Json.String p.Props.name);
                         ("default_count", Json.Int p.Props.default_count);
                       ])
                  Props.all) );
         ]);
    exit 0
  end;
  let props =
    match !selected with
    | [] -> Props.all
    | names ->
      List.rev_map
        (fun name ->
           match Props.find name with
           | Some p -> p
           | None ->
             Printf.eprintf "unknown property %S; try --list\n" name;
             exit 2)
        names
  in
  let failures = ref 0 in
  let failed_names = ref [] in
  let ran = ref 0 in
  let report name outcome =
    incr ran;
    match outcome with
    | Ok () -> Printf.eprintf "PASS %s\n%!" name
    | Error msg ->
      incr failures;
      failed_names := name :: !failed_names;
      Printf.eprintf "FAIL %s\n%s\n%!" name msg
  in
  if !replay then begin
    let entries, errors = Corpus.load_dir !corpus_dir in
    List.iter (Printf.eprintf "corpus: %s\n") errors;
    List.iter
      (fun (e : Corpus.entry) ->
         match Props.find e.Corpus.prop with
         | None ->
           Printf.eprintf "corpus: unknown property %S\n" e.Corpus.prop
         | Some p ->
           report
             (Printf.sprintf "replay %s seed=%d count=%d" e.Corpus.prop
                e.Corpus.seed e.Corpus.count)
             (Props.run ~count:e.Corpus.count ~seed:e.Corpus.seed p))
      entries
  end;
  List.iter
    (fun (p : Props.t) ->
       let outcome = Props.run ?count:!count ~seed:!seed p in
       (match outcome with
        | Error _ when !save_failures ->
          let entry =
            {
              Corpus.prop = p.Props.name;
              seed = !seed;
              count = Option.value !count ~default:p.Props.default_count;
            }
          in
          let path = Corpus.save ~dir:!corpus_dir entry in
          Printf.eprintf "saved %s\n%!" path
        | _ -> ());
       report p.Props.name outcome)
    props;
  emit
    (Json.Obj
       [
         ("ran", Json.Int !ran);
         ("failures", Json.Int !failures);
         ( "failed",
           Json.List
             (List.rev_map (fun n -> Json.String n) !failed_names) );
       ]);
  exit (if !failures = 0 then 0 else 2)
