(* Entry point of the why-not wire server. Flags are plain [Arg] (the
   CLI proper uses cmdliner; the server wants to stay bootable with zero
   extra linkage in minimal environments). *)

module Server = Whynot_server.Server

let () =
  let cfg = ref Server.default_config in
  let set f = Arg.Int (fun v -> cfg := f !cfg v) in
  let speclist =
    [
      ("--host", Arg.String (fun v -> cfg := { !cfg with host = v }),
       "ADDR bind address (default 127.0.0.1)");
      ("--port", set (fun c v -> { c with port = v }),
       "PORT listen port; 0 picks an ephemeral one (default 0)");
      ("--domains", set (fun c v -> { c with domains = v }),
       "N default worker domains per session (default 1)");
      ("--max-sessions", set (fun c v -> { c with max_sessions = v }),
       "N session-table capacity (default 64)");
      ("--max-conns", set (fun c v -> { c with max_conns = v }),
       "N concurrent connections (default 64)");
      ("--max-inflight", set (fun c v -> { c with max_inflight = v }),
       "N concurrently executing requests; excess is shed (default 16)");
      ("--max-requests", set (fun c v -> { c with max_requests_per_conn = v }),
       "N per-connection request budget (default 10000)");
      ("--max-line-bytes", set (fun c v -> { c with max_line_bytes = v }),
       "N request-line size cap (default 1MiB)");
      ("--deadline-ms", set (fun c v -> { c with default_deadline_ms = v }),
       "MS default per-request deadline; 0 disables (default 10000)");
      ("--max-deadline-ms", set (fun c v -> { c with max_deadline_ms = v }),
       "MS cap on client-chosen deadlines; 0 disables (default 60000)");
      ("--ttl-ms", set (fun c v -> { c with session_ttl_ms = v }),
       "MS idle-session eviction TTL; 0 disables (default 600000)");
      ("--sweep-ms", set (fun c v -> { c with sweep_interval_ms = v }),
       "MS TTL sweeper interval (default 1000)");
      ("--quiet", Arg.Unit (fun () -> cfg := { !cfg with access_log = false }),
       " disable the stderr access log");
      ("--debug-ops", Arg.Unit (fun () -> cfg := { !cfg with debug_ops = true }),
       " enable the debug_sleep op (tests only)");
    ]
  in
  let usage = "whynot_server [options]\nServe why-not explanations over TCP." in
  Arg.parse speclist
    (fun anon -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" anon)))
    usage;
  match Server.start !cfg with
  | Error msg ->
    Printf.eprintf "whynot-server: cannot start: %s\n%!" msg;
    exit 1
  | Ok server ->
    Server.install_signal_handlers server;
    (* The boot line goes to stdout so scripts can scrape the bound port
       even with --quiet. *)
    Printf.printf "whynot-server listening on %s:%d\n%!" (!cfg).host
      (Server.port server);
    Server.wait server;
    exit 0
