(** Concept subsumption with respect to an instance, [C1 ⊑_I C2]
    (§4.2): extension inclusion on the given instance. Decidable in
    polynomial time (Proposition 4.1). *)

open Whynot_relational

val subsumes : Instance.t -> Ls.t -> Ls.t -> bool
(** [subsumes inst c1 c2] iff [[[c1]]^I ⊆ [[c2]]^I]. *)

val strictly_subsumed : Instance.t -> Ls.t -> Ls.t -> bool
(** [strictly_subsumed inst c1 c2] iff [c1 ⊑_I c2] and not [c2 ⊑_I c1]. *)

val equivalent : Instance.t -> Ls.t -> Ls.t -> bool
