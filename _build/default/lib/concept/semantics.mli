(** The semantics [[C]]^I of [L_S] concepts (§4.2).

    The extension of [top] is the whole (infinite) constant domain, so
    extensions are represented as either [All] or a finite set. *)

open Whynot_relational

type ext =
  | All                    (** the whole domain [Const] — extension of [top] *)
  | Fin of Value_set.t

val ext_mem : Value.t -> ext -> bool
val ext_inter : ext -> ext -> ext
val ext_subset : ext -> ext -> bool
(** [All ⊆ Fin _] is [false]: the domain is infinite. *)

val ext_is_empty : ext -> bool
val ext_cardinality : ext -> int option
(** [None] for [All] (infinite). *)

val ext_equal : ext -> ext -> bool

val conjunct_ext : Ls.conjunct -> Instance.t -> ext
(** Always finite for [Proj] and [Nominal]. *)

val extension : Ls.t -> Instance.t -> ext
(** [[C]]^I. *)

val mem : Value.t -> Ls.t -> Instance.t -> bool
(** [mem c C I] iff [c ∈ [[C]]^I] — polynomial time, as required by the
    definition of an S-ontology (Definition 3.1). *)
