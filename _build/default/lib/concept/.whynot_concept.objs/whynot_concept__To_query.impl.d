lib/concept/to_query.ml: Cmp_op Cq List Ls Printf Schema Ucq View Whynot_relational
