lib/concept/lub.mli: Instance Ls Value_set Whynot_relational
