lib/concept/semantics.mli: Instance Ls Value Value_set Whynot_relational
