lib/concept/to_query.mli: Cq Ls Schema Ucq Whynot_relational
