lib/concept/subsume_schema.mli: Format Instance Ls Schema Whynot_relational
