lib/concept/count.mli: Instance Ls Schema Value_set Whynot_relational
