lib/concept/subsume_schema.ml: Containment Cq Fd Format Ind Instance Int List Logs Ls Option Relation Schema Semantics To_query Tuple Ucq Value Value_set Whynot_relational
