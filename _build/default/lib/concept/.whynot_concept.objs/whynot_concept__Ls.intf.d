lib/concept/ls.mli: Cmp_op Format Schema Value Value_set Whynot_relational
