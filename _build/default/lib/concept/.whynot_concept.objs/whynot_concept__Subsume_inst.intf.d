lib/concept/subsume_inst.mli: Instance Ls Whynot_relational
