lib/concept/semantics.ml: Instance List Ls Relation Value_set Whynot_relational
