lib/concept/ls.ml: Cmp_op Format Int Interval List Map Printf Schema Stdlib String Value Value_set Whynot_relational
