lib/concept/subsume_inst.ml: Semantics
