lib/concept/irredundant.mli: Instance Ls Whynot_relational
