lib/concept/count.ml: Float Instance List Ls Option Relation Schema Value_set Whynot_relational
