lib/concept/irredundant.ml: List Ls Semantics
