lib/concept/lub.ml: Instance Interval List Ls Relation Semantics Tuple Value Value_set Whynot_relational
