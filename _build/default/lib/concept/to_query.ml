open Whynot_relational

let head_var = "x0"

let is_pure c =
  List.for_all
    (function Ls.Nominal _ -> true | Ls.Proj _ -> false)
    (Ls.conjuncts c)

let query schema c =
  let atoms = ref [] in
  let comparisons = ref [] in
  List.iteri
    (fun i conjunct ->
       match conjunct with
       | Ls.Nominal v ->
         comparisons :=
           { Cq.subject = head_var; op = Cmp_op.Eq; value = v } :: !comparisons
       | Ls.Proj { rel; attr; sels } ->
         let arity =
           match Schema.arity schema rel with
           | Some k -> k
           | None ->
             invalid_arg
               (Printf.sprintf "To_query.query: undeclared relation %s" rel)
         in
         let var_of j =
           if j = attr then head_var else Printf.sprintf "c%d_%d" i j
         in
         let args = List.init arity (fun j -> Cq.Var (var_of (j + 1))) in
         atoms := { Cq.rel; args } :: !atoms;
         List.iter
           (fun (s : Ls.selection) ->
              comparisons :=
                { Cq.subject = var_of s.attr; op = s.op; value = s.value }
                :: !comparisons)
           sels)
    (Ls.conjuncts c);
  Cq.make ~head:[ Cq.Var head_var ] ~atoms:(List.rev !atoms)
    ~comparisons:(List.rev !comparisons) ()

let ucq schema c =
  View.unfold_ucq (Schema.views schema) (Ucq.of_cq (query schema c))
