open Whynot_relational

let positions schema = List.length (Schema.positions schema)

let count_minimal schema ~k = 1 + k + positions schema

(* Canonical intervals over k ordered constants: lower bound is -inf or
   open/closed at one of k constants (2k + 1 options), same for the upper
   bound, minus nothing — plus one canonical empty interval. Not all
   combinations are distinct as sets of values, but each is a distinct
   canonical form. *)
let intervals_per_attribute ~k = ((2 * k) + 1) * ((2 * k) + 1) + 1

let atomic_selection_concepts schema ~k =
  (* Per position (R, A): an interval for each attribute of R. *)
  List.fold_left
    (fun acc (rel, _attr) ->
       let arity =
         match Schema.arity schema rel with Some a -> a | None -> 0
       in
       acc +. float_of_int (intervals_per_attribute ~k) ** float_of_int arity)
    0. (Schema.positions schema)

let count_selection_free schema ~k =
  (* Subsets of positions × (no nominal | one of k nominals), plus the
     collapsed unsatisfiable class. *)
  (2. ** float_of_int (positions schema)) *. float_of_int (k + 1) +. 1.

let count_intersection_free schema ~k =
  1. (* top *) +. float_of_int k (* nominals *)
  +. atomic_selection_concepts schema ~k

let count_full schema ~k =
  (2. ** atomic_selection_concepts schema ~k) *. float_of_int (k + 1) +. 1.

(* The full count overflows floats almost immediately; its base-10
   logarithm stays printable: log10(2^a * (k+1) + 1) ~ a*log10 2 + log10(k+1). *)
let count_full_log10 schema ~k =
  (atomic_selection_concepts schema ~k *. Float.log10 2.)
  +. Float.log10 (float_of_int (k + 1))

let enumerate_selection_free inst nominal_pool =
  let positions =
    List.concat_map
      (fun name ->
         match Instance.relation inst name with
         | None -> []
         | Some r ->
           List.init (Relation.arity r) (fun i ->
               Ls.Proj { rel = name; attr = i + 1; sels = [] }))
      (Instance.relation_names inst)
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = subsets rest in
      tails @ List.map (fun s -> x :: s) tails
  in
  let proj_sets = subsets positions in
  let nominal_options =
    None :: List.map Option.some (Value_set.elements nominal_pool)
  in
  List.concat_map
    (fun projs ->
       List.map
         (fun nom ->
            match nom with
            | None -> Ls.of_conjuncts projs
            | Some v -> Ls.of_conjuncts (Ls.Nominal v :: projs))
         nominal_options)
    proj_sets
