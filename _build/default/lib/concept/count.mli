(** Counting concepts in the fragments of [L_S] (Proposition 4.2): over a
    schema [S] and a finite constant set [K], the number of distinct
    concepts (modulo the normal forms below) is

    - polynomial in [|S| + |K|] for [L_S^min],
    - single-exponential for selection-free and for intersection-free
      [L_S[K]],
    - double-exponential for full [L_S[K]].

    The counts are of canonical normal forms: conjunctions are subsets of
    atomic conjuncts (order/duplication irrelevant); multiple distinct
    nominals collapse to one unsatisfiable class; per-attribute selections
    are canonical intervals with endpoints in [K]. They are exact counts of
    those normal forms and exhibit exactly the growth rates of the
    proposition. *)

open Whynot_relational

val count_minimal : Schema.t -> k:int -> int
(** [L_S^min[K]]: top, [k] nominals, and one projection per (relation,
    attribute) position. *)

val count_selection_free : Schema.t -> k:int -> float
(** Selection-free [L_S[K]]: a set of positions, optionally meeting a single
    nominal, plus the unsatisfiable class. Returned as float (the count is
    exponential). *)

val count_intersection_free : Schema.t -> k:int -> float
(** Intersection-free [L_S[K]]: top, nominals, or a single projection with a
    canonical selection (an interval per attribute with endpoints in [K]). *)

val count_full : Schema.t -> k:int -> float
(** Full [L_S[K]]: a set of atomic selection conjuncts, optionally meeting a
    nominal, plus the unsatisfiable class. Double-exponential. *)

val count_full_log10 : Schema.t -> k:int -> float
(** [log10] of {!count_full} — printable even when the count itself
    overflows floating point. *)

val intervals_per_attribute : k:int -> int
(** Canonical intervals with endpoints among [k] ordered constants
    (including unbounded/half-bounded, open/closed, points, and the empty
    interval): the per-attribute selection vocabulary. *)

val enumerate_selection_free :
  Instance.t -> Value_set.t -> Ls.t list
(** Materialise all selection-free concepts over the positions of an
    instance with nominals from the given set — the finite restriction
    [O_I[K]] used by the exhaustive algorithm in §5.2. Exponential; meant
    for small inputs and tests. *)
