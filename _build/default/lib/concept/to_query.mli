(** Translation of [L_S] concepts into unary conjunctive queries: the
    extension [[C]]^I is exactly the answer set of the translated query.
    Used by the schema-level subsumption deciders. *)

open Whynot_relational

val head_var : string
(** The distinguished variable of every translated query. *)

val query : Schema.t -> Ls.t -> Cq.t
(** One atom per [Proj] conjunct, sharing the head variable at the projected
    position; selections become comparisons; nominals become [=] comparisons
    on the head variable. A concept with no [Proj] conjunct yields a query
    with no atoms, which is unsafe — callers must special-case pure
    concepts (see {!is_pure}).
    @raise Invalid_argument if a conjunct mentions an undeclared relation. *)

val ucq : Schema.t -> Ls.t -> Ucq.t
(** {!query}, then unfolded over the schema's view definitions into a UCQ
    over data relations. *)

val is_pure : Ls.t -> bool
(** No [Proj] conjunct: [top] or a meet of nominals. *)
