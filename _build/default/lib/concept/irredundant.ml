
let ext_of conjuncts inst =
  List.fold_left
    (fun acc c -> Semantics.ext_inter acc (Semantics.conjunct_ext c inst))
    Semantics.All conjuncts

(* Drop redundant selection conditions inside one conjunct: greedily remove
   conditions while the conjunct's own extension is unchanged. *)
let slim_conjunct inst conj =
  match conj with
  | Ls.Nominal _ -> conj
  | Ls.Proj { rel; attr; sels } ->
    let ext_with sels =
      Semantics.conjunct_ext (Ls.Proj { rel; attr; sels }) inst
    in
    let target = ext_with sels in
    let rec drop kept = function
      | [] -> List.rev kept
      | s :: rest ->
        let without = List.rev_append kept rest in
        if Semantics.ext_equal (ext_with without) target then drop kept rest
        else drop (s :: kept) rest
    in
    Ls.Proj { rel; attr; sels = drop [] sels }

let minimise inst c =
  let target = Semantics.extension c inst in
  let rec drop kept = function
    | [] -> List.rev kept
    | conj :: rest ->
      let without = List.rev_append kept rest in
      if Semantics.ext_equal (ext_of without inst) target then drop kept rest
      else drop (conj :: kept) rest
  in
  Ls.of_conjuncts (List.map (slim_conjunct inst) (drop [] (Ls.conjuncts c)))

let is_irredundant inst c =
  let conjuncts = Ls.conjuncts c in
  let target = ext_of conjuncts inst in
  let rec check before = function
    | [] -> true
    | conj :: rest ->
      let without = List.rev_append before rest in
      (not (Semantics.ext_equal (ext_of without inst) target))
      && check (conj :: before) rest
  in
  check [] conjuncts
