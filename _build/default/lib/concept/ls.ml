open Whynot_relational

type selection = {
  attr : int;
  op : Cmp_op.t;
  value : Value.t;
}

type conjunct =
  | Nominal of Value.t
  | Proj of {
      rel : string;
      attr : int;
      sels : selection list;
    }

type t = conjunct list

(* Normalise a selection list: group per attribute, meet the intervals, and
   re-emit canonical conditions (at most two per attribute; a single [=] for
   point intervals). An empty interval is re-emitted as an unsatisfiable
   canonical pair so the concept keeps an empty extension syntactically. *)
let normalise_sels sels =
  let module Int_map = Map.Make (Int) in
  let by_attr =
    List.fold_left
      (fun m s ->
         let itv = Interval.of_condition s.op s.value in
         Int_map.update s.attr
           (function
             | None -> Some itv
             | Some itv' -> Some (Interval.meet itv itv'))
           m)
      Int_map.empty sels
  in
  Int_map.fold
    (fun attr itv acc ->
       let conds =
         if Interval.is_empty itv then
           (* Canonical unsatisfiable condition pair. *)
           [ (Cmp_op.Lt, Value.Int 0); (Cmp_op.Gt, Value.Int 0) ]
         else Interval.to_conditions itv
       in
       acc @ List.map (fun (op, value) -> { attr; op; value }) conds)
    by_attr []

let normalise_conjunct = function
  | Nominal _ as c -> c
  | Proj p -> Proj { p with sels = normalise_sels p.sels }

let of_conjuncts cs =
  List.sort_uniq Stdlib.compare (List.map normalise_conjunct cs)

let top = []
let nominal c = [ Nominal c ]
let proj ?(sels = []) ~rel ~attr () = of_conjuncts [ Proj { rel; attr; sels } ]
let meet c1 c2 = of_conjuncts (c1 @ c2)
let meet_all cs = of_conjuncts (List.concat cs)
let conjuncts t = t

let is_top t = t = []

let is_selection_free t =
  List.for_all
    (function Nominal _ -> true | Proj { sels; _ } -> sels = [])
    t

let is_intersection_free t = List.length t <= 1

let is_minimal t = is_intersection_free t && is_selection_free t

let has_nominal t = List.exists (function Nominal _ -> true | Proj _ -> false) t

let constants t =
  List.fold_left
    (fun acc c ->
       match c with
       | Nominal v -> Value_set.add v acc
       | Proj { sels; _ } ->
         List.fold_left (fun acc s -> Value_set.add s.value acc) acc sels)
    Value_set.empty t

let relations t =
  List.sort_uniq String.compare
    (List.filter_map
       (function Nominal _ -> None | Proj { rel; _ } -> Some rel)
       t)

let size t =
  if t = [] then 1 (* top *)
  else
    List.fold_left
      (fun acc c ->
         acc
         + (match c with
            | Nominal _ -> 1
            | Proj { sels; _ } ->
              (* pi, attribute, relation + 3 tokens per condition. *)
              3 + (3 * List.length sels)))
      (List.length t - 1) (* ⊓ symbols *)
      t

let compare = Stdlib.compare
let equal t1 t2 = compare t1 t2 = 0

let attr_label schema rel attr =
  match schema with
  | Some s ->
    (match Schema.attr_name s ~rel attr with
     | Some name -> name
     | None -> Printf.sprintf "#%d" attr)
  | None -> Printf.sprintf "#%d" attr

let pp_selection schema rel ppf s =
  Format.fprintf ppf "%s%a%a"
    (attr_label schema rel s.attr)
    Cmp_op.pp s.op Value.pp s.value

let pp_conjunct schema ppf = function
  | Nominal v -> Format.fprintf ppf "{%a}" Value.pp v
  | Proj { rel; attr; sels = [] } ->
    Format.fprintf ppf "pi_%s(%s)" (attr_label schema rel attr) rel
  | Proj { rel; attr; sels } ->
    Format.fprintf ppf "pi_%s(sigma_{%a}(%s))"
      (attr_label schema rel attr)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_selection schema rel))
      sels rel

let pp ?schema () ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "top"
  | cs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " n ")
      (pp_conjunct schema) ppf cs

let pp_sql_conjunct schema ppf = function
  | Nominal v -> Value.pp ppf v
  | Proj { rel; attr; sels = [] } ->
    Format.fprintf ppf "%s from %s" (attr_label schema rel attr) rel
  | Proj { rel; attr; sels } ->
    Format.fprintf ppf "%s from %s where %a"
      (attr_label schema rel attr)
      rel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
         (pp_selection schema rel))
      sels

let pp_sql ?schema () ppf t =
  match t with
  | [] -> Format.pp_print_string ppf "anything"
  | cs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ AND ")
      (pp_sql_conjunct schema) ppf cs

let to_string ?schema t = Format.asprintf "%a" (pp ?schema ()) t
