(** SET COVER: the combinatorial substrate of the paper's lower bounds
    (Theorem 5.1(2) and Proposition 6.4 are proved by reductions from it).
    Universe elements are integers; sets are named. *)

type t = {
  universe : int list;
  sets : (string * int list) list;
}

val make : universe:int list -> sets:(string * int list) list -> t
(** Normalises (sorts, dedups) and drops out-of-universe elements. *)

val is_cover : t -> string list -> bool
(** Do the named sets jointly cover the universe? *)

val exact_min_cover : t -> string list option
(** A minimum-cardinality cover, by branch-and-bound ([None] if even all
    sets together do not cover). Exponential in general. *)

val greedy_cover : t -> string list option
(** The classical [ln n]-approximation. *)

val exists_cover_of_size : t -> int -> bool
(** Is there a cover using at most [k] sets? (The NP-complete decision
    version.) *)

val random :
  ?seed:int -> n_elements:int -> n_sets:int -> density:float -> unit -> t
(** Random instance: each set contains each element independently with the
    given probability; every element is ensured to be in at least one set. *)

val pp : Format.formatter -> t -> unit
