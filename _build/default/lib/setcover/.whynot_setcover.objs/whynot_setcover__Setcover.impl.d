lib/setcover/setcover.ml: Format Int List Printf Random Set Stdlib String
