lib/setcover/reduction.mli: Setcover Value Whynot_core Whynot_relational
