lib/setcover/reduction.ml: Cq Instance List Printf Setcover Value Value_set Whynot_core Whynot_relational
