lib/setcover/setcover.mli: Format
