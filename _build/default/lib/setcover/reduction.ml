open Whynot_relational

type gadget = {
  ontology : string Whynot_core.Ontology.t;
  whynot : Whynot_core.Whynot.t;
  element_constant : int -> Value.t;
  missing_constant : Value.t;
}

let element_constant u = Value.Str (Printf.sprintf "x%d" u)
let missing_constant = Value.Str "a"

let chain_query m =
  let var i = Cq.Var (Printf.sprintf "v%d" i) in
  let head = List.init m (fun i -> var (i + 1)) in
  let atoms =
    if m = 1 then [ { Cq.rel = "E"; args = [ var 1; var 1 ] } ]
    else
      List.init (m - 1) (fun i ->
          { Cq.rel = "E"; args = [ var (i + 1); var (i + 2) ] })
  in
  Cq.make ~head ~atoms ()

let build sc ~slots =
  if slots < 1 then invalid_arg "Reduction.build: slots must be >= 1";
  if sc.Setcover.universe = [] then
    invalid_arg "Reduction.build: empty universe";
  let instance =
    List.fold_left
      (fun inst u ->
         Instance.add_fact "E" [ element_constant u; element_constant u ] inst)
      Instance.empty sc.Setcover.universe
  in
  let query = chain_query slots in
  let whynot =
    Whynot_core.Whynot.make_exn ~instance ~query
      ~missing:(List.init slots (fun _ -> missing_constant))
      ()
  in
  let extensions =
    List.map
      (fun (name, elems) ->
         ( name,
           Value_set.of_list
             (missing_constant
              :: List.filter_map
                   (fun u ->
                      if List.mem u elems then None
                      else Some (element_constant u))
                   sc.Setcover.universe) ))
      sc.Setcover.sets
  in
  let ontology =
    Whynot_core.Ontology.of_extensions ~name:"set-cover-gadget" ~subsumptions:[]
      ~extensions
  in
  { ontology; whynot; element_constant; missing_constant }

let explanation_to_sets e = e

let sets_to_explanation ~slots names =
  match names with
  | [] -> invalid_arg "Reduction.sets_to_explanation: empty cover"
  | first :: _ ->
    if List.length names > slots then
      invalid_arg "Reduction.sets_to_explanation: cover exceeds slots"
    else
      names @ List.init (slots - List.length names) (fun _ -> first)
