module Int_set = Set.Make (Int)

type t = {
  universe : int list;
  sets : (string * int list) list;
}

let make ~universe ~sets =
  let universe = List.sort_uniq Stdlib.compare universe in
  let sets =
    List.map
      (fun (name, elems) ->
         ( name,
           List.sort_uniq Stdlib.compare
             (List.filter (fun e -> List.mem e universe) elems) ))
      sets
  in
  { universe; sets }

let set_elems t name =
  match List.assoc_opt name t.sets with
  | Some es -> Int_set.of_list es
  | None -> Int_set.empty

let is_cover t names =
  let covered =
    List.fold_left
      (fun acc name -> Int_set.union acc (set_elems t name))
      Int_set.empty names
  in
  Int_set.subset (Int_set.of_list t.universe) covered

(* Branch and bound on the uncovered elements: always branch on an
   uncovered element, over the sets containing it. *)
let exact_min_cover t =
  if not (is_cover t (List.map fst t.sets)) then None
  else
    let best = ref None in
    let best_size = ref max_int in
    let rec search chosen covered =
      if List.length chosen >= !best_size then ()
      else
        match
          List.find_opt (fun e -> not (Int_set.mem e covered)) t.universe
        with
        | None ->
          best_size := List.length chosen;
          best := Some (List.rev chosen)
        | Some e ->
          List.iter
            (fun (name, elems) ->
               if List.mem e elems then
                 search (name :: chosen)
                   (Int_set.union covered (Int_set.of_list elems)))
            t.sets
    in
    search [] Int_set.empty;
    !best

let greedy_cover t =
  let universe = Int_set.of_list t.universe in
  let rec go chosen covered =
    if Int_set.subset universe covered then Some (List.rev chosen)
    else
      let gain (name, elems) =
        (Int_set.cardinal (Int_set.diff (Int_set.of_list elems) covered), name)
      in
      let best =
        List.fold_left
          (fun acc s ->
             let g = gain s in
             match acc with
             | None -> Some g
             | Some g' -> if fst g > fst g' then Some g else acc)
          None t.sets
      in
      match best with
      | None | Some (0, _) -> None
      | Some (_, name) ->
        go (name :: chosen) (Int_set.union covered (set_elems t name))
  in
  go [] Int_set.empty

let exists_cover_of_size t k =
  match exact_min_cover t with
  | None -> false
  | Some cover -> List.length cover <= k

let random ?(seed = 42) ~n_elements ~n_sets ~density () =
  let st = Random.State.make [| seed |] in
  let universe = List.init n_elements (fun i -> i) in
  let sets =
    List.init n_sets (fun j ->
        ( Printf.sprintf "S%d" j,
          List.filter (fun _ -> Random.State.float st 1.0 < density) universe ))
  in
  (* Ensure coverage: put each element into a pseudo-random set. *)
  let sets =
    List.mapi
      (fun j (name, elems) ->
         let forced =
           List.filter (fun e -> e mod n_sets = j) universe
         in
         (name, forced @ elems))
      sets
  in
  make ~universe ~sets

let pp ppf t =
  Format.fprintf ppf "universe: {%s}@."
    (String.concat ", " (List.map string_of_int t.universe));
  List.iter
    (fun (name, elems) ->
       Format.fprintf ppf "%s = {%s}@." name
         (String.concat ", " (List.map string_of_int elems)))
    t.sets
