(** The executable reduction behind the paper's lower bounds.

    Theorem 5.1(2): EXISTENCE-OF-EXPLANATION is NP-complete, by reduction
    from SET COVER with a query of unbounded arity over a schema of bounded
    arity. Given a SET COVER instance and a slot budget [m], we build:

    - an instance over a binary relation [E] containing a self-loop
      [E(x_u, x_u)] per universe element [u];
    - the [m]-ary chain query
      [q(x1, ..., xm) = E(x1, x2) ∧ ... ∧ E(x_{m-1}, x_m)], whose answers
      are exactly the diagonal tuples [(x_u, ..., x_u)];
    - the missing tuple [(a, ..., a)] for a fresh constant [a];
    - the hand ontology with one concept [C_S] per set [S], pairwise
      incomparable, with [ext(C_S) = {a} ∪ { x_u : u ∉ S }].

    A choice of concepts [(C_{S_1}, ..., C_{S_m})] kills the diagonal
    answer of [u] iff some chosen set contains [u]; hence an explanation
    exists iff the chosen sets cover the universe — iff the SET COVER
    instance has a cover of size at most [m].

    Proposition 6.4: in the same gadget, the degree of generality of an
    explanation is [m(n+1) − Σ_i |S_i|], so a >card-maximal explanation
    minimises the total size of the chosen (multi)cover — the L-reduction
    from the minimum-total-weight cover variant. *)

open Whynot_relational

type gadget = {
  ontology : string Whynot_core.Ontology.t;
  whynot : Whynot_core.Whynot.t;
  element_constant : int -> Value.t;
  missing_constant : Value.t;
}

val build : Setcover.t -> slots:int -> gadget
(** @raise Invalid_argument if [slots < 1] or the universe is empty. *)

val explanation_to_sets : string Whynot_core.Explanation.t -> string list
(** The multiset of sets named by an explanation of the gadget. *)

val sets_to_explanation : slots:int -> string list -> string Whynot_core.Explanation.t
(** Pad a cover (of size ≤ slots) to an [m]-tuple by repeating the first
    set. @raise Invalid_argument on the empty list or oversize covers. *)
