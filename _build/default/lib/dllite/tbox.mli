(** DL-LiteR TBoxes: finite sets of inclusion assertions [B ⊑ C] (concept
    axioms) and [R ⊑ E] (role axioms). *)

type axiom =
  | Concept_incl of Dl.basic * Dl.concept
  | Role_incl of Dl.role * Dl.role_expr

type t

val make : axiom list -> t

val axioms : t -> axiom list

val atomic_concepts : t -> string list
(** Atomic concept names occurring in the TBox (sorted). *)

val atomic_roles : t -> string list

val basic_concepts : t -> Dl.basic list
(** All basic concept expressions over the TBox's signature: every atomic
    concept [A], and [exists P], [exists P-] for every atomic role [P].
    This is the concept set [C_OB] of Definition 4.4 when every basic concept
    of the signature occurs in the TBox. *)

val occurring_basic_concepts : t -> Dl.basic list
(** Exactly the basic concept expressions that occur (possibly under
    negation) in some axiom — the paper's "basic concept expressions
    occurring in T". *)

val size : t -> int

val pp : Format.formatter -> t -> unit
val pp_axiom : Format.formatter -> axiom -> unit
