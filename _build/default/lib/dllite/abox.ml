open Whynot_relational

type assertion =
  | Concept_assertion of string * Value.t
  | Role_assertion of string * Value.t * Value.t

type t = { assertions : assertion list }

let empty = { assertions = [] }

let add a t =
  if List.mem a t.assertions then t else { assertions = a :: t.assertions }

let of_list assertions = List.fold_left (fun t a -> add a t) empty assertions

let assertions t = List.rev t.assertions

let individuals t =
  List.fold_left
    (fun acc a ->
       match a with
       | Concept_assertion (_, x) -> Value_set.add x acc
       | Role_assertion (_, x, y) -> Value_set.add x (Value_set.add y acc))
    Value_set.empty t.assertions

let to_interp t =
  List.fold_left
    (fun interp a ->
       match a with
       | Concept_assertion (c, x) -> Interp.add_concept_member c x interp
       | Role_assertion (p, x, y) -> Interp.add_role_edge p x y interp)
    Interp.empty t.assertions

(* The basic concepts directly asserted for an individual. *)
let base_basics t x =
  List.concat_map
    (fun a ->
       match a with
       | Concept_assertion (c, y) when Value.equal x y -> [ Dl.Atom c ]
       | Role_assertion (p, y, z) ->
         (if Value.equal x y then [ Dl.Exists (Dl.Named p) ] else [])
         @ (if Value.equal x z then [ Dl.Exists (Dl.Inv p) ] else [])
       | Concept_assertion _ -> [])
    t.assertions

let derived_basics r t x =
  let bases = base_basics t x in
  List.filter
    (fun b -> List.exists (fun b0 -> Reasoner.subsumes r b0 b) bases)
    (Reasoner.universe r)

let consistent r t =
  let clash =
    Value_set.fold
      (fun x acc ->
         match acc with
         | Some _ -> acc
         | None ->
           let bases = base_basics t x in
           let unsat =
             List.find_opt (fun b -> Reasoner.unsatisfiable r b) bases
           in
           (match unsat with
            | Some b ->
              Some
                (Format.asprintf "%a asserted into unsatisfiable %a" Value.pp x
                   Dl.pp_basic b)
            | None ->
              List.find_map
                (fun b1 ->
                   List.find_map
                     (fun b2 ->
                        if Reasoner.disjoint r b1 b2 then
                          Some
                            (Format.asprintf
                               "%a belongs to disjoint %a and %a" Value.pp x
                               Dl.pp_basic b1 Dl.pp_basic b2)
                        else None)
                     bases)
                bases))
      (individuals t) None
  in
  match clash with
  | Some msg -> Error msg
  | None ->
    let role_clash =
      List.find_map
        (fun a ->
           match a with
           | Role_assertion (p, x, y) ->
             List.find_map
               (fun a' ->
                  match a' with
                  | Role_assertion (p', x', y') ->
                    let same = Value.equal x x' && Value.equal y y' in
                    let inverse = Value.equal x y' && Value.equal y x' in
                    if same && Reasoner.role_disjoint r (Dl.Named p) (Dl.Named p')
                    then Some (Printf.sprintf "edge in disjoint roles %s, %s" p p')
                    else if
                      inverse
                      && Reasoner.role_disjoint r (Dl.Named p) (Dl.Inv p')
                    then Some (Printf.sprintf "edge in disjoint roles %s, %s-" p p')
                    else None
                  | Concept_assertion _ -> None)
               t.assertions
           | Concept_assertion _ -> None)
        t.assertions
    in
    (match role_clash with Some msg -> Error msg | None -> Ok ())

let entails r t b x =
  match consistent r t with
  | Error _ -> true
  | Ok () -> List.exists (fun b0 -> Reasoner.subsumes r b0 b) (base_basics t x)

let certain_extension r t b =
  Value_set.filter (fun x -> entails r t b x) (individuals t)

let pp ppf t =
  List.iter
    (fun a ->
       match a with
       | Concept_assertion (c, x) -> Format.fprintf ppf "%s(%a)@." c Value.pp x
       | Role_assertion (p, x, y) ->
         Format.fprintf ppf "%s(%a, %a)@." p Value.pp x Value.pp y)
    (assertions t)
