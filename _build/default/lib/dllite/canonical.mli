(** Finite canonical models for DL-LiteR TBoxes, by filtration.

    The interpretation has one element [x_B] per satisfiable basic concept
    [B] of the signature; [x_B] belongs to an atomic concept [A] iff
    [T ⊨ B ⊑ A], and has an [R]-edge to [x_{∃R⁻}] for every role [R] with
    [T ⊨ B ⊑ ∃R] (edges closed under the role hierarchy).

    This is a model of all *positive* axioms of the TBox and realises each
    satisfiable [B] by an element whose derived concept memberships are
    exactly the subsumers of [B] — which makes it a counter-model generator:
    if [T ⊭ B1 ⊑ B2] then [x_{B1} ∈ B1 \ B2].

    Negative axioms are satisfied too whenever the TBox is coherent (no
    satisfiable concept is forced into disjoint concepts), which the
    saturation guarantees; the test-suite checks this. *)

open Whynot_relational

val element : Dl.basic -> Value.t
(** The constant naming [x_B]. *)

val build : Reasoner.t -> Interp.t
(** The filtrated canonical interpretation of the saturated TBox. *)
