open Whynot_relational

module Str_map = Map.Make (String)

module Edge_set = Set.Make (struct
    type t = Value.t * Value.t
    let compare (a1, b1) (a2, b2) =
      let c = Value.compare a1 a2 in
      if c <> 0 then c else Value.compare b1 b2
  end)

type t = {
  concepts : Value_set.t Str_map.t;
  roles : Edge_set.t Str_map.t;
}

let empty = { concepts = Str_map.empty; roles = Str_map.empty }

let add_concept_member a v t =
  let cur =
    Option.value ~default:Value_set.empty (Str_map.find_opt a t.concepts)
  in
  { t with concepts = Str_map.add a (Value_set.add v cur) t.concepts }

let add_role_edge p v w t =
  let cur = Option.value ~default:Edge_set.empty (Str_map.find_opt p t.roles) in
  { t with roles = Str_map.add p (Edge_set.add (v, w) cur) t.roles }

let role_edges t p =
  Option.value ~default:Edge_set.empty (Str_map.find_opt p t.roles)

let role_ext t = function
  | Dl.Named p -> Edge_set.elements (role_edges t p)
  | Dl.Inv p -> List.map (fun (a, b) -> (b, a)) (Edge_set.elements (role_edges t p))

let concept_ext t = function
  | Dl.Atom a ->
    Option.value ~default:Value_set.empty (Str_map.find_opt a t.concepts)
  | Dl.Exists r ->
    List.fold_left
      (fun acc (a, _) -> Value_set.add a acc)
      Value_set.empty (role_ext t r)

let satisfies_inclusion t b1 b2 =
  Value_set.subset (concept_ext t b1) (concept_ext t b2)

let satisfies_axiom t = function
  | Tbox.Concept_incl (b, Dl.B b') -> satisfies_inclusion t b b'
  | Tbox.Concept_incl (b, Dl.Not b') ->
    Value_set.is_empty (Value_set.inter (concept_ext t b) (concept_ext t b'))
  | Tbox.Role_incl (r, Dl.R r') ->
    let ext r = Edge_set.of_list (role_ext t r) in
    Edge_set.subset (ext r) (ext r')
  | Tbox.Role_incl (r, Dl.NotR r') ->
    let ext r = Edge_set.of_list (role_ext t r) in
    Edge_set.is_empty (Edge_set.inter (ext r) (ext r'))

let satisfies t tb = List.for_all (satisfies_axiom t) (Tbox.axioms tb)

let concept_names t = List.map fst (Str_map.bindings t.concepts)
let role_names t = List.map fst (Str_map.bindings t.roles)

let to_instance t =
  let inst =
    Str_map.fold
      (fun name members inst ->
         Value_set.fold
           (fun v inst -> Instance.add_fact name [ v ] inst)
           members inst)
      t.concepts Instance.empty
  in
  Str_map.fold
    (fun name edges inst ->
       Edge_set.fold
         (fun (a, b) inst -> Instance.add_fact name [ a; b ] inst)
         edges inst)
    t.roles inst
