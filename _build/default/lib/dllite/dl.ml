type role =
  | Named of string
  | Inv of string

type basic =
  | Atom of string
  | Exists of role

type concept =
  | B of basic
  | Not of basic

type role_expr =
  | R of role
  | NotR of role

let inv = function
  | Named p -> Inv p
  | Inv p -> Named p

let role_name = function
  | Named p | Inv p -> p

let compare_role r1 r2 = Stdlib.compare r1 r2
let compare_basic b1 b2 = Stdlib.compare b1 b2
let equal_basic b1 b2 = compare_basic b1 b2 = 0

let pp_role ppf = function
  | Named p -> Format.pp_print_string ppf p
  | Inv p -> Format.fprintf ppf "%s-" p

let pp_basic ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | Exists r -> Format.fprintf ppf "exists %a" pp_role r

let pp_concept ppf = function
  | B b -> pp_basic ppf b
  | Not b -> Format.fprintf ppf "not %a" pp_basic b

let pp_role_expr ppf = function
  | R r -> pp_role ppf r
  | NotR r -> Format.fprintf ppf "not %a" pp_role r

let basic_to_string b = Format.asprintf "%a" pp_basic b
