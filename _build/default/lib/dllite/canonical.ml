open Whynot_relational

let element_in_layer layer b =
  Value.Str (Printf.sprintf "x%d:%s" layer (Dl.basic_to_string b))

let element b = element_in_layer 0 b

(* Three-layer filtration: one element per satisfiable basic concept and
   layer in {0,1,2}; existential witnesses of layer-i elements live in layer
   i+1 (mod 3). Three layers (not one or two) are needed so that no role
   extension ever contains a self-loop or a symmetric pair unless derivable —
   e.g. [∃P ⊑ ∃P⁻] together with [P ⊑ ¬P⁻] is satisfied by a directed
   3-cycle but by no 1- or 2-layer filtration. *)
let build r =
  let sat_basics =
    List.filter (fun b -> not (Reasoner.unsatisfiable r b)) (Reasoner.universe r)
  in
  let tb = Reasoner.tbox r in
  let atoms = Tbox.atomic_concepts tb in
  let atomic_roles = Tbox.atomic_roles tb in
  let layers = [ 0; 1; 2 ] in
  (* Concept memberships, identical in every layer. *)
  let interp =
    List.fold_left
      (fun interp b ->
         List.fold_left
           (fun interp a ->
              if Reasoner.subsumes r b (Dl.Atom a) then
                List.fold_left
                  (fun interp layer ->
                     Interp.add_concept_member a (element_in_layer layer b) interp)
                  interp layers
              else interp)
           interp atoms)
      Interp.empty sat_basics
  in
  (* Role edges: for T ⊨ B ⊑ ∃R, each x_B^i gets an R-edge to
     x_{∃R⁻}^{i+1 mod 3}, closed under the role hierarchy. *)
  let add_edge interp role src dst =
    match role with
    | Dl.Named p -> Interp.add_role_edge p src dst interp
    | Dl.Inv p -> Interp.add_role_edge p dst src interp
  in
  let all_roles =
    List.concat_map (fun p -> [ Dl.Named p; Dl.Inv p ]) atomic_roles
  in
  List.fold_left
    (fun interp b ->
       List.fold_left
         (fun interp role ->
            if
              Reasoner.subsumes r b (Dl.Exists role)
              && not (Reasoner.role_unsatisfiable r role)
            then
              List.fold_left
                (fun interp layer ->
                   let src = element_in_layer layer b in
                   let dst =
                     element_in_layer ((layer + 1) mod 3)
                       (Dl.Exists (Dl.inv role))
                   in
                   List.fold_left
                     (fun interp super ->
                        if Reasoner.role_subsumes r role super then
                          add_edge interp super src dst
                        else interp)
                     interp all_roles)
                interp layers
            else interp)
         interp all_roles)
    interp sat_basics
