lib/dllite/ondemand.ml: Dl List Set Tbox
