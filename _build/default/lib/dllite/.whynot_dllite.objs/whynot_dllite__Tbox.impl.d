lib/dllite/tbox.ml: Dl Format List Set String
