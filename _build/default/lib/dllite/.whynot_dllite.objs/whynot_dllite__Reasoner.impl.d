lib/dllite/reasoner.ml: Dl List Set Tbox
