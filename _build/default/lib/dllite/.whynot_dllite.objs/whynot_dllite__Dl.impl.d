lib/dllite/dl.ml: Format Stdlib
