lib/dllite/abox.mli: Dl Format Interp Reasoner Value Value_set Whynot_relational
