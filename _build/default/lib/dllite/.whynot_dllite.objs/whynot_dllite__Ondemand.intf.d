lib/dllite/ondemand.mli: Dl Tbox
