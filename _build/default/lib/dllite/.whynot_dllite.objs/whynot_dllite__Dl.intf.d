lib/dllite/dl.mli: Format
