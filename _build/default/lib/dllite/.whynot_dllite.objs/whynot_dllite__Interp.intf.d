lib/dllite/interp.mli: Dl Tbox Value Value_set Whynot_relational
