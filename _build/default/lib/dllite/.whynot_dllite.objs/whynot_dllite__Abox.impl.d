lib/dllite/abox.ml: Dl Format Interp List Printf Reasoner Value Value_set Whynot_relational
