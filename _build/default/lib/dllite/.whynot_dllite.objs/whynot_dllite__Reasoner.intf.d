lib/dllite/reasoner.mli: Dl Tbox
