lib/dllite/canonical.ml: Dl Interp List Printf Reasoner Tbox Value Whynot_relational
