lib/dllite/tbox.mli: Dl Format
