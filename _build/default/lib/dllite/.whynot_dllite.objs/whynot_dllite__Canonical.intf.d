lib/dllite/canonical.mli: Dl Interp Reasoner Value Whynot_relational
