lib/dllite/interp.ml: Dl Instance List Map Option Set String Tbox Value Value_set Whynot_relational
