module B_set = Set.Make (struct
    type t = Dl.basic
    let compare = Dl.compare_basic
  end)

module R_set = Set.Make (struct
    type t = Dl.role
    let compare = Dl.compare_role
  end)

(* Direct positive role edges (one step), closed under inverses. *)
let role_successors tbox r =
  List.filter_map
    (fun ax ->
       match ax with
       | Tbox.Role_incl (r1, Dl.R r2) ->
         if Dl.compare_role r1 r = 0 then Some r2
         else if Dl.compare_role (Dl.inv r1) r = 0 then Some (Dl.inv r2)
         else None
       | _ -> None)
    (Tbox.axioms tbox)

(* Reflexive-transitive role upset by BFS. *)
let role_upset tbox r =
  let rec loop frontier seen =
    match frontier with
    | [] -> seen
    | x :: rest ->
      let nexts =
        List.filter (fun y -> not (R_set.mem y seen)) (role_successors tbox x)
      in
      loop (nexts @ rest) (List.fold_left (fun s y -> R_set.add y s) seen nexts)
  in
  loop [ r ] (R_set.singleton r)

(* Direct positive concept edges from a basic concept: declared inclusions
   plus the role-hierarchy-induced edges between unqualified existentials. *)
let concept_successors tbox b =
  let declared =
    List.filter_map
      (fun ax ->
         match ax with
         | Tbox.Concept_incl (lhs, Dl.B rhs) when Dl.equal_basic lhs b ->
           Some rhs
         | _ -> None)
      (Tbox.axioms tbox)
  in
  let via_roles =
    match b with
    | Dl.Exists r ->
      R_set.elements (role_upset tbox r)
      |> List.filter_map (fun r' ->
          if Dl.compare_role r r' = 0 then None else Some (Dl.Exists r'))
    | Dl.Atom _ -> []
  in
  declared @ via_roles

let concept_upset tbox b =
  let rec loop frontier seen =
    match frontier with
    | [] -> seen
    | x :: rest ->
      let nexts =
        List.filter (fun y -> not (B_set.mem y seen)) (concept_successors tbox x)
      in
      loop (nexts @ rest) (List.fold_left (fun s y -> B_set.add y s) seen nexts)
  in
  loop [ b ] (B_set.singleton b)

(* Declared disjointness lifted through upsets: x clashes iff two declared-
   disjoint concepts both subsume it, i.e. both appear in its upset. *)
let direct_concept_clash tbox upset_x =
  List.exists
    (fun ax ->
       match ax with
       | Tbox.Concept_incl (c1, Dl.Not c2) ->
         B_set.mem c1 upset_x && B_set.mem c2 upset_x
       | _ -> false)
    (Tbox.axioms tbox)

let role_direct_unsat tbox r =
  let up = role_upset tbox r in
  List.exists
    (fun ax ->
       match ax with
       | Tbox.Role_incl (r1, Dl.NotR r2) ->
         (R_set.mem r1 up && R_set.mem r2 up)
         || (R_set.mem (Dl.inv r1) up && R_set.mem (Dl.inv r2) up)
       | _ -> false)
    (Tbox.axioms tbox)

let unsatisfiable tbox b =
  (* Localised fixpoint: the set of basic concepts relevant to [b]'s
     (un)satisfiability — its upset, closed under the domain/range coupling
     of existentials. *)
  let add_coupled set =
    B_set.fold
      (fun x acc ->
         match x with
         | Dl.Exists r -> B_set.add (Dl.Exists (Dl.inv r)) acc
         | Dl.Atom _ -> acc)
      set set
  in
  let rec closure set =
    let bigger =
      B_set.fold
        (fun x acc -> B_set.union acc (concept_upset tbox x))
        set set
      |> add_coupled
    in
    if B_set.equal bigger set then set else closure bigger
  in
  let relevant = closure (B_set.singleton b) in
  let upsets =
    B_set.fold
      (fun x acc -> (x, concept_upset tbox x) :: acc)
      relevant []
  in
  let initially_unsat x =
    let up = List.assoc x upsets in
    direct_concept_clash tbox up
    || (match x with
        | Dl.Exists r -> role_direct_unsat tbox r
        | Dl.Atom _ -> false)
  in
  let rec fix unsat =
    let unsat' =
      B_set.fold
        (fun x acc ->
           if B_set.mem x acc then acc
           else
             let up = List.assoc x upsets in
             let via_upset = B_set.exists (fun y -> B_set.mem y acc) up in
             let via_coupling =
               match x with
               | Dl.Exists r -> B_set.mem (Dl.Exists (Dl.inv r)) acc
               | Dl.Atom _ -> false
             in
             if via_upset || via_coupling then B_set.add x acc else acc)
        relevant unsat
    in
    if B_set.equal unsat unsat' then unsat else fix unsat'
  in
  let init =
    B_set.filter initially_unsat relevant
  in
  B_set.mem b (fix init)

let subsumes tbox b1 b2 =
  Dl.equal_basic b1 b2
  || B_set.mem b2 (concept_upset tbox b1)
  || unsatisfiable tbox b1
