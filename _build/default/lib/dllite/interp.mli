(** Finite (ΦC, ΦR)-interpretations, used to test the reasoner: an
    interpretation maps atomic concepts to sets of constants and atomic roles
    to binary relations over constants (Definition 4.1).

    Note these are *finite approximations*: DL-LiteR semantics ranges over
    interpretations with arbitrary (infinite) domains, so a finite search can
    refute an entailment (by exhibiting a finite counter-model) but can never
    verify one. The test-suite uses them for exactly that: every subsumption
    the saturation derives must hold in every randomly generated finite model
    of the TBox (soundness), and saturation completeness is tested separately
    against the canonical-model construction. *)

open Whynot_relational

type t

val empty : t

val add_concept_member : string -> Value.t -> t -> t

val add_role_edge : string -> Value.t -> Value.t -> t -> t

val concept_ext : t -> Dl.basic -> Value_set.t
(** Extension of a basic concept: [Atom A] is looked up; [Exists P] is the
    first projection of [P]; [Exists P-] the second. *)

val role_ext : t -> Dl.role -> (Value.t * Value.t) list

val satisfies_axiom : t -> Tbox.axiom -> bool

val satisfies : t -> Tbox.t -> bool

val satisfies_inclusion : t -> Dl.basic -> Dl.basic -> bool
(** Whether [I(B1) ⊆ I(B2)] holds in this interpretation. *)

val concept_names : t -> string list
val role_names : t -> string list

val to_instance : t -> Whynot_relational.Instance.t
(** The interpretation as a relational instance: each atomic concept becomes
    a unary relation, each atomic role a binary one (names are shared
    verbatim; concept and role names are assumed disjoint). *)
