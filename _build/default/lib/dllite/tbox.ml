type axiom =
  | Concept_incl of Dl.basic * Dl.concept
  | Role_incl of Dl.role * Dl.role_expr

type t = { axioms : axiom list }

let make axioms = { axioms }

let axioms t = t.axioms

module Str_set = Set.Make (String)

let concept_atoms acc = function
  | Dl.Atom a -> Str_set.add a acc
  | Dl.Exists _ -> acc

let concept_roles acc = function
  | Dl.Atom _ -> acc
  | Dl.Exists r -> Str_set.add (Dl.role_name r) acc

let fold_basics f acc t =
  List.fold_left
    (fun acc ax ->
       match ax with
       | Concept_incl (b, Dl.B b') | Concept_incl (b, Dl.Not b') ->
         f (f acc b) b'
       | Role_incl _ -> acc)
    acc t.axioms

let fold_roles f acc t =
  List.fold_left
    (fun acc ax ->
       match ax with
       | Concept_incl (b, Dl.B b') | Concept_incl (b, Dl.Not b') ->
         let add acc = function
           | Dl.Exists r -> f acc r
           | Dl.Atom _ -> acc
         in
         add (add acc b) b'
       | Role_incl (r, Dl.R r') | Role_incl (r, Dl.NotR r') -> f (f acc r) r')
    acc t.axioms

let atomic_concepts t =
  Str_set.elements (fold_basics concept_atoms Str_set.empty t)

let atomic_roles t =
  let from_basics = fold_basics concept_roles Str_set.empty t in
  Str_set.elements
    (fold_roles (fun acc r -> Str_set.add (Dl.role_name r) acc) from_basics t)

let basic_concepts t =
  List.map (fun a -> Dl.Atom a) (atomic_concepts t)
  @ List.concat_map
      (fun p -> [ Dl.Exists (Dl.Named p); Dl.Exists (Dl.Inv p) ])
      (atomic_roles t)

let occurring_basic_concepts t =
  let module B_set = Set.Make (struct
      type t = Dl.basic
      let compare = Dl.compare_basic
    end)
  in
  let set = fold_basics (fun acc b -> B_set.add b acc) B_set.empty t in
  B_set.elements set

let size t = List.length t.axioms

let pp_axiom ppf = function
  | Concept_incl (b, c) ->
    Format.fprintf ppf "%a [= %a" Dl.pp_basic b Dl.pp_concept c
  | Role_incl (r, e) ->
    Format.fprintf ppf "%a [= %a" Dl.pp_role r Dl.pp_role_expr e

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:Format.pp_print_cut
    pp_axiom ppf t.axioms
