(** PTIME subsumption for DL-LiteR TBoxes (Theorem 4.1(1)), by saturation of
    the inclusion assertions, following Calvanese et al. (2007).

    The saturation derives:
    - a reflexive-transitive positive closure over basic concepts, fed by
      concept axioms and by role inclusions (R1 ⊑ R2 yields
      ∃R1 ⊑ ∃R2 and ∃R1⁻ ⊑ ∃R2⁻);
    - a disjointness relation over basic concepts, fed by negative axioms and
      closed downward under the positive closure;
    - the set of unsatisfiable basic concepts: B with B ⊑ ¬B, and the
      induced role unsatisfiability (a role is unsatisfiable iff its domain
      or range is, and then both are), propagated backwards along the
      positive closure.

    [T ⊨ B1 ⊑ B2] holds iff [B1] is unsatisfiable w.r.t. [T] or [B1 ⊑ B2]
    is in the positive closure. *)

type t
(** A saturated TBox. *)

val saturate : Tbox.t -> t

val tbox : t -> Tbox.t

val subsumes : t -> Dl.basic -> Dl.basic -> bool
(** [subsumes s b1 b2] iff [T ⊨ B1 ⊑ B2]. *)

val disjoint : t -> Dl.basic -> Dl.basic -> bool
(** [disjoint s b1 b2] iff [T ⊨ B1 ⊑ ¬B2]. Sound and complete w.r.t. the
    saturation rules above. *)

val unsatisfiable : t -> Dl.basic -> bool
(** Whether the basic concept is unsatisfiable w.r.t. the TBox. *)

val role_subsumes : t -> Dl.role -> Dl.role -> bool
(** [T ⊨ R1 ⊑ R2] (positive role closure, or [R1] unsatisfiable). *)

val role_disjoint : t -> Dl.role -> Dl.role -> bool

val role_unsatisfiable : t -> Dl.role -> bool

val subsumers : t -> Dl.basic -> Dl.basic list
(** All basic concepts of the signature that subsume the argument. *)

val subsumees : t -> Dl.basic -> Dl.basic list

val universe : t -> Dl.basic list
(** All basic concepts of the TBox signature (see
    {!Tbox.basic_concepts}). *)
