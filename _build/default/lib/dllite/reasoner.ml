module B_pair = struct
  type t = Dl.basic * Dl.basic
  let compare (a1, b1) (a2, b2) =
    let c = Dl.compare_basic a1 a2 in
    if c <> 0 then c else Dl.compare_basic b1 b2
end

module BP_set = Set.Make (B_pair)

module R_pair = struct
  type t = Dl.role * Dl.role
  let compare (a1, b1) (a2, b2) =
    let c = Dl.compare_role a1 a2 in
    if c <> 0 then c else Dl.compare_role b1 b2
end

module RP_set = Set.Make (R_pair)

module B_set = Set.Make (struct
    type t = Dl.basic
    let compare = Dl.compare_basic
  end)

module R_set = Set.Make (struct
    type t = Dl.role
    let compare = Dl.compare_role
  end)

type t = {
  tbox : Tbox.t;
  universe : Dl.basic list;
  roles : Dl.role list;
  pos : BP_set.t;        (* positive concept closure, reflexive *)
  neg : BP_set.t;        (* derived disjointness, symmetric *)
  role_pos : RP_set.t;   (* positive role closure, reflexive *)
  role_neg : RP_set.t;   (* role disjointness, symmetric *)
  unsat : B_set.t;
  role_unsat : R_set.t;
}

let tbox s = s.tbox
let universe s = s.universe

(* Least fixpoint of a monotone step function on sets. *)
let fix equal step init =
  let rec loop x =
    let x' = step x in
    if equal x x' then x else loop x'
  in
  loop init

let saturate tb =
  let universe = Tbox.basic_concepts tb in
  let roles =
    List.concat_map
      (fun p -> [ Dl.Named p; Dl.Inv p ])
      (Tbox.atomic_roles tb)
  in
  let axioms = Tbox.axioms tb in
  (* --- role closures --- *)
  let role_pos_base =
    List.fold_left
      (fun acc ax ->
         match ax with
         | Tbox.Role_incl (r1, Dl.R r2) ->
           RP_set.add (r1, r2) (RP_set.add (Dl.inv r1, Dl.inv r2) acc)
         | _ -> acc)
      RP_set.empty axioms
  in
  let role_pos_base =
    List.fold_left (fun acc r -> RP_set.add (r, r) acc) role_pos_base roles
  in
  let role_pos =
    fix RP_set.equal
      (fun s ->
         RP_set.fold
           (fun (r1, r2) acc ->
              RP_set.fold
                (fun (r2', r3) acc ->
                   if Dl.compare_role r2 r2' = 0 then RP_set.add (r1, r3) acc
                   else acc)
                s acc)
           s s)
      role_pos_base
  in
  let role_neg_base =
    List.fold_left
      (fun acc ax ->
         match ax with
         | Tbox.Role_incl (r1, Dl.NotR r2) ->
           acc
           |> RP_set.add (r1, r2) |> RP_set.add (r2, r1)
           |> RP_set.add (Dl.inv r1, Dl.inv r2)
           |> RP_set.add (Dl.inv r2, Dl.inv r1)
         | _ -> acc)
      RP_set.empty axioms
  in
  (* close downward: R ⊑ R1, R' ⊑ R2, R1 disj R2 => R disj R'. *)
  let role_neg =
    RP_set.fold
      (fun (r1, r2) acc ->
         RP_set.fold
           (fun (r, r1') acc ->
              if Dl.compare_role r1 r1' <> 0 then acc
              else
                RP_set.fold
                  (fun (r', r2') acc ->
                     if Dl.compare_role r2 r2' <> 0 then acc
                     else RP_set.add (r, r') (RP_set.add (r', r) acc))
                  role_pos acc)
           role_pos acc)
      role_neg_base role_neg_base
  in
  (* --- positive concept closure --- *)
  let pos_base =
    List.fold_left
      (fun acc ax ->
         match ax with
         | Tbox.Concept_incl (b1, Dl.B b2) -> BP_set.add (b1, b2) acc
         | _ -> acc)
      BP_set.empty axioms
  in
  let pos_base =
    RP_set.fold
      (fun (r1, r2) acc ->
         acc
         |> BP_set.add (Dl.Exists r1, Dl.Exists r2)
         |> BP_set.add (Dl.Exists (Dl.inv r1), Dl.Exists (Dl.inv r2)))
      role_pos pos_base
  in
  let pos_base =
    List.fold_left (fun acc b -> BP_set.add (b, b) acc) pos_base universe
  in
  let pos =
    fix BP_set.equal
      (fun s ->
         BP_set.fold
           (fun (b1, b2) acc ->
              BP_set.fold
                (fun (b2', b3) acc ->
                   if Dl.equal_basic b2 b2' then BP_set.add (b1, b3) acc
                   else acc)
                s acc)
           s s)
      pos_base
  in
  (* --- disjointness --- *)
  let neg_base =
    List.fold_left
      (fun acc ax ->
         match ax with
         | Tbox.Concept_incl (b1, Dl.Not b2) ->
           BP_set.add (b1, b2) (BP_set.add (b2, b1) acc)
         | _ -> acc)
      BP_set.empty axioms
  in
  (* close downward under pos: B ⊑ B1, B' ⊑ B2, B1 disj B2 => B disj B'. *)
  let neg =
    BP_set.fold
      (fun (b1, b2) acc ->
         BP_set.fold
           (fun (b, b1') acc ->
              if not (Dl.equal_basic b1 b1') then acc
              else
                BP_set.fold
                  (fun (b', b2') acc ->
                     if not (Dl.equal_basic b2 b2') then acc
                     else BP_set.add (b, b') (BP_set.add (b', b) acc))
                  pos acc)
           pos acc)
      neg_base neg_base
  in
  (* --- unsatisfiable concepts and roles --- *)
  let unsat0 =
    List.fold_left
      (fun acc b -> if BP_set.mem (b, b) neg then B_set.add b acc else acc)
      B_set.empty universe
  in
  let role_unsat0 =
    List.fold_left
      (fun acc r -> if RP_set.mem (r, r) role_neg then R_set.add r acc else acc)
      R_set.empty roles
  in
  let step (unsat, role_unsat) =
    (* A role is unsatisfiable iff its domain or range is; then both are. *)
    let role_unsat =
      List.fold_left
        (fun acc r ->
           if B_set.mem (Dl.Exists r) unsat || B_set.mem (Dl.Exists (Dl.inv r)) unsat
           then R_set.add r (R_set.add (Dl.inv r) acc)
           else acc)
        role_unsat roles
    in
    (* Backward along role_pos: R1 ⊑ R2 and R2 unsat => R1 unsat. *)
    let role_unsat =
      RP_set.fold
        (fun (r1, r2) acc ->
           if R_set.mem r2 acc then R_set.add r1 acc else acc)
        role_pos role_unsat
    in
    let unsat =
      R_set.fold
        (fun r acc -> B_set.add (Dl.Exists r) acc)
        role_unsat unsat
    in
    (* Backward along pos: B ⊑ B' and B' unsat => B unsat. *)
    let unsat =
      BP_set.fold
        (fun (b1, b2) acc ->
           if B_set.mem b2 acc then B_set.add b1 acc else acc)
        pos unsat
    in
    (unsat, role_unsat)
  in
  let unsat, role_unsat =
    fix
      (fun (u1, r1) (u2, r2) -> B_set.equal u1 u2 && R_set.equal r1 r2)
      step (unsat0, role_unsat0)
  in
  { tbox = tb; universe; roles; pos; neg; role_pos; role_neg; unsat; role_unsat }

let unsatisfiable s b = B_set.mem b s.unsat

let subsumes s b1 b2 =
  Dl.equal_basic b1 b2 || unsatisfiable s b1 || BP_set.mem (b1, b2) s.pos

let disjoint s b1 b2 =
  unsatisfiable s b1 || unsatisfiable s b2 || BP_set.mem (b1, b2) s.neg

let role_unsatisfiable s r = R_set.mem r s.role_unsat

let role_subsumes s r1 r2 =
  Dl.compare_role r1 r2 = 0 || role_unsatisfiable s r1
  || RP_set.mem (r1, r2) s.role_pos

let role_disjoint s r1 r2 =
  role_unsatisfiable s r1 || role_unsatisfiable s r2
  || RP_set.mem (r1, r2) s.role_neg

let subsumers s b = List.filter (fun b' -> subsumes s b b') s.universe
let subsumees s b = List.filter (fun b' -> subsumes s b' b) s.universe
