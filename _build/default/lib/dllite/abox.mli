(** ABoxes (assertion boxes) for DL-LiteR knowledge bases.

    The paper omits ABoxes "to simplify the presentation" (§4.1) and works
    with assertions retrieved through mappings instead; this module provides
    the standard KB-level interface directly, reusing the same machinery:
    an ABox is a finite set of concept and role assertions, a knowledge
    base pairs it with a TBox, and the two standard reasoning tasks are
    KB consistency and instance checking ([KB ⊨ B(a)]). Both run in
    polynomial time, matching DL-LiteR's data complexity story. *)

open Whynot_relational

type assertion =
  | Concept_assertion of string * Value.t        (** [A(a)] *)
  | Role_assertion of string * Value.t * Value.t (** [P(a, b)] *)

type t
(** An ABox. *)

val empty : t
val add : assertion -> t -> t
val of_list : assertion list -> t
val assertions : t -> assertion list
val individuals : t -> Value_set.t

val to_interp : t -> Interp.t
(** The minimal interpretation of the asserted facts. *)

val derived_basics : Reasoner.t -> t -> Value.t -> Dl.basic list
(** All basic concepts the KB derives for an individual: asserted ones
    closed under the TBox's positive inclusions. *)

val consistent : Reasoner.t -> t -> (unit, string) result
(** KB consistency: no individual is derived into two disjoint basic
    concepts or into an unsatisfiable one, and no asserted role edge lies
    in two disjoint roles. *)

val entails : Reasoner.t -> t -> Dl.basic -> Value.t -> bool
(** Instance checking [KB ⊨ B(a)]: [true] whenever the KB is inconsistent
    (ex falso), otherwise membership in the certain extension. *)

val certain_extension : Reasoner.t -> t -> Dl.basic -> Value_set.t
(** All individuals [a] with [KB ⊨ B(a)] (for a consistent KB). *)

val pp : Format.formatter -> t -> unit
