(** On-demand DL-LiteR subsumption — the D1 ablation counterpart of
    {!Reasoner}.

    Instead of materialising the full saturation up front, a single
    subsumption query [T ⊨ B1 ⊑ B2] is answered by a breadth-first search
    over the positive-inclusion graph (concept axioms, plus the edges
    induced by the role hierarchy), with unsatisfiable sources detected by
    a bounded search for a disjointness witness. Asymptotically each query
    costs what one saturation pass costs, but no quadratic closure is
    stored; the break-even against {!Reasoner} (saturate once, then O(1)
    lookups) is measured by the benchmark harness.

    Agreement with {!Reasoner.subsumes} is property-tested on random
    TBoxes. *)

val subsumes : Tbox.t -> Dl.basic -> Dl.basic -> bool

val unsatisfiable : Tbox.t -> Dl.basic -> bool
