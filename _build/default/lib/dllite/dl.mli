(** Syntax of DL-LiteR (Definition 4.1).

    Fixing atomic concepts and atomic roles, the grammar is

    {v
      basic role        R ::= P | P-
      basic concept     B ::= A | exists R
      concept           C ::= B | not B
      role expression   E ::= R | not R
    v} *)

type role =
  | Named of string    (** an atomic role [P] *)
  | Inv of string      (** the inverse [P-] *)

type basic =
  | Atom of string     (** an atomic concept [A] *)
  | Exists of role     (** unqualified existential [exists R] *)

type concept =
  | B of basic
  | Not of basic

type role_expr =
  | R of role
  | NotR of role

val inv : role -> role
(** [inv (Named P) = Inv P] and vice versa. *)

val role_name : role -> string

val compare_role : role -> role -> int
val compare_basic : basic -> basic -> int
val equal_basic : basic -> basic -> bool

val pp_role : Format.formatter -> role -> unit
val pp_basic : Format.formatter -> basic -> unit
val pp_concept : Format.formatter -> concept -> unit
val pp_role_expr : Format.formatter -> role_expr -> unit

val basic_to_string : basic -> string
