open Whynot_relational
open Whynot_dllite

type t = {
  tbox : Tbox.t;
  schema : Schema.t;
  mappings : Mapping.t list;
}

let validate_mapping schema m =
  if not (Mapping.is_safe m) then
    Error (Format.asprintf "unsafe mapping: %a" Mapping.pp m)
  else
    let bad_atom =
      List.find_opt
        (fun (a : Cq.atom) ->
           match Schema.arity schema a.Cq.rel with
           | None -> true
           | Some k -> k <> List.length a.Cq.args)
        m.Mapping.body_atoms
    in
    match bad_atom with
    | Some a ->
      Error
        (Printf.sprintf "mapping body atom %s undeclared or wrong arity"
           a.Cq.rel)
    | None -> Ok ()

let make ~tbox ~schema ~mappings =
  let rec check = function
    | [] -> Ok { tbox; schema; mappings }
    | m :: rest ->
      (match validate_mapping schema m with
       | Ok () -> check rest
       | Error _ as e -> e)
  in
  check mappings

let make_exn ~tbox ~schema ~mappings =
  match make ~tbox ~schema ~mappings with
  | Ok t -> t
  | Error msg -> invalid_arg ("Spec.make_exn: " ^ msg)

let tbox t = t.tbox
let schema t = t.schema
let mappings t = t.mappings

let retrieve t inst =
  List.fold_left
    (fun interp m -> Mapping.retrieve m inst interp)
    Interp.empty t.mappings

let pp ppf t =
  Format.fprintf ppf "@[<v>TBox:@,%a@,Mappings:@,%a@]" Tbox.pp t.tbox
    (Format.pp_print_list Mapping.pp)
    t.mappings
