open Whynot_relational
open Whynot_dllite

let is_ontology_query tbox (q : Cq.t) =
  let concepts = Tbox.atomic_concepts tbox in
  let roles = Tbox.atomic_roles tbox in
  List.for_all
    (fun (a : Cq.atom) ->
       match a.Cq.args with
       | [ _ ] -> List.mem a.Cq.rel concepts
       | [ _; _ ] -> List.mem a.Cq.rel roles
       | _ -> false)
    q.Cq.atoms

(* --- boundness --- *)

let occurrences (q : Cq.t) =
  let tbl = Hashtbl.create 16 in
  let bump = function
    | Cq.Var v ->
      Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v))
    | Cq.Const _ -> ()
  in
  List.iter bump q.Cq.head;
  (* Head occurrences count twice so head variables are always bound. *)
  List.iter bump q.Cq.head;
  List.iter (fun (a : Cq.atom) -> List.iter bump a.Cq.args) q.Cq.atoms;
  tbl

let is_bound occ = function
  | Cq.Const _ -> true
  | Cq.Var v -> Option.value ~default:0 (Hashtbl.find_opt occ v) > 1

(* --- atom rewriting by a positive inclusion --- *)

let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Cq.Var (Printf.sprintf "_%d" !fresh_counter)

(* Replacement atoms for the basic concept [lhs] applied at argument [t]. *)
let atom_of_basic lhs t =
  match lhs with
  | Dl.Atom a1 -> { Cq.rel = a1; args = [ t ] }
  | Dl.Exists (Dl.Named p1) -> { Cq.rel = p1; args = [ t; fresh_var () ] }
  | Dl.Exists (Dl.Inv p1) -> { Cq.rel = p1; args = [ fresh_var (); t ] }

(* All single-step rewritings of atom [g] (at occurrence-index [i] in [q])
   by the TBox's positive inclusions. *)
let atom_rewritings tbox occ (g : Cq.atom) =
  let axioms = Tbox.axioms tbox in
  match g.Cq.args with
  | [ t ] ->
    (* Concept atom A(t). *)
    List.filter_map
      (fun ax ->
         match ax with
         | Tbox.Concept_incl (lhs, Dl.B (Dl.Atom a)) when String.equal a g.Cq.rel ->
           Some (atom_of_basic lhs t)
         | _ -> None)
      axioms
  | [ t1; t2 ] ->
    (* Role atom P(t1, t2). *)
    let role_rewrites =
      List.filter_map
        (fun ax ->
           match ax with
           | Tbox.Role_incl (r1, Dl.R r2) ->
             (match r2 with
              | Dl.Named p when String.equal p g.Cq.rel ->
                Some
                  (match r1 with
                   | Dl.Named p1 -> { Cq.rel = p1; args = [ t1; t2 ] }
                   | Dl.Inv p1 -> { Cq.rel = p1; args = [ t2; t1 ] })
              | Dl.Inv p when String.equal p g.Cq.rel ->
                Some
                  (match r1 with
                   | Dl.Named p1 -> { Cq.rel = p1; args = [ t2; t1 ] }
                   | Dl.Inv p1 -> { Cq.rel = p1; args = [ t1; t2 ] })
              | _ -> None)
           | _ -> None)
        axioms
    in
    let concept_rewrites =
      List.filter_map
        (fun ax ->
           match ax with
           | Tbox.Concept_incl (lhs, Dl.B (Dl.Exists r)) ->
             (match r with
              | Dl.Named p when String.equal p g.Cq.rel && not (is_bound occ t2) ->
                Some (atom_of_basic lhs t1)
              | Dl.Inv p when String.equal p g.Cq.rel && not (is_bound occ t1) ->
                Some (atom_of_basic lhs t2)
              | _ -> None)
           | _ -> None)
        axioms
    in
    role_rewrites @ concept_rewrites
  | _ -> []

(* --- reduce: unify two atoms of a disjunct --- *)

let unify_atoms (a1 : Cq.atom) (a2 : Cq.atom) =
  if not (String.equal a1.Cq.rel a2.Cq.rel)
     || List.length a1.Cq.args <> List.length a2.Cq.args
  then None
  else
    let apply subst = function
      | Cq.Var v as t ->
        (match List.assoc_opt v subst with Some t' -> t' | None -> t)
      | Cq.Const _ as t -> t
    in
    let rec solve subst = function
      | [] -> Some subst
      | (t1, t2) :: rest ->
        let t1 = apply subst t1 and t2 = apply subst t2 in
        (match t1, t2 with
         | Cq.Const c1, Cq.Const c2 ->
           if Value.equal c1 c2 then solve subst rest else None
         | Cq.Var v, t | t, Cq.Var v ->
           if t = Cq.Var v then solve subst rest
           else
             let subst =
               (v, t) :: List.map (fun (x, u) -> (x, apply [ (v, t) ] u)) subst
             in
             solve subst rest)
    in
    solve [] (List.combine a1.Cq.args a2.Cq.args)

let reduce_steps (q : Cq.t) =
  let n = List.length q.Cq.atoms in
  let results = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a1 = List.nth q.Cq.atoms i and a2 = List.nth q.Cq.atoms j in
      match unify_atoms a1 a2 with
      | None -> ()
      | Some subst ->
        let q' = Cq.substitute subst q in
        (* Drop the now-duplicate atom. *)
        let atoms = List.sort_uniq Stdlib.compare q'.Cq.atoms in
        results :=
          Cq.make ~head:q'.Cq.head ~atoms ~comparisons:q'.Cq.comparisons ()
          :: !results
    done
  done;
  !results

(* --- canonical form for deduplication --- *)

let canonical (q : Cq.t) =
  let rename q =
    let mapping = Hashtbl.create 16 in
    let next = ref 0 in
    let rn = function
      | Cq.Const _ as t -> t
      | Cq.Var v ->
        (match Hashtbl.find_opt mapping v with
         | Some v' -> Cq.Var v'
         | None ->
           let v' = Printf.sprintf "v%d" !next in
           incr next;
           Hashtbl.add mapping v v';
           Cq.Var v')
    in
    let head = List.map rn q.Cq.head in
    let atoms =
      List.map (fun (a : Cq.atom) -> { a with Cq.args = List.map rn a.Cq.args })
        q.Cq.atoms
    in
    Cq.make ~head ~atoms ~comparisons:q.Cq.comparisons ()
  in
  let sort q =
    Cq.make ~head:q.Cq.head
      ~atoms:(List.sort_uniq Stdlib.compare q.Cq.atoms)
      ~comparisons:q.Cq.comparisons ()
  in
  (* Rename, sort, rename, sort: a cheap approximate canonicaliser that is
     stable for the query shapes PerfectRef produces. *)
  sort (rename (sort (rename q)))

let max_rewriting_set = 20_000

let rewrite tbox q =
  let seen = Hashtbl.create 64 in
  let key q = canonical q in
  let add q frontier =
    let k = key q in
    if Hashtbl.mem seen k then frontier
    else begin
      Hashtbl.add seen k ();
      k :: frontier
    end
  in
  let rec saturate frontier acc =
    if List.length acc > max_rewriting_set then acc
    else
      match frontier with
      | [] -> acc
      | q :: rest ->
        let occ = occurrences q in
        let one_step =
          List.concat
            (List.mapi
               (fun i (g : Cq.atom) ->
                  List.map
                    (fun g' ->
                       let atoms =
                         List.mapi (fun j a -> if j = i then g' else a) q.Cq.atoms
                       in
                       Cq.make ~head:q.Cq.head ~atoms
                         ~comparisons:q.Cq.comparisons ())
                    (atom_rewritings tbox occ g))
               q.Cq.atoms)
          @ reduce_steps q
        in
        let frontier' = List.fold_left (fun f q' -> add q' f) rest one_step in
        saturate frontier' (q :: acc)
  in
  let q0 = key q in
  Hashtbl.add seen q0 ();
  Ucq.make (List.rev (saturate [ q0 ] []))

let certain_answers induced q =
  let abox_instance = Interp.to_instance (Induced.retrieved induced) in
  Ucq.eval (rewrite (Spec.tbox (Induced.spec induced)) q) abox_instance
