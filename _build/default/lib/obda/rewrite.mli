(** PerfectRef: certain answers for conjunctive queries posed against the
    ontology of an OBDA specification.

    The paper's §7 suggests applying the why-not framework "to queries
    posed against the ontology in an OBDA setting"; this module supplies
    the missing machinery — the classical query-rewriting algorithm for
    DL-LiteR (Calvanese et al. 2007, cited as [12]): a CQ over atomic
    concepts (unary atoms [A(x)]) and atomic roles (binary atoms
    [P(x, y)]) is rewritten, using the TBox's positive inclusions, into a
    UCQ whose evaluation over the retrieved assertions computes the
    certain answers.

    Rewriting steps, per disjunct and atom:
    - {b atom rewriting} by an applicable positive inclusion, e.g.
      [A1 ⊑ A] turns [A(x)] into [A1(x)]; [A ⊑ ∃P] turns [P(x, y)] with
      [y] unbound into [A(x)]; role inclusions rewrite role atoms
      (possibly swapping arguments for inverses);
    - {b reduce}: unifying two atoms of one disjunct, which can render
      variables unbound and enable further rewritings (needed for joins
      that travel through existentially implied role edges).

    The certain-answer semantics assumes the retrieved assertions are
    consistent with the TBox ({!Induced.consistent}). *)

open Whynot_relational

val is_ontology_query : Whynot_dllite.Tbox.t -> Cq.t -> bool
(** All atoms are unary over atomic concepts or binary over atomic roles of
    the TBox's signature. *)

val rewrite : Whynot_dllite.Tbox.t -> Cq.t -> Ucq.t
(** The perfect rewriting. Terminates (the disjunct count is bounded by the
    signature); disjuncts are deduplicated modulo variable renaming. *)

val certain_answers : Induced.t -> Cq.t -> Relation.t
(** Evaluate the rewriting over the prepared instance's retrieved
    assertions. (Ontology-level why-not questions are assembled in
    {!Whynot_core.Obda_whynot}.) *)
