(** OBDA specifications (Definition 4.3): a triple [B = (T, S, M)] of a
    DL-LiteR TBox, a relational schema, and GAV mapping assertions from [S]
    to the concepts/roles of [T]. *)

open Whynot_relational
open Whynot_dllite

type t

val make :
  tbox:Tbox.t -> schema:Schema.t -> mappings:Mapping.t list -> (t, string) result
(** Validates: mapping bodies range over declared relations with correct
    arities, mappings are safe, and mapping heads use the TBox signature
    (heads over concepts/roles absent from the TBox are allowed — they are
    simply unconstrained — but get a warning-free pass). *)

val make_exn :
  tbox:Tbox.t -> schema:Schema.t -> mappings:Mapping.t list -> t

val tbox : t -> Tbox.t
val schema : t -> Schema.t
val mappings : t -> Mapping.t list

val retrieve : t -> Instance.t -> Interp.t
(** The minimal (ΦC, ΦR)-interpretation of the retrieved assertions: the
    union over all mapping assertions of the facts their bodies derive from
    the instance. This is the least solution w.r.t. the mappings alone
    (ignoring TBox axioms). *)

val pp : Format.formatter -> t -> unit
