open Whynot_relational

type head =
  | Concept_of of string * string
  | Role_of of string * string * string

type t = {
  body_atoms : Cq.atom list;
  body_comparisons : Cq.comparison list;
  head : head;
}

let make ?(comparisons = []) ~head body_atoms =
  { body_atoms; body_comparisons = comparisons; head }

let head_vars m =
  match m.head with
  | Concept_of (_, x) -> [ x ]
  | Role_of (_, x, y) -> if String.equal x y then [ x ] else [ x; y ]

let body_cq m =
  let head_terms =
    match m.head with
    | Concept_of (_, x) -> [ Cq.Var x ]
    | Role_of (_, x, y) -> [ Cq.Var x; Cq.Var y ]
  in
  Cq.make ~head:head_terms ~atoms:m.body_atoms
    ~comparisons:m.body_comparisons ()

let is_safe m = Cq.is_safe (body_cq m)

let retrieve m inst interp =
  let answers = Cq.eval (body_cq m) inst in
  Relation.fold
    (fun tuple interp ->
       match m.head with
       | Concept_of (a, _) ->
         Whynot_dllite.Interp.add_concept_member a (Tuple.get tuple 1) interp
       | Role_of (p, _, _) ->
         Whynot_dllite.Interp.add_role_edge p (Tuple.get tuple 1)
           (Tuple.get tuple 2) interp)
    answers interp

let pp ppf m =
  let pp_head ppf = function
    | Concept_of (a, x) -> Format.fprintf ppf "%s(%s)" a x
    | Role_of (p, x, y) -> Format.fprintf ppf "%s(%s, %s)" p x y
  in
  let body = body_cq m in
  Format.fprintf ppf "@[<hov2>%a ->@ %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a : Cq.atom) ->
          Format.fprintf ppf "%s(%a)" a.Cq.rel
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Cq.pp_term)
            a.Cq.args))
    body.Cq.atoms pp_head m.head
