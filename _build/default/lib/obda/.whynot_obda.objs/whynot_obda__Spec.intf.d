lib/obda/spec.mli: Format Instance Interp Mapping Schema Tbox Whynot_dllite Whynot_relational
