lib/obda/induced.mli: Dl Instance Interp Reasoner Spec Value Value_set Whynot_dllite Whynot_relational
