lib/obda/induced.ml: Dl Format Instance Interp List Printf Reasoner Spec Tbox Value Value_set Whynot_dllite Whynot_relational
