lib/obda/rewrite.ml: Cq Dl Hashtbl Induced Interp List Option Printf Spec Stdlib String Tbox Ucq Value Whynot_dllite Whynot_relational
