lib/obda/spec.ml: Cq Format Interp List Mapping Printf Schema Tbox Whynot_dllite Whynot_relational
