lib/obda/mapping.ml: Cq Format Relation String Tuple Whynot_dllite Whynot_relational
