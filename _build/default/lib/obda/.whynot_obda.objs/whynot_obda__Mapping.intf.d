lib/obda/mapping.mli: Cq Format Instance Whynot_dllite Whynot_relational
