lib/obda/rewrite.mli: Cq Induced Relation Ucq Whynot_dllite Whynot_relational
