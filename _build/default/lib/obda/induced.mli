(** The S-ontology induced by an OBDA specification (Definition 4.4).

    For a DL-LiteR TBox with GAV mappings, the certain extension of a basic
    concept [C] w.r.t. an instance [I],

    {v ext_OB(C, I) = ∩ { I(C) | I a solution for I w.r.t. B } v}

    is computed in polynomial time (Theorem 4.1(2)): a constant [c] belongs
    to it iff some assertion retrieved by the mappings places [c] in a basic
    concept [B0] with [T ⊨ B0 ⊑ C] — i.e. membership is derived from the
    retrieved ABox by forward-chaining the positive closure. (Existentially
    generated anonymous witnesses never surface as named constants, so this
    is complete for GAV + DL-LiteR.) *)

open Whynot_relational
open Whynot_dllite

type t
(** An induced ontology, prepared for one fixed instance: the saturated TBox
    together with the assertions retrieved from that instance. *)

val prepare : Spec.t -> Instance.t -> t

val reasoner : t -> Reasoner.t

val spec : t -> Spec.t

val retrieved : t -> Interp.t
(** The raw retrieved assertions (before TBox saturation). *)

val instance : t -> Instance.t
(** The database instance this ontology was prepared against. *)

val concepts : t -> Dl.basic list
(** [C_OB]: the basic concept expressions occurring in the TBox. *)

val subsumes : t -> Dl.basic -> Dl.basic -> bool
(** [⊑_OB]: subsumption relative to the TBox. *)

val extension : t -> Dl.basic -> Value_set.t
(** [ext_OB(C, I)] for the prepared instance (cached). *)

val base_concepts_of : t -> Value.t -> Dl.basic list
(** The basic concepts directly asserted for a constant by the retrieved
    assertions (before closure): [A] for retrieved [A(c)], [∃P] for
    retrieved [P(c, d)], [∃P⁻] for retrieved [P(d, c)]. *)

val consistent : t -> (unit, string) result
(** Whether the retrieved assertions are consistent with the TBox: no
    constant is forced into two disjoint basic concepts, no retrieved role
    edge lies in two disjoint roles, and nothing is asserted into an
    unsatisfiable concept. When inconsistent, no solution exists and certain
    extensions are not meaningful; {!extension} still returns the
    positive-closure answer. *)
