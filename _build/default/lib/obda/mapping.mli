(** GAV mapping assertions (Definition 4.2): first-order sentences

    {v forall x. phi_1(x_1), ..., phi_n(x_n) -> psi(x) v}

    where the [phi_i] are atoms over the relational schema [S] (comparisons
    to constants are also allowed, as mapping bodies are conjunctive
    queries) and [psi] is an atomic assertion [A(x_i)] over an atomic
    concept or [P(x_i, x_j)] over an atomic role. *)

open Whynot_relational

type head =
  | Concept_of of string * string
    (** [Concept_of (a, x)]: head [A(x)] for atomic concept [a] *)
  | Role_of of string * string * string
    (** [Role_of (p, x, y)]: head [P(x, y)] for atomic role [p] *)

type t = {
  body_atoms : Cq.atom list;
  body_comparisons : Cq.comparison list;
  head : head;
}

val make :
  ?comparisons:Cq.comparison list -> head:head -> Cq.atom list -> t

val head_vars : t -> string list

val is_safe : t -> bool
(** Every head variable occurs in a body atom. *)

val body_cq : t -> Cq.t
(** The CQ whose answers are the assertions retrieved by this mapping: its
    head lists the mapping's head variables. *)

val retrieve : t -> Instance.t -> Whynot_dllite.Interp.t -> Whynot_dllite.Interp.t
(** Add to the interpretation all assertions this mapping retrieves from the
    instance. *)

val pp : Format.formatter -> t -> unit
