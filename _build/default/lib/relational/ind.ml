type t = {
  lhs_rel : string;
  lhs_attrs : int list;
  rhs_rel : string;
  rhs_attrs : int list;
}

let make ~lhs_rel ~lhs_attrs ~rhs_rel ~rhs_attrs =
  if List.length lhs_attrs <> List.length rhs_attrs then
    invalid_arg "Ind.make: attribute lists of different lengths";
  { lhs_rel; lhs_attrs; rhs_rel; rhs_attrs }

let violations ind ~lhs ~rhs =
  let projected_rhs = Relation.project ind.rhs_attrs rhs in
  Relation.fold
    (fun t acc ->
       let p = Tuple.proj ind.lhs_attrs t in
       if Relation.mem p projected_rhs then acc else p :: acc)
    lhs []

let satisfied_in ind ~lhs ~rhs = violations ind ~lhs ~rhs = []

let unary_edges inds =
  List.concat_map
    (fun ind ->
       List.map2
         (fun a b -> ((ind.lhs_rel, a), (ind.rhs_rel, b)))
         ind.lhs_attrs ind.rhs_attrs)
    inds

let unary_reachable inds start =
  let edges = unary_edges inds in
  let module S = Set.Make (struct
      type t = string * int
      let compare = Stdlib.compare
    end)
  in
  let rec loop frontier seen =
    match frontier with
    | [] -> S.elements seen
    | p :: rest ->
      let nexts =
        List.filter_map
          (fun (src, dst) ->
             if src = p && not (S.mem dst seen) then Some dst else None)
          edges
      in
      loop (nexts @ rest) (List.fold_left (fun s d -> S.add d s) seen nexts)
  in
  loop [ start ] (S.singleton start)

let pp ppf ind =
  let pp_attrs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int
  in
  Format.fprintf ppf "%s[%a] <= %s[%a]" ind.lhs_rel pp_attrs ind.lhs_attrs
    ind.rhs_rel pp_attrs ind.rhs_attrs
