type rel_decl = {
  name : string;
  attrs : string list;
}

type t = {
  rels : rel_decl list;
  fds : Fd.t list;
  inds : Ind.t list;
  views : View.t;
}

let ( let* ) r f = Result.bind r f

let find_rel t name = List.find_opt (fun r -> String.equal r.name name) t.rels

let arity t name = Option.map (fun r -> List.length r.attrs) (find_rel t name)

let check_unique_names rels =
  let names = List.map (fun r -> r.name) rels in
  match
    List.find_opt
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  with
  | Some n -> Error (Printf.sprintf "duplicate relation %s" n)
  | None -> Ok ()

let check_attr_range rels ~what name attrs_used =
  match List.find_opt (fun r -> String.equal r.name name) rels with
  | None -> Error (Printf.sprintf "%s mentions undeclared relation %s" what name)
  | Some r ->
    let k = List.length r.attrs in
    (match List.find_opt (fun a -> a < 1 || a > k) attrs_used with
     | Some a ->
       Error
         (Printf.sprintf "%s: attribute %d out of range 1..%d for %s" what a k
            name)
     | None -> Ok ())

let rec check_all = function
  | [] -> Ok ()
  | r :: rest ->
    let* () = r in
    check_all rest

let make ?(fds = []) ?(inds = []) ?(views = []) rels =
  let* () = check_unique_names rels in
  let* view_coll =
    match View.make views with
    | Ok v -> Ok v
    | Error msg -> Error ("views: " ^ msg)
  in
  let* () =
    check_all
      (List.map
         (fun (d : View.def) ->
            if List.exists (fun r -> String.equal r.name d.name) rels then
              let declared =
                List.length
                  (List.find (fun r -> String.equal r.name d.name) rels).attrs
              in
              if declared = Ucq.arity d.body then Ok ()
              else
                Error
                  (Printf.sprintf "view %s has arity %d but body arity %d"
                     d.name declared (Ucq.arity d.body))
            else Error (Printf.sprintf "view %s not declared as a relation" d.name))
         views)
  in
  let* () =
    check_all
      (List.map
         (fun (fd : Fd.t) ->
            check_attr_range rels ~what:"FD" fd.rel (fd.lhs @ fd.rhs))
         fds)
  in
  let* () =
    check_all
      (List.concat_map
         (fun (ind : Ind.t) ->
            [
              check_attr_range rels ~what:"IND" ind.lhs_rel ind.lhs_attrs;
              check_attr_range rels ~what:"IND" ind.rhs_rel ind.rhs_attrs;
            ])
         inds)
  in
  Ok { rels; fds; inds; views = view_coll }

let make_exn ?fds ?inds ?views rels =
  match make ?fds ?inds ?views rels with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schema.make_exn: " ^ msg)

let relations t = t.rels
let relation_names t = List.map (fun r -> r.name) t.rels

let data_relation_names t =
  let vnames = View.view_names t.views in
  List.filter (fun n -> not (List.mem n vnames)) (relation_names t)

let attrs t name = Option.map (fun r -> r.attrs) (find_rel t name)

let attr_index t ~rel name =
  match find_rel t rel with
  | None -> None
  | Some r ->
    let rec loop i = function
      | [] -> None
      | a :: rest -> if String.equal a name then Some i else loop (i + 1) rest
    in
    loop 1 r.attrs

let attr_name t ~rel i =
  match find_rel t rel with
  | None -> None
  | Some r -> List.nth_opt r.attrs (i - 1)

let fds t = t.fds
let inds t = t.inds
let views t = t.views
let has_views t = View.view_names t.views <> []

let positions t =
  List.concat_map
    (fun r -> List.mapi (fun i _ -> (r.name, i + 1)) r.attrs)
    t.rels

let max_arity t =
  List.fold_left (fun m r -> max m (List.length r.attrs)) 0 t.rels

let conforms t inst =
  check_all
    (List.map
       (fun name ->
          match Instance.relation inst name with
          | None -> Ok ()
          | Some r ->
            let declared = Option.get (arity t name) in
            if Relation.arity r = declared || Relation.is_empty r then Ok ()
            else
              Error
                (Printf.sprintf "relation %s has arity %d, declared %d" name
                   (Relation.arity r) declared))
       (relation_names t))
  |> fun res ->
  let* () = res in
  match
    List.find_opt
      (fun n -> not (List.mem n (relation_names t)))
      (Instance.relation_names inst)
  with
  | Some n -> Error (Printf.sprintf "undeclared relation %s in instance" n)
  | None -> Ok ()

let complete t inst =
  let data = Instance.restrict (data_relation_names t) inst in
  View.materialise t.views data

let satisfies t inst =
  let* () = conforms t inst in
  let rel name =
    Instance.relation_or_empty inst
      ~arity:(Option.value ~default:0 (arity t name))
      name
  in
  let* () =
    check_all
      (List.map
         (fun (fd : Fd.t) ->
            if Fd.satisfied_in fd (rel fd.rel) then Ok ()
            else Error (Format.asprintf "FD violated: %a" Fd.pp fd))
         t.fds)
  in
  let* () =
    check_all
      (List.map
         (fun (ind : Ind.t) ->
            if Ind.satisfied_in ind ~lhs:(rel ind.lhs_rel) ~rhs:(rel ind.rhs_rel)
            then Ok ()
            else Error (Format.asprintf "IND violated: %a" Ind.pp ind))
         t.inds)
  in
  check_all
    (List.map
       (fun (d : View.def) ->
          let expected = Instance.relation_or_empty
              ~arity:(Ucq.arity d.body)
              (complete t inst) d.name
          in
          if Relation.equal (rel d.name) expected then Ok ()
          else Error (Printf.sprintf "view %s differs from its definition" d.name))
       (View.defs t.views))

let pp ppf t =
  List.iter
    (fun r ->
       Format.fprintf ppf "%s(%s)@." r.name (String.concat ", " r.attrs))
    t.rels;
  List.iter (fun fd -> Format.fprintf ppf "%a@." Fd.pp fd) t.fds;
  List.iter (fun ind -> Format.fprintf ppf "%a@." Ind.pp ind) t.inds;
  View.pp ppf t.views
