(** Why-provenance: the low-level counterpart of the paper's high-level
    explanations.

    The introduction contrasts ontology-based why-not explanations with the
    classical lineage of {e present} tuples: a tuple is in the output
    because specific facts jointly derive it. This module computes those
    derivations — witnesses for a CQ answer, and derivation trees through
    (nested) view definitions — so examples and downstream tools can show
    both levels side by side. *)

type witness = {
  binding : (string * Value.t) list;  (** variable assignment *)
  facts : (string * Tuple.t) list;    (** the facts the atoms map to *)
}

val witnesses : Cq.t -> Instance.t -> Tuple.t -> witness list
(** All ways the instance derives the given answer tuple of the query
    (empty iff the tuple is not an answer). *)

type derivation =
  | Fact of string * Tuple.t
    (** a base fact *)
  | Rule of {
      view : string;
      disjunct : int;      (** which disjunct of the view's UCQ fired *)
      head : Tuple.t;
      premises : derivation list;
    }

val derive :
  View.t -> Instance.t -> string -> Tuple.t -> derivation list
(** Derivation trees for a tuple of a view relation (or the single [Fact]
    when the relation is a base one and contains the tuple). The instance
    must contain the base relations; view relations are evaluated on
    demand. Returns every derivation (exponentially many in pathological
    cases — use {!derive_one} for a single witness). *)

val derive_one : View.t -> Instance.t -> string -> Tuple.t -> derivation option

val pp_derivation : Format.formatter -> derivation -> unit

val leaves : derivation -> (string * Tuple.t) list
(** The base facts supporting a derivation (with duplicates removed). *)
