(** Schemas: relation names with named attributes, plus integrity constraints
    (FDs, INDs) and (possibly nested) UCQ view definitions, as in §2. *)

type rel_decl = {
  name : string;
  attrs : string list; (** attribute names; the arity is the length *)
}

type t

val make :
  ?fds:Fd.t list ->
  ?inds:Ind.t list ->
  ?views:View.def list ->
  rel_decl list ->
  (t, string) result
(** Validates: unique relation names, views well-formed and acyclic, view
    names declared, constraint attributes in range. *)

val make_exn :
  ?fds:Fd.t list ->
  ?inds:Ind.t list ->
  ?views:View.def list ->
  rel_decl list ->
  t

val relations : t -> rel_decl list
val relation_names : t -> string list
val data_relation_names : t -> string list
(** Relations that are not views (the paper's [D]). *)

val arity : t -> string -> int option
val attrs : t -> string -> string list option

val attr_index : t -> rel:string -> string -> int option
(** 1-based position of a named attribute. *)

val attr_name : t -> rel:string -> int -> string option

val fds : t -> Fd.t list
val inds : t -> Ind.t list
val views : t -> View.t
val has_views : t -> bool

val positions : t -> (string * int) list
(** All (relation, attribute) pairs — the atomic selection-free concepts. *)

val max_arity : t -> int

val conforms : t -> Instance.t -> (unit, string) result
(** Relation names declared and arities match. *)

val complete : t -> Instance.t -> Instance.t
(** Materialise all views on top of the instance's data relations,
    overwriting any pre-existing view relations. *)

val satisfies : t -> Instance.t -> (unit, string) result
(** Conformance + every FD, IND holds and every view relation equals its
    definition's extension. *)

val pp : Format.formatter -> t -> unit
