(** Database instances: finite maps from relation names to relations.

    An instance is independent of any schema object; conformance to a schema
    (arities, integrity constraints) is checked by {!Schema}. *)

type t

val empty : t

val add_relation : string -> Relation.t -> t -> t
(** Replaces any previous relation under that name. *)

val add_fact : string -> Value.t list -> t -> t
(** Adds one tuple; creates the relation (with the tuple's arity) if absent.
    @raise Invalid_argument on arity mismatch with an existing relation. *)

val of_facts : (string * Value.t list list) list -> t

val relation : t -> string -> Relation.t option

val relation_or_empty : t -> arity:int -> string -> Relation.t
(** The named relation, or an empty relation of the given arity. *)

val mem_fact : t -> string -> Tuple.t -> bool

val relation_names : t -> string list

val adom : t -> Value_set.t
(** Active domain: all constants occurring in facts. *)

val fact_count : t -> int

val union : t -> t -> t
(** Per-relation union. @raise Invalid_argument on arity clash. *)

val restrict : string list -> t -> t
(** Keep only the named relations. *)

val equal : t -> t -> bool

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
