include Set.Make (Value)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (elements s)

let of_strings ss = of_list (List.map Value.str ss)

let to_sorted_list = elements
