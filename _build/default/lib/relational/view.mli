(** UCQ view definitions and nested UCQ view definitions (§2).

    A collection of view definitions partitions the schema into data
    relations [D] and view relations [V]; each [P] in [V] has exactly one
    definition [P(x) <-> phi_1(x) \/ ... \/ phi_k(x)]. In the nested case
    the disjuncts may mention other views, subject to acyclicity of the
    "depends on" relation — i.e. a non-recursive Datalog program. *)

type def = {
  name : string;
  body : Ucq.t;
}

type t
(** A validated collection of view definitions. *)

val make : def list -> (t, string) result
(** Validates: at most one definition per name, no view atom outside the
    definitions' dependency universe, and acyclicity. *)

val make_exn : def list -> t

val defs : t -> def list

val view_names : t -> string list

val is_view : t -> string -> bool

val depends_on : t -> string -> string list
(** Direct dependencies of a view (views occurring in its definition). *)

val topological_order : t -> string list
(** View names ordered so that every view follows its dependencies. *)

val is_flat : t -> bool
(** No view mentions another view (plain UCQ-view definitions). *)

val is_linear : t -> bool
(** Every disjunct of every definition contains at most one view atom
    (linearly nested UCQ-view definitions). *)

val has_comparisons : t -> bool

val materialise : t -> Instance.t -> Instance.t
(** Extend a base instance with the computed extension of every view, in
    dependency order (non-recursive Datalog evaluation). *)

val unfold_cq : t -> Cq.t -> Cq.t list
(** Expand all view atoms of a CQ into base-schema disjuncts (exponential in
    general). Unsatisfiable expansions are dropped. The resulting CQs mention
    only non-view relations. *)

val unfold_ucq : t -> Ucq.t -> Ucq.t

val pp : Format.formatter -> t -> unit
