(** A relation: a finite set of tuples, all of the same arity.

    The empty relation carries its arity so that projections and products of
    empty relations remain well-typed. *)

type t

val empty : arity:int -> t
val arity : t -> int
val is_empty : t -> bool
val cardinal : t -> int

val add : Tuple.t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val mem : Tuple.t -> t -> bool
val remove : Tuple.t -> t -> t

val of_list : arity:int -> Tuple.t list -> t
val of_value_lists : arity:int -> Value.t list list -> t
val to_list : t -> Tuple.t list

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val filter : (Tuple.t -> bool) -> t -> t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

val project : int list -> t -> t
(** [project [a1; ...; ak] r]: the paper's [pi_{A1,...,Ak}(r)] (1-based,
    duplicates removed — set semantics). *)

val column : int -> t -> Value_set.t
(** [column a r]: the set of values in attribute [a]. *)

val select : (int * Cmp_op.t * Value.t) list -> t -> t
(** [select conds r]: tuples satisfying every [attr op const] condition. *)

val values : t -> Value_set.t
(** All constants occurring in the relation. *)

val product : t -> t -> t
(** Cartesian product (arities add up). *)

val pp : Format.formatter -> t -> unit
