type t = {
  arity : int;
  disjuncts : Cq.t list;
}

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: _ as qs ->
    let arity = Cq.arity q in
    if List.exists (fun q' -> Cq.arity q' <> arity) qs then
      invalid_arg "Ucq.make: disjuncts of different arities"
    else { arity; disjuncts = qs }

let of_cq q = { arity = Cq.arity q; disjuncts = [ q ] }

let arity u = u.arity

let eval u inst =
  List.fold_left
    (fun acc q -> Relation.union acc (Cq.eval q inst))
    (Relation.empty ~arity:u.arity)
    u.disjuncts

let holds u inst = List.exists (fun q -> Cq.holds q inst) u.disjuncts

let constants u =
  List.fold_left
    (fun acc q -> Value_set.union acc (Cq.constants q))
    Value_set.empty u.disjuncts

let rename_apart ~suffix u =
  { u with disjuncts = List.map (Cq.rename_apart ~suffix) u.disjuncts }

let atoms_relations u =
  List.sort_uniq String.compare
    (List.concat_map
       (fun q -> List.map (fun (a : Cq.atom) -> a.rel) q.Cq.atoms)
       u.disjuncts)

let pp ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ | ")
    Cq.pp ppf u.disjuncts
