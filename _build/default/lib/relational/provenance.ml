type witness = {
  binding : (string * Value.t) list;
  facts : (string * Tuple.t) list;
}

let witnesses q inst answer =
  (* Bind the head to the answer tuple, then enumerate satisfying
     assignments of the body. *)
  let head_constraints =
    List.mapi (fun i t -> (i + 1, t)) q.Cq.head
  in
  (* Build the head substitution, failing on conflicts: a repeated head
     variable must receive equal components, a constant component must
     match the answer. *)
  let subst, consistent =
    List.fold_left
      (fun (subst, ok) (i, t) ->
         if not ok then (subst, false)
         else
           match t with
           | Cq.Const c -> (subst, Value.equal c (Tuple.get answer i))
           | Cq.Var v ->
             let value = Tuple.get answer i in
             (match List.assoc_opt v subst with
              | Some (Cq.Const prev) -> (subst, Value.equal prev value)
              | Some _ -> (subst, false)
              | None -> ((v, Cq.Const value) :: subst, ok)))
      ([], true) head_constraints
  in
  if not consistent then []
  else
    let bound = Cq.substitute subst q in
    List.map
      (fun binding ->
         let lookup t =
           match t with
           | Cq.Const c -> c
           | Cq.Var v ->
             (match List.assoc_opt v binding with
              | Some c -> c
              | None -> Value.Str "?")
         in
         let facts =
           List.map
             (fun (a : Cq.atom) ->
                (a.Cq.rel, Tuple.of_list (List.map lookup a.Cq.args)))
             bound.Cq.atoms
         in
         { binding; facts })
      (Cq.eval_assignments bound inst)

type derivation =
  | Fact of string * Tuple.t
  | Rule of {
      view : string;
      disjunct : int;
      head : Tuple.t;
      premises : derivation list;
    }

(* Cartesian product of derivation choices for a list of premises. *)
let rec combinations = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = combinations rest in
    List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices

let rec derive views inst rel tuple =
  match List.find_opt (fun (d : View.def) -> String.equal d.View.name rel)
          (View.defs views)
  with
  | None ->
    if Instance.mem_fact inst rel tuple then [ Fact (rel, tuple) ] else []
  | Some def ->
    (* Evaluate against the materialised instance so nested views resolve. *)
    let full = View.materialise views inst in
    List.concat
      (List.mapi
         (fun disjunct_index disjunct ->
            List.concat_map
              (fun w ->
                 let premise_choices =
                   List.map
                     (fun (prem_rel, prem_tuple) ->
                        derive views inst prem_rel prem_tuple)
                     w.facts
                 in
                 if List.exists (fun cs -> cs = []) premise_choices then []
                 else
                   List.map
                     (fun premises ->
                        Rule { view = rel; disjunct = disjunct_index;
                               head = tuple; premises })
                     (combinations premise_choices))
              (witnesses disjunct full tuple))
         def.View.body.Ucq.disjuncts)

let derive_one views inst rel tuple =
  match derive views inst rel tuple with
  | [] -> None
  | d :: _ -> Some d

let rec pp_derivation ppf = function
  | Fact (rel, t) -> Format.fprintf ppf "%s%a" rel Tuple.pp t
  | Rule { view; disjunct; head; premises } ->
    Format.fprintf ppf "@[<v2>%s%a  [rule %d]%a@]" view Tuple.pp head
      disjunct
      (fun ppf prems ->
         List.iter (fun p -> Format.fprintf ppf "@,<- %a" pp_derivation p) prems)
      premises

let leaves d =
  let rec go acc = function
    | Fact (rel, t) -> (rel, t) :: acc
    | Rule { premises; _ } -> List.fold_left go acc premises
  in
  List.sort_uniq Stdlib.compare (go [] d)
