lib/relational/containment.ml: Cq Interval List Relation Ucq Value Value_set
