lib/relational/ucq.ml: Cq Format List Relation String Value_set
