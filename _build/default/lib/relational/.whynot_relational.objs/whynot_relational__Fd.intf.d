lib/relational/fd.mli: Format Relation Tuple
