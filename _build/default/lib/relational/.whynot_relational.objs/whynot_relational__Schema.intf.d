lib/relational/schema.mli: Fd Format Ind Instance View
