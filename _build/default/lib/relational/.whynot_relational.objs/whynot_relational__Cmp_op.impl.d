lib/relational/cmp_op.ml: Format Value
