lib/relational/value_set.mli: Format Set Value
