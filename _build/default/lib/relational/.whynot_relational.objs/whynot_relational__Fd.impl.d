lib/relational/fd.ml: Format Int List Relation Set Stdlib String Tuple Value
