lib/relational/ind.mli: Format Relation Tuple
