lib/relational/instance.ml: Format List Map Relation String Tuple Value_set
