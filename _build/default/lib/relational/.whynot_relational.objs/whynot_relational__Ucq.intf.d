lib/relational/ucq.mli: Cq Format Instance Relation Value_set
