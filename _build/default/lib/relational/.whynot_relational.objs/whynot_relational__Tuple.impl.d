lib/relational/tuple.ml: Array Format List Printf Stdlib Value
