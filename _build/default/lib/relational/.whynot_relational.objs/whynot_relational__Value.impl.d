lib/relational/value.ml: Format Hashtbl Option Stdlib String
