lib/relational/view.ml: Cmp_op Cq Format Instance List Printf Set String Ucq Value
