lib/relational/cq.ml: Cmp_op Format Instance Interval List Option Relation Stdlib String Tuple Value Value_set
