lib/relational/relation.ml: Cmp_op Format List Printf Set Stdlib Tuple Value_set
