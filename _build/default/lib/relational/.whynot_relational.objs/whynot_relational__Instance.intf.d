lib/relational/instance.mli: Format Relation Tuple Value Value_set
