lib/relational/value_set.ml: Format List Set Value
