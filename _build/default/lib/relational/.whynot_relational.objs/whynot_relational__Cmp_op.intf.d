lib/relational/cmp_op.mli: Format Value
