lib/relational/view.mli: Cq Format Instance Ucq
