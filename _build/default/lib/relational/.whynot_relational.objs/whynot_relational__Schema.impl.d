lib/relational/schema.ml: Fd Format Ind Instance List Option Printf Relation Result String Ucq View
