lib/relational/interval.ml: Cmp_op Format Option Value
