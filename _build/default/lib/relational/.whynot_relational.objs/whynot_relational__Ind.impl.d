lib/relational/ind.ml: Format List Relation Set Stdlib Tuple
