lib/relational/containment.mli: Cq Instance Tuple Ucq Value_set
