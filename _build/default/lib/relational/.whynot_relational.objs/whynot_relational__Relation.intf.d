lib/relational/relation.mli: Cmp_op Format Tuple Value Value_set
