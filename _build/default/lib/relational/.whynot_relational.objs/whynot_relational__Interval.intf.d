lib/relational/interval.mli: Cmp_op Format Value
