lib/relational/provenance.ml: Cq Format Instance List Stdlib String Tuple Ucq Value View
