lib/relational/provenance.mli: Cq Format Instance Tuple Value View
