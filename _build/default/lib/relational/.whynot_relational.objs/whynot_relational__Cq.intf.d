lib/relational/cq.mli: Cmp_op Format Instance Interval Relation Tuple Value Value_set
