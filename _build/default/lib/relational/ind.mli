(** Inclusion dependencies [R[A1,...,An] ⊆ S[B1,...,Bn]] (§2). *)

type t = {
  lhs_rel : string;
  lhs_attrs : int list;
  rhs_rel : string;
  rhs_attrs : int list;
}

val make :
  lhs_rel:string -> lhs_attrs:int list ->
  rhs_rel:string -> rhs_attrs:int list -> t
(** @raise Invalid_argument when attribute lists differ in length. *)

val satisfied_in : t -> lhs:Relation.t -> rhs:Relation.t -> bool

val violations : t -> lhs:Relation.t -> rhs:Relation.t -> Tuple.t list
(** Projected LHS tuples missing from the projected RHS. *)

val unary_edges : t list -> ((string * int) * (string * int)) list
(** The positional graph underlying the selection-free ⊑_S decider: each IND
    [R[A1..An] ⊆ S[B1..Bn]] contributes edges [(R,Ai) -> (S,Bi)], meaning
    [pi_{Ai}(R) ⊆ pi_{Bi}(S)] holds in every instance satisfying the INDs. *)

val unary_reachable : t list -> string * int -> (string * int) list
(** Positions reachable (reflexively-transitively) in the {!unary_edges}
    graph. *)

val pp : Format.formatter -> t -> unit
