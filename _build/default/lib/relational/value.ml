type t =
  | Int of int
  | Real of float
  | Str of string

(* Numbers < strings. Among numbers: numeric order, [Int n] just below
   [Real x] at ties so the order stays total and antisymmetric. *)
let compare v1 v2 =
  match v1, v2 with
  | Int a, Int b -> Stdlib.compare a b
  | Real a, Real b -> Stdlib.compare a b
  | Int a, Real b ->
    let c = Stdlib.compare (float_of_int a) b in
    if c <> 0 then c else -1
  | Real a, Int b ->
    let c = Stdlib.compare a (float_of_int b) in
    if c <> 0 then c else 1
  | Str a, Str b -> Stdlib.compare a b
  | (Int _ | Real _), Str _ -> -1
  | Str _, (Int _ | Real _) -> 1

let equal v1 v2 = compare v1 v2 = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Real x -> Hashtbl.hash (1, x)
  | Str s -> Hashtbl.hash (2, s)

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Real x -> Format.fprintf ppf "%g" x
  | Str s -> Format.fprintf ppf "%S" s

let pp_bare ppf = function
  | Str s -> Format.pp_print_string ppf s
  | v -> pp ppf v

let to_string v = Format.asprintf "%a" pp v

let of_string s =
  let s =
    let n = String.length s in
    if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
    else s
  in
  match int_of_string_opt s with
  | Some n -> Int n
  | None ->
    (match float_of_string_opt s with
     | Some x -> Real x
     | None -> Str s)

let int n = Int n
let real x = Real x
let str s = Str s

let to_float = function
  | Int n -> float_of_int n
  | Real x -> x
  | Str _ -> invalid_arg "Value.to_float"

(* A string strictly between [a] and [b] under lexicographic order, if any.
   Appending the minimal character '\001' to [a] yields the least string
   strictly above [a] among extensions of [a]; it is below [b] unless [b] is
   that very string or [a] followed by NUL-like prefixes of it. *)
let between_str a b =
  let cand = a ^ "\001" in
  if Stdlib.compare a cand < 0 && Stdlib.compare cand b < 0 then Some cand
  else None

let between v1 v2 =
  let a, b = if compare v1 v2 <= 0 then v1, v2 else v2, v1 in
  if equal a b then None
  else
    match a, b with
    | (Int _ | Real _), (Int _ | Real _) ->
      let x = to_float a and y = to_float b in
      if x < y then Some (Real ((x +. y) /. 2.))
      else
        (* Same numeric value, i.e. [Int n < Real n]: the gap is empty. *)
        None
    | (Int _ | Real _), Str _ ->
      (* Any number above [a] works, since numbers < strings. *)
      Some (Real (to_float a +. 1.))
    | Str a, Str b -> Option.map str (between_str a b)
    | Str _, (Int _ | Real _) -> assert false

let below = function
  | Int n -> Int (n - 1)
  | Real x -> Real (x -. 1.)
  | Str _ ->
    (* Strings sit above every number. *)
    Real 0.

let above = function
  | Int n -> Int (n + 1)
  | Real x -> Real (x +. 1.)
  | Str s -> Str (s ^ "\001")
