(** Functional dependencies [R : X -> Y], where [X], [Y] are sets of 1-based
    attributes of [R] (§2 of the paper). *)

type t = {
  rel : string;        (** relation name *)
  lhs : int list;      (** determining attributes [X] *)
  rhs : int list;      (** determined attributes [Y] *)
}

val make : rel:string -> lhs:int list -> rhs:int list -> t
(** Normalises both sides (sorted, deduplicated). *)

val satisfied_in : t -> Relation.t -> bool
(** Whether the relation (assumed to be [R]'s extension) satisfies the FD. *)

val violations : t -> Relation.t -> (Tuple.t * Tuple.t) list
(** Pairs of tuples witnessing a violation (empty iff satisfied). *)

val closure : t list -> rel:string -> int list -> int list
(** [closure fds ~rel xs]: the attribute-set closure of [xs] under the FDs on
    [rel] (Armstrong axioms — the standard linear-pass algorithm). *)

val implies : t list -> t -> bool
(** [implies fds fd]: logical implication of FDs, via {!closure}. *)

val pp : Format.formatter -> t -> unit
