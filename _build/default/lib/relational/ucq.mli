(** Unions of conjunctive queries (with comparisons to constants). *)

type t = {
  arity : int;
  disjuncts : Cq.t list;
}

val make : Cq.t list -> t
(** @raise Invalid_argument on empty list or mixed arities. *)

val of_cq : Cq.t -> t

val arity : t -> int

val eval : t -> Instance.t -> Relation.t

val holds : t -> Instance.t -> bool

val constants : t -> Value_set.t

val rename_apart : suffix:string -> t -> t

val atoms_relations : t -> string list
(** Names of relations mentioned in any disjunct (deduplicated). *)

val pp : Format.formatter -> t -> unit
