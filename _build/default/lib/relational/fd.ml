type t = {
  rel : string;
  lhs : int list;
  rhs : int list;
}

let normalise attrs = List.sort_uniq Stdlib.compare attrs

let make ~rel ~lhs ~rhs = { rel; lhs = normalise lhs; rhs = normalise rhs }

let agree_on attrs t1 t2 =
  List.for_all (fun a -> Value.equal (Tuple.get t1 a) (Tuple.get t2 a)) attrs

let violations fd r =
  let tuples = Relation.to_list r in
  let rec pairs acc = function
    | [] -> acc
    | t1 :: rest ->
      let acc =
        List.fold_left
          (fun acc t2 ->
             if agree_on fd.lhs t1 t2 && not (agree_on fd.rhs t1 t2) then
               (t1, t2) :: acc
             else acc)
          acc rest
      in
      pairs acc rest
  in
  pairs [] tuples

let satisfied_in fd r = violations fd r = []

let closure fds ~rel xs =
  let fds = List.filter (fun fd -> String.equal fd.rel rel) fds in
  let module S = Set.Make (Int) in
  let rec fix set =
    let set' =
      List.fold_left
        (fun set fd ->
           if List.for_all (fun a -> S.mem a set) fd.lhs then
             List.fold_left (fun set a -> S.add a set) set fd.rhs
           else set)
        set fds
    in
    if S.equal set set' then set else fix set'
  in
  S.elements (fix (S.of_list xs))

let implies fds fd =
  let cl = closure fds ~rel:fd.rel fd.lhs in
  List.for_all (fun a -> List.mem a cl) fd.rhs

let pp ppf fd =
  let pp_attrs =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      Format.pp_print_int
  in
  Format.fprintf ppf "%s : %a -> %a" fd.rel pp_attrs fd.lhs pp_attrs fd.rhs
