(** Comparison operators for conditions [x op c] (the paper allows
    [=, <, >, <=, >=] against constants; no comparisons between variables). *)

type t =
  | Eq
  | Lt
  | Gt
  | Le
  | Ge

val eval : t -> Value.t -> Value.t -> bool
(** [eval op v c] is [v op c]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> t option

val all : t list
