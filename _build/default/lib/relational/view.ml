type def = {
  name : string;
  body : Ucq.t;
}

type t = {
  defs : def list;
  order : string list; (* dependency-respecting order of view names *)
}

module Str_set = Set.Make (String)

let def_view_mentions all_names d =
  List.filter (fun r -> List.mem r all_names) (Ucq.atoms_relations d.body)

let make defs_list =
  let names = List.map (fun d -> d.name) defs_list in
  let dup =
    List.find_opt
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
  in
  match dup with
  | Some n -> Error (Printf.sprintf "duplicate view definition for %s" n)
  | None ->
    (* Kahn's algorithm for a topological order; failure means a cycle. *)
    let rec topo pending done_rev =
      if pending = [] then Ok (List.rev done_rev)
      else
        let ready, blocked =
          List.partition
            (fun d ->
               List.for_all
                 (fun dep ->
                    not (List.mem dep names)
                    || List.exists (String.equal dep) done_rev)
                 (def_view_mentions names d))
            pending
        in
        if ready = [] then
          Error
            (Printf.sprintf "cyclic view definitions among: %s"
               (String.concat ", " (List.map (fun d -> d.name) blocked)))
        else
          topo blocked
            (List.rev_append (List.map (fun d -> d.name) ready) done_rev)
    in
    (match topo defs_list [] with
     | Error _ as e -> e
     | Ok order -> Ok { defs = defs_list; order })

let make_exn defs_list =
  match make defs_list with
  | Ok t -> t
  | Error msg -> invalid_arg ("View.make_exn: " ^ msg)

let defs t = t.defs
let view_names t = List.map (fun d -> d.name) t.defs
let is_view t name = List.exists (fun d -> String.equal d.name name) t.defs

let find_def t name = List.find_opt (fun d -> String.equal d.name name) t.defs

let depends_on t name =
  match find_def t name with
  | None -> []
  | Some d -> def_view_mentions (view_names t) d

let topological_order t = t.order

let is_flat t = List.for_all (fun d -> depends_on t d.name = []) t.defs

let is_linear t =
  let names = view_names t in
  List.for_all
    (fun d ->
       List.for_all
         (fun (q : Cq.t) ->
            let view_atoms =
              List.filter (fun (a : Cq.atom) -> List.mem a.rel names)
                q.Cq.atoms
            in
            List.length view_atoms <= 1)
         d.body.Ucq.disjuncts)
    t.defs

let has_comparisons t =
  List.exists
    (fun d ->
       List.exists (fun (q : Cq.t) -> q.Cq.comparisons <> [])
         d.body.Ucq.disjuncts)
    t.defs

let materialise t inst =
  List.fold_left
    (fun inst name ->
       match find_def t name with
       | None -> inst
       | Some d -> Instance.add_relation name (Ucq.eval d.body inst) inst)
    inst t.order

(* Unification of a view atom's argument list against a definition
   disjunct's head. Returns substitutions for the host query and for the
   (standardised-apart) disjunct, or [None] if the unification fails on
   constants. *)
let unify_head_args (head_terms : Cq.term list) (atom_args : Cq.term list) =
  (* Equations are solved left to right, maintaining a single substitution
     applied eagerly to the remaining equations. Variables of the disjunct
     are fresh, so a single mixed substitution is sound. *)
  let apply_subst subst = function
    | Cq.Var v as tm ->
      (match List.assoc_opt v subst with Some tm' -> tm' | None -> tm)
    | Cq.Const _ as tm -> tm
  in
  let rec solve subst = function
    | [] -> Some subst
    | (t1, t2) :: rest ->
      let t1 = apply_subst subst t1 and t2 = apply_subst subst t2 in
      (match t1, t2 with
       | Cq.Const c1, Cq.Const c2 ->
         if Value.equal c1 c2 then solve subst rest else None
       | Cq.Var v, tm | tm, Cq.Var v ->
         if tm = Cq.Var v then solve subst rest
         else
           let subst =
             (v, tm)
             :: List.map (fun (x, t) -> (x, apply_subst [ (v, tm) ] t)) subst
           in
           solve subst rest)
  in
  solve [] (List.combine head_terms atom_args)

let splice_counter = ref 0

let splice host ~atom_index (disjunct : Cq.t) : Cq.t option =
  incr splice_counter;
  let d = Cq.rename_apart ~suffix:(Printf.sprintf "~%d" !splice_counter) disjunct in
  let atom = List.nth host.Cq.atoms atom_index in
  match unify_head_args d.Cq.head atom.Cq.args with
  | None -> None
  | Some subst ->
    let host_atoms =
      List.filteri (fun i _ -> i <> atom_index) host.Cq.atoms
    in
    let merged =
      Cq.make ~head:host.Cq.head
        ~atoms:(host_atoms @ d.Cq.atoms)
        ~comparisons:(host.Cq.comparisons @ d.Cq.comparisons)
        ()
    in
    let result = Cq.substitute subst merged in
    if Cq.is_unsatisfiable_syntactic result then None else Some result

let unfold_cq t q =
  let names = view_names t in
  let rec find_index i = function
    | [] -> None
    | (a : Cq.atom) :: rest ->
      if List.mem a.rel names then Some (i, a) else find_index (i + 1) rest
  in
  let rec expand q =
    match find_index 0 q.Cq.atoms with
    | None -> [ q ]
    | Some (atom_index, atom) ->
      (match find_def t atom.rel with
       | None -> [ q ]
       | Some d ->
         List.concat_map
           (fun disjunct ->
              match splice q ~atom_index disjunct with
              | None -> []
              | Some q' -> expand q')
           d.body.Ucq.disjuncts)
  in
  expand q

let unfold_ucq t u =
  let disjuncts = List.concat_map (unfold_cq t) u.Ucq.disjuncts in
  match disjuncts with
  | [] ->
    (* Every expansion was unsatisfiable: represent the empty query as a
       single unsatisfiable CQ of the right arity. *)
    let falsum =
      Cq.make
        ~head:(List.init u.Ucq.arity (fun i -> Cq.Var (Printf.sprintf "x%d" i)))
        ~atoms:[]
        ~comparisons:
          [
            { Cq.subject = "__false__"; op = Cmp_op.Lt; value = Value.Int 0 };
            { Cq.subject = "__false__"; op = Cmp_op.Gt; value = Value.Int 0 };
          ]
        ()
    in
    Ucq.make [ falsum ]
  | _ -> Ucq.make disjuncts

let pp ppf t =
  List.iter
    (fun d ->
       Format.fprintf ppf "@[<hov2>%s <->@ %a@]@." d.name Ucq.pp d.body)
    t.defs
