type bound =
  | Unbounded
  | Open of Value.t
  | Closed of Value.t

type t = {
  lo : bound;
  hi : bound;
}

let top = { lo = Unbounded; hi = Unbounded }

let make lo hi = { lo; hi }

let of_condition op c =
  match op with
  | Cmp_op.Eq -> { lo = Closed c; hi = Closed c }
  | Cmp_op.Lt -> { lo = Unbounded; hi = Open c }
  | Cmp_op.Gt -> { lo = Open c; hi = Unbounded }
  | Cmp_op.Le -> { lo = Unbounded; hi = Closed c }
  | Cmp_op.Ge -> { lo = Closed c; hi = Unbounded }

(* Pick the stronger of two lower bounds. *)
let max_lo b1 b2 =
  match b1, b2 with
  | Unbounded, b | b, Unbounded -> b
  | (Open v1 | Closed v1), (Open v2 | Closed v2) when not (Value.equal v1 v2) ->
    if Value.compare v1 v2 > 0 then b1 else b2
  | Open _, _ -> b1
  | _, Open _ -> b2
  | Closed _, Closed _ -> b1

let min_hi b1 b2 =
  match b1, b2 with
  | Unbounded, b | b, Unbounded -> b
  | (Open v1 | Closed v1), (Open v2 | Closed v2) when not (Value.equal v1 v2) ->
    if Value.compare v1 v2 < 0 then b1 else b2
  | Open _, _ -> b1
  | _, Open _ -> b2
  | Closed _, Closed _ -> b1

let meet i j = { lo = max_lo i.lo j.lo; hi = min_hi i.hi j.hi }

let is_empty i =
  match i.lo, i.hi with
  | Unbounded, _ | _, Unbounded -> false
  | Closed a, Closed b -> Value.compare a b > 0
  | Closed a, Open b | Open a, Closed b -> Value.compare a b >= 0
  | Open a, Open b ->
    Value.compare a b >= 0 || Option.is_none (Value.between a b)

let is_point i =
  if is_empty i then None
  else
    match i.lo, i.hi with
    | Closed a, Closed b when Value.equal a b -> Some a
    | _ -> None

let mem v i =
  (match i.lo with
   | Unbounded -> true
   | Open a -> Value.compare v a > 0
   | Closed a -> Value.compare v a >= 0)
  && (match i.hi with
      | Unbounded -> true
      | Open b -> Value.compare v b < 0
      | Closed b -> Value.compare v b <= 0)

(* [lo_implies b1 b2]: every value satisfying lower bound [b1] also
   satisfies lower bound [b2]. *)
let lo_implies b1 b2 =
  match b1, b2 with
  | _, Unbounded -> true
  | Unbounded, _ -> false
  | Closed a, Closed b | Open a, Open b | Open a, Closed b ->
    Value.compare a b >= 0
  | Closed a, Open b -> Value.compare a b > 0

let hi_implies b1 b2 =
  match b1, b2 with
  | _, Unbounded -> true
  | Unbounded, _ -> false
  | Closed a, Closed b | Open a, Open b | Open a, Closed b ->
    Value.compare a b <= 0
  | Closed a, Open b -> Value.compare a b < 0

let subset i j = is_empty i || (lo_implies i.lo j.lo && hi_implies i.hi j.hi)

let equal i j = subset i j && subset j i

let sample i =
  if is_empty i then None
  else
    match i.lo, i.hi with
    | Closed a, _ when mem a i -> Some a
    | _, Closed b when mem b i -> Some b
    | Unbounded, Unbounded -> Some (Value.Int 0)
    | Unbounded, (Open b | Closed b) -> Some (Value.below b)
    | (Open a | Closed a), Unbounded -> Some (Value.above a)
    | (Open a | Closed a), (Open b | Closed b) -> Value.between a b

let to_conditions i =
  match is_point i with
  | Some c -> [ (Cmp_op.Eq, c) ]
  | None ->
    let lo =
      match i.lo with
      | Unbounded -> []
      | Open a -> [ (Cmp_op.Gt, a) ]
      | Closed a -> [ (Cmp_op.Ge, a) ]
    in
    let hi =
      match i.hi with
      | Unbounded -> []
      | Open b -> [ (Cmp_op.Lt, b) ]
      | Closed b -> [ (Cmp_op.Le, b) ]
    in
    lo @ hi

let pp ppf i =
  let pp_lo ppf = function
    | Unbounded -> Format.pp_print_string ppf "(-inf"
    | Open a -> Format.fprintf ppf "(%a" Value.pp a
    | Closed a -> Format.fprintf ppf "[%a" Value.pp a
  and pp_hi ppf = function
    | Unbounded -> Format.pp_print_string ppf "+inf)"
    | Open b -> Format.fprintf ppf "%a)" Value.pp b
    | Closed b -> Format.fprintf ppf "%a]" Value.pp b
  in
  Format.fprintf ppf "%a, %a" pp_lo i.lo pp_hi i.hi
