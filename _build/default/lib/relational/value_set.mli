(** Finite sets of constants — concept extensions, active domains, columns. *)

include Set.S with type elt = Value.t

val pp : Format.formatter -> t -> unit

val of_strings : string list -> t
(** Convenience: builds a set of [Str] values. *)

val to_sorted_list : t -> Value.t list
