(** Intervals over {!Value.t}, used to reason about conjunctions of
    comparison conditions on a single attribute.

    A conjunction of conditions [x op1 c1, ..., x opn cn] on one attribute
    denotes an interval (possibly a point, possibly empty). Intervals support
    meet (conjunction), emptiness, membership, and inclusion — exactly the
    operations needed by condition-implication tests in concept subsumption
    and CQ containment. *)

type bound =
  | Unbounded
  | Open of Value.t   (** strict bound, excluded *)
  | Closed of Value.t (** inclusive bound *)

type t = private {
  lo : bound;
  hi : bound;
}

val top : t
(** The whole domain. *)

val make : bound -> bound -> t

val of_condition : Cmp_op.t -> Value.t -> t
(** The interval denoted by [x op c]. *)

val meet : t -> t -> t

val is_empty : t -> bool
(** Emptiness in our realisation of [Const]: an open-open interval whose
    endpoints admit no value in between (per {!Value.between}) is empty. *)

val is_point : t -> Value.t option
(** [Some c] when the interval denotes exactly [{c}]. *)

val mem : Value.t -> t -> bool

val subset : t -> t -> bool
(** [subset i j] holds iff every value of [i] belongs to [j]. Exact: empty
    intervals are subsets of everything; bound comparison otherwise, with
    density gaps accounted for via {!Value.between}. *)

val equal : t -> t -> bool
(** Extensional equality (mutual {!subset}). *)

val sample : t -> Value.t option
(** Some value inside the interval, if the interval is non-empty. *)

val to_conditions : t -> (Cmp_op.t * Value.t) list
(** A minimal list of conditions denoting the interval ([[]] for {!top}).
    A point interval becomes a single [=] condition. *)

val pp : Format.formatter -> t -> unit
