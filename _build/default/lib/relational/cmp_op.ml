type t =
  | Eq
  | Lt
  | Gt
  | Le
  | Ge

let eval op v c =
  let d = Value.compare v c in
  match op with
  | Eq -> d = 0
  | Lt -> d < 0
  | Gt -> d > 0
  | Le -> d <= 0
  | Ge -> d >= 0

let to_string = function
  | Eq -> "="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="

let pp ppf op = Format.pp_print_string ppf (to_string op)

let of_string = function
  | "=" -> Some Eq
  | "<" -> Some Lt
  | ">" -> Some Gt
  | "<=" -> Some Le
  | ">=" -> Some Ge
  | _ -> None

let all = [ Eq; Lt; Gt; Le; Ge ]
