(** Constants of the data domain [Const].

    The paper assumes a countably infinite set of constants equipped with a
    dense linear order. We realise [Const] as the disjoint union of integers,
    reals and strings, totally ordered as follows: numbers precede strings;
    numbers are ordered by numeric value, with [Int n] immediately preceding
    [Real x] when [n = x]; strings are ordered lexicographically.

    Density holds on the numeric line (between any two distinct numbers a real
    exists) and almost everywhere on strings; {!between} returns [None] for
    the few gaps. All algorithms that enumerate representative values treat a
    [None] gap as an empty region of the domain, which is sound because the
    region really is empty in our realisation of [Const]. *)

type t =
  | Int of int
  | Real of float
  | Str of string

val compare : t -> t -> int
(** Total order described above. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints integers and reals bare, strings in double quotes. *)

val pp_bare : Format.formatter -> t -> unit
(** Like {!pp} but prints strings without quotes (for tables). *)

val to_string : t -> string

val of_string : string -> t
(** Parses an integer, then a float, then falls back to a string. Quoted
    strings have their quotes stripped. *)

val int : int -> t
val real : float -> t
val str : string -> t

val between : t -> t -> t option
(** [between a b] is a value strictly between [a] and [b] when one exists
    ([a] must be strictly smaller than [b]; the order of arguments is
    normalised internally). *)

val below : t -> t
(** A value strictly smaller than the argument. *)

val above : t -> t
(** A value strictly larger than the argument. *)
