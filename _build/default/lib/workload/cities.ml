open Whynot_relational

let s = Value.str
let i = Value.int

let amsterdam = s "Amsterdam"
let berlin = s "Berlin"
let rome = s "Rome"
let new_york = s "New York"
let san_francisco = s "San Francisco"
let santa_cruz = s "Santa Cruz"
let tokyo = s "Tokyo"
let kyoto = s "Kyoto"

let var v = Cq.Var v
let const c = Cq.Const c
let atom rel args = { Cq.rel; args }

(* --- Figure 1: view definitions --- *)

let big_city_def =
  {
    View.name = "BigCity";
    body =
      Ucq.of_cq
        (Cq.make ~head:[ var "x" ]
           ~atoms:[ atom "Cities" [ var "x"; var "y"; var "z"; var "w" ] ]
           ~comparisons:
             [ { Cq.subject = "y"; op = Cmp_op.Ge; value = i 5000000 } ]
           ());
  }

let european_country_def =
  {
    View.name = "EuropeanCountry";
    body =
      Ucq.of_cq
        (Cq.make ~head:[ var "z" ]
           ~atoms:[ atom "Cities" [ var "x"; var "y"; var "z"; const (s "Europe") ] ]
           ());
  }

let reachable_def =
  {
    View.name = "Reachable";
    body =
      Ucq.make
        [
          Cq.make
            ~head:[ var "x"; var "y" ]
            ~atoms:[ atom "Train-Connections" [ var "x"; var "y" ] ]
            ();
          Cq.make
            ~head:[ var "x"; var "y" ]
            ~atoms:
              [
                atom "Train-Connections" [ var "x"; var "z" ];
                atom "Train-Connections" [ var "z"; var "y" ];
              ]
            ();
        ];
  }

let schema =
  Schema.make_exn
    ~fds:[ Fd.make ~rel:"Cities" ~lhs:[ 3 ] ~rhs:[ 4 ] ]
    ~inds:
      [
        Ind.make ~lhs_rel:"BigCity" ~lhs_attrs:[ 1 ] ~rhs_rel:"Train-Connections"
          ~rhs_attrs:[ 1 ];
        Ind.make ~lhs_rel:"Train-Connections" ~lhs_attrs:[ 1 ] ~rhs_rel:"Cities"
          ~rhs_attrs:[ 1 ];
        Ind.make ~lhs_rel:"Train-Connections" ~lhs_attrs:[ 2 ] ~rhs_rel:"Cities"
          ~rhs_attrs:[ 1 ];
      ]
    ~views:[ big_city_def; european_country_def; reachable_def ]
    [
      { Schema.name = "Cities"; attrs = [ "name"; "population"; "country"; "continent" ] };
      { Schema.name = "Train-Connections"; attrs = [ "city_from"; "city_to" ] };
      { Schema.name = "BigCity"; attrs = [ "name" ] };
      { Schema.name = "EuropeanCountry"; attrs = [ "name" ] };
      { Schema.name = "Reachable"; attrs = [ "city_from"; "city_to" ] };
    ]

(* --- Figure 2: the instance --- *)

let base_instance =
  Instance.of_facts
    [
      ( "Cities",
        [
          [ amsterdam; i 779808; s "Netherlands"; s "Europe" ];
          [ berlin; i 3502000; s "Germany"; s "Europe" ];
          [ rome; i 2753000; s "Italy"; s "Europe" ];
          [ new_york; i 8337000; s "USA"; s "N.America" ];
          [ san_francisco; i 837442; s "USA"; s "N.America" ];
          [ santa_cruz; i 59946; s "USA"; s "N.America" ];
          [ tokyo; i 13185000; s "Japan"; s "Asia" ];
          [ kyoto; i 1400000; s "Japan"; s "Asia" ];
        ] );
      ( "Train-Connections",
        [
          [ amsterdam; berlin ];
          [ berlin; rome ];
          [ berlin; amsterdam ];
          [ new_york; san_francisco ];
          [ san_francisco; santa_cruz ];
          [ tokyo; kyoto ];
        ] );
    ]

let instance = Schema.complete schema base_instance

(* --- Example 3.4: the query and the why-not tuple --- *)

let two_hop_query =
  Cq.make
    ~head:[ var "x"; var "y" ]
    ~atoms:
      [
        atom "Train-Connections" [ var "x"; var "z" ];
        atom "Train-Connections" [ var "z"; var "y" ];
      ]
    ()

let answers = Cq.eval two_hop_query instance

let missing_tuple = [ amsterdam; new_york ]

(* --- Figure 3: the hand ontology --- *)

let hand_concepts =
  [
    "City";
    "European-City";
    "US-City";
    "Dutch-City";
    "East-Coast-City";
    "West-Coast-City";
  ]

let hand_hasse =
  [
    ("European-City", "City");
    ("US-City", "City");
    ("Dutch-City", "European-City");
    ("East-Coast-City", "US-City");
    ("West-Coast-City", "US-City");
  ]

let hand_extensions =
  [
    ( "City",
      [ "Amsterdam"; "Berlin"; "Rome"; "New York"; "San Francisco";
        "Santa Cruz"; "Tokyo"; "Kyoto" ] );
    ("European-City", [ "Amsterdam"; "Berlin"; "Rome" ]);
    ("Dutch-City", [ "Amsterdam" ]);
    ("US-City", [ "New York"; "San Francisco"; "Santa Cruz" ]);
    ("East-Coast-City", [ "New York" ]);
    ("West-Coast-City", [ "Santa Cruz"; "San Francisco" ]);
  ]

(* --- Figure 4: the OBDA specification --- *)

open Whynot_dllite

let a name = Dl.Atom name
let ex p = Dl.Exists (Dl.Named p)
let ex_inv p = Dl.Exists (Dl.Inv p)

let obda_tbox =
  Tbox.make
    [
      Tbox.Concept_incl (a "EU-City", Dl.B (a "City"));
      Tbox.Concept_incl (a "Dutch-City", Dl.B (a "EU-City"));
      Tbox.Concept_incl (a "N.A.-City", Dl.B (a "City"));
      Tbox.Concept_incl (a "EU-City", Dl.Not (a "N.A.-City"));
      Tbox.Concept_incl (a "US-City", Dl.B (a "N.A.-City"));
      Tbox.Concept_incl (a "City", Dl.B (ex "hasCountry"));
      Tbox.Concept_incl (a "Country", Dl.B (ex "hasContinent"));
      Tbox.Concept_incl (ex_inv "hasCountry", Dl.B (a "Country"));
      Tbox.Concept_incl (ex_inv "hasContinent", Dl.B (a "Continent"));
      Tbox.Concept_incl (ex "connected", Dl.B (a "City"));
      Tbox.Concept_incl (ex_inv "connected", Dl.B (a "City"));
    ]

let obda_mappings =
  let open Whynot_obda in
  [
    Mapping.make
      ~head:(Mapping.Concept_of ("EU-City", "x"))
      [ atom "Cities" [ var "x"; var "z"; var "w"; const (s "Europe") ] ];
    Mapping.make
      ~head:(Mapping.Concept_of ("Dutch-City", "x"))
      [ atom "Cities" [ var "x"; var "z"; const (s "Netherlands"); var "w" ] ];
    Mapping.make
      ~head:(Mapping.Concept_of ("N.A.-City", "x"))
      [ atom "Cities" [ var "x"; var "z"; var "w"; const (s "N.America") ] ];
    Mapping.make
      ~head:(Mapping.Concept_of ("US-City", "x"))
      [ atom "Cities" [ var "x"; var "z"; const (s "USA"); var "w" ] ];
    Mapping.make
      ~head:(Mapping.Concept_of ("Continent", "w"))
      [ atom "Cities" [ var "x"; var "y"; var "z"; var "w" ] ];
    Mapping.make
      ~head:(Mapping.Role_of ("hasCountry", "x", "y"))
      [ atom "Cities" [ var "x"; var "k"; var "y"; var "w" ] ];
    Mapping.make
      ~head:(Mapping.Role_of ("hasContinent", "x", "y"))
      [ atom "Cities" [ var "x"; var "k"; var "w"; var "y" ] ];
    Mapping.make
      ~head:(Mapping.Role_of ("connected", "x", "y"))
      [
        atom "Train-Connections" [ var "x"; var "y" ];
        atom "Cities" [ var "x"; var "x1"; var "x2"; var "x3" ];
        atom "Cities" [ var "y"; var "y1"; var "y2"; var "y3" ];
      ];
  ]

let obda_spec =
  Whynot_obda.Spec.make_exn ~tbox:obda_tbox ~schema ~mappings:obda_mappings
