open Whynot_relational

let s = Value.str
let i = Value.int

let var v = Cq.Var v
let atom rel args = { Cq.rel; args }

let in_stock_def =
  {
    View.name = "InStock";
    body =
      Ucq.of_cq
        (Cq.make
           ~head:[ var "p"; var "st" ]
           ~atoms:[ atom "Stock" [ var "p"; var "st"; var "q" ] ]
           ~comparisons:[ { Cq.subject = "q"; op = Cmp_op.Gt; value = i 0 } ]
           ());
  }

let electronics_def =
  {
    View.name = "Electronics";
    body =
      Ucq.make
        [
          Cq.make ~head:[ var "p" ]
            ~atoms:
              [ atom "Products" [ var "p"; var "n"; Cq.Const (s "audio"); var "pr" ] ]
            ();
          Cq.make ~head:[ var "p" ]
            ~atoms:
              [ atom "Products" [ var "p"; var "n"; Cq.Const (s "computing"); var "pr" ] ]
            ();
        ];
  }

let schema =
  Schema.make_exn
    ~inds:
      [
        Ind.make ~lhs_rel:"Stock" ~lhs_attrs:[ 1 ] ~rhs_rel:"Products"
          ~rhs_attrs:[ 1 ];
        Ind.make ~lhs_rel:"Stock" ~lhs_attrs:[ 2 ] ~rhs_rel:"Stores"
          ~rhs_attrs:[ 1 ];
      ]
    ~views:[ in_stock_def; electronics_def ]
    [
      { Schema.name = "Products"; attrs = [ "pid"; "name"; "category"; "price" ] };
      { Schema.name = "Stores"; attrs = [ "sid"; "city"; "state" ] };
      { Schema.name = "Stock"; attrs = [ "pid"; "sid"; "qty" ] };
      { Schema.name = "InStock"; attrs = [ "pid"; "sid" ] };
      { Schema.name = "Electronics"; attrs = [ "pid" ] };
    ]

let base_instance =
  Instance.of_facts
    [
      ( "Products",
        [
          [ s "P0034"; s "BT Headset X"; s "audio"; i 79 ];
          [ s "P0035"; s "BT Headset Y"; s "audio"; i 129 ];
          [ s "P0100"; s "Laptop 13"; s "computing"; i 999 ];
          [ s "P0101"; s "Laptop 15"; s "computing"; i 1299 ];
          [ s "P0200"; s "Espresso Maker"; s "kitchen"; i 249 ];
          [ s "P0201"; s "Toaster"; s "kitchen"; i 39 ];
          [ s "P0300"; s "Desk Lamp"; s "furniture"; i 59 ];
          [ s "P0301"; s "Office Chair"; s "furniture"; i 189 ];
        ] );
      ( "Stores",
        [
          [ s "S010"; s "San Francisco"; s "CA" ];
          [ s "S012"; s "San Francisco"; s "CA" ];
          [ s "S020"; s "Los Angeles"; s "CA" ];
          [ s "S030"; s "Seattle"; s "WA" ];
          [ s "S040"; s "New York"; s "NY" ];
          [ s "S041"; s "New York"; s "NY" ];
        ] );
      ( "Stock",
        [
          (* Headsets are stocked only on the east coast. *)
          [ s "P0034"; s "S040"; i 12 ];
          [ s "P0035"; s "S041"; i 3 ];
          (* SF stores carry laptops and kitchenware. *)
          [ s "P0100"; s "S010"; i 5 ];
          [ s "P0101"; s "S012"; i 2 ];
          [ s "P0200"; s "S012"; i 7 ];
          [ s "P0201"; s "S010"; i 9 ];
          (* LA and Seattle carry a bit of everything except audio. *)
          [ s "P0100"; s "S020"; i 4 ];
          [ s "P0300"; s "S020"; i 6 ];
          [ s "P0301"; s "S030"; i 1 ];
          [ s "P0200"; s "S030"; i 2 ];
          (* A zero-quantity row: present in Stock but not InStock. *)
          [ s "P0034"; s "S020"; i 0 ];
        ] );
    ]

let instance = Schema.complete schema base_instance

let in_stock_query =
  Cq.make
    ~head:[ var "p"; var "st" ]
    ~atoms:[ atom "Stock" [ var "p"; var "st"; var "q" ] ]
    ~comparisons:[ { Cq.subject = "q"; op = Cmp_op.Gt; value = i 0 } ]
    ()

let missing_tuple = [ s "P0034"; s "S012" ]

let whynot_headsets () = (instance, in_stock_query, missing_tuple)

let hand_ontology_extensions =
  [
    ("Product", [ "P0034"; "P0035"; "P0100"; "P0101"; "P0200"; "P0201"; "P0300"; "P0301" ]);
    ("Electronics", [ "P0034"; "P0035"; "P0100"; "P0101" ]);
    ("Audio", [ "P0034"; "P0035" ]);
    ("BluetoothHeadset", [ "P0034"; "P0035" ]);
    ("Store", [ "S010"; "S012"; "S020"; "S030"; "S040"; "S041" ]);
    ("USStore", [ "S010"; "S012"; "S020"; "S030"; "S040"; "S041" ]);
    ("CaliforniaStore", [ "S010"; "S012"; "S020" ]);
    ("SanFranciscoStore", [ "S010"; "S012" ]);
  ]

let hand_ontology_subsumptions =
  [
    ("BluetoothHeadset", "Audio");
    ("Audio", "Electronics");
    ("Electronics", "Product");
    ("SanFranciscoStore", "CaliforniaStore");
    ("CaliforniaStore", "USStore");
    ("USStore", "Store");
  ]
