(** The paper's running example: the cities/train-connections schema of
    Figure 1, the instance of Figure 2, the hand-built ontology of Figure 3,
    and the OBDA specification (DL-LiteR TBox + GAV mappings) of Figure 4. *)

open Whynot_relational

val schema : Schema.t
(** Figure 1: data relations [Cities(name, population, country, continent)]
    and [Train-Connections(city_from, city_to)]; views [BigCity],
    [EuropeanCountry], [Reachable]; the FD [country -> continent] and three
    inclusion dependencies. *)

val base_instance : Instance.t
(** Figure 2, data relations only: 8 cities, 6 train connections. *)

val instance : Instance.t
(** Figure 2 with all views materialised. *)

val two_hop_query : Cq.t
(** Example 3.4: [q(x,y) = ∃z. TC(x,z) ∧ TC(z,y)]. *)

val answers : Relation.t
(** [q(I)]: the four tuples of Example 3.4. *)

val missing_tuple : Value.t list
(** [⟨Amsterdam, New York⟩], the why-not tuple of Examples 3.4/4.5/4.9. *)

(** {1 Figure 3: the hand ontology}

    Plain data; {!Whynot_core} wraps it into an S-ontology. *)

val hand_concepts : string list

val hand_hasse : (string * string) list
(** Direct subsumption edges (child, parent) of Figure 3's Hasse diagram. *)

val hand_extensions : (string * string list) list
(** The instance-independent extensions listed in Figure 3. *)

(** {1 Figure 4: the OBDA specification} *)

val obda_tbox : Whynot_dllite.Tbox.t

val obda_mappings : Whynot_obda.Mapping.t list

val obda_spec : Whynot_obda.Spec.t

(** {1 Constants} *)

val amsterdam : Value.t
val berlin : Value.t
val rome : Value.t
val new_york : Value.t
val san_francisco : Value.t
val santa_cruz : Value.t
val tokyo : Value.t
val kyoto : Value.t
