lib/workload/generate.ml: Array Cities Cmp_op Cq Dl Fd Ind Instance List Option Printf Random Relation Schema Tbox Ucq Value Value_set View Whynot_concept Whynot_core Whynot_dllite Whynot_relational
