lib/workload/retail.mli: Cq Instance Schema Value Whynot_relational
