lib/workload/cities.mli: Cq Instance Relation Schema Value Whynot_dllite Whynot_obda Whynot_relational
