lib/workload/generate.mli: Instance Schema Whynot_concept Whynot_core Whynot_dllite Whynot_relational
