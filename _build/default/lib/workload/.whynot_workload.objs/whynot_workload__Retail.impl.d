lib/workload/retail.ml: Cmp_op Cq Ind Instance Schema Ucq Value View Whynot_relational
