lib/workload/cities.ml: Cmp_op Cq Dl Fd Ind Instance Mapping Schema Tbox Ucq Value View Whynot_dllite Whynot_obda Whynot_relational
