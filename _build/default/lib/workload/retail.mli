(** The introduction's motivating scenario: a retail company database with
    products, stores and stock, and the why-not question "why is
    (P0034, S012) — a bluetooth headset and a San Francisco store — not
    among the (product, store) pairs in stock?". The intended high-level
    explanation: none of the stores in San Francisco has any bluetooth
    headsets in stock. *)

open Whynot_relational

val schema : Schema.t
(** Data relations [Products(pid, name, category, price)],
    [Stores(sid, city, state)], [Stock(pid, sid, qty)]; views
    [InStock(pid, sid)] (pairs with positive quantity) and
    [Electronics(pid)]; inclusion dependencies from [Stock] into
    [Products]/[Stores]. *)

val instance : Instance.t
(** 8 products, 6 stores, a stock table; views materialised. *)

val in_stock_query : Cq.t
(** [q(pid, sid) = InStock(pid, sid)] unfolded to the data relations:
    [∃qty. Stock(pid, sid, qty) ∧ qty > 0]. *)

val missing_tuple : Value.t list
(** [(P0034, S012)]. *)

val whynot_headsets : unit -> (Instance.t * Cq.t * Value.t list)
(** The full why-not question as a triple, for the examples. *)

val hand_ontology_extensions : (string * string list) list
val hand_ontology_subsumptions : (string * string) list
(** A small product/store ontology: bluetooth headsets ⊑ audio ⊑
    electronics; SF stores ⊑ California stores ⊑ US stores. *)
