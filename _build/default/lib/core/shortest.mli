(** Short explanations (§6).

    Finding a most-general explanation of minimal total length is NP-hard
    (Proposition 6.1), and even shortening a given explanation to a
    minimised equivalent is NP-hard (Proposition 6.3). The tractable
    compromise is irredundancy: {!Whynot_concept.Irredundant} combined with
    the incremental algorithm yields an irredundant most-general
    explanation in polynomial time (Proposition 6.2).

    This module provides the exact (exponential) optima for small inputs,
    for use in tests and benchmarks against the polynomial pipeline. *)

val length : Whynot_concept.Ls.t Explanation.t -> int
(** Total {!Whynot_concept.Ls.size} of the components. *)

val irredundant_mge :
  ?variant:Incremental.variant ->
  Whynot.t ->
  Whynot_concept.Ls.t Explanation.t
(** The polynomial pipeline: incremental search, then per-concept
    irredundancy minimisation. Most general w.r.t. [O_I] and irredundant. *)

val shortest_mge_selection_free :
  Whynot.t -> Whynot_concept.Ls.t Explanation.t option
(** Exact: enumerate the finite selection-free restriction [O_I[K]],
    compute all MGEs, return one of minimal length. Exponential in the
    number of schema positions — small inputs only. *)

val minimise_concept_exact :
  Whynot_relational.Instance.t ->
  Whynot_concept.Ls.t ->
  Whynot_concept.Ls.t
(** Exact minimisation of a single selection-free concept: the shortest
    selection-free concept equivalent to it over [I] (exponential search
    over sub-conjunctions and equivalent rewritings; small inputs only).
    Every minimised concept is irredundant but not conversely — see the
    discussion before Proposition 6.3. *)
