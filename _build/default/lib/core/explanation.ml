open Whynot_relational

type 'c t = 'c list

let covers_missing o wn e =
  List.length e = Whynot.arity wn
  && List.for_all2 (fun c a -> o.Ontology.mem c a) e (Whynot.missing_values wn)

let kills o e tuple =
  let values = Tuple.to_list tuple in
  List.exists2 (fun c v -> not (o.Ontology.mem c v)) e values

let disjoint_from_answers o wn e =
  Relation.for_all (fun t -> kills o e t) wn.Whynot.answers

let is_explanation o wn e =
  covers_missing o wn e && disjoint_from_answers o wn e

let less_general o e e' =
  List.length e = List.length e'
  && List.for_all2 (fun c c' -> o.Ontology.subsumes c c') e e'

let strictly_less_general o e e' =
  less_general o e e' && not (less_general o e' e)

let equivalent o e e' = less_general o e e' && less_general o e' e

let pp o ppf e =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       o.Ontology.pp)
    e
