lib/core/shortest.ml: Exhaustive Incremental Instance List Ls Ontology Option Relation Semantics Value_set Whynot Whynot_concept Whynot_relational
