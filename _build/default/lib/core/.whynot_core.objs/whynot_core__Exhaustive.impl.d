lib/core/exhaustive.ml: Explanation Int List Ontology Option Relation Seq Set Tuple Whynot Whynot_relational
