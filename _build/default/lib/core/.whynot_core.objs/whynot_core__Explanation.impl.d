lib/core/explanation.ml: Format List Ontology Relation Tuple Whynot Whynot_relational
