lib/core/schema_mge.ml: Exhaustive Ontology Whynot
