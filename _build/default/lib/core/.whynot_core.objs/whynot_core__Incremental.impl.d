lib/core/incremental.ml: Array Explanation Instance Irredundant List Logs Ls Lub Ontology Semantics Value Value_set Whynot Whynot_concept Whynot_relational
