lib/core/whynot.ml: Cq Format Instance List Printf Relation Schema Tuple Value_set Whynot_relational
