lib/core/obda_whynot.mli: Cq Explanation Value Whynot Whynot_dllite Whynot_obda Whynot_relational
