lib/core/ontology.mli: Format Instance Schema Value Value_set Whynot_concept Whynot_dllite Whynot_obda Whynot_relational
