lib/core/incremental.mli: Explanation Value Whynot Whynot_concept Whynot_relational
