lib/core/obda_whynot.ml: Exhaustive Ontology Result Whynot Whynot_obda
