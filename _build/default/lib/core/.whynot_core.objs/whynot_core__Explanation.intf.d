lib/core/explanation.mli: Format Ontology Tuple Whynot Whynot_relational
