lib/core/shortest.mli: Explanation Incremental Whynot Whynot_concept Whynot_relational
