lib/core/cardinality.ml: Exhaustive Fun Int List Ontology Relation Set Stdlib Tuple Value_set Whynot Whynot_relational
