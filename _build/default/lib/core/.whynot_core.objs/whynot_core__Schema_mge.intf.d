lib/core/schema_mge.mli: Explanation Ontology Whynot Whynot_concept Whynot_relational
