lib/core/strong.mli: Explanation Format Whynot Whynot_concept Whynot_relational
