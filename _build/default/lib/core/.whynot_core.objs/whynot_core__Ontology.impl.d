lib/core/ontology.ml: Format Hashtbl List Schema String Value Value_set Whynot_concept Whynot_dllite Whynot_obda Whynot_relational
