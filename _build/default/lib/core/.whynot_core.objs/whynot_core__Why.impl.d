lib/core/why.ml: Array Cq Incremental Instance Irredundant List Lub Ontology Relation Semantics Tuple Value_set Whynot_concept Whynot_relational
