lib/core/why.mli: Cq Explanation Incremental Instance Ontology Relation Tuple Value Whynot_concept Whynot_relational
