lib/core/cardinality.mli: Explanation Ontology Whynot
