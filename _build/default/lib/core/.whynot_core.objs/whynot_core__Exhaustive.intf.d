lib/core/exhaustive.mli: Explanation Ontology Seq Whynot
