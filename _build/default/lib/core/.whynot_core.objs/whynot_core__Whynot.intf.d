lib/core/whynot.mli: Cq Format Instance Relation Schema Tuple Value Value_set Whynot_relational
