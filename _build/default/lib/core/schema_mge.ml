type fragment =
  [ `Minimal
  | `Selection_free
  ]

let ontology fragment schema wn =
  let pool = Whynot.constant_pool wn in
  Ontology.of_schema_finite
    ~minimal_only:(fragment = `Minimal)
    schema wn.Whynot.instance pool

let one_mge fragment schema wn =
  Exhaustive.one_mge (ontology fragment schema wn) wn

let all_mges fragment schema wn =
  Exhaustive.all_mges (ontology fragment schema wn) wn

let check_mge fragment schema wn e =
  Exhaustive.check_mge (ontology fragment schema wn) wn e
