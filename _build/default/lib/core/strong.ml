open Whynot_relational
open Whynot_concept

type verdict =
  | Strong
  | Not_strong
  | Unknown

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
     | Strong -> "strong"
     | Not_strong -> "not strong"
     | Unknown -> "unknown")

(* The witness query: q's body conjoined, per head position, with the
   concept query of C_i whose distinguished variable is unified with q's
   i-th head term. The explanation is strong iff this query is
   unsatisfiable over the schema's legal instances. *)
let combined_query schema wn e =
  let q = wn.Whynot.query in
  let extra_atoms = ref [] in
  let extra_comparisons = ref [] in
  List.iteri
    (fun i c ->
       let target = List.nth q.Cq.head i in
       if To_query.is_pure c then
         (* Top contributes nothing; nominals constrain the head term. *)
         List.iter
           (function
             | Ls.Nominal v ->
               (match target with
                | Cq.Var x ->
                  extra_comparisons :=
                    { Cq.subject = x; op = Cmp_op.Eq; value = v }
                    :: !extra_comparisons
                | Cq.Const v' ->
                  if not (Value.equal v v') then
                    extra_comparisons :=
                      { Cq.subject = "__false__"; op = Cmp_op.Lt; value = Value.Int 0 }
                      :: { Cq.subject = "__false__"; op = Cmp_op.Gt; value = Value.Int 0 }
                      :: !extra_comparisons)
             | Ls.Proj _ -> ())
           (Ls.conjuncts c)
       else begin
         let cq = To_query.query schema c in
         let cq = Cq.rename_apart ~suffix:(Printf.sprintf "@s%d" i) cq in
         let hv = To_query.head_var ^ Printf.sprintf "@s%d" i in
         let cq = Cq.substitute [ (hv, target) ] cq in
         extra_atoms := cq.Cq.atoms @ !extra_atoms;
         extra_comparisons := cq.Cq.comparisons @ !extra_comparisons
       end)
    e;
  Cq.make ~head:q.Cq.head
    ~atoms:(q.Cq.atoms @ !extra_atoms)
    ~comparisons:(q.Cq.comparisons @ !extra_comparisons)
    ()

(* Does the completed legal instance actually witness non-strength: some
   q-answer all of whose components inhabit the corresponding concepts? *)
let witnesses schema inst wn e =
  ignore schema;
  let answers = Cq.eval wn.Whynot.query inst in
  Relation.exists
    (fun t ->
       List.for_all2
         (fun c i -> Semantics.mem (Tuple.get t i) c inst)
         e
         (List.init (List.length e) (fun i -> i + 1)))
    answers

let decide_wrt_schema ?(chase_depth = 4) schema wn e =
  let q' = combined_query schema wn e in
  let disjuncts = View.unfold_cq (Schema.views schema) q' in
  let found_witness =
    List.exists
      (fun d ->
         if Cq.is_unsatisfiable_syntactic d then false
         else
           List.exists
             (fun (inst0, _head) ->
                match
                  Subsume_schema.chase_to_legal_instance ~depth:chase_depth
                    schema inst0
                with
                | None -> false
                | Some full -> witnesses schema full wn e)
             (Containment.canonical_instantiations d
                ~extra_constants:Value_set.empty))
      disjuncts
  in
  if found_witness then Not_strong
  else
    match Subsume_schema.classify schema with
    | Subsume_schema.No_constraints | Subsume_schema.Views_only
    | Subsume_schema.Fds_only ->
      Strong
    | Subsume_schema.Inds_only | Subsume_schema.Mixed -> Unknown

let is_explanation_but_not_strong ?chase_depth schema wn e =
  let o = Ontology.of_instance wn.Whynot.instance in
  Explanation.is_explanation o wn e
  && decide_wrt_schema ?chase_depth schema wn e = Not_strong
