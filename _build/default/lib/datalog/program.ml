open Whynot_relational

type literal =
  | Pos of Cq.atom
  | Neg of Cq.atom

type rule = {
  head : Cq.atom;
  body : literal list;
  comparisons : Cq.comparison list;
}

type t = {
  rules : rule list;
  strata : string list list;
}

let rule ?(comparisons = []) ~head body = { head; body; comparisons }

let atom_vars (a : Cq.atom) =
  List.filter_map
    (function Cq.Var v -> Some v | Cq.Const _ -> None)
    a.Cq.args

let positive_vars r =
  List.concat_map
    (function Pos a -> atom_vars a | Neg _ -> [])
    r.body

let rule_safe r =
  let pos = positive_vars r in
  List.for_all (fun v -> List.mem v pos) (atom_vars r.head)
  && List.for_all
       (function
         | Pos _ -> true
         | Neg a -> List.for_all (fun v -> List.mem v pos) (atom_vars a))
       r.body
  && List.for_all
       (fun (c : Cq.comparison) -> List.mem c.Cq.subject pos)
       r.comparisons

let idb_predicates_of rules =
  List.sort_uniq String.compare (List.map (fun r -> r.head.Cq.rel) rules)

(* Dependency edges between IDB predicates: (p, q, negated) when a rule for
   p uses q in its body. *)
let edges rules =
  let idb = idb_predicates_of rules in
  List.concat_map
    (fun r ->
       List.filter_map
         (fun lit ->
            let q, negated =
              match lit with
              | Pos a -> (a.Cq.rel, false)
              | Neg a -> (a.Cq.rel, true)
            in
            if List.mem q idb then Some (r.head.Cq.rel, q, negated) else None)
         r.body)
    rules

(* Stratification by iterated stratum assignment: stratum p >= stratum q for
   positive edges, stratum p >= stratum q + 1 for negative edges; failure
   (no fixpoint within |idb| rounds) means recursion through negation. *)
let stratify rules =
  let idb = idb_predicates_of rules in
  let es = edges rules in
  let n = List.length idb in
  let stratum = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace stratum p 0) idb;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n * n + 1 do
    changed := false;
    incr rounds;
    List.iter
      (fun (p, q, negated) ->
         let sp = Hashtbl.find stratum p and sq = Hashtbl.find stratum q in
         let need = if negated then sq + 1 else sq in
         if sp < need then begin
           Hashtbl.replace stratum p need;
           changed := true
         end)
      es
  done;
  if !changed then Error "recursion through negation (not stratifiable)"
  else begin
    let max_stratum =
      Hashtbl.fold (fun _ s acc -> max s acc) stratum 0
    in
    Ok
      (List.filter_map
         (fun k ->
            match
              List.filter (fun p -> Hashtbl.find stratum p = k) idb
            with
            | [] -> None
            | ps -> Some ps)
         (List.init (max_stratum + 1) (fun k -> k)))
  end

let make rules =
  match List.find_opt (fun r -> not (rule_safe r)) rules with
  | Some r ->
    Error
      (Format.asprintf "unsafe rule with head %s(...)" r.head.Cq.rel)
  | None ->
    (match stratify rules with
     | Error msg -> Error msg
     | Ok strata -> Ok { rules; strata })

let make_exn rules =
  match make rules with
  | Ok p -> p
  | Error msg -> invalid_arg ("Program.make_exn: " ^ msg)

let rules t = t.rules

let idb_predicates t = idb_predicates_of t.rules

let edb_predicates t =
  let idb = idb_predicates t in
  List.sort_uniq String.compare
    (List.concat_map
       (fun r ->
          List.filter_map
            (fun lit ->
               let q = match lit with Pos a | Neg a -> a.Cq.rel in
               if List.mem q idb then None else Some q)
            r.body)
       t.rules)

let strata t = t.strata

let is_recursive t =
  (* p is recursive iff p reaches p in the positive+negative edge graph. *)
  let es = List.map (fun (p, q, _) -> (p, q)) (edges t.rules) in
  let rec reaches seen p target =
    List.exists
      (fun (p', q) ->
         String.equal p p'
         && (String.equal q target
             || ((not (List.mem q seen)) && reaches (q :: seen) q target)))
      es
  in
  List.exists (fun p -> reaches [] p p) (idb_predicates t)

(* --- evaluation --- *)

(* Evaluate one rule body against [inst], optionally forcing one positive
   literal (by index) to range over the delta relation stored under a
   reserved name. Returns the derived head tuples. *)
let delta_prefix = "\000delta:"

let eval_rule inst r ~delta_index =
  let atoms =
    List.mapi (fun i lit -> (i, lit)) r.body
    |> List.filter_map
         (fun (i, lit) ->
            match lit with
            | Pos a ->
              if delta_index = Some i then
                Some { a with Cq.rel = delta_prefix ^ a.Cq.rel }
              else Some a
            | Neg _ -> None)
  in
  let q = Cq.make ~head:r.head.Cq.args ~atoms ~comparisons:r.comparisons () in
  let assignments = Cq.eval_assignments q inst in
  let value_of binding = function
    | Cq.Const c -> Some c
    | Cq.Var v -> List.assoc_opt v binding
  in
  List.filter_map
    (fun binding ->
       (* Negated literals: no matching fact under this binding. *)
       let negs_ok =
         List.for_all
           (function
             | Pos _ -> true
             | Neg a ->
               (match
                  List.map (value_of binding) a.Cq.args
                with
                | args when List.for_all Option.is_some args ->
                  not
                    (Instance.mem_fact inst a.Cq.rel
                       (Tuple.of_list (List.map Option.get args)))
                | _ -> false))
           r.body
       in
       if not negs_ok then None
       else
         match List.map (value_of binding) r.head.Cq.args with
         | args when List.for_all Option.is_some args ->
           Some (Tuple.of_list (List.map Option.get args))
         | _ -> None)
    assignments

let head_arity r = List.length r.head.Cq.args

(* Indices of positive body literals whose predicate is in [preds]. *)
let recursive_literal_indices r preds =
  List.mapi (fun i lit -> (i, lit)) r.body
  |> List.filter_map
       (fun (i, lit) ->
          match lit with
          | Pos a when List.mem a.Cq.rel preds -> Some i
          | Pos _ | Neg _ -> None)

let eval t inst =
  (* Recompute IDB from scratch. *)
  let inst = Instance.restrict (edb_predicates t) inst in
  List.fold_left
    (fun inst stratum ->
       let stratum_rules =
         List.filter (fun r -> List.mem r.head.Cq.rel stratum) t.rules
       in
       (* Initialise the stratum's predicates as empty. *)
       let inst =
         List.fold_left
           (fun inst p ->
              match
                List.find_opt (fun r -> String.equal r.head.Cq.rel p)
                  stratum_rules
              with
              | Some r ->
                Instance.add_relation p (Relation.empty ~arity:(head_arity r)) inst
              | None -> inst)
           inst stratum
       in
       (* First round: every rule, no delta. *)
       let derive_all inst ~use_delta delta_map =
         List.fold_left
           (fun acc r ->
              let derived =
                if not use_delta then
                  eval_rule inst r ~delta_index:None
                else
                  (* Semi-naive: one variant per recursive literal, with
                     that literal ranging over the delta. *)
                  List.concat_map
                    (fun i -> eval_rule delta_map r ~delta_index:(Some i))
                    (recursive_literal_indices r stratum)
              in
              List.fold_left
                (fun acc tuple -> (r.head.Cq.rel, tuple) :: acc)
                acc derived)
           [] stratum_rules
       in
       let add_new inst facts =
         List.fold_left
           (fun (inst, delta) (p, tuple) ->
              if Instance.mem_fact inst p tuple then (inst, delta)
              else
                ( Instance.add_fact p (Tuple.to_list tuple) inst,
                  (p, tuple) :: delta ))
           (inst, []) facts
       in
       let inst, delta0 = add_new inst (derive_all inst ~use_delta:false inst) in
       let rec iterate inst delta =
         if delta = [] then inst
         else
           (* Build the instance extended with delta relations. *)
           let delta_map =
             List.fold_left
               (fun acc (p, tuple) ->
                  Instance.add_fact (delta_prefix ^ p) (Tuple.to_list tuple) acc)
               inst delta
           in
           let inst', delta' =
             add_new inst (derive_all delta_map ~use_delta:true delta_map)
           in
           iterate inst' delta'
       in
       iterate inst delta0)
    inst t.strata

(* --- views as non-recursive Datalog --- *)

(* Constants in rule heads are supported directly by the evaluator, so each
   view disjunct maps to one rule verbatim. *)
let of_views views =
  let rules =
    List.concat_map
      (fun (d : View.def) ->
         List.map
           (fun (q : Cq.t) ->
              rule
                ~head:{ Cq.rel = d.View.name; args = q.Cq.head }
                ~comparisons:q.Cq.comparisons
                (List.map (fun a -> Pos a) q.Cq.atoms))
           d.View.body.Ucq.disjuncts)
      (View.defs views)
  in
  make_exn rules

let pp_literal ppf = function
  | Pos a -> Format.fprintf ppf "%s(%a)" a.Cq.rel
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                  Cq.pp_term)
               a.Cq.args
  | Neg a -> Format.fprintf ppf "!%s(%a)" a.Cq.rel
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                  Cq.pp_term)
               a.Cq.args

let pp ppf t =
  List.iter
    (fun r ->
       Format.fprintf ppf "@[<hov2>%s(%a) :-@ %a%a.@]@." r.head.Cq.rel
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
            Cq.pp_term)
         r.head.Cq.args
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
            pp_literal)
         r.body
         (fun ppf cs ->
            List.iter
              (fun (c : Cq.comparison) ->
                 Format.fprintf ppf ", %s %a %a" c.Cq.subject Cmp_op.pp c.Cq.op
                   Value.pp c.Cq.value)
              cs)
         r.comparisons)
    t.rules
