lib/datalog/program.mli: Cq Format Instance View Whynot_relational
