lib/datalog/program.ml: Cmp_op Cq Format Hashtbl Instance List Option Relation String Tuple Ucq Value View Whynot_relational
