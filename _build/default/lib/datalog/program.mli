(** Datalog programs with stratified negation.

    The paper's motivating systems (LogiQL, Datomic, Yedalog) specify
    analytics workflows as Datalog programs, and §2 observes that nested
    UCQ-view definitions are exactly {e non-recursive} Datalog. This module
    supplies the full substrate: recursive programs, safety and
    stratification checks, and semi-naive bottom-up evaluation. The
    {!of_views}/{!materialise} pair is drop-in equivalent to
    {!Whynot_relational.View.materialise} on non-recursive inputs (tested),
    and additionally handles recursion (e.g. a genuinely transitive
    [Reachable]) and stratified negation. *)

open Whynot_relational

type literal =
  | Pos of Cq.atom
  | Neg of Cq.atom

type rule = {
  head : Cq.atom;
  body : literal list;
  comparisons : Cq.comparison list;
}

type t
(** A validated program. *)

val rule :
  ?comparisons:Cq.comparison list -> head:Cq.atom -> literal list -> rule

val make : rule list -> (t, string) result
(** Validates:
    - {b safety}: every head variable, negated-literal variable and compared
      variable occurs in a positive body literal;
    - {b stratification}: no recursion through negation. *)

val make_exn : rule list -> t

val rules : t -> rule list

val idb_predicates : t -> string list
(** Predicates defined by some rule head. *)

val edb_predicates : t -> string list
(** Predicates used only in bodies. *)

val strata : t -> string list list
(** The stratification: IDB predicates grouped bottom-up; negation only
    refers to strictly earlier strata. *)

val is_recursive : t -> bool

val eval : t -> Instance.t -> Instance.t
(** Bottom-up semi-naive evaluation, stratum by stratum: the input instance
    supplies the EDB; the result extends it with every IDB relation.
    Existing IDB facts in the input are ignored (recomputed from
    scratch). *)

val of_views : View.t -> t
(** The non-recursive Datalog program equivalent to a collection of nested
    UCQ-view definitions (§2's correspondence). Head constants are
    compiled away through fresh variables and equality comparisons, so the
    result is always safe. *)

val pp : Format.formatter -> t -> unit
