lib/text/parser.mli: Cq Fd Ind Instance Schema Value Value_set View Whynot_concept Whynot_core Whynot_datalog Whynot_dllite Whynot_obda Whynot_relational
