lib/text/lexer.mli: Format Whynot_relational
