lib/text/lexer.ml: Buffer Format List Printf String Whynot_relational
