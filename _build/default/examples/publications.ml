(* The conclusion's example (§7): a publication database curated from
   several sources, where *all Springer publications* were lost by the
   integration pipeline. A user asks why a particular publication is
   missing from the query result.

   - Classical why-provenance explains *present* tuples fact-by-fact
     (shown below via the Provenance module).
   - Data-/query-centric why-not approaches would propose adding the one
     missing row or patching the query for the one missing tuple.
   - The ontology-based most-general explanation instead surfaces the
     high-level problem directly: "it is missing because it is a Springer
     publication (and no Springer publication is in the result)".

   Run with: dune exec examples/publications.exe *)

open Whynot_relational
open Whynot_concept
open Whynot_core

let s = Value.str
let i = Value.int
let var v = Cq.Var v
let atom rel args = { Cq.rel; args }

let schema =
  Schema.make_exn
    ~inds:
      [ Ind.make ~lhs_rel:"Catalog" ~lhs_attrs:[ 1 ] ~rhs_rel:"Publications"
          ~rhs_attrs:[ 1 ] ]
    [
      { Schema.name = "Publications"; attrs = [ "pid"; "title"; "publisher"; "year" ] };
      { Schema.name = "Catalog"; attrs = [ "pid" ] };
    ]

(* The curation pipeline dropped every Springer publication. *)
let instance =
  Instance.of_facts
    [
      ( "Publications",
        [
          [ s "X17"; s "Query Answering"; s "Springer"; i 2013 ];
          [ s "X23"; s "Provenance Semirings"; s "ACM"; i 2007 ];
          [ s "X31"; s "Description Logics"; s "Springer"; i 2008 ];
          [ s "X42"; s "Datalog Revisited"; s "ACM"; i 2012 ];
          [ s "X55"; s "The Chase"; s "IEEE"; i 2010 ];
          [ s "X60"; s "Ontology Design"; s "Springer"; i 2015 ];
        ] );
      ("Catalog", [ [ s "X23" ]; [ s "X42" ]; [ s "X55" ] ]);
    ]

(* Publications that made it into the integrated catalog. *)
let query =
  Cq.make ~head:[ var "x" ]
    ~atoms:
      [
        atom "Publications" [ var "x"; var "t"; var "p"; var "y" ];
        atom "Catalog" [ var "x" ];
      ]
    ()

let section title = Format.printf "@.== %s ==@." title

let () =
  section "The curated publications database";
  Format.printf "%a" Instance.pp instance;

  section "Low-level why-provenance of a PRESENT tuple";
  let answer = Tuple.of_list [ s "X23" ] in
  List.iter
    (fun w ->
       Format.printf "X23 is an answer because of:@.";
       List.iter
         (fun (rel, t) -> Format.printf "  %s%a@." rel Tuple.pp t)
         w.Provenance.facts)
    (Provenance.witnesses query instance answer);

  section "The why-not question";
  let wn =
    Whynot.make_exn ~schema ~instance ~query ~missing:[ s "X17" ] ()
  in
  Format.printf "%a@." Whynot.pp wn;

  section "High-level explanation (Algorithm 2 with selections)";
  let e = Incremental.one_mge ~variant:Incremental.With_selections wn in
  let o = Ontology.of_instance instance in
  Format.printf "MGE w.r.t. O_I: %a@." (Explanation.pp o) e;
  let c = List.hd e in
  (match Semantics.extension c instance with
   | Semantics.Fin ext -> Format.printf "its extension: %a@." Value_set.pp ext
   | Semantics.All -> ());
  Format.printf
    "@.Reading: X17 is missing because it is a Springer publication — and@.\
     NO Springer publication is in the catalog, pointing at a systematic@.\
     integration failure rather than a single lost row (exactly the@.\
     diagnosis the paper's conclusion motivates).@.";

  section "Is the explanation strong? (§6)";
  Format.printf "verdict: %a@."
    Strong.pp_verdict
    (Strong.decide_wrt_schema schema wn
       [ Ls.proj ~rel:"Publications" ~attr:1
           ~sels:[ { Ls.attr = 3; op = Cmp_op.Eq; value = s "Springer" } ]
           ();
         ]);
  Format.printf
    "(not strong: some legal instance does catalog a Springer paper —@.\
     the failure is in this database, not in the schema or query.)@."
