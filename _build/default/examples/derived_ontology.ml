(* Ontologies derived from the schema or the instance (§4.2, Figure 5,
   Example 4.9), and the incremental search of §5.2.

   When no external ontology is available, concepts are built directly from
   the schema in the language L_S (projections of selections, nominals,
   intersections). We print the Figure-5 concepts with their SQL-ish
   rendering and extensions, replay the subsumption claims of Example 4.9
   under both ⊑_S and ⊑_I, and compute most-general explanations with
   Algorithm 2.

   Run with: dune exec examples/derived_ontology.exe *)

open Whynot_relational
open Whynot_concept
open Whynot_core
module Cities = Whynot_workload.Cities

let section title = Format.printf "@.== %s ==@." title
let schema = Cities.schema
let inst = Cities.instance
let sel attr op value = { Ls.attr; op; value }

let figure5 =
  [
    Ls.proj ~rel:"Cities" ~attr:1 ();
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 4 Cmp_op.Eq (Value.str "Europe") ] ();
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 4 Cmp_op.Eq (Value.str "N.America") ] ();
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 2 Cmp_op.Gt (Value.int 1000000) ] ();
    Ls.proj ~rel:"BigCity" ~attr:1 ();
    Ls.nominal (Value.str "Santa Cruz");
    Ls.meet
      (Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 2 Cmp_op.Lt (Value.int 1000000) ] ())
      (Ls.proj ~rel:"Reachable" ~attr:2 ~sels:[ sel 1 Cmp_op.Eq (Value.str "Amsterdam") ] ());
  ]

let pp_ext ppf c =
  match Semantics.extension c inst with
  | Semantics.All -> Format.pp_print_string ppf "Const (everything)"
  | Semantics.Fin s -> Value_set.pp ppf s

let () =
  section "Figure 5: concepts specified in L_S";
  List.iter
    (fun c ->
       Format.printf "@[<v2>%a@,SQL: %a@,ext = %a@]@.@."
         (Ls.pp ~schema ()) c (Ls.pp_sql ~schema ()) c pp_ext c)
    figure5;

  section "Example 4.9: subsumptions w.r.t. the schema";
  let big = Ls.proj ~rel:"BigCity" ~attr:1 () in
  let city = Ls.proj ~rel:"Cities" ~attr:1 () in
  let euro = List.nth figure5 1 in
  let pop7m =
    Ls.proj ~rel:"Cities" ~attr:1 ~sels:[ sel 2 Cmp_op.Gt (Value.int 7000000) ] ()
  in
  let tc_from = Ls.proj ~rel:"Train-Connections" ~attr:1 () in
  let claims =
    [
      ("european <=S city", euro, city);
      ("pop>7M <=S BigCity", pop7m, big);
      ("BigCity <=S city", big, city);
      ("BigCity <=S TC[city_from]", big, tc_from);
    ]
  in
  List.iter
    (fun (label, c1, c2) ->
       Format.printf "%s : %a@." label Subsume_schema.pp_verdict
         (Subsume_schema.decide schema c1 c2))
    claims;

  section "Subsumption that holds w.r.t. I but not w.r.t. S";
  let from_a =
    Ls.proj ~rel:"Reachable" ~attr:2 ~sels:[ sel 1 Cmp_op.Eq (Value.str "Amsterdam") ] ()
  in
  let from_b =
    Ls.proj ~rel:"Reachable" ~attr:2 ~sels:[ sel 1 Cmp_op.Eq (Value.str "Berlin") ] ()
  in
  Format.printf "reach-from-Amsterdam <=I reach-from-Berlin : %b@."
    (Subsume_inst.subsumes inst from_a from_b);
  Format.printf "reach-from-Amsterdam <=S reach-from-Berlin : %a@."
    Subsume_schema.pp_verdict
    (Subsume_schema.decide schema from_a from_b);

  section "Algorithm 2: a most-general explanation w.r.t. O_I";
  let wn =
    Whynot.make_exn ~schema ~instance:inst ~query:Cities.two_hop_query
      ~missing:Cities.missing_tuple ()
  in
  let e_sf = Incremental.one_mge ~variant:Incremental.Selection_free wn in
  Format.printf "selection-free (Theorem 5.3):@.";
  List.iteri
    (fun idx c -> Format.printf "  position %d: %a@." (idx + 1) (Ls.pp ~schema ()) c)
    e_sf;
  let e_sig = Incremental.one_mge ~variant:Incremental.With_selections wn in
  Format.printf "with selections (Theorem 5.4):@.";
  List.iteri
    (fun idx c -> Format.printf "  position %d: %a@." (idx + 1) (Ls.pp ~schema ()) c)
    e_sig;

  section "Irredundancy (Proposition 6.2)";
  let redundant = Ls.meet euro city in
  Format.printf "%a  --minimise-->  %a@." (Ls.pp ~schema ()) redundant
    (Ls.pp ~schema ())
    (Irredundant.minimise inst redundant);

  section "The trivial explanation and its generality";
  let o = Ontology.of_instance inst in
  let trivial = Incremental.trivial_explanation wn in
  Format.printf "trivial: %a@." (Explanation.pp o) trivial;
  Format.printf "trivial <= selection-free MGE: %b@."
    (Explanation.less_general o trivial e_sf)
