examples/obda_cities.mli:
