examples/retail_stock.mli:
