examples/retail_stock.ml: Exhaustive Explanation Format Incremental Instance List Ontology String Value_set Whynot Whynot_core Whynot_relational Whynot_workload
