examples/quickstart.mli:
