examples/quickstart.ml: Exhaustive Explanation Format Instance List Ontology Relation Schema String Value_set Whynot Whynot_core Whynot_relational Whynot_workload
