examples/obda_cities.ml: Cq Dl Exhaustive Explanation Format List Obda_whynot Ontology Tbox Ucq Value_set Whynot Whynot_core Whynot_dllite Whynot_obda Whynot_relational Whynot_workload
