examples/publications.mli:
