examples/derived_ontology.mli:
