(* Tests for the DL-LiteR reasoner: the Figure 4 TBox, unsatisfiability
   propagation, role hierarchies, and exactness of saturation against the
   filtrated canonical model. *)

open Whynot_dllite

let atom a = Dl.Atom a
let ex p = Dl.Exists (Dl.Named p)
let ex_inv p = Dl.Exists (Dl.Inv p)

(* The DL-LiteR TBox of Figure 4. *)
let figure4_tbox =
  Tbox.make
    [
      Tbox.Concept_incl (atom "EU-City", Dl.B (atom "City"));
      Tbox.Concept_incl (atom "Dutch-City", Dl.B (atom "EU-City"));
      Tbox.Concept_incl (atom "NA-City", Dl.B (atom "City"));
      Tbox.Concept_incl (atom "EU-City", Dl.Not (atom "NA-City"));
      Tbox.Concept_incl (atom "US-City", Dl.B (atom "NA-City"));
      Tbox.Concept_incl (atom "City", Dl.B (ex "hasCountry"));
      Tbox.Concept_incl (atom "Country", Dl.B (ex "hasContinent"));
      Tbox.Concept_incl (ex_inv "hasCountry", Dl.B (atom "Country"));
      Tbox.Concept_incl (ex_inv "hasContinent", Dl.B (atom "Continent"));
      Tbox.Concept_incl (ex "connected", Dl.B (atom "City"));
      Tbox.Concept_incl (ex_inv "connected", Dl.B (atom "City"));
    ]

let fig4 = Reasoner.saturate figure4_tbox

let check_sub msg expected b1 b2 =
  Alcotest.(check bool) msg expected (Reasoner.subsumes fig4 b1 b2)

let test_fig4_subsumptions () =
  check_sub "EU-City [= City" true (atom "EU-City") (atom "City");
  check_sub "Dutch-City [= City (transitive)" true (atom "Dutch-City") (atom "City");
  check_sub "US-City [= City (transitive)" true (atom "US-City") (atom "City");
  check_sub "City not [= EU-City" false (atom "City") (atom "EU-City");
  check_sub "EU-City not [= US-City" false (atom "EU-City") (atom "US-City");
  check_sub "exists hasCountry- [= Country" true (ex_inv "hasCountry") (atom "Country");
  check_sub "exists connected [= City" true (ex "connected") (atom "City");
  (* Derived: City [= exists hasCountry, so EU-City [= exists hasCountry. *)
  check_sub "EU-City [= exists hasCountry" true (atom "EU-City") (ex "hasCountry");
  (* Not derived: Country [= City. *)
  check_sub "Country not [= City" false (atom "Country") (atom "City")

let test_fig4_disjointness () =
  Alcotest.(check bool) "EU disj NA" true
    (Reasoner.disjoint fig4 (atom "EU-City") (atom "NA-City"));
  Alcotest.(check bool) "disj symmetric" true
    (Reasoner.disjoint fig4 (atom "NA-City") (atom "EU-City"));
  (* Propagated down the hierarchy: Dutch disj US. *)
  Alcotest.(check bool) "Dutch disj US" true
    (Reasoner.disjoint fig4 (atom "Dutch-City") (atom "US-City"));
  Alcotest.(check bool) "City not disj Country" false
    (Reasoner.disjoint fig4 (atom "City") (atom "Country"));
  Alcotest.(check bool) "no unsat in fig4" true
    (List.for_all
       (fun b -> not (Reasoner.unsatisfiable fig4 b))
       (Reasoner.universe fig4))

let test_fig4_signature () =
  let universe = Reasoner.universe fig4 in
  (* Example 4.5 lists 13 basic concepts: 7 atomic + 2 per role (3 roles). *)
  Alcotest.(check int) "13 basic concepts" 13 (List.length universe);
  Alcotest.(check (list string)) "atomic concepts"
    [ "City"; "Continent"; "Country"; "Dutch-City"; "EU-City"; "NA-City"; "US-City" ]
    (Tbox.atomic_concepts figure4_tbox);
  Alcotest.(check (list string)) "atomic roles"
    [ "connected"; "hasContinent"; "hasCountry" ]
    (Tbox.atomic_roles figure4_tbox)

let test_unsat_concept () =
  (* A [= B, A [= C, B disj C  =>  A unsatisfiable, hence A [= anything. *)
  let tb =
    Tbox.make
      [
        Tbox.Concept_incl (atom "A", Dl.B (atom "B"));
        Tbox.Concept_incl (atom "A", Dl.B (atom "C"));
        Tbox.Concept_incl (atom "B", Dl.Not (atom "C"));
        Tbox.Concept_incl (atom "D", Dl.B (atom "D"));
      ]
  in
  let r = Reasoner.saturate tb in
  Alcotest.(check bool) "A unsat" true (Reasoner.unsatisfiable r (atom "A"));
  Alcotest.(check bool) "B sat" false (Reasoner.unsatisfiable r (atom "B"));
  Alcotest.(check bool) "unsat subsumed by all" true
    (Reasoner.subsumes r (atom "A") (atom "D"))

let test_unsat_role_propagation () =
  (* Range of P is unsatisfiable => P unsatisfiable => domain of P
     unsatisfiable => anything below exists P unsatisfiable. *)
  let tb =
    Tbox.make
      [
        Tbox.Concept_incl (ex_inv "P", Dl.B (atom "B"));
        Tbox.Concept_incl (ex_inv "P", Dl.B (atom "C"));
        Tbox.Concept_incl (atom "B", Dl.Not (atom "C"));
        Tbox.Concept_incl (atom "A", Dl.B (ex "P"));
      ]
  in
  let r = Reasoner.saturate tb in
  Alcotest.(check bool) "range unsat" true (Reasoner.unsatisfiable r (ex_inv "P"));
  Alcotest.(check bool) "role unsat" true (Reasoner.role_unsatisfiable r (Dl.Named "P"));
  Alcotest.(check bool) "domain unsat" true (Reasoner.unsatisfiable r (ex "P"));
  Alcotest.(check bool) "A unsat" true (Reasoner.unsatisfiable r (atom "A"))

let test_role_hierarchy () =
  (* P [= S gives exists P [= exists S and exists P- [= exists S-. *)
  let tb =
    Tbox.make
      [
        Tbox.Role_incl (Dl.Named "P", Dl.R (Dl.Named "S"));
        Tbox.Role_incl (Dl.Named "S", Dl.R (Dl.Named "T"));
      ]
  in
  let r = Reasoner.saturate tb in
  Alcotest.(check bool) "dom P [= dom S" true (Reasoner.subsumes r (ex "P") (ex "S"));
  Alcotest.(check bool) "rng P [= rng S" true
    (Reasoner.subsumes r (ex_inv "P") (ex_inv "S"));
  Alcotest.(check bool) "role transitivity" true
    (Reasoner.role_subsumes r (Dl.Named "P") (Dl.Named "T"));
  Alcotest.(check bool) "dom P [= dom T" true (Reasoner.subsumes r (ex "P") (ex "T"));
  Alcotest.(check bool) "inverse closure" true
    (Reasoner.role_subsumes r (Dl.Inv "P") (Dl.Inv "T"));
  Alcotest.(check bool) "no reverse" false
    (Reasoner.role_subsumes r (Dl.Named "T") (Dl.Named "P"))

let test_role_disjointness () =
  let tb =
    Tbox.make
      [
        Tbox.Role_incl (Dl.Named "P", Dl.R (Dl.Named "S"));
        Tbox.Role_incl (Dl.Named "S", Dl.NotR (Dl.Named "Q"));
        Tbox.Role_incl (Dl.Named "R0", Dl.R (Dl.Named "Q"));
      ]
  in
  let r = Reasoner.saturate tb in
  Alcotest.(check bool) "S disj Q" true
    (Reasoner.role_disjoint r (Dl.Named "S") (Dl.Named "Q"));
  Alcotest.(check bool) "down-closure: P disj R0" true
    (Reasoner.role_disjoint r (Dl.Named "P") (Dl.Named "R0"));
  Alcotest.(check bool) "inverse: P- disj R0-" true
    (Reasoner.role_disjoint r (Dl.Inv "P") (Dl.Inv "R0"));
  (* Role disjointness must NOT leak into concept disjointness of domains. *)
  Alcotest.(check bool) "dom P not disj dom Q" false
    (Reasoner.disjoint r (ex "P") (ex "Q"))

let test_subsumers_subsumees () =
  let ups = Reasoner.subsumers fig4 (atom "Dutch-City") in
  Alcotest.(check bool) "Dutch up to City" true (List.mem (atom "City") ups);
  Alcotest.(check bool) "Dutch up to EU" true (List.mem (atom "EU-City") ups);
  let downs = Reasoner.subsumees fig4 (atom "City") in
  Alcotest.(check bool) "City down to US" true (List.mem (atom "US-City") downs);
  Alcotest.(check bool) "City down to exists connected" true
    (List.mem (ex "connected") downs)

(* ------------------------------------------------------------------ *)
(* Canonical model: exactness of the saturation                        *)
(* ------------------------------------------------------------------ *)

let test_canonical_fig4 () =
  let m = Canonical.build fig4 in
  Alcotest.(check bool) "canonical satisfies TBox" true
    (Interp.satisfies m figure4_tbox);
  (* Counter-model witness for City not [= EU-City. *)
  Alcotest.(check bool) "x_City in City" true
    (Whynot_relational.Value_set.mem (Canonical.element (atom "City"))
       (Interp.concept_ext m (atom "City")));
  Alcotest.(check bool) "x_City not in EU-City" false
    (Whynot_relational.Value_set.mem (Canonical.element (atom "City"))
       (Interp.concept_ext m (atom "EU-City")))

(* Random TBoxes over a small signature. *)
let random_tbox_gen =
  let open QCheck2.Gen in
  let atom_gen = map (fun i -> Dl.Atom (Printf.sprintf "A%d" i)) (int_range 0 3) in
  let role_gen =
    map2
      (fun i inv -> if inv then Dl.Inv (Printf.sprintf "P%d" i) else Dl.Named (Printf.sprintf "P%d" i))
      (int_range 0 1) bool
  in
  let basic_gen =
    oneof [ atom_gen; map (fun r -> Dl.Exists r) role_gen ]
  in
  let axiom_gen =
    oneof
      [
        map2 (fun b1 b2 -> Tbox.Concept_incl (b1, Dl.B b2)) basic_gen basic_gen;
        map2 (fun b1 b2 -> Tbox.Concept_incl (b1, Dl.Not b2)) basic_gen basic_gen;
        map2 (fun r1 r2 -> Tbox.Role_incl (r1, Dl.R r2)) role_gen role_gen;
        map2 (fun r1 r2 -> Tbox.Role_incl (r1, Dl.NotR r2)) role_gen role_gen;
      ]
  in
  map Tbox.make (list_size (int_range 1 8) axiom_gen)

let prop_canonical_exactness =
  QCheck2.Test.make ~name:"saturation = truth in canonical model (sat lhs)"
    ~count:300 random_tbox_gen
    (fun tb ->
       let r = Reasoner.saturate tb in
       let m = Canonical.build r in
       List.for_all
         (fun b1 ->
            Reasoner.unsatisfiable r b1
            || List.for_all
                 (fun b2 ->
                    Reasoner.subsumes r b1 b2
                    = Interp.satisfies_inclusion m b1 b2
                    || not
                         (Whynot_relational.Value_set.mem (Canonical.element b1)
                            (Interp.concept_ext m b1)))
                 (Reasoner.universe r))
         (Reasoner.universe r))

let prop_canonical_is_model =
  QCheck2.Test.make ~name:"canonical model satisfies its TBox" ~count:300
    random_tbox_gen
    (fun tb ->
       let r = Reasoner.saturate tb in
       Interp.satisfies (Canonical.build r) tb)

let prop_subsumption_reflexive_transitive =
  QCheck2.Test.make ~name:"subsumption is a pre-order" ~count:100
    random_tbox_gen
    (fun tb ->
       let r = Reasoner.saturate tb in
       let u = Reasoner.universe r in
       List.for_all (fun b -> Reasoner.subsumes r b b) u
       && List.for_all
            (fun b1 ->
               List.for_all
                 (fun b2 ->
                    List.for_all
                      (fun b3 ->
                         (not (Reasoner.subsumes r b1 b2 && Reasoner.subsumes r b2 b3))
                         || Reasoner.subsumes r b1 b3)
                      u)
                 u)
            u)

(* ------------------------------------------------------------------ *)
(* ABoxes and knowledge bases                                          *)
(* ------------------------------------------------------------------ *)

let v = Whynot_relational.Value.str

let test_abox_entailment () =
  let abox =
    Abox.of_list
      [
        Abox.Concept_assertion ("Dutch-City", v "Amsterdam");
        Abox.Role_assertion ("hasCountry", v "Amsterdam", v "Netherlands");
        Abox.Role_assertion ("connected", v "Amsterdam", v "Berlin");
      ]
  in
  (match Abox.consistent fig4 abox with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "should be consistent: %s" msg);
  (* Derived memberships through the TBox. *)
  Alcotest.(check bool) "KB |= City(Amsterdam)" true
    (Abox.entails fig4 abox (atom "City") (v "Amsterdam"));
  Alcotest.(check bool) "KB |= EU-City(Amsterdam)" true
    (Abox.entails fig4 abox (atom "EU-City") (v "Amsterdam"));
  Alcotest.(check bool) "KB |= Country(Netherlands)" true
    (Abox.entails fig4 abox (atom "Country") (v "Netherlands"));
  Alcotest.(check bool) "KB |= City(Berlin) via connected-" true
    (Abox.entails fig4 abox (atom "City") (v "Berlin"));
  Alcotest.(check bool) "KB |/= NA-City(Amsterdam)" false
    (Abox.entails fig4 abox (atom "NA-City") (v "Amsterdam"));
  (* City = {Amsterdam, Berlin}; Netherlands is only a Country. *)
  Alcotest.(check int) "certain City extension" 2
    (Whynot_relational.Value_set.cardinal
       (Abox.certain_extension fig4 abox (atom "City")))

let test_abox_inconsistency () =
  let abox =
    Abox.of_list
      [
        Abox.Concept_assertion ("EU-City", v "Atlantis");
        Abox.Concept_assertion ("US-City", v "Atlantis");
      ]
  in
  (match Abox.consistent fig4 abox with
   | Ok () -> Alcotest.fail "clash not detected"
   | Error _ -> ());
  (* Ex falso: an inconsistent KB entails everything. *)
  Alcotest.(check bool) "ex falso" true
    (Abox.entails fig4 abox (atom "Continent") (v "Atlantis"))

let test_abox_derived_basics () =
  let abox =
    Abox.of_list [ Abox.Role_assertion ("hasCountry", v "a", v "b") ]
  in
  let derived = Abox.derived_basics fig4 abox (v "b") in
  Alcotest.(check bool) "range membership" true
    (List.mem (ex_inv "hasCountry") derived);
  Alcotest.(check bool) "Country derived" true
    (List.mem (atom "Country") derived);
  (* Existentially implied concepts of anonymous successors do NOT surface
     for named individuals: Country [= exists hasContinent does not put b
     in any atomic concept beyond Country. *)
  Alcotest.(check bool) "has hasContinent (derived)" true
    (List.mem (ex "hasContinent") derived);
  Alcotest.(check bool) "not Continent" false
    (List.mem (atom "Continent") derived)

(* Triangulation: three independent implementations of certain concept
   membership must agree — (1) ABox forward closure (Abox.certain_extension),
   (2) PerfectRef rewriting + evaluation, (3) membership via derived
   basics. *)
let random_abox_gen =
  let open QCheck2.Gen in
  let ind = map (fun i -> Whynot_relational.Value.str (Printf.sprintf "i%d" i)) (int_range 0 3) in
  let assertion =
    oneof
      [
        map2 (fun i x -> Abox.Concept_assertion (Printf.sprintf "A%d" i, x)) (int_range 0 3) ind;
        map3 (fun i x y -> Abox.Role_assertion (Printf.sprintf "P%d" i, x, y)) (int_range 0 1) ind ind;
      ]
  in
  map Abox.of_list (list_size (int_range 1 6) assertion)

let prop_certain_membership_triangulation =
  QCheck2.Test.make ~name:"ABox closure = PerfectRef rewriting" ~count:150
    QCheck2.Gen.(pair random_tbox_gen random_abox_gen)
    (fun (tb, abox) ->
       let r = Reasoner.saturate tb in
       match Abox.consistent r abox with
       | Error _ -> true (* certain answers trivialise; skip *)
       | Ok () ->
         let abox_inst = Interp.to_instance (Abox.to_interp abox) in
         List.for_all
           (fun a ->
              let q =
                Whynot_relational.Cq.make
                  ~head:[ Whynot_relational.Cq.Var "x" ]
                  ~atoms:[ { Whynot_relational.Cq.rel = a;
                             args = [ Whynot_relational.Cq.Var "x" ] } ]
                  ()
              in
              let via_rewrite =
                Whynot_relational.Relation.column 1
                  (Whynot_relational.Ucq.eval
                     (Whynot_obda.Rewrite.rewrite tb q) abox_inst)
              in
              let via_closure = Abox.certain_extension r abox (Dl.Atom a) in
              Whynot_relational.Value_set.equal via_rewrite via_closure)
           (Tbox.atomic_concepts tb))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_canonical_is_model;
      prop_canonical_exactness;
      prop_subsumption_reflexive_transitive;
      prop_certain_membership_triangulation;
      QCheck2.Test.make ~name:"on-demand subsumption = saturation" ~count:300
        random_tbox_gen
        (fun tb ->
           let r = Reasoner.saturate tb in
           let u = Reasoner.universe r in
           List.for_all
             (fun b1 ->
                List.for_all
                  (fun b2 ->
                     Ondemand.subsumes tb b1 b2 = Reasoner.subsumes r b1 b2)
                  u
                && Ondemand.unsatisfiable tb b1 = Reasoner.unsatisfiable r b1)
             u);
    ]

let () =
  Alcotest.run "dllite"
    [
      ( "figure4",
        [
          Alcotest.test_case "subsumptions" `Quick test_fig4_subsumptions;
          Alcotest.test_case "disjointness" `Quick test_fig4_disjointness;
          Alcotest.test_case "signature" `Quick test_fig4_signature;
        ] );
      ( "unsat",
        [
          Alcotest.test_case "concept" `Quick test_unsat_concept;
          Alcotest.test_case "role propagation" `Quick test_unsat_role_propagation;
        ] );
      ( "roles",
        [
          Alcotest.test_case "hierarchy" `Quick test_role_hierarchy;
          Alcotest.test_case "disjointness" `Quick test_role_disjointness;
        ] );
      ( "queries",
        [ Alcotest.test_case "subsumers/subsumees" `Quick test_subsumers_subsumees ] );
      ( "canonical",
        [ Alcotest.test_case "figure4" `Quick test_canonical_fig4 ] );
      ( "abox",
        [
          Alcotest.test_case "entailment" `Quick test_abox_entailment;
          Alcotest.test_case "inconsistency" `Quick test_abox_inconsistency;
          Alcotest.test_case "derived basics" `Quick test_abox_derived_basics;
        ] );
      ("properties", qcheck_cases);
    ]
