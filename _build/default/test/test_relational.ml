(* Tests for the relational substrate: values, intervals, tuples, relations,
   FDs, INDs, CQ evaluation, views and containment. *)

open Whynot_relational

let v_int n = Value.Int n
let v_str s = Value.Str s
let v_real x = Value.Real x

(* ------------------------------------------------------------------ *)
(* Value                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "num < str" true (Value.compare (v_int 99) (v_str "a") < 0);
  Alcotest.(check bool) "real vs int" true (Value.compare (v_real 1.5) (v_int 2) < 0);
  Alcotest.(check bool) "int tie below real" true
    (Value.compare (v_int 3) (v_real 3.0) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (v_str "Amsterdam") (v_str "Berlin") < 0)

let test_value_between () =
  (match Value.between (v_int 1) (v_int 2) with
   | Some v ->
     Alcotest.(check bool) "1 < m" true (Value.compare (v_int 1) v < 0);
     Alcotest.(check bool) "m < 2" true (Value.compare v (v_int 2) < 0)
   | None -> Alcotest.fail "expected a value between 1 and 2");
  (match Value.between (v_str "ab") (v_str "ac") with
   | Some v ->
     Alcotest.(check bool) "ab < m" true (Value.compare (v_str "ab") v < 0);
     Alcotest.(check bool) "m < ac" true (Value.compare v (v_str "ac") < 0)
   | None -> Alcotest.fail "expected a string between ab and ac");
  Alcotest.(check bool) "empty numeric gap" true
    (Value.between (v_int 3) (v_real 3.0) = None)

let test_value_below_above () =
  List.iter
    (fun v ->
       Alcotest.(check bool) "below" true (Value.compare (Value.below v) v < 0);
       Alcotest.(check bool) "above" true (Value.compare v (Value.above v) < 0))
    [ v_int 0; v_real 2.5; v_str "x" ]

let test_value_roundtrip () =
  Alcotest.(check bool) "int" true (Value.of_string "42" = v_int 42);
  Alcotest.(check bool) "real" true (Value.of_string "1.5" = v_real 1.5);
  Alcotest.(check bool) "str" true (Value.of_string "Berlin" = v_str "Berlin");
  Alcotest.(check bool) "quoted" true (Value.of_string "\"a b\"" = v_str "a b")

(* ------------------------------------------------------------------ *)
(* Interval                                                           *)
(* ------------------------------------------------------------------ *)

let itv op c = Interval.of_condition op c

let test_interval_meet_mem () =
  let i = Interval.meet (itv Cmp_op.Ge (v_int 2)) (itv Cmp_op.Lt (v_int 5)) in
  Alcotest.(check bool) "2 in [2,5)" true (Interval.mem (v_int 2) i);
  Alcotest.(check bool) "4 in [2,5)" true (Interval.mem (v_int 4) i);
  Alcotest.(check bool) "5 not in [2,5)" false (Interval.mem (v_int 5) i);
  Alcotest.(check bool) "not empty" false (Interval.is_empty i)

let test_interval_empty () =
  let e = Interval.meet (itv Cmp_op.Lt (v_int 0)) (itv Cmp_op.Gt (v_int 0)) in
  Alcotest.(check bool) "lt&gt empty" true (Interval.is_empty e);
  let e2 = Interval.meet (itv Cmp_op.Eq (v_int 1)) (itv Cmp_op.Eq (v_int 2)) in
  Alcotest.(check bool) "two points empty" true (Interval.is_empty e2);
  (* Open interval with an empty density gap. *)
  let g =
    Interval.make (Interval.Open (v_int 3)) (Interval.Open (v_real 3.0))
  in
  Alcotest.(check bool) "gap empty" true (Interval.is_empty g)

let test_interval_subset () =
  let sub = Interval.subset in
  Alcotest.(check bool) "point in ge" true
    (sub (itv Cmp_op.Eq (v_int 3)) (itv Cmp_op.Ge (v_int 3)));
  Alcotest.(check bool) "lt 3 in le 3" true
    (sub (itv Cmp_op.Lt (v_int 3)) (itv Cmp_op.Le (v_int 3)));
  Alcotest.(check bool) "le 3 not in lt 3" false
    (sub (itv Cmp_op.Le (v_int 3)) (itv Cmp_op.Lt (v_int 3)));
  Alcotest.(check bool) "anything in top" true
    (sub (itv Cmp_op.Gt (v_int 0)) Interval.top);
  Alcotest.(check bool) "empty in point" true
    (sub
       (Interval.meet (itv Cmp_op.Lt (v_int 0)) (itv Cmp_op.Gt (v_int 0)))
       (itv Cmp_op.Eq (v_int 7)))

let test_interval_point_sample () =
  Alcotest.(check bool) "point" true
    (Interval.is_point (itv Cmp_op.Eq (v_int 3)) = Some (v_int 3));
  (match Interval.sample (Interval.meet (itv Cmp_op.Gt (v_int 0)) (itv Cmp_op.Lt (v_int 1))) with
   | Some v -> Alcotest.(check bool) "in (0,1)" true
                 (Value.compare (v_int 0) v < 0 && Value.compare v (v_int 1) < 0)
   | None -> Alcotest.fail "expected a sample in (0,1)")

(* qcheck: interval membership respects meet. *)
let value_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Value.Int n) (int_range (-20) 20);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'e') (int_range 0 3));
      ])

let cond_gen =
  QCheck2.Gen.(
    pair (oneofl Cmp_op.all) value_gen)

let prop_meet_is_conjunction =
  QCheck2.Test.make ~name:"interval meet = conjunction of conditions"
    ~count:500
    QCheck2.Gen.(triple cond_gen cond_gen value_gen)
    (fun ((op1, c1), (op2, c2), v) ->
       let i = Interval.meet (itv op1 c1) (itv op2 c2) in
       Interval.mem v i = (Cmp_op.eval op1 v c1 && Cmp_op.eval op2 v c2))

let prop_subset_sound =
  QCheck2.Test.make ~name:"interval subset implies pointwise" ~count:500
    QCheck2.Gen.(triple cond_gen cond_gen value_gen)
    (fun ((op1, c1), (op2, c2), v) ->
       let i = itv op1 c1 and j = itv op2 c2 in
       (not (Interval.subset i j)) || not (Interval.mem v i)
       || Interval.mem v j)

(* ------------------------------------------------------------------ *)
(* Tuple / Relation                                                   *)
(* ------------------------------------------------------------------ *)

let t123 = Tuple.of_list [ v_int 1; v_int 2; v_int 3 ]

let test_tuple_proj () =
  Alcotest.(check bool) "proj 3,1" true
    (Tuple.equal (Tuple.proj [ 3; 1 ] t123) (Tuple.of_list [ v_int 3; v_int 1 ]));
  Alcotest.(check bool) "get" true (Value.equal (Tuple.get t123 2) (v_int 2));
  Alcotest.check_raises "out of range" (Invalid_argument "Tuple.get: attribute 4 out of range 1..3")
    (fun () -> ignore (Tuple.get t123 4))

let rel_of rows = Relation.of_value_lists ~arity:(List.length (List.hd rows)) rows

let test_relation_ops () =
  let r = rel_of [ [ v_int 1; v_str "a" ]; [ v_int 2; v_str "b" ]; [ v_int 1; v_str "c" ] ] in
  Alcotest.(check int) "cardinal" 3 (Relation.cardinal r);
  Alcotest.(check int) "project 1" 2 (Relation.cardinal (Relation.project [ 1 ] r));
  Alcotest.(check int) "column 2" 3 (Value_set.cardinal (Relation.column 2 r));
  let sel = Relation.select [ (1, Cmp_op.Eq, v_int 1) ] r in
  Alcotest.(check int) "select" 2 (Relation.cardinal sel);
  let dup = Relation.add (Tuple.of_list [ v_int 1; v_str "a" ]) r in
  Alcotest.(check int) "set semantics" 3 (Relation.cardinal dup);
  Alcotest.(check int) "product" 9
    (Relation.cardinal (Relation.product r r));
  Alcotest.(check int) "product arity" 4 (Relation.arity (Relation.product r r))

let test_relation_arity_guard () =
  let r = Relation.empty ~arity:2 in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation: tuple of arity 3 in relation of arity 2")
    (fun () -> ignore (Relation.add t123 r))

(* ------------------------------------------------------------------ *)
(* FDs                                                                *)
(* ------------------------------------------------------------------ *)

let test_fd () =
  let fd = Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 2 ] in
  let ok = rel_of [ [ v_int 1; v_str "a" ]; [ v_int 2; v_str "a" ] ] in
  let bad = rel_of [ [ v_int 1; v_str "a" ]; [ v_int 1; v_str "b" ] ] in
  Alcotest.(check bool) "satisfied" true (Fd.satisfied_in fd ok);
  Alcotest.(check bool) "violated" false (Fd.satisfied_in fd bad);
  Alcotest.(check int) "one violation" 1 (List.length (Fd.violations fd bad))

let test_fd_closure_implies () =
  let fds =
    [ Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 2 ];
      Fd.make ~rel:"R" ~lhs:[ 2 ] ~rhs:[ 3 ] ]
  in
  Alcotest.(check (list int)) "closure {1}" [ 1; 2; 3 ] (Fd.closure fds ~rel:"R" [ 1 ]);
  Alcotest.(check bool) "transitivity" true
    (Fd.implies fds (Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 3 ]));
  Alcotest.(check bool) "no reverse" false
    (Fd.implies fds (Fd.make ~rel:"R" ~lhs:[ 3 ] ~rhs:[ 1 ]));
  (* FDs on other relations do not interfere. *)
  Alcotest.(check bool) "other rel" false
    (Fd.implies fds (Fd.make ~rel:"S" ~lhs:[ 1 ] ~rhs:[ 2 ]))

(* ------------------------------------------------------------------ *)
(* INDs                                                               *)
(* ------------------------------------------------------------------ *)

let test_ind () =
  let ind = Ind.make ~lhs_rel:"R" ~lhs_attrs:[ 1 ] ~rhs_rel:"S" ~rhs_attrs:[ 2 ] in
  let r = rel_of [ [ v_int 1; v_int 10 ]; [ v_int 2; v_int 20 ] ] in
  let s_ok = rel_of [ [ v_str "x"; v_int 1 ]; [ v_str "y"; v_int 2 ] ] in
  let s_bad = rel_of [ [ v_str "x"; v_int 1 ] ] in
  Alcotest.(check bool) "satisfied" true (Ind.satisfied_in ind ~lhs:r ~rhs:s_ok);
  Alcotest.(check bool) "violated" false (Ind.satisfied_in ind ~lhs:r ~rhs:s_bad);
  Alcotest.(check int) "violations" 1 (List.length (Ind.violations ind ~lhs:r ~rhs:s_bad))

let test_ind_reachability () =
  let inds =
    [ Ind.make ~lhs_rel:"R" ~lhs_attrs:[ 1; 2 ] ~rhs_rel:"S" ~rhs_attrs:[ 2; 1 ];
      Ind.make ~lhs_rel:"S" ~lhs_attrs:[ 2 ] ~rhs_rel:"T" ~rhs_attrs:[ 1 ] ]
  in
  let reach = Ind.unary_reachable inds ("R", 1) in
  Alcotest.(check bool) "R1 -> S2" true (List.mem ("S", 2) reach);
  Alcotest.(check bool) "R1 -> T1" true (List.mem ("T", 1) reach);
  Alcotest.(check bool) "not S1" false (List.mem ("S", 1) reach)

(* ------------------------------------------------------------------ *)
(* CQ evaluation                                                      *)
(* ------------------------------------------------------------------ *)

let train_inst =
  Instance.of_facts
    [
      ( "TC",
        [
          [ v_str "Amsterdam"; v_str "Berlin" ];
          [ v_str "Berlin"; v_str "Rome" ];
          [ v_str "Berlin"; v_str "Amsterdam" ];
          [ v_str "New York"; v_str "San Francisco" ];
          [ v_str "San Francisco"; v_str "Santa Cruz" ];
          [ v_str "Tokyo"; v_str "Kyoto" ];
        ] );
    ]

let two_hop =
  Cq.make
    ~head:[ Cq.Var "x"; Cq.Var "y" ]
    ~atoms:
      [
        { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Var "z" ] };
        { Cq.rel = "TC"; args = [ Cq.Var "z"; Cq.Var "y" ] };
      ]
    ()

let test_cq_eval_two_hop () =
  (* Example 3.4: q(I) = {(A,R), (A,A), (B,B), (NY,SC)}. *)
  let res = Cq.eval two_hop train_inst in
  let expect =
    rel_of
      [
        [ v_str "Amsterdam"; v_str "Rome" ];
        [ v_str "Amsterdam"; v_str "Amsterdam" ];
        [ v_str "Berlin"; v_str "Berlin" ];
        [ v_str "New York"; v_str "Santa Cruz" ];
      ]
  in
  Alcotest.(check bool) "example 3.4 answers" true (Relation.equal res expect)

let test_cq_eval_constants_and_comparisons () =
  let inst =
    Instance.of_facts
      [ ("Cities", [ [ v_str "Berlin"; v_int 3502000 ]; [ v_str "Santa Cruz"; v_int 59946 ] ]) ]
  in
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "Cities"; args = [ Cq.Var "x"; Cq.Var "p" ] } ]
      ~comparisons:[ { Cq.subject = "p"; op = Cmp_op.Gt; value = v_int 1000000 } ]
      ()
  in
  let res = Cq.eval q inst in
  Alcotest.(check int) "one big city" 1 (Relation.cardinal res);
  Alcotest.(check bool) "Berlin" true
    (Relation.mem (Tuple.of_list [ v_str "Berlin" ]) res);
  let q_const =
    Cq.make ~head:[ Cq.Var "p" ]
      ~atoms:[ { Cq.rel = "Cities"; args = [ Cq.Const (v_str "Berlin"); Cq.Var "p" ] } ]
      ()
  in
  Alcotest.(check int) "constant in atom" 1 (Relation.cardinal (Cq.eval q_const inst))

let test_cq_boolean () =
  let q_yes =
    Cq.make ~head:[]
      ~atoms:[ { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Const (v_str "Kyoto") ] } ]
      ()
  in
  let q_no =
    Cq.make ~head:[]
      ~atoms:[ { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Const (v_str "Paris") ] } ]
      ()
  in
  Alcotest.(check bool) "holds" true (Cq.holds q_yes train_inst);
  Alcotest.(check bool) "fails" false (Cq.holds q_no train_inst)

let test_cq_substitute () =
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "R"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
      ~comparisons:[ { Cq.subject = "y"; op = Cmp_op.Lt; value = v_int 5 } ]
      ()
  in
  let ok = Cq.substitute [ ("y", Cq.Const (v_int 3)) ] q in
  Alcotest.(check bool) "comparison discharged" false
    (Cq.is_unsatisfiable_syntactic ok);
  let bad = Cq.substitute [ ("y", Cq.Const (v_int 9)) ] q in
  Alcotest.(check bool) "comparison violated" true
    (Cq.is_unsatisfiable_syntactic bad)

let test_cq_safety () =
  let safe = two_hop in
  Alcotest.(check bool) "two-hop safe" true (Cq.is_safe safe);
  let unsafe = Cq.make ~head:[ Cq.Var "x" ] ~atoms:[] () in
  Alcotest.(check bool) "free head var unsafe" false (Cq.is_safe unsafe)

(* ------------------------------------------------------------------ *)
(* Views                                                              *)
(* ------------------------------------------------------------------ *)

let cities_inst =
  Instance.of_facts
    [
      ( "Cities",
        [
          [ v_str "Amsterdam"; v_int 779808; v_str "Netherlands"; v_str "Europe" ];
          [ v_str "Berlin"; v_int 3502000; v_str "Germany"; v_str "Europe" ];
          [ v_str "Rome"; v_int 2753000; v_str "Italy"; v_str "Europe" ];
          [ v_str "New York"; v_int 8337000; v_str "USA"; v_str "N.America" ];
          [ v_str "San Francisco"; v_int 837442; v_str "USA"; v_str "N.America" ];
          [ v_str "Santa Cruz"; v_int 59946; v_str "USA"; v_str "N.America" ];
          [ v_str "Tokyo"; v_int 13185000; v_str "Japan"; v_str "Asia" ];
          [ v_str "Kyoto"; v_int 1400000; v_str "Japan"; v_str "Asia" ];
        ] );
      ( "TC",
        [
          [ v_str "Amsterdam"; v_str "Berlin" ];
          [ v_str "Berlin"; v_str "Rome" ];
          [ v_str "Berlin"; v_str "Amsterdam" ];
          [ v_str "New York"; v_str "San Francisco" ];
          [ v_str "San Francisco"; v_str "Santa Cruz" ];
          [ v_str "Tokyo"; v_str "Kyoto" ];
        ] );
    ]

let big_city_def =
  {
    View.name = "BigCity";
    body =
      Ucq.of_cq
        (Cq.make ~head:[ Cq.Var "x" ]
           ~atoms:
             [ { Cq.rel = "Cities"; args = [ Cq.Var "x"; Cq.Var "y"; Cq.Var "z"; Cq.Var "w" ] } ]
           ~comparisons:[ { Cq.subject = "y"; op = Cmp_op.Ge; value = v_int 5000000 } ]
           ());
  }

let reachable_def =
  {
    View.name = "Reachable";
    body =
      Ucq.make
        [
          Cq.make
            ~head:[ Cq.Var "x"; Cq.Var "y" ]
            ~atoms:[ { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
            ();
          Cq.make
            ~head:[ Cq.Var "x"; Cq.Var "y" ]
            ~atoms:
              [
                { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Var "z" ] };
                { Cq.rel = "TC"; args = [ Cq.Var "z"; Cq.Var "y" ] };
              ]
            ();
        ];
  }

let test_view_materialise () =
  (* Figure 2: BigCity = {New York, Tokyo}; Reachable has 10 tuples. *)
  let views = View.make_exn [ big_city_def; reachable_def ] in
  let inst = View.materialise views cities_inst in
  let big = Option.get (Instance.relation inst "BigCity") in
  Alcotest.(check int) "BigCity size" 2 (Relation.cardinal big);
  Alcotest.(check bool) "NY big" true
    (Relation.mem (Tuple.of_list [ v_str "New York" ]) big);
  Alcotest.(check bool) "Tokyo big" true
    (Relation.mem (Tuple.of_list [ v_str "Tokyo" ]) big);
  let reach = Option.get (Instance.relation inst "Reachable") in
  Alcotest.(check int) "Reachable size" 10 (Relation.cardinal reach)

let test_view_nested () =
  (* FarReachable nests Reachable: a view over a view. *)
  let far =
    {
      View.name = "FarReachable";
      body =
        Ucq.of_cq
          (Cq.make
             ~head:[ Cq.Var "x"; Cq.Var "y" ]
             ~atoms:
               [
                 { Cq.rel = "Reachable"; args = [ Cq.Var "x"; Cq.Var "z" ] };
                 { Cq.rel = "TC"; args = [ Cq.Var "z"; Cq.Var "y" ] };
               ]
             ());
    }
  in
  let views = View.make_exn [ far; reachable_def ] in
  Alcotest.(check bool) "not flat" false (View.is_flat views);
  Alcotest.(check bool) "linear" true (View.is_linear views);
  let order = View.topological_order views in
  Alcotest.(check bool) "Reachable before FarReachable" true
    (let idx n = Option.get (List.find_index (String.equal n) order) in
     idx "Reachable" < idx "FarReachable");
  let inst = View.materialise views cities_inst in
  let farr = Option.get (Instance.relation inst "FarReachable") in
  (* 3-hop reachability over TC: Amsterdam can reach {B,R,A} in <=2, then one
     more TC hop. *)
  Alcotest.(check bool) "Amsterdam 3 hops to Rome" true
    (Relation.mem (Tuple.of_list [ v_str "Amsterdam"; v_str "Rome" ]) farr)

let test_view_cycle_rejected () =
  let a =
    {
      View.name = "A";
      body =
        Ucq.of_cq
          (Cq.make ~head:[ Cq.Var "x" ]
             ~atoms:[ { Cq.rel = "B"; args = [ Cq.Var "x" ] } ]
             ());
    }
  in
  let b =
    {
      View.name = "B";
      body =
        Ucq.of_cq
          (Cq.make ~head:[ Cq.Var "x" ]
             ~atoms:[ { Cq.rel = "A"; args = [ Cq.Var "x" ] } ]
             ());
    }
  in
  match View.make [ a; b ] with
  | Ok _ -> Alcotest.fail "cycle should be rejected"
  | Error _ -> ()

let test_view_unfold () =
  let views = View.make_exn [ big_city_def; reachable_def ] in
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:
        [
          { Cq.rel = "Reachable"; args = [ Cq.Var "x"; Cq.Var "y" ] };
          { Cq.rel = "BigCity"; args = [ Cq.Var "y" ] };
        ]
      ()
  in
  let unfolded = View.unfold_cq views q in
  Alcotest.(check int) "2 disjuncts (Reachable splits)" 2 (List.length unfolded);
  List.iter
    (fun q' ->
       List.iter
         (fun (a : Cq.atom) ->
            Alcotest.(check bool) "base atoms only" true
              (List.mem a.Cq.rel [ "Cities"; "TC" ]))
         q'.Cq.atoms)
    unfolded;
  (* Unfolded query is equivalent to evaluating over materialised views. *)
  let direct = Cq.eval q (View.materialise views cities_inst) in
  let via_unfold = Ucq.eval (Ucq.make unfolded) cities_inst in
  Alcotest.(check bool) "unfold preserves semantics" true
    (Relation.equal direct via_unfold)

let test_view_unfold_constant_head () =
  (* A view whose definition binds a head position to a constant; unfolding a
     query with a conflicting constant must drop the disjunct. *)
  let only_europe =
    {
      View.name = "EuropeOnly";
      body =
        Ucq.of_cq
          (Cq.make
             ~head:[ Cq.Var "x"; Cq.Const (v_str "Europe") ]
             ~atoms:
               [ { Cq.rel = "Cities"; args = [ Cq.Var "x"; Cq.Var "p"; Cq.Var "c"; Cq.Const (v_str "Europe") ] } ]
             ());
    }
  in
  let views = View.make_exn [ only_europe ] in
  let q_match =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "EuropeOnly"; args = [ Cq.Var "x"; Cq.Const (v_str "Europe") ] } ]
      ()
  in
  let q_clash =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "EuropeOnly"; args = [ Cq.Var "x"; Cq.Const (v_str "Asia") ] } ]
      ()
  in
  Alcotest.(check int) "match survives" 1 (List.length (View.unfold_cq views q_match));
  Alcotest.(check int) "clash drops" 0 (List.length (View.unfold_cq views q_clash))

(* ------------------------------------------------------------------ *)
(* Schema                                                             *)
(* ------------------------------------------------------------------ *)

let figure1_schema () =
  Schema.make_exn
    ~fds:[ Fd.make ~rel:"Cities" ~lhs:[ 3 ] ~rhs:[ 4 ] ]
    ~inds:
      [
        Ind.make ~lhs_rel:"BigCity" ~lhs_attrs:[ 1 ] ~rhs_rel:"TC" ~rhs_attrs:[ 1 ];
        Ind.make ~lhs_rel:"TC" ~lhs_attrs:[ 1 ] ~rhs_rel:"Cities" ~rhs_attrs:[ 1 ];
        Ind.make ~lhs_rel:"TC" ~lhs_attrs:[ 2 ] ~rhs_rel:"Cities" ~rhs_attrs:[ 1 ];
      ]
    ~views:[ big_city_def; reachable_def ]
    [
      { Schema.name = "Cities"; attrs = [ "name"; "population"; "country"; "continent" ] };
      { Schema.name = "TC"; attrs = [ "city_from"; "city_to" ] };
      { Schema.name = "BigCity"; attrs = [ "name" ] };
      { Schema.name = "Reachable"; attrs = [ "city_from"; "city_to" ] };
    ]

let test_schema_basics () =
  let s = figure1_schema () in
  Alcotest.(check (option int)) "arity" (Some 4) (Schema.arity s "Cities");
  Alcotest.(check (option int)) "attr_index" (Some 2)
    (Schema.attr_index s ~rel:"Cities" "population");
  Alcotest.(check (list string)) "data relations" [ "Cities"; "TC" ]
    (Schema.data_relation_names s);
  Alcotest.(check int) "positions" 9 (List.length (Schema.positions s));
  Alcotest.(check int) "max arity" 4 (Schema.max_arity s)

let test_schema_satisfies () =
  let s = figure1_schema () in
  let full = Schema.complete s cities_inst in
  (match Schema.satisfies s full with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("figure 1+2 should satisfy schema: " ^ msg));
  (* Breaking the FD country -> continent. *)
  let broken =
    Instance.add_fact "Cities"
      [ v_str "Testville"; v_int 1; v_str "Germany"; v_str "Mars" ]
      full
  in
  (match Schema.satisfies s broken with
   | Ok () -> Alcotest.fail "FD violation not detected"
   | Error _ -> ())

let test_schema_rejects_bad () =
  (match
     Schema.make
       ~fds:[ Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 5 ] ]
       [ { Schema.name = "R"; attrs = [ "a"; "b" ] } ]
   with
   | Ok _ -> Alcotest.fail "out-of-range FD accepted"
   | Error _ -> ());
  match
    Schema.make
      [ { Schema.name = "R"; attrs = [ "a" ] }; { Schema.name = "R"; attrs = [ "b" ] } ]
  with
  | Ok _ -> Alcotest.fail "duplicate relation accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Containment                                                        *)
(* ------------------------------------------------------------------ *)

let atom rel args = { Cq.rel; args }

let test_containment_no_comparisons () =
  (* R(x,y) & R(y,z) is contained in R(x,y') (projection), not vice versa. *)
  let q2hop =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Var "y" ]; atom "R" [ Cq.Var "y"; Cq.Var "z" ] ]
      ()
  in
  let q1hop =
    Cq.make ~head:[ Cq.Var "x" ] ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Var "y" ] ] ()
  in
  Alcotest.(check bool) "2hop <= 1hop" true (Containment.cq_in_cq q2hop q1hop);
  Alcotest.(check bool) "1hop not <= 2hop" false (Containment.cq_in_cq q1hop q2hop)

let test_containment_with_comparisons () =
  let q_lt3 =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x" ] ]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Lt; value = v_int 3 } ]
      ()
  in
  let q_le3 =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x" ] ]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Le; value = v_int 3 } ]
      ()
  in
  Alcotest.(check bool) "<3 in <=3" true (Containment.cq_in_cq q_lt3 q_le3);
  Alcotest.(check bool) "<=3 not in <3" false (Containment.cq_in_cq q_le3 q_lt3)

let test_containment_union_split () =
  (* R(x) with x<=3 is contained in (x<3) union (x=3) union (x>3) but in no
     single disjunct: a genuinely union-requiring containment. *)
  let base cmp =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x" ] ]
      ~comparisons:[ cmp ]
      ()
  in
  let q = base { Cq.subject = "x"; op = Cmp_op.Le; value = v_int 3 } in
  let u =
    Ucq.make
      [
        base { Cq.subject = "x"; op = Cmp_op.Lt; value = v_int 3 };
        base { Cq.subject = "x"; op = Cmp_op.Eq; value = v_int 3 };
      ]
  in
  Alcotest.(check bool) "le3 in (lt3 | eq3)" true (Containment.cq_in_ucq q u);
  Alcotest.(check bool) "not in lt3 alone" false
    (Containment.cq_in_ucq q (Ucq.make [ base { Cq.subject = "x"; op = Cmp_op.Lt; value = v_int 3 } ]));
  Alcotest.(check bool) "not in eq3 alone" false
    (Containment.cq_in_ucq q (Ucq.make [ base { Cq.subject = "x"; op = Cmp_op.Eq; value = v_int 3 } ]))

let test_containment_constants () =
  let q_const =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Const (v_str "a") ] ]
      ()
  in
  let q_var =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Var "y" ] ]
      ()
  in
  Alcotest.(check bool) "const in var" true (Containment.cq_in_cq q_const q_var);
  Alcotest.(check bool) "var not in const" false (Containment.cq_in_cq q_var q_const)

let test_containment_unsat_lhs () =
  let q_false =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x" ] ]
      ~comparisons:
        [
          { Cq.subject = "x"; op = Cmp_op.Lt; value = v_int 0 };
          { Cq.subject = "x"; op = Cmp_op.Gt; value = v_int 0 };
        ]
      ()
  in
  let q_any =
    Cq.make ~head:[ Cq.Var "x" ] ~atoms:[ atom "S" [ Cq.Var "x" ] ] ()
  in
  Alcotest.(check bool) "false in anything" true
    (Containment.cq_in_cq q_false q_any)

(* qcheck: containment is sound w.r.t. evaluation on random instances. *)
let small_inst_gen =
  QCheck2.Gen.(
    let tuple2 = pair (int_range 0 4) (int_range 0 4) in
    map
      (fun rows ->
         List.fold_left
           (fun inst (a, b) -> Instance.add_fact "R" [ v_int a; v_int b ] inst)
           Instance.empty rows)
      (list_size (int_range 1 8) tuple2))

(* A small pool of unary-head queries over binary R. *)
let query_pool =
  let x = Cq.Var "x" and y = Cq.Var "y" and z = Cq.Var "z" in
  [
    Cq.make ~head:[ x ] ~atoms:[ atom "R" [ x; y ] ] ();
    Cq.make ~head:[ x ] ~atoms:[ atom "R" [ x; y ]; atom "R" [ y; z ] ] ();
    Cq.make ~head:[ x ] ~atoms:[ atom "R" [ x; x ] ] ();
    Cq.make ~head:[ x ] ~atoms:[ atom "R" [ y; x ] ] ();
    Cq.make ~head:[ x ]
      ~atoms:[ atom "R" [ x; y ] ]
      ~comparisons:[ { Cq.subject = "x"; op = Cmp_op.Le; value = v_int 2 } ]
      ();
    Cq.make ~head:[ x ]
      ~atoms:[ atom "R" [ x; y ] ]
      ~comparisons:[ { Cq.subject = "y"; op = Cmp_op.Gt; value = v_int 1 } ]
      ();
  ]

let prop_containment_sound =
  QCheck2.Test.make ~name:"cq_in_cq sound on random instances" ~count:200
    QCheck2.Gen.(
      triple (int_range 0 (List.length query_pool - 1))
        (int_range 0 (List.length query_pool - 1))
        small_inst_gen)
    (fun (i, j, inst) ->
       let q1 = List.nth query_pool i and q2 = List.nth query_pool j in
       (not (Containment.cq_in_cq q1 q2))
       || Relation.subset (Cq.eval q1 inst) (Cq.eval q2 inst))

let prop_containment_reflexive =
  QCheck2.Test.make ~name:"cq_in_cq reflexive" ~count:50
    QCheck2.Gen.(int_range 0 (List.length query_pool - 1))
    (fun i ->
       let q = List.nth query_pool i in
       Containment.cq_in_cq q q)

(* ------------------------------------------------------------------ *)
(* API contracts not covered elsewhere                                 *)
(* ------------------------------------------------------------------ *)

let test_relation_set_algebra () =
  let r1 = rel_of [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ] in
  let r2 = rel_of [ [ v_int 2 ] ] in
  Alcotest.(check int) "diff" 2 (Relation.cardinal (Relation.diff r1 r2));
  Alcotest.(check bool) "subset" true (Relation.subset r2 r1);
  Alcotest.(check bool) "not subset" false (Relation.subset r1 r2);
  Alcotest.(check int) "remove" 2
    (Relation.cardinal (Relation.remove (Tuple.of_list [ v_int 1 ]) r1));
  Alcotest.(check bool) "exists" true
    (Relation.exists (fun t -> Value.equal (Tuple.get t 1) (v_int 3)) r1);
  Alcotest.(check bool) "for_all" false
    (Relation.for_all (fun t -> Value.equal (Tuple.get t 1) (v_int 3)) r1);
  Alcotest.check_raises "union arity mismatch"
    (Invalid_argument "Relation.union: arity mismatch")
    (fun () -> ignore (Relation.union r1 (Relation.empty ~arity:2)))

let test_instance_union_restrict () =
  let i1 = Instance.of_facts [ ("R", [ [ v_int 1 ] ]) ] in
  let i2 = Instance.of_facts [ ("R", [ [ v_int 2 ] ]); ("S", [ [ v_int 9 ] ]) ] in
  let u = Instance.union i1 i2 in
  Alcotest.(check int) "union facts" 3 (Instance.fact_count u);
  Alcotest.(check (list string)) "restrict" [ "S" ]
    (Instance.relation_names (Instance.restrict [ "S" ] u));
  Alcotest.(check bool) "mem_fact" true
    (Instance.mem_fact u "S" (Tuple.of_list [ v_int 9 ]));
  Alcotest.(check bool) "adom" true
    (Value_set.equal (Instance.adom u)
       (Value_set.of_list [ v_int 1; v_int 2; v_int 9 ]))

let test_ucq_api () =
  let q1 = Cq.make ~head:[ Cq.Var "x" ] ~atoms:[ atom "R" [ Cq.Var "x" ] ] () in
  let q2 = Cq.make ~head:[ Cq.Var "x" ] ~atoms:[ atom "S" [ Cq.Var "x" ] ] () in
  let u = Ucq.make [ q1; q2 ] in
  Alcotest.(check (list string)) "atoms_relations" [ "R"; "S" ]
    (Ucq.atoms_relations u);
  let renamed = Ucq.rename_apart ~suffix:"@1" u in
  Alcotest.(check bool) "rename keeps arity" true (Ucq.arity renamed = 1);
  Alcotest.check_raises "mixed arities"
    (Invalid_argument "Ucq.make: disjuncts of different arities")
    (fun () ->
       ignore
         (Ucq.make
            [ q1;
              Cq.make ~head:[ Cq.Var "x"; Cq.Var "y" ]
                ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Var "y" ] ] () ]));
  let inst = Instance.of_facts [ ("R", [ [ v_int 1 ] ]); ("S", [ [ v_int 2 ] ]) ] in
  Alcotest.(check int) "union eval" 2 (Relation.cardinal (Ucq.eval u inst));
  Alcotest.(check bool) "holds" true (Ucq.holds u inst)

let test_view_accessors () =
  let views =
    View.make_exn
      [ reachable_def;
        { View.name = "Far";
          body =
            Ucq.of_cq
              (Cq.make
                 ~head:[ Cq.Var "x"; Cq.Var "y" ]
                 ~atoms:
                   [ atom "Reachable" [ Cq.Var "x"; Cq.Var "z" ];
                     atom "Reachable" [ Cq.Var "z"; Cq.Var "y" ] ]
                 ()) } ]
  in
  Alcotest.(check (list string)) "depends_on" [ "Reachable" ]
    (View.depends_on views "Far");
  Alcotest.(check bool) "is_view" true (View.is_view views "Far");
  Alcotest.(check bool) "not linear (two view atoms)" false
    (View.is_linear views);
  Alcotest.(check bool) "has comparisons" false (View.has_comparisons views)

let test_cq_substitute_var_transfer () =
  (* Substituting a compared variable by another variable transfers the
     comparison. *)
  let q =
    Cq.make ~head:[ Cq.Var "x" ]
      ~atoms:[ atom "R" [ Cq.Var "x"; Cq.Var "y" ] ]
      ~comparisons:[ { Cq.subject = "y"; op = Cmp_op.Lt; value = v_int 5 } ]
      ()
  in
  let q' = Cq.substitute [ ("y", Cq.Var "w") ] q in
  Alcotest.(check bool) "comparison moved to w" true
    (List.exists
       (fun (c : Cq.comparison) -> String.equal c.Cq.subject "w")
       q'.Cq.comparisons);
  (* rename_apart renames everything consistently. *)
  let r = Cq.rename_apart ~suffix:"#9" q in
  Alcotest.(check bool) "renamed comparison" true
    (List.exists
       (fun (c : Cq.comparison) -> String.equal c.Cq.subject "y#9")
       r.Cq.comparisons)

(* ------------------------------------------------------------------ *)
(* Provenance                                                         *)
(* ------------------------------------------------------------------ *)

let test_provenance_witnesses () =
  (* Why is (Amsterdam, Rome) an answer of the two-hop query? *)
  let answer = Tuple.of_list [ v_str "Amsterdam"; v_str "Rome" ] in
  let ws = Provenance.witnesses two_hop train_inst answer in
  Alcotest.(check int) "one witness" 1 (List.length ws);
  (match ws with
   | [ w ] ->
     Alcotest.(check bool) "via Berlin" true
       (List.assoc_opt "z" w.Provenance.binding = Some (v_str "Berlin"));
     Alcotest.(check int) "two facts" 2 (List.length w.Provenance.facts)
   | _ -> ());
  (* Non-answers have no witnesses. *)
  Alcotest.(check int) "no witness for non-answer" 0
    (List.length
       (Provenance.witnesses two_hop train_inst
          (Tuple.of_list [ v_str "Amsterdam"; v_str "New York" ])));
  (* Repeated head variables must be respected. *)
  let diag =
    Cq.make ~head:[ Cq.Var "x"; Cq.Var "x" ]
      ~atoms:[ { Cq.rel = "TC"; args = [ Cq.Var "x"; Cq.Var "y" ] } ]
      ()
  in
  Alcotest.(check int) "diagonal mismatch rejected" 0
    (List.length
       (Provenance.witnesses diag train_inst
          (Tuple.of_list [ v_str "Amsterdam"; v_str "Berlin" ])))

let test_provenance_derivations () =
  let views = View.make_exn [ big_city_def; reachable_def ] in
  (* (Amsterdam, Rome) in Reachable derives via the two-hop disjunct. *)
  let ds =
    Provenance.derive views cities_inst "Reachable"
      (Tuple.of_list [ v_str "Amsterdam"; v_str "Rome" ])
  in
  Alcotest.(check int) "one derivation" 1 (List.length ds);
  (match ds with
   | [ Provenance.Rule { view; disjunct; premises; _ } ] ->
     Alcotest.(check string) "view" "Reachable" view;
     Alcotest.(check int) "second disjunct" 1 disjunct;
     Alcotest.(check int) "two premises" 2 (List.length premises)
   | _ -> Alcotest.fail "rule derivation expected");
  (* Leaves are base facts. *)
  (match Provenance.derive_one views cities_inst "Reachable"
           (Tuple.of_list [ v_str "Amsterdam"; v_str "Rome" ])
   with
   | Some d ->
     let ls = Provenance.leaves d in
     Alcotest.(check int) "two base facts" 2 (List.length ls);
     Alcotest.(check bool) "all in TC" true
       (List.for_all (fun (rel, _) -> String.equal rel "TC") ls)
   | None -> Alcotest.fail "derivation expected");
  (* A base-relation tuple derives as a Fact. *)
  (match Provenance.derive views cities_inst "TC"
           (Tuple.of_list [ v_str "Amsterdam"; v_str "Berlin" ])
   with
   | [ Provenance.Fact ("TC", _) ] -> ()
   | _ -> Alcotest.fail "fact expected");
  (* Underivable tuples yield nothing. *)
  Alcotest.(check int) "underivable" 0
    (List.length
       (Provenance.derive views cities_inst "BigCity"
          (Tuple.of_list [ v_str "Amsterdam" ])))

(* ------------------------------------------------------------------ *)

let prop_between_ordered =
  QCheck2.Test.make ~name:"between lies strictly between" ~count:500
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
       match Value.between a b with
       | None -> true
       | Some m ->
         let lo, hi = if Value.compare a b <= 0 then (a, b) else (b, a) in
         Value.compare lo m < 0 && Value.compare m hi < 0)

let prop_interval_conditions_roundtrip =
  QCheck2.Test.make ~name:"to_conditions round-trips the interval" ~count:500
    QCheck2.Gen.(triple cond_gen cond_gen value_gen)
    (fun ((op1, c1), (op2, c2), v) ->
       let i = Interval.meet (itv op1 c1) (itv op2 c2) in
       if Interval.is_empty i then true
       else
         let back =
           List.fold_left
             (fun acc (op, c) -> Interval.meet acc (Interval.of_condition op c))
             Interval.top (Interval.to_conditions i)
         in
         Interval.mem v i = Interval.mem v back)

let prop_sample_in_interval =
  QCheck2.Test.make ~name:"sample lies in its interval" ~count:500
    QCheck2.Gen.(pair cond_gen cond_gen)
    (fun ((op1, c1), (op2, c2)) ->
       let i = Interval.meet (itv op1 c1) (itv op2 c2) in
       match Interval.sample i with
       | None -> Interval.is_empty i
       | Some v -> Interval.mem v i)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_meet_is_conjunction;
      prop_subset_sound;
      prop_between_ordered;
      prop_interval_conditions_roundtrip;
      prop_sample_in_interval;
      prop_containment_sound;
      prop_containment_reflexive;
    ]

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "order" `Quick test_value_order;
          Alcotest.test_case "between" `Quick test_value_between;
          Alcotest.test_case "below/above" `Quick test_value_below_above;
          Alcotest.test_case "of_string" `Quick test_value_roundtrip;
        ] );
      ( "interval",
        [
          Alcotest.test_case "meet/mem" `Quick test_interval_meet_mem;
          Alcotest.test_case "empty" `Quick test_interval_empty;
          Alcotest.test_case "subset" `Quick test_interval_subset;
          Alcotest.test_case "point/sample" `Quick test_interval_point_sample;
        ] );
      ( "tuple-relation",
        [
          Alcotest.test_case "proj/get" `Quick test_tuple_proj;
          Alcotest.test_case "relation ops" `Quick test_relation_ops;
          Alcotest.test_case "arity guard" `Quick test_relation_arity_guard;
        ] );
      ( "fd",
        [
          Alcotest.test_case "satisfaction" `Quick test_fd;
          Alcotest.test_case "closure/implies" `Quick test_fd_closure_implies;
        ] );
      ( "ind",
        [
          Alcotest.test_case "satisfaction" `Quick test_ind;
          Alcotest.test_case "reachability" `Quick test_ind_reachability;
        ] );
      ( "cq",
        [
          Alcotest.test_case "two-hop (Ex 3.4)" `Quick test_cq_eval_two_hop;
          Alcotest.test_case "constants+comparisons" `Quick test_cq_eval_constants_and_comparisons;
          Alcotest.test_case "boolean" `Quick test_cq_boolean;
          Alcotest.test_case "substitute" `Quick test_cq_substitute;
          Alcotest.test_case "safety" `Quick test_cq_safety;
        ] );
      ( "view",
        [
          Alcotest.test_case "materialise (Fig 2)" `Quick test_view_materialise;
          Alcotest.test_case "nested" `Quick test_view_nested;
          Alcotest.test_case "cycle rejected" `Quick test_view_cycle_rejected;
          Alcotest.test_case "unfold" `Quick test_view_unfold;
          Alcotest.test_case "unfold w/ constant head" `Quick test_view_unfold_constant_head;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics (Fig 1)" `Quick test_schema_basics;
          Alcotest.test_case "satisfies (Fig 1+2)" `Quick test_schema_satisfies;
          Alcotest.test_case "rejects bad" `Quick test_schema_rejects_bad;
        ] );
      ( "api-contracts",
        [
          Alcotest.test_case "relation set algebra" `Quick test_relation_set_algebra;
          Alcotest.test_case "instance union/restrict" `Quick test_instance_union_restrict;
          Alcotest.test_case "ucq" `Quick test_ucq_api;
          Alcotest.test_case "view accessors" `Quick test_view_accessors;
          Alcotest.test_case "cq substitute/rename" `Quick test_cq_substitute_var_transfer;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "witnesses" `Quick test_provenance_witnesses;
          Alcotest.test_case "derivations" `Quick test_provenance_derivations;
        ] );
      ( "containment",
        [
          Alcotest.test_case "no comparisons" `Quick test_containment_no_comparisons;
          Alcotest.test_case "with comparisons" `Quick test_containment_with_comparisons;
          Alcotest.test_case "union split" `Quick test_containment_union_split;
          Alcotest.test_case "constants" `Quick test_containment_constants;
          Alcotest.test_case "unsat lhs" `Quick test_containment_unsat_lhs;
        ] );
      ("properties", qcheck_cases);
    ]
