(* Tests for the Datalog engine: safety, stratification, semi-naive
   recursion, stratified negation, and the equivalence with nested
   UCQ-views on non-recursive programs (§2's correspondence). *)

open Whynot_relational
open Whynot_datalog

let v_int = Value.int
let v_str = Value.str
let var v = Cq.Var v
let atom rel args = { Cq.rel; args }
let pos rel args = Program.Pos (atom rel args)
let neg rel args = Program.Neg (atom rel args)

let edge_facts pairs =
  List.fold_left
    (fun inst (a, b) -> Instance.add_fact "E" [ v_int a; v_int b ] inst)
    Instance.empty pairs

(* Transitive closure: T(x,y) :- E(x,y).  T(x,y) :- T(x,z), E(z,y). *)
let tc_program =
  Program.make_exn
    [
      Program.rule ~head:(atom "T" [ var "x"; var "y" ]) [ pos "E" [ var "x"; var "y" ] ];
      Program.rule
        ~head:(atom "T" [ var "x"; var "y" ])
        [ pos "T" [ var "x"; var "z" ]; pos "E" [ var "z"; var "y" ] ];
    ]

let test_transitive_closure () =
  Alcotest.(check bool) "recursive" true (Program.is_recursive tc_program);
  let inst = edge_facts [ (1, 2); (2, 3); (3, 4) ] in
  let out = Program.eval tc_program inst in
  let t = Option.get (Instance.relation out "T") in
  (* Closure of a 4-chain: 3 + 2 + 1 = 6 pairs. *)
  Alcotest.(check int) "6 pairs" 6 (Relation.cardinal t);
  Alcotest.(check bool) "(1,4) derived" true
    (Relation.mem (Tuple.of_list [ v_int 1; v_int 4 ]) t);
  Alcotest.(check bool) "(4,1) not derived" false
    (Relation.mem (Tuple.of_list [ v_int 4; v_int 1 ]) t);
  (* A cycle terminates and closes fully. *)
  let cyc = Program.eval tc_program (edge_facts [ (1, 2); (2, 3); (3, 1) ]) in
  Alcotest.(check int) "3-cycle closure" 9
    (Relation.cardinal (Option.get (Instance.relation cyc "T")))

let test_stratified_negation () =
  (* Unreachable pairs: U(x,y) :- N(x), N(y), !T(x,y). *)
  let prog =
    Program.make_exn
      (Program.rules tc_program
       @ [
           Program.rule ~head:(atom "N" [ var "x" ]) [ pos "E" [ var "x"; var "y" ] ];
           Program.rule ~head:(atom "N" [ var "y" ]) [ pos "E" [ var "x"; var "y" ] ];
           Program.rule
             ~head:(atom "U" [ var "x"; var "y" ])
             [ pos "N" [ var "x" ]; pos "N" [ var "y" ]; neg "T" [ var "x"; var "y" ] ];
         ])
  in
  (* U must sit in a later stratum than T. *)
  let strata = Program.strata prog in
  let stratum_of p =
    Option.get (List.find_index (fun s -> List.mem p s) strata)
  in
  Alcotest.(check bool) "U after T" true (stratum_of "U" > stratum_of "T");
  let out = Program.eval prog (edge_facts [ (1, 2); (2, 3) ]) in
  let u = Option.get (Instance.relation out "U") in
  (* Nodes {1,2,3}; T = {(1,2),(2,3),(1,3)}; U = 9 - 3 = 6 pairs. *)
  Alcotest.(check int) "6 unreachable pairs" 6 (Relation.cardinal u);
  Alcotest.(check bool) "(3,1) unreachable" true
    (Relation.mem (Tuple.of_list [ v_int 3; v_int 1 ]) u);
  Alcotest.(check bool) "(1,3) reachable" false
    (Relation.mem (Tuple.of_list [ v_int 1; v_int 3 ]) u)

let test_safety_and_stratification_errors () =
  (* Unsafe: head variable not in a positive literal. *)
  (match
     Program.make
       [ Program.rule ~head:(atom "P" [ var "x"; var "y" ]) [ pos "E" [ var "x"; var "x" ] ] ]
   with
   | Ok _ -> Alcotest.fail "unsafe head accepted"
   | Error _ -> ());
  (* Unsafe: negated variable not positively bound. *)
  (match
     Program.make
       [ Program.rule ~head:(atom "P" [ var "x" ])
           [ pos "E" [ var "x"; var "x" ]; neg "E" [ var "x"; var "z" ] ] ]
   with
   | Ok _ -> Alcotest.fail "unsafe negation accepted"
   | Error _ -> ());
  (* Recursion through negation. *)
  match
    Program.make
      [
        Program.rule ~head:(atom "P" [ var "x" ])
          [ pos "E" [ var "x"; var "x" ]; neg "Q" [ var "x" ] ];
        Program.rule ~head:(atom "Q" [ var "x" ])
          [ pos "E" [ var "x"; var "x" ]; neg "P" [ var "x" ] ];
      ]
  with
  | Ok _ -> Alcotest.fail "unstratifiable program accepted"
  | Error _ -> ()

let test_views_equivalence () =
  (* The Figure-1 views evaluated as a Datalog program coincide with
     View.materialise. *)
  let views = Schema.views Whynot_workload.Cities.schema in
  let prog = Program.of_views views in
  Alcotest.(check bool) "non-recursive" false (Program.is_recursive prog);
  let base = Whynot_workload.Cities.base_instance in
  let via_datalog = Program.eval prog base in
  let via_views = View.materialise views base in
  List.iter
    (fun name ->
       let a = Instance.relation via_datalog name
       and b = Instance.relation via_views name in
       match a, b with
       | Some a, Some b ->
         Alcotest.(check bool) (name ^ " agrees") true (Relation.equal a b)
       | _ -> Alcotest.failf "%s missing" name)
    (View.view_names views)

let test_recursive_reachable () =
  (* The genuinely transitive Reachable the 2-hop view only approximates. *)
  let prog =
    Program.make_exn
      [
        Program.rule
          ~head:(atom "ReachAll" [ var "x"; var "y" ])
          [ pos "Train-Connections" [ var "x"; var "y" ] ];
        Program.rule
          ~head:(atom "ReachAll" [ var "x"; var "y" ])
          [ pos "ReachAll" [ var "x"; var "z" ];
            pos "Train-Connections" [ var "z"; var "y" ] ];
      ]
  in
  let out = Program.eval prog Whynot_workload.Cities.base_instance in
  let r = Option.get (Instance.relation out "ReachAll") in
  (* Amsterdam reaches Rome in 2 hops (also in Reachable), and the
     recursive version adds nothing beyond 2 hops on this instance except
     closure over the A<->B loop, which the 2-hop view already has. *)
  Alcotest.(check bool) "(A,Rome)" true
    (Relation.mem (Tuple.of_list [ v_str "Amsterdam"; v_str "Rome" ]) r);
  Alcotest.(check bool) "(NY, Santa Cruz)" true
    (Relation.mem (Tuple.of_list [ v_str "New York"; v_str "Santa Cruz" ]) r);
  Alcotest.(check bool) "no (A, NY)" false
    (Relation.mem (Tuple.of_list [ v_str "Amsterdam"; v_str "New York" ]) r)

let test_comparisons_and_constants () =
  let prog =
    Program.make_exn
      [
        Program.rule
          ~head:(atom "Big" [ var "x"; Cq.Const (v_str "big") ])
          ~comparisons:[ { Cq.subject = "p"; op = Cmp_op.Ge; value = v_int 10 } ]
          [ pos "R" [ var "x"; var "p" ] ];
      ]
  in
  let inst =
    Instance.of_facts
      [ ("R", [ [ v_int 1; v_int 5 ]; [ v_int 2; v_int 15 ] ]) ]
  in
  let out = Program.eval prog inst in
  let big = Option.get (Instance.relation out "Big") in
  Alcotest.(check int) "one fact" 1 (Relation.cardinal big);
  Alcotest.(check bool) "tagged" true
    (Relation.mem (Tuple.of_list [ v_int 2; v_str "big" ]) big)

(* Property: semi-naive TC = reflexive-transitive-closure oracle. *)
let prop_tc_matches_oracle =
  QCheck2.Test.make ~name:"datalog TC = graph-reachability oracle" ~count:100
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_range 0 5) (int_range 0 5)))
    (fun pairs ->
       let inst = edge_facts pairs in
       let out = Program.eval tc_program inst in
       let t = Option.get (Instance.relation out "T") in
       (* Oracle: BFS from each node. *)
       let reach a =
         let rec loop frontier seen =
           match frontier with
           | [] -> seen
           | x :: rest ->
             let nexts =
               List.filter_map
                 (fun (u, v) ->
                    if u = x && not (List.mem v seen) then Some v else None)
                 pairs
             in
             loop (nexts @ rest) (nexts @ seen)
         in
         loop [ a ] []
       in
       List.for_all
         (fun (a, _) ->
            List.for_all
              (fun b ->
                 Relation.mem (Tuple.of_list [ v_int a; v_int b ]) t
                 = List.mem b (reach a))
              (List.sort_uniq Stdlib.compare
                 (List.concat_map (fun (u, v) -> [ u; v ]) pairs)))
         pairs)

let () =
  Alcotest.run "datalog"
    [
      ( "recursion",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "recursive reachable" `Quick test_recursive_reachable;
        ] );
      ( "negation",
        [ Alcotest.test_case "stratified" `Quick test_stratified_negation ] );
      ( "validation",
        [ Alcotest.test_case "safety/stratification" `Quick test_safety_and_stratification_errors ] );
      ( "views",
        [
          Alcotest.test_case "equivalence with View.materialise" `Quick test_views_equivalence;
          Alcotest.test_case "comparisons/constants" `Quick test_comparisons_and_constants;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_tc_matches_oracle ] );
    ]
