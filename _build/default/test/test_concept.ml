(* Tests for the concept language L_S: semantics (Figure 5), subsumption
   w.r.t. instance and schema (Example 4.9, Table 1 classes), least upper
   bounds (Lemmas 5.1/5.2), irredundancy (Prop 6.2) and counting
   (Prop 4.2). *)

open Whynot_relational
open Whynot_concept

let v_str = Value.str
let v_int = Value.int

let cities_schema = Whynot_workload.Cities.schema
let cities = Whynot_workload.Cities.instance

let proj ?sels rel attr = Ls.proj ?sels ~rel ~attr ()
let sel attr op value = { Ls.attr; op; value }

(* The concepts of Figure 5. *)
let c_city = proj "Cities" 1
let c_european = proj "Cities" 1 ~sels:[ sel 4 Cmp_op.Eq (v_str "Europe") ]
let c_namerican = proj "Cities" 1 ~sels:[ sel 4 Cmp_op.Eq (v_str "N.America") ]
let c_large = proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Gt (v_int 1000000) ]
let c_bigcity = proj "BigCity" 1
let c_santa_cruz = Ls.nominal (v_str "Santa Cruz")
let c_small_reachable_from_a =
  Ls.meet
    (proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Lt (v_int 1000000) ])
    (proj "Reachable" 2 ~sels:[ sel 1 Cmp_op.Eq (v_str "Amsterdam") ])

let ext c = Semantics.extension c cities

let check_ext msg c expected =
  match ext c with
  | Semantics.All -> Alcotest.fail (msg ^ ": unexpected top extension")
  | Semantics.Fin s ->
    Alcotest.(check bool)
      (Printf.sprintf "%s = %s" msg (Format.asprintf "%a" Value_set.pp s))
      true
      (Value_set.equal s (Value_set.of_strings expected))

let test_figure5_extensions () =
  check_ext "City" c_city
    [ "Amsterdam"; "Berlin"; "Rome"; "New York"; "San Francisco"; "Santa Cruz";
      "Tokyo"; "Kyoto" ];
  check_ext "European City" c_european [ "Amsterdam"; "Berlin"; "Rome" ];
  check_ext "N.American City" c_namerican
    [ "New York"; "San Francisco"; "Santa Cruz" ];
  check_ext "Large City" c_large
    [ "Berlin"; "Rome"; "New York"; "Tokyo"; "Kyoto" ];
  check_ext "BigCity" c_bigcity [ "New York"; "Tokyo" ];
  check_ext "Santa Cruz" c_santa_cruz [ "Santa Cruz" ];
  check_ext "small reachable from Amsterdam" c_small_reachable_from_a
    [ "Amsterdam" ]

let test_top_semantics () =
  Alcotest.(check bool) "top is All" true (ext Ls.top = Semantics.All);
  Alcotest.(check bool) "anything in top" true
    (Semantics.mem (v_str "whatever") Ls.top cities);
  Alcotest.(check bool) "top meets to finite" true
    (Semantics.ext_equal (ext (Ls.meet Ls.top c_bigcity)) (ext c_bigcity))

let test_normalisation () =
  (* Duplicate conjuncts and redundant selections collapse. *)
  let c1 = Ls.meet c_european c_european in
  Alcotest.(check int) "dedup" 1 (List.length (Ls.conjuncts c1));
  let narrowed =
    proj "Cities" 1
      ~sels:[ sel 2 Cmp_op.Ge (v_int 5); sel 2 Cmp_op.Ge (v_int 3) ]
  in
  let direct = proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Ge (v_int 5) ] in
  Alcotest.(check bool) "selection intervals normalised" true
    (Ls.equal narrowed direct);
  Alcotest.(check bool) "fragments" true
    (Ls.is_selection_free (Ls.meet c_city c_santa_cruz)
     && (not (Ls.is_selection_free c_european))
     && Ls.is_intersection_free c_european
     && (not (Ls.is_intersection_free c_small_reachable_from_a))
     && Ls.is_minimal c_city)

(* ------------------------------------------------------------------ *)
(* Subsumption w.r.t. instance                                        *)
(* ------------------------------------------------------------------ *)

let test_subsume_inst () =
  Alcotest.(check bool) "european <=I city" true
    (Subsume_inst.subsumes cities c_european c_city);
  Alcotest.(check bool) "city not <=I european" false
    (Subsume_inst.subsumes cities c_city c_european);
  Alcotest.(check bool) "strict" true
    (Subsume_inst.strictly_subsumed cities c_european c_city);
  (* Example 4.9: E7 and E8 components are equivalent w.r.t. O_I:
     BigCity = population > 7,000,000 on this instance. *)
  let c_pop7m = proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Gt (v_int 7000000) ] in
  Alcotest.(check bool) "BigCity =I pop>7M" true
    (Subsume_inst.equivalent cities c_bigcity c_pop7m);
  (* Reachable-from-Amsterdam <=I reachable-from-Berlin (both {A,B,R}). *)
  let from_a = proj "Reachable" 2 ~sels:[ sel 1 Cmp_op.Eq (v_str "Amsterdam") ] in
  let from_b = proj "Reachable" 2 ~sels:[ sel 1 Cmp_op.Eq (v_str "Berlin") ] in
  Alcotest.(check bool) "fromA <=I fromB" true
    (Subsume_inst.subsumes cities from_a from_b);
  (* top subsumes everything, nothing finite subsumes top. *)
  Alcotest.(check bool) "c <= top" true
    (Subsume_inst.subsumes cities c_city Ls.top);
  Alcotest.(check bool) "top not <= c" false
    (Subsume_inst.subsumes cities Ls.top c_city)

(* ------------------------------------------------------------------ *)
(* Subsumption w.r.t. schema (Example 4.9, Table 1)                   *)
(* ------------------------------------------------------------------ *)

let test_example_4_9_schema_subsumptions () =
  let sub = Subsume_schema.decide cities_schema in
  (* The four subsumptions stated in Example 4.9. *)
  Alcotest.(check bool) "european <=S city" true
    (sub c_european c_city = Subsume_schema.Subsumed);
  let c_pop7m = proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Gt (v_int 7000000) ] in
  Alcotest.(check bool) "pop>7M <=S BigCity (view unfolding)" true
    (sub c_pop7m c_bigcity = Subsume_schema.Subsumed);
  Alcotest.(check bool) "BigCity <=S city (view unfolding)" true
    (sub c_bigcity c_city = Subsume_schema.Subsumed);
  let c_tc_from = proj "Train-Connections" 1 in
  Alcotest.(check bool) "BigCity <=S TC[city_from] (IND)" true
    (sub c_bigcity c_tc_from = Subsume_schema.Subsumed);
  (* Holds w.r.t. O_I but NOT w.r.t. O_S (Example 4.9). *)
  let from_a = proj "Reachable" 2 ~sels:[ sel 1 Cmp_op.Eq (v_str "Amsterdam") ] in
  let from_b = proj "Reachable" 2 ~sels:[ sel 1 Cmp_op.Eq (v_str "Berlin") ] in
  Alcotest.(check bool) "fromA not <=S fromB (counter-model)" true
    (sub from_a from_b = Subsume_schema.Not_subsumed);
  (* "there might be an instance where Netherlands is not in Europe". *)
  let c_dutch = proj "Cities" 1 ~sels:[ sel 3 Cmp_op.Eq (v_str "Netherlands") ] in
  Alcotest.(check bool) "dutch not <=S european" true
    (sub c_dutch c_european = Subsume_schema.Not_subsumed);
  (* BigCity not <=S pop>7M: needs the IND chase (BigCity -> TC -> Cities). *)
  let c_pop7m' = proj "Cities" 1 ~sels:[ sel 2 Cmp_op.Gt (v_int 7000000) ] in
  Alcotest.(check bool) "BigCity not <=S pop>7M" true
    (sub c_bigcity c_pop7m' = Subsume_schema.Not_subsumed)

let test_schema_subsumption_no_constraints () =
  let bare =
    Schema.make_exn
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a" ] } ]
  in
  Alcotest.(check bool) "class" true
    (Subsume_schema.classify bare = Subsume_schema.No_constraints);
  let r1 = proj "R" 1 and r1_sel = proj "R" 1 ~sels:[ sel 2 Cmp_op.Lt (v_int 3) ] in
  Alcotest.(check bool) "sel <= plain" true
    (Subsume_schema.subsumes bare r1_sel r1);
  Alcotest.(check bool) "plain not <= sel" true
    (Subsume_schema.refutes bare r1 r1_sel);
  Alcotest.(check bool) "R1 not <= S1" true
    (Subsume_schema.refutes bare r1 (proj "S" 1));
  (* Condition implication on the projected attribute. *)
  let lt3 = proj "R" 1 ~sels:[ sel 1 Cmp_op.Lt (v_int 3) ] in
  let le3 = proj "R" 1 ~sels:[ sel 1 Cmp_op.Le (v_int 3) ] in
  Alcotest.(check bool) "<3 <= <=3" true (Subsume_schema.subsumes bare lt3 le3);
  Alcotest.(check bool) "<=3 not <= <3" true (Subsume_schema.refutes bare le3 lt3);
  (* Nominals: {c} <= {c}, {c} not <= projections, meets with nominal. *)
  let n5 = Ls.nominal (v_int 5) in
  Alcotest.(check bool) "{5} <= {5}" true (Subsume_schema.subsumes bare n5 n5);
  Alcotest.(check bool) "{5} not <= R1" true (Subsume_schema.refutes bare n5 r1);
  Alcotest.(check bool) "{5} n {6} unsat => subsumed by anything" true
    (Subsume_schema.subsumes bare
       (Ls.meet n5 (Ls.nominal (v_int 6)))
       (proj "S" 1));
  Alcotest.(check bool) "R1 n {5} <= {5}" true
    (Subsume_schema.subsumes bare (Ls.meet r1 n5) n5);
  Alcotest.(check bool) "R1 sel=5 on proj attr <= {5}" true
    (Subsume_schema.subsumes bare
       (proj "R" 1 ~sels:[ sel 1 Cmp_op.Eq (v_int 5) ])
       n5);
  Alcotest.(check bool) "everything <= top" true
    (Subsume_schema.subsumes bare r1 Ls.top)

let test_schema_subsumption_fds () =
  (* R(a, b) with FD a -> b: selecting a = 5 determines b, so
     pi_b(sigma_{a=5, b>=0}(R))'s interplay is unaffected, but e.g.
     pi_a(sigma_{a=5}(R)) <= {5} holds regardless. A genuinely FD-powered
     subsumption: pi_b(sigma_{a=5}(R)) has at most one element... we test
     that the FD filter discards canonical instances violating the FD:
     pi_1(sigma_{2>=3}(R)) n pi_1(sigma_{2<=1}(R)) is unsatisfiable under
     FD 1->2 (same a would need two b's), hence subsumed by anything. *)
  let fd_schema =
    Schema.make_exn
      ~fds:[ Fd.make ~rel:"R" ~lhs:[ 1 ] ~rhs:[ 2 ] ]
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a" ] } ]
  in
  Alcotest.(check bool) "class" true
    (Subsume_schema.classify fd_schema = Subsume_schema.Fds_only);
  let hi = proj "R" 1 ~sels:[ sel 2 Cmp_op.Ge (v_int 3) ] in
  let lo = proj "R" 1 ~sels:[ sel 2 Cmp_op.Le (v_int 1) ] in
  Alcotest.(check bool) "contradictory-under-FD meet subsumed by S" true
    (Subsume_schema.subsumes fd_schema (Ls.meet hi lo) (proj "S" 1));
  (* Without the FD the same meet is satisfiable (two tuples) and not
     subsumed. *)
  let no_fd =
    Schema.make_exn
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a" ] } ]
  in
  Alcotest.(check bool) "without FD not subsumed" true
    (Subsume_schema.refutes no_fd (Ls.meet hi lo) (proj "S" 1));
  (* FDs do not create spurious subsumptions. *)
  Alcotest.(check bool) "R1 not <= S1 under FD" true
    (Subsume_schema.refutes fd_schema (proj "R" 1) (proj "S" 1))

let test_schema_subsumption_inds () =
  let ind_schema =
    Schema.make_exn
      ~inds:
        [ Ind.make ~lhs_rel:"R" ~lhs_attrs:[ 1 ] ~rhs_rel:"S" ~rhs_attrs:[ 2 ];
          Ind.make ~lhs_rel:"S" ~lhs_attrs:[ 2 ] ~rhs_rel:"T" ~rhs_attrs:[ 1 ] ]
      [ { Schema.name = "R"; attrs = [ "a"; "b" ] };
        { Schema.name = "S"; attrs = [ "a"; "b" ] };
        { Schema.name = "T"; attrs = [ "a" ] } ]
  in
  Alcotest.(check bool) "class" true
    (Subsume_schema.classify ind_schema = Subsume_schema.Inds_only);
  Alcotest.(check bool) "R1 <= S2 (direct IND)" true
    (Subsume_schema.subsumes ind_schema (proj "R" 1) (proj "S" 2));
  Alcotest.(check bool) "R1 <= T1 (transitive)" true
    (Subsume_schema.subsumes ind_schema (proj "R" 1) (proj "T" 1));
  Alcotest.(check bool) "S1 not <= T1" true
    (Subsume_schema.refutes ind_schema (proj "S" 1) (proj "T" 1));
  (* With a selection on the left: still sound (sel shrinks the lhs). *)
  Alcotest.(check bool) "sel(R)1 <= S2" true
    (Subsume_schema.subsumes ind_schema
       (proj "R" 1 ~sels:[ sel 2 Cmp_op.Gt (v_int 0) ])
       (proj "S" 2));
  (* With a selection on the right: cannot conclude; counter-model search
     should refute. *)
  Alcotest.(check bool) "R1 vs sel(S)2 refuted" true
    (Subsume_schema.refutes ind_schema (proj "R" 1)
       (proj "S" 2 ~sels:[ sel 1 Cmp_op.Eq (v_int 0) ]))

(* ------------------------------------------------------------------ *)
(* lub (Lemmas 5.1, 5.2)                                              *)
(* ------------------------------------------------------------------ *)

let test_lub_basic () =
  let x = Value_set.of_strings [ "New York"; "Tokyo" ] in
  let l = Lub.lub cities x in
  (match Semantics.extension l cities with
   | Semantics.All -> Alcotest.fail "lub should be finite here"
   | Semantics.Fin s ->
     Alcotest.(check bool) "X within lub" true (Value_set.subset x s));
  Alcotest.(check bool) "BigCity conjunct found" true
    (List.mem (Ls.Proj { rel = "BigCity"; attr = 1; sels = [] })
       (Ls.conjuncts l));
  Alcotest.(check bool) "selection-free" true (Ls.is_selection_free l);
  (* Singleton: the nominal makes the lub exactly the singleton. *)
  let la = Lub.lub cities (Value_set.singleton (v_str "Amsterdam")) in
  Alcotest.(check bool) "singleton lub = {Amsterdam}" true
    (Semantics.ext_equal (Semantics.extension la cities)
       (Semantics.Fin (Value_set.of_strings [ "Amsterdam" ])));
  (* A constant outside the active domain: only the nominal (and top). *)
  let lout = Lub.lub cities (Value_set.singleton (v_str "Paris")) in
  Alcotest.(check bool) "out-of-adom lub is nominal" true
    (Ls.equal lout (Ls.nominal (v_str "Paris")))

let test_lub_minimality () =
  (* Lemma 5.1(2): no selection-free concept with extension containing X is
     strictly below the lub. Check against every atomic candidate. *)
  let x = Value_set.of_strings [ "Amsterdam"; "Berlin" ] in
  let l = Lub.lub cities x in
  let lub_ext = Semantics.extension l cities in
  List.iter
    (fun name ->
       match Instance.relation cities name with
       | None -> ()
       | Some r ->
         for attr = 1 to Relation.arity r do
           let c = proj name attr in
           let c_ext = Semantics.extension c cities in
           if Value_set.subset x (match c_ext with
               | Semantics.Fin s -> s
               | Semantics.All -> Value_set.empty)
           then
             Alcotest.(check bool)
               (Printf.sprintf "lub <= pi_%d(%s)" attr name)
               true
               (Semantics.ext_subset lub_ext c_ext)
         done)
    (Instance.relation_names cities)

let test_lub_sigma () =
  let x = Value_set.of_strings [ "New York"; "Tokyo" ] in
  let l = Lub.lub_sigma cities x in
  (match Semantics.extension l cities with
   | Semantics.All -> Alcotest.fail "lub_sigma should be finite"
   | Semantics.Fin s ->
     Alcotest.(check bool) "X within lub_sigma" true (Value_set.subset x s);
     (* With selections we can carve out exactly the big cities:
        population >= 8,337,000 covers NY and Tokyo only. *)
     Alcotest.(check bool) "lub_sigma is exactly {NY, Tokyo}" true
       (Value_set.equal s x));
  (* lub_sigma is at least as specific as lub. *)
  let plain = Lub.lub cities x in
  Alcotest.(check bool) "lub_sigma <= lub" true
    (Subsume_inst.subsumes cities l plain)

let test_lub_sigma_candidates () =
  let x = Value_set.of_strings [ "Berlin" ] in
  let cands =
    Lub.atomic_selection_candidates cities ~rel:"Cities" ~attr:1 x
  in
  Alcotest.(check bool) "some candidate" true (cands <> []);
  List.iter
    (fun c ->
       let cext = Semantics.conjunct_ext c cities in
       Alcotest.(check bool) "candidate contains X" true
         (Value_set.for_all (fun v -> Semantics.ext_mem v cext) x))
    cands

(* qcheck: lub properties on random instances. *)
let random_instance_gen =
  QCheck2.Gen.(
    let row = pair (int_range 0 5) (int_range 0 5) in
    map
      (fun (rows_r, rows_s) ->
         let add rel inst (a, b) =
           Instance.add_fact rel [ v_int a; v_int b ] inst
         in
         let inst = List.fold_left (add "R") Instance.empty rows_r in
         List.fold_left (add "S") inst rows_s)
      (pair (list_size (int_range 1 6) row) (list_size (int_range 0 4) row)))

let subset_gen inst =
  let adom = Value_set.elements (Instance.adom inst) in
  QCheck2.Gen.(
    map
      (fun idxs ->
         Value_set.of_list
           (List.filteri (fun i _ -> List.mem i idxs) adom))
      (list_size (int_range 1 3) (int_range 0 (max 0 (List.length adom - 1)))))

let prop_lub_contains =
  QCheck2.Test.make ~name:"lub contains X, lub_sigma <= lub" ~count:100
    QCheck2.Gen.(random_instance_gen >>= fun inst ->
                 map (fun x -> (inst, x)) (subset_gen inst))
    (fun (inst, x) ->
       Value_set.is_empty x
       ||
       let l = Lub.lub inst x in
       let ls = Lub.lub_sigma inst x in
       Value_set.for_all (fun v -> Semantics.mem v l inst) x
       && Value_set.for_all (fun v -> Semantics.mem v ls inst) x
       && Subsume_inst.subsumes inst ls l)

let prop_lub_sigma_minimal =
  QCheck2.Test.make
    ~name:"lub_sigma minimal vs random atomic selection concepts" ~count:100
    QCheck2.Gen.(
      random_instance_gen >>= fun inst ->
      map2 (fun x (a, b) -> (inst, x, a, b)) (subset_gen inst)
        (pair (int_range 0 4) (int_range 0 4)))
    (fun (inst, x, a, b) ->
       Value_set.is_empty x
       ||
       let ls = Lub.lub_sigma inst x in
       let lse = Semantics.extension ls inst in
       (* Random atomic concept with a selection interval [a..b] on attr 2. *)
       let c =
         proj "R" 1
           ~sels:[ sel 2 Cmp_op.Ge (v_int (min a b)); sel 2 Cmp_op.Le (v_int (max a b)) ]
       in
       let cext = Semantics.extension c inst in
       (not (Value_set.for_all (fun v -> Semantics.ext_mem v cext) x))
       || Semantics.ext_subset lse cext)

(* ------------------------------------------------------------------ *)
(* Irredundancy (Prop 6.2)                                            *)
(* ------------------------------------------------------------------ *)

let test_irredundant () =
  (* pi_name(Cities) is redundant next to the european selection. *)
  let c = Ls.meet c_european c_city in
  let m = Irredundant.minimise cities c in
  Alcotest.(check bool) "equivalent" true (Subsume_inst.equivalent cities c m);
  Alcotest.(check bool) "irredundant" true (Irredundant.is_irredundant cities m);
  Alcotest.(check int) "one conjunct left" 1 (List.length (Ls.conjuncts m));
  Alcotest.(check bool) "original redundant" false
    (Irredundant.is_irredundant cities c)

let prop_minimise_sound =
  QCheck2.Test.make ~name:"minimise preserves extension & is irredundant"
    ~count:100
    QCheck2.Gen.(
      random_instance_gen >>= fun inst ->
      map (fun x -> (inst, x)) (subset_gen inst))
    (fun (inst, x) ->
       Value_set.is_empty x
       ||
       let c = Lub.lub inst x in
       let m = Irredundant.minimise inst c in
       Subsume_inst.equivalent inst c m && Irredundant.is_irredundant inst m)

(* ------------------------------------------------------------------ *)
(* Counting (Prop 4.2)                                                *)
(* ------------------------------------------------------------------ *)

let test_counting () =
  let s = cities_schema in
  (* 13 positions: Cities(4) + TC(2) + BigCity(1) + EuropeanCountry(1) +
     Reachable(2) = 10... recount: 4+2+1+1+2 = 10. *)
  Alcotest.(check int) "positions" 10 (List.length (Schema.positions s));
  Alcotest.(check int) "minimal count" (1 + 5 + 10) (Count.count_minimal s ~k:5);
  Alcotest.(check bool) "selection-free = 2^10 * 6 + 1" true
    (Count.count_selection_free s ~k:5 = (1024. *. 6.) +. 1.);
  Alcotest.(check bool) "growth: min < sel-free < full" true
    (float_of_int (Count.count_minimal s ~k:5)
     < Count.count_selection_free s ~k:5
     && Count.count_selection_free s ~k:5 < Count.count_full s ~k:5);
  (* Doubling K squares-ish the full count but only linearly affects the
     minimal one. *)
  let m1 = Count.count_minimal s ~k:2 and m2 = Count.count_minimal s ~k:4 in
  Alcotest.(check bool) "minimal linear in k" true (m2 - m1 = 2)

let test_enumerate_selection_free () =
  let inst =
    Instance.of_facts [ ("R", [ [ v_int 1; v_int 2 ] ]) ]
  in
  let k = Value_set.of_list [ v_int 1; v_int 2 ] in
  let all = Count.enumerate_selection_free inst k in
  (* 2 positions, 2 nominal options + none: 4 * 3 = 12 concepts. *)
  Alcotest.(check int) "enumeration size" 12 (List.length all);
  let distinct = List.sort_uniq Ls.compare all in
  Alcotest.(check int) "all distinct" 12 (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Soundness of the schema-level deciders on random legal instances    *)
(* ------------------------------------------------------------------ *)

(* Random instances satisfying FD 1->2 on R: at most one b per a. *)
let fd_instance_gen =
  QCheck2.Gen.(
    map
      (fun pairs ->
         List.fold_left
           (fun inst (a, b) ->
              let r = Instance.relation_or_empty inst ~arity:2 "R0" in
              if Value_set.mem (v_int a) (Relation.column 1 r) then inst
              else Instance.add_fact "R0" [ v_int a; v_int b ] inst)
           Instance.empty pairs)
      (list_size (int_range 1 6) (pair (int_range 0 4) (int_range 0 4))))

let prop_fd_decider_sound =
  QCheck2.Test.make ~name:"FD decider sound on random legal instances"
    ~count:100
    QCheck2.Gen.(triple (int_range 0 200) (int_range 0 200) fd_instance_gen)
    (fun (s1, s2, inst) ->
       let schema = Whynot_workload.Generate.fd_schema ~positions:2 in
       let c1 =
         Whynot_workload.Generate.random_selection_concept ~seed:s1 schema
           ~conjuncts:1 ()
       in
       let c2 =
         Whynot_workload.Generate.random_selection_concept ~seed:s2 schema
           ~conjuncts:1 ()
       in
       match Subsume_schema.decide schema c1 c2 with
       | Subsume_schema.Subsumed -> Subsume_inst.subsumes inst c1 c2
       | Subsume_schema.Not_subsumed | Subsume_schema.Unknown -> true)

let prop_ind_decider_sound =
  QCheck2.Test.make ~name:"IND decider sound on chased instances" ~count:60
    QCheck2.Gen.(pair (int_range 2 5) (list_size (int_range 1 4) (pair (int_range 0 3) (int_range 0 3))))
    (fun (n, rows) ->
       let schema = Whynot_workload.Generate.ind_chain_schema ~n_relations:n in
       (* Seed R0 and chase to a legal instance. *)
       let seed_inst =
         List.fold_left
           (fun inst (a, b) -> Instance.add_fact "R0" [ v_int a; v_int b ] inst)
           Instance.empty rows
       in
       match Subsume_schema.chase_to_legal_instance schema seed_inst with
       | None -> true (* chase gave up; nothing to check *)
       | Some inst ->
         let c1 = proj "R0" 1 and c2 = proj (Printf.sprintf "R%d" (n - 1)) 1 in
         (not (Subsume_schema.subsumes schema c1 c2))
         || Subsume_inst.subsumes inst c1 c2)

(* Internal consistency of the containment engine: when cq_in_ucq says NO,
   some canonical instantiation must be a concrete counterexample. *)
let prop_containment_refutation_witnessed =
  QCheck2.Test.make ~name:"containment refutations have witnesses" ~count:80
    QCheck2.Gen.(pair (int_range 0 500) (int_range 0 500))
    (fun (s1, s2) ->
       let schema = Whynot_workload.Generate.wide_schema ~positions:4 in
       let c1 =
         Whynot_workload.Generate.random_selection_concept ~seed:s1 schema
           ~conjuncts:1 ()
       in
       let c2 =
         Whynot_workload.Generate.random_selection_concept ~seed:s2 schema
           ~conjuncts:1 ()
       in
       let q1 = To_query.query schema c1 and q2 = To_query.query schema c2 in
       Whynot_relational.Containment.cq_in_cq q1 q2
       || List.exists
            (fun (inst, head) ->
               not
                 (Relation.mem head
                    (Cq.eval q2 inst)))
            (Whynot_relational.Containment.canonical_instantiations q1
               ~extra_constants:(Cq.constants q2)))

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lub_contains;
      prop_lub_sigma_minimal;
      prop_minimise_sound;
      prop_fd_decider_sound;
      prop_ind_decider_sound;
      prop_containment_refutation_witnessed;
    ]

let () =
  Alcotest.run "concept"
    [
      ( "semantics",
        [
          Alcotest.test_case "figure 5 extensions" `Quick test_figure5_extensions;
          Alcotest.test_case "top" `Quick test_top_semantics;
          Alcotest.test_case "normalisation" `Quick test_normalisation;
        ] );
      ( "subsume-inst",
        [ Alcotest.test_case "basics + example 4.9" `Quick test_subsume_inst ] );
      ( "subsume-schema",
        [
          Alcotest.test_case "example 4.9" `Quick test_example_4_9_schema_subsumptions;
          Alcotest.test_case "no constraints" `Quick test_schema_subsumption_no_constraints;
          Alcotest.test_case "FDs" `Quick test_schema_subsumption_fds;
          Alcotest.test_case "INDs" `Quick test_schema_subsumption_inds;
        ] );
      ( "lub",
        [
          Alcotest.test_case "selection-free" `Quick test_lub_basic;
          Alcotest.test_case "minimality" `Quick test_lub_minimality;
          Alcotest.test_case "with selections" `Quick test_lub_sigma;
          Alcotest.test_case "candidates" `Quick test_lub_sigma_candidates;
        ] );
      ( "irredundant",
        [ Alcotest.test_case "minimise" `Quick test_irredundant ] );
      ( "count",
        [
          Alcotest.test_case "formulas" `Quick test_counting;
          Alcotest.test_case "enumeration" `Quick test_enumerate_selection_free;
        ] );
      ("properties", qcheck_cases);
    ]
