test/test_workload.ml: Alcotest Cq Instance List Option Printf Relation Schema Tuple Value View Whynot_concept Whynot_core Whynot_dllite Whynot_relational Whynot_workload
