test/test_relational.ml: Alcotest Cmp_op Containment Cq Fd Ind Instance Interval List Option Provenance QCheck2 QCheck_alcotest Relation Schema String Tuple Ucq Value Value_set View Whynot_relational
