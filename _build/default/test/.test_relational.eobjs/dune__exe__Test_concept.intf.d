test/test_concept.mli:
