test/test_datalog.ml: Alcotest Cmp_op Cq Instance List Option Program QCheck2 QCheck_alcotest Relation Schema Stdlib Tuple Value View Whynot_datalog Whynot_relational Whynot_workload
