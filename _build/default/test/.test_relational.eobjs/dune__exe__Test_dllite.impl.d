test/test_dllite.ml: Abox Alcotest Canonical Dl Interp List Ondemand Printf QCheck2 QCheck_alcotest Reasoner Tbox Whynot_dllite Whynot_obda Whynot_relational
